#include "gpsj/builder.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace mindetail {

GpsjViewBuilder::GpsjViewBuilder(std::string view_name) {
  def_.name_ = std::move(view_name);
}

GpsjViewBuilder& GpsjViewBuilder::From(const std::string& table) {
  def_.tables_.push_back(table);
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::Where(const std::string& table,
                                        const std::string& attr,
                                        CompareOp op, Value constant) {
  def_.local_conditions_[table].Add(
      Condition{attr, op, std::move(constant)});
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::Join(const std::string& from_table,
                                       const std::string& from_attr,
                                       const std::string& to_table) {
  def_.joins_.push_back(JoinEdge{from_table, from_attr, to_table});
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::GroupBy(const std::string& table,
                                          const std::string& attr,
                                          const std::string& output_name) {
  def_.outputs_.push_back(OutputItem::GroupBy(
      AttributeRef{table, attr},
      output_name.empty() ? attr : output_name));
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::AddAggregate(
    AggFn fn, const std::string& table, const std::string& attr,
    bool distinct, const std::string& output_name) {
  AggregateSpec spec;
  spec.fn = fn;
  spec.input = AttributeRef{table, attr};
  spec.distinct = distinct;
  spec.output_name = output_name;
  def_.outputs_.push_back(OutputItem::Aggregate(std::move(spec)));
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::CountStar(const std::string& output_name) {
  return AddAggregate(AggFn::kCountStar, "", "", false, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::Count(const std::string& table,
                                        const std::string& attr,
                                        const std::string& output_name) {
  return AddAggregate(AggFn::kCount, table, attr, false, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::CountDistinct(
    const std::string& table, const std::string& attr,
    const std::string& output_name) {
  return AddAggregate(AggFn::kCount, table, attr, true, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::Sum(const std::string& table,
                                      const std::string& attr,
                                      const std::string& output_name) {
  return AddAggregate(AggFn::kSum, table, attr, false, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::SumDistinct(const std::string& table,
                                              const std::string& attr,
                                              const std::string& output_name) {
  return AddAggregate(AggFn::kSum, table, attr, true, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::Avg(const std::string& table,
                                      const std::string& attr,
                                      const std::string& output_name) {
  return AddAggregate(AggFn::kAvg, table, attr, false, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::Min(const std::string& table,
                                      const std::string& attr,
                                      const std::string& output_name) {
  return AddAggregate(AggFn::kMin, table, attr, false, output_name);
}
GpsjViewBuilder& GpsjViewBuilder::Max(const std::string& table,
                                      const std::string& attr,
                                      const std::string& output_name) {
  return AddAggregate(AggFn::kMax, table, attr, false, output_name);
}

GpsjViewBuilder& GpsjViewBuilder::Aggregate(AggregateSpec spec) {
  def_.outputs_.push_back(OutputItem::Aggregate(std::move(spec)));
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::Having(const std::string& output_name,
                                         CompareOp op, Value constant) {
  def_.having_.push_back(
      HavingCondition{output_name, op, std::move(constant)});
  return *this;
}

namespace {

// Registers `derived` on `table`, ignoring an exact re-declaration
// (the SQL parser re-derives expressions repeated in HAVING).
void AddDerived(std::map<std::string, std::vector<DerivedAttr>>* derived_map,
                const std::string& table, DerivedAttr derived) {
  std::vector<DerivedAttr>& list = (*derived_map)[table];
  for (const DerivedAttr& existing : list) {
    if (existing == derived) return;
  }
  list.push_back(std::move(derived));
}

}  // namespace

GpsjViewBuilder& GpsjViewBuilder::Derive(const std::string& table,
                                         const std::string& name,
                                         const std::string& lhs,
                                         DerivedAttr::Op op,
                                         const std::string& rhs_attr) {
  DerivedAttr derived;
  derived.name = name;
  derived.lhs = lhs;
  derived.op = op;
  derived.rhs_attr = rhs_attr;
  AddDerived(&def_.derived_, table, std::move(derived));
  return *this;
}

GpsjViewBuilder& GpsjViewBuilder::DeriveConst(const std::string& table,
                                              const std::string& name,
                                              const std::string& lhs,
                                              DerivedAttr::Op op,
                                              Value constant) {
  DerivedAttr derived;
  derived.name = name;
  derived.lhs = lhs;
  derived.op = op;
  derived.rhs_constant = std::move(constant);
  AddDerived(&def_.derived_, table, std::move(derived));
  return *this;
}

namespace {

// Resolves `ref` against a view table's schema in `catalog`, including
// the view's derived attributes.
Result<ValueType> ResolveAttr(const Catalog& catalog,
                              const GpsjViewDef& def,
                              const AttributeRef& ref) {
  if (!def.ReferencesTable(ref.table)) {
    return InvalidArgumentError(StrCat("view '", def.name(),
                                       "' does not reference table '",
                                       ref.table, "'"));
  }
  return def.AttrType(catalog, ref);
}

}  // namespace

Result<GpsjViewDef> GpsjViewBuilder::Build(const Catalog& catalog) const {
  const GpsjViewDef& def = def_;
  if (def.tables().empty()) {
    return InvalidArgumentError(
        StrCat("view '", def.name(), "' references no tables"));
  }
  // Tables exist and are distinct (no self-joins, paper Sec. 3.3).
  std::set<std::string> table_set;
  for (const std::string& table : def.tables()) {
    if (!catalog.HasTable(table)) {
      return NotFoundError(StrCat("table '", table, "' not in catalog"));
    }
    if (!table_set.insert(table).second) {
      return InvalidArgumentError(
          StrCat("table '", table, "' referenced twice; self-joins are "
                 "outside the supported GPSJ class"));
    }
  }

  // Derived attributes: operands exist and are numeric; names are fresh.
  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(table));
    std::set<std::string> derived_names;
    for (const DerivedAttr& d : def.DerivedAttrsOf(table)) {
      if (t->schema().Contains(d.name) ||
          !derived_names.insert(d.name).second) {
        return AlreadyExistsError(
            StrCat("derived attribute '", d.name, "' collides with an "
                   "existing attribute of '", table, "'"));
      }
      auto check_operand = [&](const std::string& attr) -> Status {
        std::optional<size_t> idx = t->schema().IndexOf(attr);
        if (!idx.has_value()) {
          return NotFoundError(StrCat("derived attribute ", d.ToString(),
                                      ": operand '", attr,
                                      "' not in '", table, "'"));
        }
        if (t->schema().attribute(*idx).type == ValueType::kString) {
          return InvalidArgumentError(
              StrCat("derived attribute ", d.ToString(),
                     ": operand '", attr, "' is not numeric"));
        }
        return Status::Ok();
      };
      MD_RETURN_IF_ERROR(check_operand(d.lhs));
      if (!d.rhs_attr.empty()) {
        MD_RETURN_IF_ERROR(check_operand(d.rhs_attr));
      } else if (!d.rhs_constant.IsNumeric()) {
        return InvalidArgumentError(
            StrCat("derived attribute ", d.ToString(),
                   ": constant operand must be numeric"));
      }
    }
  }
  // Derived attributes may not appear in selection or join conditions
  // (they are computed after selection).
  for (const auto& [table, conjunction] : def_.local_conditions_) {
    for (const Condition& c : conjunction.conditions()) {
      if (def.FindDerived(table, c.attr) != nullptr) {
        return InvalidArgumentError(
            StrCat("condition '", c.ToString(), "' references derived "
                   "attribute '", c.attr, "'; conditions apply before "
                   "derivation"));
      }
    }
  }
  for (const JoinEdge& edge : def.joins()) {
    if (def.FindDerived(edge.from_table, edge.from_attr) != nullptr) {
      return InvalidArgumentError(
          StrCat("join ", edge.ToString(),
                 " uses a derived attribute; joins are on base keys"));
    }
  }
  // Tables named in derivations must be in the FROM list.
  for (const auto& [table, derived] : def_.derived_) {
    (void)derived;
    if (table_set.count(table) == 0) {
      return InvalidArgumentError(
          StrCat("derived attribute declared on table '", table,
                 "' which is not in the view's FROM list"));
    }
  }

  // Local conditions type-check against their table's schema.
  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(table));
    MD_RETURN_IF_ERROR(def.LocalConditions(table).Validate(t->schema()));
  }
  // Conditions must not name tables outside the FROM list.
  for (const auto& [table, conjunction] : def_.local_conditions_) {
    (void)conjunction;
    if (table_set.count(table) == 0) {
      return InvalidArgumentError(StrCat(
          "local condition references table '", table,
          "' which is not in the view's FROM list"));
    }
  }

  // Join conditions: both sides referenced; from_attr exists; target is
  // keyed and types match.
  for (const JoinEdge& edge : def.joins()) {
    if (table_set.count(edge.from_table) == 0 ||
        table_set.count(edge.to_table) == 0) {
      return InvalidArgumentError(StrCat(
          "join ", edge.ToString(), " references a table outside the view"));
    }
    MD_ASSIGN_OR_RETURN(
        ValueType from_type,
        ResolveAttr(catalog, def,
                    AttributeRef{edge.from_table, edge.from_attr}));
    MD_ASSIGN_OR_RETURN(std::string key, catalog.KeyAttr(edge.to_table));
    MD_ASSIGN_OR_RETURN(ValueType key_type,
                        ResolveAttr(catalog, def,
                                    AttributeRef{edge.to_table, key}));
    if (from_type != key_type) {
      return InvalidArgumentError(
          StrCat("join ", edge.ToString(), " compares ",
                 ValueTypeName(from_type), " with ",
                 ValueTypeName(key_type)));
    }
  }

  // Output items resolve; output names unique; aggregates well-typed;
  // no superfluous aggregates (paper Sec. 2.1 assumption).
  if (def.outputs().empty()) {
    return InvalidArgumentError(
        StrCat("view '", def.name(), "' projects nothing"));
  }
  std::set<std::string> output_names;
  std::set<std::pair<std::string, std::string>> group_by_set;
  for (const OutputItem& item : def.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      group_by_set.emplace(item.attr.table, item.attr.attr);
    }
  }
  for (const OutputItem& item : def.outputs()) {
    if (item.output_name.empty()) {
      return InvalidArgumentError("output item lacks a name");
    }
    if (!output_names.insert(item.output_name).second) {
      return AlreadyExistsError(
          StrCat("duplicate output name '", item.output_name, "'"));
    }
    if (item.kind == OutputItem::Kind::kGroupBy) {
      MD_RETURN_IF_ERROR(ResolveAttr(catalog, def, item.attr).status());
      continue;
    }
    const AggregateSpec& agg = item.agg;
    if (agg.fn == AggFn::kCountStar) continue;
    MD_ASSIGN_OR_RETURN(ValueType input_type,
                        ResolveAttr(catalog, def, agg.input));
    if ((agg.fn == AggFn::kSum || agg.fn == AggFn::kAvg) &&
        input_type == ValueType::kString) {
      return InvalidArgumentError(
          StrCat(agg.ToString(), " aggregates a string attribute"));
    }
    if (group_by_set.count({agg.input.table, agg.input.attr}) > 0) {
      return InvalidArgumentError(StrCat(
          "superfluous aggregate ", agg.ToString(), ": its input is a "
          "group-by attribute, so f(a) can be replaced by a (the paper "
          "assumes no superfluous aggregates)"));
    }
  }

  // HAVING conditions: resolve output positions and check types.
  GpsjViewDef validated = def_;
  validated.having_positions_.clear();
  for (const HavingCondition& h : validated.having_) {
    if (h.constant.is_null()) {
      return InvalidArgumentError(
          StrCat("HAVING ", h.ToString(), " compares against NULL"));
    }
    bool found = false;
    for (size_t i = 0; i < validated.outputs_.size(); ++i) {
      const OutputItem& item = validated.outputs_[i];
      if (item.output_name != h.output_name) continue;
      // Type compatibility: determine the output's value type.
      ValueType out_type = ValueType::kDouble;
      if (item.kind == OutputItem::Kind::kGroupBy) {
        MD_ASSIGN_OR_RETURN(out_type,
                            ResolveAttr(catalog, def, item.attr));
      } else if (item.agg.fn == AggFn::kCountStar ||
                 item.agg.fn == AggFn::kCount) {
        out_type = ValueType::kInt64;
      } else if (item.agg.fn == AggFn::kAvg) {
        out_type = ValueType::kDouble;
      } else {
        MD_ASSIGN_OR_RETURN(out_type,
                            ResolveAttr(catalog, def, item.agg.input));
      }
      const bool out_numeric = out_type == ValueType::kInt64 ||
                               out_type == ValueType::kDouble;
      const bool constant_numeric = h.constant.IsNumeric();
      if (out_numeric != constant_numeric) {
        return InvalidArgumentError(
            StrCat("HAVING ", h.ToString(), " compares ",
                   ValueTypeName(out_type), " with ",
                   ValueTypeName(h.constant.type())));
      }
      validated.having_positions_.push_back(i);
      found = true;
      break;
    }
    if (!found) {
      return NotFoundError(StrCat("HAVING references unknown output '",
                                  h.output_name, "'"));
    }
  }

  return validated;
}

}  // namespace mindetail
