#include "gpsj/aggregate.h"

#include "common/strings.h"

namespace mindetail {

std::string AggregateSpec::ToString() const {
  std::string expr;
  if (fn == AggFn::kCountStar) {
    expr = "COUNT(*)";
  } else {
    expr = StrCat(AggFnName(fn), "(", distinct ? "DISTINCT " : "",
                  input.ToString(), ")");
  }
  return StrCat(expr, " AS ", output_name);
}

bool IsSmaUnderInsert(AggFn fn, bool distinct) {
  if (distinct) return false;
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
    case AggFn::kSum:
    case AggFn::kMin:
    case AggFn::kMax:
      return true;
    case AggFn::kAvg:
      return false;
  }
  return false;
}

bool IsSmaUnderDelete(AggFn fn, bool distinct) {
  if (distinct) return false;
  return fn == AggFn::kCountStar || fn == AggFn::kCount;
}

bool IsSmasUnderDelete(AggFn fn, bool distinct) {
  if (distinct) return false;
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
    case AggFn::kSum:  // With COUNT included.
    case AggFn::kAvg:  // With COUNT and SUM included.
      return true;
    case AggFn::kMin:
    case AggFn::kMax:
      return false;
  }
  return false;
}

bool IsCsmasFn(AggFn fn, bool distinct) {
  if (distinct) return false;
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
    case AggFn::kSum:
    case AggFn::kAvg:
      return true;
    case AggFn::kMin:
    case AggFn::kMax:
      return false;
  }
  return false;
}

bool IsCsmas(const AggregateSpec& spec) {
  return IsCsmasFn(spec.fn, spec.distinct);
}

bool IsCsmasUnderInsertOnly(const AggregateSpec& spec) {
  if (IsCsmas(spec)) return true;
  if (spec.distinct) return false;
  return spec.fn == AggFn::kMin || spec.fn == AggFn::kMax;
}

std::string SumColumnName(const std::string& attr_name) {
  return StrCat("sum_", attr_name);
}

std::string ShadowSumColumn(const std::string& output_name) {
  return StrCat("__sum_", output_name);
}

std::vector<PhysicalAggregate> ReplacementSet(const AggregateSpec& spec,
                                              const std::string& attr_name) {
  std::vector<PhysicalAggregate> out;
  if (!IsCsmas(spec)) {
    // Non-CSMAS aggregates are not replaced (Table 2); the caller keeps
    // the raw attribute instead.
    PhysicalAggregate same;
    same.fn = spec.fn;
    same.input_attr = attr_name;
    same.distinct = spec.distinct;
    same.output_name = spec.output_name;
    out.push_back(std::move(same));
    return out;
  }
  switch (spec.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      out.push_back(PhysicalAggregate{AggFn::kCountStar, "", false,
                                      kCountStarColumn});
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      out.push_back(PhysicalAggregate{AggFn::kSum, attr_name, false,
                                      SumColumnName(attr_name)});
      out.push_back(PhysicalAggregate{AggFn::kCountStar, "", false,
                                      kCountStarColumn});
      break;
    case AggFn::kMin:
    case AggFn::kMax:
      break;  // Unreachable: filtered by IsCsmas above.
  }
  return out;
}

std::string Table1Row(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "COUNT     | SMA: +/-  | SMAS: +/-";
    case AggFn::kSum:
      return "SUM       | SMA: +    | SMAS: +/-, if COUNT is included";
    case AggFn::kAvg:
      return "AVG       | not a SMA | SMAS: +/-, if COUNT and SUM are included";
    case AggFn::kMin:
    case AggFn::kMax:
      return "MAX/MIN   | SMA: +    | SMAS: +";
  }
  return "?";
}

std::string Table2Row(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "COUNT     | replaced by COUNT(*)       | CSMAS";
    case AggFn::kSum:
      return "SUM       | replaced by SUM, COUNT(*)  | CSMAS";
    case AggFn::kAvg:
      return "AVG       | replaced by SUM, COUNT(*)  | CSMAS";
    case AggFn::kMin:
    case AggFn::kMax:
      return "MAX/MIN   | not replaced               | non-CSMAS";
  }
  return "?";
}

}  // namespace mindetail
