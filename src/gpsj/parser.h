// A parser for the GPSJ SQL fragment (paper Sec. 2.1), so views can be
// declared exactly as the paper writes them:
//
//   CREATE VIEW product_sales AS
//   SELECT time.month, SUM(sale.price) AS TotalPrice,
//          COUNT(*) AS TotalCount,
//          COUNT(DISTINCT product.brand) AS DifferentBrands
//   FROM sale, time, product
//   WHERE time.year = 1997
//     AND sale.timeid = time.id
//     AND sale.productid = product.id
//   GROUP BY time.month
//
// Supported grammar (keywords case-insensitive):
//
//   statement   := CREATE VIEW ident AS select
//   select      := SELECT item ("," item)*
//                  FROM ident ("," ident)*
//                  [WHERE cond (AND cond)*]
//                  [GROUP BY qualattr ("," qualattr)*]
//                  [HAVING havingref op literal (AND …)*]
//   havingref   := ident            (an output alias)
//                | qualattr         (a selected group-by attribute)
//                | aggregate        (must also appear in SELECT)
//   item        := qualattr [AS ident]
//                | fn "(" [DISTINCT] qualattr ")" [AS ident]
//                | COUNT "(" "*" ")" [AS ident]
//   fn          := COUNT | SUM | AVG | MIN | MAX
//   cond        := qualattr op literal      (local condition)
//                | qualattr "=" qualattr    (join condition)
//   op          := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//   literal     := integer | float | "'" chars "'"
//   qualattr    := ident "." ident
//
// Join conditions are oriented by the catalog: the side naming a
// table's primary key becomes the join target (paper: every join is
// Rᵢ.b = Rⱼ.a with a the key of Rⱼ). Plain SELECT items must appear in
// GROUP BY and vice versa (generalized projection). Aggregates without
// AS get names like "sum_price" / "cnt".

#ifndef MINDETAIL_GPSJ_PARSER_H_
#define MINDETAIL_GPSJ_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "gpsj/view_def.h"

namespace mindetail {

// Parses one CREATE VIEW statement and validates it against `catalog`.
// Errors carry 1-based line:column positions.
Result<GpsjViewDef> ParseGpsjView(std::string_view sql,
                                  const Catalog& catalog);

}  // namespace mindetail

#endif  // MINDETAIL_GPSJ_PARSER_H_
