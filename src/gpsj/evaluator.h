// Direct evaluation of GPSJ views over base tables.
//
// This is the semantics-defining implementation: V = Π_A σ_S (R₁ ⋈ … Rₙ)
// computed bottom-up with physical operators. The maintenance engine and
// all tests use it as the correctness oracle, and the full-replication
// baseline uses it for recomputation.

#ifndef MINDETAIL_GPSJ_EVALUATOR_H_
#define MINDETAIL_GPSJ_EVALUATOR_H_

#include <map>
#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"

namespace mindetail {

// Evaluates `def` over explicitly provided tables (one per referenced
// base table, with the base-table schema). Output columns follow the
// view's output order and names; rows are sorted for determinism.
// A non-null `cancel` is polled between join steps; a tripped token
// aborts the evaluation with kCancelled/kDeadlineExceeded.
Result<Table> EvaluateGpsjOver(
    const std::map<std::string, const Table*>& tables,
    const GpsjViewDef& def, const CancellationToken* cancel = nullptr);

// Convenience: evaluates over the base tables in `catalog`.
Result<Table> EvaluateGpsj(const Catalog& catalog, const GpsjViewDef& def,
                           const CancellationToken* cancel = nullptr);

// The join of all referenced tables after local selections, with
// qualified column names ("sale.price"), *before* generalized
// projection. Exposed for the PSJ baseline and for tests.
Result<Table> EvaluateJoinOver(
    const std::map<std::string, const Table*>& tables,
    const GpsjViewDef& def, const CancellationToken* cancel = nullptr);

}  // namespace mindetail

#endif  // MINDETAIL_GPSJ_EVALUATOR_H_
