// GPSJ view definitions (paper Sec. 2.1).
//
// A GPSJ view is  V = Π_A σ_S (R₁ ⋈_{C₁} R₂ ⋈_{C₂} … ⋈_{Cₙ₋₁} Rₙ)
// where Π_A is a generalized projection (group-by attributes plus
// aggregates), S is a conjunction of local selection conditions, and
// every join condition Cᵢ is Rᵢ.b = Rⱼ.a with `a` the key of Rⱼ.

#ifndef MINDETAIL_GPSJ_VIEW_DEF_H_
#define MINDETAIL_GPSJ_VIEW_DEF_H_

#include <map>
#include <string>
#include <vector>

#include "gpsj/aggregate.h"
#include "relational/catalog.h"
#include "relational/predicate.h"

namespace mindetail {

// A join condition Rᵢ.b = Rⱼ.a where a is the key of Rⱼ; in the extended
// join graph this is the directed edge e(Rᵢ, Rⱼ).
struct JoinEdge {
  std::string from_table;  // Rᵢ
  std::string from_attr;   // b
  std::string to_table;    // Rⱼ (always joined on its primary key)

  // e.g. "sale.timeid = time.id" (key name filled by the caller).
  std::string ToString() const {
    return from_table + "." + from_attr + " = " + to_table + ".<key>";
  }

  friend bool operator==(const JoinEdge& a, const JoinEdge& b) {
    return a.from_table == b.from_table && a.from_attr == b.from_attr &&
           a.to_table == b.to_table;
  }
};

// One column of V's output: a group-by attribute or an aggregate.
struct OutputItem {
  enum class Kind { kGroupBy, kAggregate };

  Kind kind = Kind::kGroupBy;
  AttributeRef attr;  // Valid when kind == kGroupBy.
  AggregateSpec agg;  // Valid when kind == kAggregate.
  std::string output_name;

  static OutputItem GroupBy(AttributeRef ref, std::string output_name);
  static OutputItem Aggregate(AggregateSpec spec);

  std::string ToString() const;
};

// A derived attribute (the paper's Sec. 4 "general expressions in the
// select clause", in the arithmetic-over-one-table form): a per-row
// expression `lhs op rhs` where both operands are numeric attributes of
// the same table, or the right side is a numeric constant. A derived
// attribute behaves like a real attribute of its table everywhere
// downstream — it can feed aggregates or group-bys, is carried through
// local reduction, and compresses like any other column. It cannot be
// used in selection or join conditions.
struct DerivedAttr {
  enum class Op { kAdd, kSub, kMul };

  std::string name;
  std::string lhs;       // A base attribute of the table.
  Op op = Op::kMul;
  std::string rhs_attr;  // Base attribute; empty when rhs_constant set.
  Value rhs_constant;    // Numeric constant; used iff rhs_attr is empty.

  // e.g. "revenue = price * qty".
  std::string ToString() const;

  // Evaluates over resolved operand values. NULL operands propagate.
  Value Eval(const Value& lhs_value, const Value& rhs_value) const;

  friend bool operator==(const DerivedAttr& a, const DerivedAttr& b) {
    return a.name == b.name && a.lhs == b.lhs && a.op == b.op &&
           a.rhs_attr == b.rhs_attr &&
           a.rhs_constant.Compare(b.rhs_constant) == 0;
  }
};

// A restriction on groups (HAVING clause — the paper's Sec. 4 noted
// extension): `output_name op constant` over one of the view's output
// columns. Groups failing the conjunction are withheld from the view's
// contents, but their state is still maintained — a group may
// re-qualify after later changes.
struct HavingCondition {
  std::string output_name;
  CompareOp op = CompareOp::kGt;
  Value constant;

  std::string ToString() const;
};

// An immutable, validated GPSJ view definition. Construct through
// GpsjViewBuilder (builder.h), which performs all validation.
class GpsjViewDef {
 public:
  GpsjViewDef() = default;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& tables() const { return tables_; }
  const std::vector<OutputItem>& outputs() const { return outputs_; }
  const std::vector<JoinEdge>& joins() const { return joins_; }
  const std::vector<HavingCondition>& having() const { return having_; }

  // True iff `row` (shaped as this view's outputs) passes every HAVING
  // condition.
  bool PassesHaving(const Tuple& row) const;

  // Derived attributes declared for `table` (empty if none).
  const std::vector<DerivedAttr>& DerivedAttrsOf(
      const std::string& table) const;
  // The derived attribute `attr` of `table`, or nullptr.
  const DerivedAttr* FindDerived(const std::string& table,
                                 const std::string& attr) const;

  // The value type of `ref` under this view: a derived attribute's
  // computed type (INT64 if both operands are INT64, else DOUBLE) or
  // the base-table column type.
  Result<ValueType> AttrType(const Catalog& catalog,
                             const AttributeRef& ref) const;

  // Appends the derived columns of `table` to `input`, which must have
  // the base-table schema (post-selection). Returns `input` unchanged
  // when the table has no derived attributes.
  Result<Table> AppendDerivedColumns(const std::string& table,
                                     Table input) const;

  // The local selection conjunction for `table` (empty/TRUE if none).
  const Conjunction& LocalConditions(const std::string& table) const;

  bool ReferencesTable(const std::string& table) const;

  // Group-by attributes, in output order.
  std::vector<AttributeRef> GroupByAttrs() const;
  // Aggregates, in output order.
  std::vector<AggregateSpec> Aggregates() const;

  // Attributes of `table` that are *preserved* in V — appearing in A as
  // group-by attributes or inside aggregates (paper Sec. 2.1).
  std::vector<std::string> PreservedAttrs(const std::string& table) const;

  // Attributes of `table` involved in join conditions: its `from_attr`s
  // plus its key when some other table joins to it.
  std::vector<std::string> JoinAttrs(const std::string& table,
                                     const Catalog& catalog) const;

  // True iff some attribute of `table` is used in a non-CSMAS aggregate
  // (MIN/MAX or any DISTINCT aggregate) — blocks auxiliary-view
  // elimination (paper Sec. 3.3) and duplicate compression of that
  // attribute (Algorithm 3.1).
  bool TableHasNonCsmasAttr(const std::string& table) const;

  // True iff `table` contributes a group-by attribute ("g" annotation,
  // Definition 2).
  bool TableHasGroupByAttr(const std::string& table) const;

  // True iff the key of `table` is among the group-by attributes
  // ("k" annotation, Definition 2).
  bool TableKeyInGroupBy(const std::string& table,
                         const Catalog& catalog) const;

  // A readable CREATE VIEW rendering in the paper's SQL style.
  std::string ToSqlString() const;

  // True iff every referenced base table is flagged append-only in the
  // catalog — the "old detail data" setting of paper Sec. 4, in which
  // the relaxed (insert-only) CSMA classification applies.
  bool IsInsertOnly(const Catalog& catalog) const;

  // As TableHasNonCsmasAttr, but under the classification effective for
  // this view: the relaxed insert-only classification when
  // IsInsertOnly(catalog), the standard one otherwise.
  bool TableHasEffectiveNonCsmasAttr(const std::string& table,
                                     const Catalog& catalog) const;

 private:
  friend class GpsjViewBuilder;

  std::string name_;
  std::vector<std::string> tables_;
  std::vector<OutputItem> outputs_;
  std::map<std::string, Conjunction> local_conditions_;
  std::vector<JoinEdge> joins_;
  std::vector<HavingCondition> having_;
  // Cached output positions for PassesHaving (parallel to having_).
  std::vector<size_t> having_positions_;
  std::map<std::string, std::vector<DerivedAttr>> derived_;
};

}  // namespace mindetail

#endif  // MINDETAIL_GPSJ_VIEW_DEF_H_
