// Fluent construction of GPSJ view definitions.
//
// Example — the paper's Sec. 1.1 `product_sales` view:
//
//   GpsjViewBuilder b("product_sales");
//   b.From("sale").From("time").From("product")
//    .Where("time", "year", CompareOp::kEq, 1997)
//    .Join("sale", "timeid", "time")
//    .Join("sale", "productid", "product")
//    .GroupBy("time", "month")
//    .Sum("sale", "price", "TotalPrice")
//    .CountStar("TotalCount")
//    .CountDistinct("product", "brand", "DifferentBrands");
//   Result<GpsjViewDef> view = b.Build(catalog);
//
// Build() validates everything against the catalog: table existence,
// attribute resolution and typing, keyed join targets, local-condition
// types, and the paper's well-formedness assumptions (Sec. 2.1): no
// superfluous aggregates and SUM/AVG over numeric attributes.

#ifndef MINDETAIL_GPSJ_BUILDER_H_
#define MINDETAIL_GPSJ_BUILDER_H_

#include <string>

#include "common/result.h"
#include "gpsj/view_def.h"

namespace mindetail {

class GpsjViewBuilder {
 public:
  explicit GpsjViewBuilder(std::string view_name);

  // Adds a base table to the FROM list.
  GpsjViewBuilder& From(const std::string& table);

  // Adds a local selection condition `table.attr op constant`.
  GpsjViewBuilder& Where(const std::string& table, const std::string& attr,
                         CompareOp op, Value constant);

  // Adds a join condition `from_table.from_attr = to_table.<key>`.
  GpsjViewBuilder& Join(const std::string& from_table,
                        const std::string& from_attr,
                        const std::string& to_table);

  // Adds a group-by attribute (also projected, with optional output
  // name defaulting to the attribute name).
  GpsjViewBuilder& GroupBy(const std::string& table, const std::string& attr,
                           const std::string& output_name = "");

  // Aggregate outputs.
  GpsjViewBuilder& CountStar(const std::string& output_name);
  GpsjViewBuilder& Count(const std::string& table, const std::string& attr,
                         const std::string& output_name);
  GpsjViewBuilder& CountDistinct(const std::string& table,
                                 const std::string& attr,
                                 const std::string& output_name);
  GpsjViewBuilder& Sum(const std::string& table, const std::string& attr,
                       const std::string& output_name);
  GpsjViewBuilder& SumDistinct(const std::string& table,
                               const std::string& attr,
                               const std::string& output_name);
  GpsjViewBuilder& Avg(const std::string& table, const std::string& attr,
                       const std::string& output_name);
  GpsjViewBuilder& Min(const std::string& table, const std::string& attr,
                       const std::string& output_name);
  GpsjViewBuilder& Max(const std::string& table, const std::string& attr,
                       const std::string& output_name);

  // Adds a pre-built aggregate spec (used when deriving internal view
  // variants from an existing definition).
  GpsjViewBuilder& Aggregate(AggregateSpec spec);

  // Adds a restriction on groups: `output_name op constant` over one of
  // the view's output columns (HAVING). The referenced output must
  // exist at Build() time.
  GpsjViewBuilder& Having(const std::string& output_name, CompareOp op,
                          Value constant);

  // Declares a derived attribute `name` = `lhs op rhs_attr` on `table`
  // (both operands numeric attributes of that table). The derived
  // attribute can then feed aggregates and group-bys like any base
  // attribute: e.g. Derive("sale", "revenue", "price",
  // DerivedAttr::Op::kMul, "qty") then Sum("sale", "revenue", ...).
  GpsjViewBuilder& Derive(const std::string& table, const std::string& name,
                          const std::string& lhs, DerivedAttr::Op op,
                          const std::string& rhs_attr);
  // As Derive, with a numeric constant on the right.
  GpsjViewBuilder& DeriveConst(const std::string& table,
                               const std::string& name,
                               const std::string& lhs, DerivedAttr::Op op,
                               Value constant);

  // Validates the accumulated definition against `catalog`.
  Result<GpsjViewDef> Build(const Catalog& catalog) const;

 private:
  GpsjViewBuilder& AddAggregate(AggFn fn, const std::string& table,
                                const std::string& attr, bool distinct,
                                const std::string& output_name);

  GpsjViewDef def_;
};

}  // namespace mindetail

#endif  // MINDETAIL_GPSJ_BUILDER_H_
