#include "gpsj/view_def.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

OutputItem OutputItem::GroupBy(AttributeRef ref, std::string output_name) {
  OutputItem item;
  item.kind = Kind::kGroupBy;
  item.attr = std::move(ref);
  item.output_name = std::move(output_name);
  return item;
}

OutputItem OutputItem::Aggregate(AggregateSpec spec) {
  OutputItem item;
  item.kind = Kind::kAggregate;
  item.output_name = spec.output_name;
  item.agg = std::move(spec);
  return item;
}

std::string OutputItem::ToString() const {
  if (kind == Kind::kGroupBy) {
    if (output_name == attr.attr) return attr.ToString();
    return StrCat(attr.ToString(), " AS ", output_name);
  }
  return agg.ToString();
}

const Conjunction& GpsjViewDef::LocalConditions(
    const std::string& table) const {
  static const Conjunction kEmpty;
  auto it = local_conditions_.find(table);
  return it == local_conditions_.end() ? kEmpty : it->second;
}

bool GpsjViewDef::ReferencesTable(const std::string& table) const {
  return std::find(tables_.begin(), tables_.end(), table) != tables_.end();
}

std::vector<AttributeRef> GpsjViewDef::GroupByAttrs() const {
  std::vector<AttributeRef> out;
  for (const OutputItem& item : outputs_) {
    if (item.kind == OutputItem::Kind::kGroupBy) out.push_back(item.attr);
  }
  return out;
}

std::vector<AggregateSpec> GpsjViewDef::Aggregates() const {
  std::vector<AggregateSpec> out;
  for (const OutputItem& item : outputs_) {
    if (item.kind == OutputItem::Kind::kAggregate) out.push_back(item.agg);
  }
  return out;
}

std::vector<std::string> GpsjViewDef::PreservedAttrs(
    const std::string& table) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const OutputItem& item : outputs_) {
    const AttributeRef* ref = nullptr;
    if (item.kind == OutputItem::Kind::kGroupBy) {
      ref = &item.attr;
    } else if (item.agg.fn != AggFn::kCountStar) {
      ref = &item.agg.input;
    }
    if (ref != nullptr && ref->table == table && seen.insert(ref->attr).second) {
      out.push_back(ref->attr);
    }
  }
  return out;
}

std::vector<std::string> GpsjViewDef::JoinAttrs(const std::string& table,
                                                const Catalog& catalog) const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const JoinEdge& edge : joins_) {
    if (edge.from_table == table && seen.insert(edge.from_attr).second) {
      out.push_back(edge.from_attr);
    }
    if (edge.to_table == table) {
      Result<std::string> key = catalog.KeyAttr(table);
      MD_CHECK(key.ok());  // Validated at build time.
      if (seen.insert(*key).second) out.push_back(*key);
    }
  }
  return out;
}

bool GpsjViewDef::TableHasNonCsmasAttr(const std::string& table) const {
  for (const OutputItem& item : outputs_) {
    if (item.kind != OutputItem::Kind::kAggregate) continue;
    const AggregateSpec& agg = item.agg;
    if (agg.fn == AggFn::kCountStar) continue;
    if (agg.input.table == table && !IsCsmas(agg)) return true;
  }
  return false;
}

bool GpsjViewDef::TableHasGroupByAttr(const std::string& table) const {
  for (const OutputItem& item : outputs_) {
    if (item.kind == OutputItem::Kind::kGroupBy && item.attr.table == table) {
      return true;
    }
  }
  return false;
}

bool GpsjViewDef::TableKeyInGroupBy(const std::string& table,
                                    const Catalog& catalog) const {
  Result<std::string> key = catalog.KeyAttr(table);
  if (!key.ok()) return false;
  for (const OutputItem& item : outputs_) {
    if (item.kind == OutputItem::Kind::kGroupBy &&
        item.attr.table == table && item.attr.attr == *key) {
      return true;
    }
  }
  return false;
}

namespace {

const char* DerivedOpName(DerivedAttr::Op op) {
  switch (op) {
    case DerivedAttr::Op::kAdd:
      return "+";
    case DerivedAttr::Op::kSub:
      return "-";
    case DerivedAttr::Op::kMul:
      return "*";
  }
  return "?";
}

}  // namespace

std::string DerivedAttr::ToString() const {
  return StrCat(name, " = ", lhs, " ", DerivedOpName(op), " ",
                rhs_attr.empty() ? rhs_constant.ToString() : rhs_attr);
}

Value DerivedAttr::Eval(const Value& lhs_value,
                        const Value& rhs_value) const {
  if (lhs_value.is_null() || rhs_value.is_null()) return Value();
  const bool both_int = lhs_value.type() == ValueType::kInt64 &&
                        rhs_value.type() == ValueType::kInt64;
  switch (op) {
    case Op::kAdd:
      return AddValues(lhs_value, rhs_value);
    case Op::kSub:
      return AddValues(lhs_value, NegateValue(rhs_value));
    case Op::kMul:
      if (both_int) {
        return Value(lhs_value.AsInt64() * rhs_value.AsInt64());
      }
      return Value(lhs_value.NumericAsDouble() *
                   rhs_value.NumericAsDouble());
  }
  return Value();
}

const std::vector<DerivedAttr>& GpsjViewDef::DerivedAttrsOf(
    const std::string& table) const {
  static const std::vector<DerivedAttr> kEmpty;
  auto it = derived_.find(table);
  return it == derived_.end() ? kEmpty : it->second;
}

const DerivedAttr* GpsjViewDef::FindDerived(const std::string& table,
                                            const std::string& attr) const {
  for (const DerivedAttr& d : DerivedAttrsOf(table)) {
    if (d.name == attr) return &d;
  }
  return nullptr;
}

Result<ValueType> GpsjViewDef::AttrType(const Catalog& catalog,
                                        const AttributeRef& ref) const {
  MD_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(ref.table));
  const DerivedAttr* derived = FindDerived(ref.table, ref.attr);
  if (derived != nullptr) {
    std::optional<size_t> lhs_idx = table->schema().IndexOf(derived->lhs);
    if (!lhs_idx.has_value()) {
      return NotFoundError(StrCat("derived operand '", derived->lhs,
                                  "' missing from '", ref.table, "'"));
    }
    ValueType rhs_type = ValueType::kInt64;
    if (derived->rhs_attr.empty()) {
      rhs_type = derived->rhs_constant.type();
    } else {
      std::optional<size_t> rhs_idx =
          table->schema().IndexOf(derived->rhs_attr);
      if (!rhs_idx.has_value()) {
        return NotFoundError(StrCat("derived operand '", derived->rhs_attr,
                                    "' missing from '", ref.table, "'"));
      }
      rhs_type = table->schema().attribute(*rhs_idx).type;
    }
    const ValueType lhs_type = table->schema().attribute(*lhs_idx).type;
    return lhs_type == ValueType::kInt64 && rhs_type == ValueType::kInt64
               ? ValueType::kInt64
               : ValueType::kDouble;
  }
  std::optional<size_t> idx = table->schema().IndexOf(ref.attr);
  if (!idx.has_value()) {
    return NotFoundError(
        StrCat("attribute ", ref.ToString(), " does not exist"));
  }
  return table->schema().attribute(*idx).type;
}

Result<Table> GpsjViewDef::AppendDerivedColumns(const std::string& table,
                                                Table input) const {
  const std::vector<DerivedAttr>& derived = DerivedAttrsOf(table);
  if (derived.empty()) return input;
  std::vector<Attribute> attrs = input.schema().attributes();
  struct Resolved {
    size_t lhs_idx;
    std::optional<size_t> rhs_idx;
    const DerivedAttr* def;
  };
  std::vector<Resolved> resolved;
  for (const DerivedAttr& d : derived) {
    // Idempotent: inputs that already carry the derived column (e.g.
    // PSJ detail tables, which store it) are left alone.
    if (input.schema().Contains(d.name)) continue;
    std::optional<size_t> lhs_idx = input.schema().IndexOf(d.lhs);
    std::optional<size_t> rhs_idx =
        d.rhs_attr.empty() ? std::nullopt
                           : input.schema().IndexOf(d.rhs_attr);
    if (!lhs_idx.has_value() ||
        (!d.rhs_attr.empty() && !rhs_idx.has_value())) {
      return NotFoundError(StrCat("derived attribute ", d.ToString(),
                                  " references missing columns of '",
                                  table, "'"));
    }
    // Determine the output type from the operand columns.
    const ValueType lhs_type = input.schema().attribute(*lhs_idx).type;
    const ValueType rhs_type =
        d.rhs_attr.empty() ? d.rhs_constant.type()
                           : input.schema().attribute(*rhs_idx).type;
    attrs.push_back(Attribute{
        d.name, lhs_type == ValueType::kInt64 &&
                        rhs_type == ValueType::kInt64
                    ? ValueType::kInt64
                    : ValueType::kDouble});
    resolved.push_back(Resolved{*lhs_idx, rhs_idx, &d});
  }
  Table out(input.name(), Schema(std::move(attrs)));
  out.set_allow_null(true);
  for (const Tuple& row : input.rows()) {
    Tuple extended = row;
    for (const Resolved& r : resolved) {
      const Value& rhs = r.rhs_idx.has_value() ? row[*r.rhs_idx]
                                               : r.def->rhs_constant;
      Value computed = r.def->Eval(row[r.lhs_idx], rhs);
      // Keep the declared column type stable: widen int results to
      // double when the column is DOUBLE (mixed-type operands).
      extended.push_back(std::move(computed));
    }
    MD_RETURN_IF_ERROR(out.Insert(std::move(extended)));
  }
  return out;
}

std::string HavingCondition::ToString() const {
  return StrCat(output_name, " ", CompareOpName(op), " ",
                constant.ToString());
}

bool GpsjViewDef::PassesHaving(const Tuple& row) const {
  for (size_t i = 0; i < having_.size(); ++i) {
    const size_t pos = having_positions_[i];
    MD_CHECK_LT(pos, row.size());
    if (row[pos].is_null()) return false;  // SQL: NULL fails HAVING.
    if (!EvalCompare(having_[i].op, row[pos], having_[i].constant)) {
      return false;
    }
  }
  return true;
}

bool GpsjViewDef::IsInsertOnly(const Catalog& catalog) const {
  for (const std::string& table : tables_) {
    if (!catalog.IsAppendOnly(table)) return false;
  }
  return !tables_.empty();
}

bool GpsjViewDef::TableHasEffectiveNonCsmasAttr(
    const std::string& table, const Catalog& catalog) const {
  const bool insert_only = IsInsertOnly(catalog);
  for (const OutputItem& item : outputs_) {
    if (item.kind != OutputItem::Kind::kAggregate) continue;
    const AggregateSpec& agg = item.agg;
    if (agg.fn == AggFn::kCountStar) continue;
    if (agg.input.table != table) continue;
    const bool maintainable =
        insert_only ? IsCsmasUnderInsertOnly(agg) : IsCsmas(agg);
    if (!maintainable) return true;
  }
  return false;
}

std::string GpsjViewDef::ToSqlString() const {
  std::vector<std::string> select_items;
  std::vector<std::string> group_items;
  for (const OutputItem& item : outputs_) {
    select_items.push_back(item.ToString());
    if (item.kind == OutputItem::Kind::kGroupBy) {
      group_items.push_back(item.attr.ToString());
    }
  }

  std::vector<std::string> where_items;
  for (const auto& [table, conjunction] : local_conditions_) {
    for (const Condition& c : conjunction.conditions()) {
      where_items.push_back(StrCat(table, ".", c.ToString()));
    }
  }
  for (const JoinEdge& edge : joins_) {
    where_items.push_back(StrCat(edge.from_table, ".", edge.from_attr, " = ",
                                 edge.to_table, ".<key>"));
  }

  std::string sql = StrCat("CREATE VIEW ", name_, " AS\nSELECT ",
                           Join(select_items, ",\n       "), "\nFROM ",
                           Join(tables_, ", "));
  if (!where_items.empty()) {
    sql += StrCat("\nWHERE ", Join(where_items, "\n  AND "));
  }
  if (!group_items.empty()) {
    sql += StrCat("\nGROUP BY ", Join(group_items, ", "));
  }
  if (!having_.empty()) {
    std::vector<std::string> having_items;
    having_items.reserve(having_.size());
    for (const HavingCondition& h : having_) {
      having_items.push_back(h.ToString());
    }
    sql += StrCat("\nHAVING ", Join(having_items, " AND "));
  }
  return sql;
}

}  // namespace mindetail
