#include "gpsj/evaluator.h"

#include <set>

#include "common/strings.h"
#include "relational/ops.h"

namespace mindetail {
namespace {

// Renames and reorders `input`'s columns according to the view's output
// items: group-by columns are looked up by their qualified name,
// aggregates by their output name.
Result<Table> ShapeOutput(const Table& input, const GpsjViewDef& def) {
  std::vector<size_t> indexes;
  std::vector<Attribute> attrs;
  for (const OutputItem& item : def.outputs()) {
    const std::string source_name =
        item.kind == OutputItem::Kind::kGroupBy ? item.attr.ToString()
                                                : item.output_name;
    std::optional<size_t> idx = input.schema().IndexOf(source_name);
    if (!idx.has_value()) {
      return InternalError(
          StrCat("evaluator lost column '", source_name, "'"));
    }
    indexes.push_back(*idx);
    attrs.push_back(
        Attribute{item.output_name, input.schema().attribute(*idx).type});
  }
  Table out(def.name(), Schema(std::move(attrs)));
  out.set_allow_null(true);
  for (const Tuple& row : input.rows()) {
    Tuple shaped;
    shaped.reserve(indexes.size());
    for (size_t idx : indexes) shaped.push_back(row[idx]);
    MD_RETURN_IF_ERROR(out.Insert(std::move(shaped)));
  }
  return out;
}

}  // namespace

Result<Table> EvaluateJoinOver(
    const std::map<std::string, const Table*>& tables,
    const GpsjViewDef& def, const CancellationToken* cancel) {
  // Locally select and qualify every referenced table.
  std::map<std::string, Table> prepared;
  for (const std::string& name : def.tables()) {
    if (cancel != nullptr) MD_RETURN_IF_ERROR(cancel->Check());
    auto it = tables.find(name);
    if (it == tables.end() || it->second == nullptr) {
      return NotFoundError(StrCat("no table provided for '", name, "'"));
    }
    MD_ASSIGN_OR_RETURN(Table selected,
                        Select(*it->second, def.LocalConditions(name)));
    MD_ASSIGN_OR_RETURN(
        selected, def.AppendDerivedColumns(name, std::move(selected)));
    prepared.emplace(name, QualifyColumns(selected, name));
  }

  // Identify root(s): tables with no incoming join edge.
  std::set<std::string> has_incoming;
  for (const JoinEdge& edge : def.joins()) {
    has_incoming.insert(edge.to_table);
  }
  std::vector<std::string> roots;
  for (const std::string& name : def.tables()) {
    if (has_incoming.count(name) == 0) roots.push_back(name);
  }
  if (def.tables().size() > 1 && roots.size() != 1) {
    return FailedPreconditionError(StrCat(
        "view '", def.name(), "' join graph is not a single-rooted tree (",
        roots.size(), " roots)"));
  }

  Table current = std::move(prepared.at(def.tables().size() == 1
                                            ? def.tables().front()
                                            : roots.front()));
  std::set<std::string> joined = {def.tables().size() == 1
                                      ? def.tables().front()
                                      : roots.front()};

  // Repeatedly attach any table whose parent is already joined.
  std::vector<JoinEdge> pending = def.joins();
  while (!pending.empty()) {
    if (cancel != nullptr) MD_RETURN_IF_ERROR(cancel->Check());
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      const JoinEdge& edge = pending[i];
      if (joined.count(edge.from_table) == 0) continue;
      if (joined.count(edge.to_table) > 0) {
        return FailedPreconditionError(
            StrCat("join graph of '", def.name(),
                   "' is not a tree: '", edge.to_table,
                   "' reached twice"));
      }
      // The target's key attribute is the first (and only) join column;
      // reconstruct its qualified name from the prepared table schema.
      const Table& target = prepared.at(edge.to_table);
      // Join on from_table.from_attr = to_table.<key>. The key name is
      // not stored in the edge; the caller's catalog knows it, but the
      // qualified schema preserves position, so look it up via the
      // provided base table's key index.
      auto base_it = tables.find(edge.to_table);
      std::optional<size_t> key_idx = base_it->second->key_index();
      if (!key_idx.has_value()) {
        return FailedPreconditionError(
            StrCat("join target '", edge.to_table, "' has no key"));
      }
      const std::string right_attr =
          target.schema().attribute(*key_idx).name;
      MD_ASSIGN_OR_RETURN(
          current,
          HashJoin(current, target,
                   StrCat(edge.from_table, ".", edge.from_attr),
                   right_attr));
      joined.insert(edge.to_table);
      pending.erase(pending.begin() + i);
      progressed = true;
      break;
    }
    if (!progressed) {
      return FailedPreconditionError(
          StrCat("join graph of '", def.name(),
                 "' is disconnected or cyclic"));
    }
  }

  if (joined.size() != def.tables().size()) {
    return FailedPreconditionError(StrCat(
        "view '", def.name(), "' joins ", joined.size(), " of ",
        def.tables().size(), " referenced tables; cross products are "
        "outside the supported GPSJ class"));
  }
  return current;
}

Result<Table> EvaluateGpsjOver(
    const std::map<std::string, const Table*>& tables,
    const GpsjViewDef& def, const CancellationToken* cancel) {
  MD_ASSIGN_OR_RETURN(Table joined, EvaluateJoinOver(tables, def, cancel));
  if (cancel != nullptr) MD_RETURN_IF_ERROR(cancel->Check());

  std::vector<std::string> group_attrs;
  for (const AttributeRef& ref : def.GroupByAttrs()) {
    group_attrs.push_back(ref.ToString());
  }
  std::vector<PhysicalAggregate> aggregates;
  for (const AggregateSpec& spec : def.Aggregates()) {
    PhysicalAggregate agg;
    agg.fn = spec.fn;
    agg.distinct = spec.distinct;
    agg.output_name = spec.output_name;
    if (spec.fn != AggFn::kCountStar) {
      agg.input_attr = spec.input.ToString();
    }
    aggregates.push_back(std::move(agg));
  }
  MD_ASSIGN_OR_RETURN(Table grouped,
                      GroupAggregate(joined, group_attrs, aggregates));
  MD_ASSIGN_OR_RETURN(Table shaped, ShapeOutput(grouped, def));
  if (def.having().empty()) return shaped;
  Table filtered(def.name(), shaped.schema());
  filtered.set_allow_null(true);
  for (const Tuple& row : shaped.rows()) {
    if (def.PassesHaving(row)) {
      MD_RETURN_IF_ERROR(filtered.Insert(row));
    }
  }
  return filtered;
}

Result<Table> EvaluateGpsj(const Catalog& catalog, const GpsjViewDef& def,
                           const CancellationToken* cancel) {
  std::map<std::string, const Table*> tables;
  for (const std::string& name : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    tables.emplace(name, table);
  }
  return EvaluateGpsjOver(tables, def, cancel);
}

}  // namespace mindetail
