// SQL aggregates and their self-maintainability classification
// (paper Sec. 3.1, Tables 1 and 2).
//
// An aggregate f(a) is a *self-maintainable aggregate* (SMA) w.r.t. a
// change kind if its new value can be computed from its old value and
// the change alone. A *self-maintainable aggregate set* (SMAS) may rely
// on other aggregates in the set (e.g. SUM is deletion-maintainable
// when a COUNT is alongside it). A *completely self-maintainable
// aggregate set* (CSMAS, Definition 1) is self-maintainable under both
// insertions and deletions. DISTINCT makes any aggregate
// non-distributive and therefore non-CSMAS.

#ifndef MINDETAIL_GPSJ_AGGREGATE_H_
#define MINDETAIL_GPSJ_AGGREGATE_H_

#include <string>
#include <vector>

#include "relational/ops.h"
#include "relational/schema.h"

namespace mindetail {

// A view-level aggregate over a single base-table attribute
// (paper Sec. 2.1: all aggregates are on single attributes).
struct AggregateSpec {
  AggFn fn = AggFn::kCountStar;
  AttributeRef input;  // Ignored for kCountStar.
  bool distinct = false;
  std::string output_name;

  // e.g. "SUM(sale.price) AS TotalPrice".
  std::string ToString() const;

  friend bool operator==(const AggregateSpec& a, const AggregateSpec& b) {
    return a.fn == b.fn && a.input == b.input && a.distinct == b.distinct &&
           a.output_name == b.output_name;
  }
};

// --- Table 1: SMA / SMAS w.r.t. insertion and deletion -------------------

// True iff f is a self-maintainable aggregate w.r.t. insertions.
// COUNT, SUM, MIN, MAX qualify; AVG does not (it is not distributive on
// its own); DISTINCT disqualifies everything.
bool IsSmaUnderInsert(AggFn fn, bool distinct);

// True iff f is a self-maintainable aggregate w.r.t. deletions on its
// own. Only COUNT/COUNT(*) qualify.
bool IsSmaUnderDelete(AggFn fn, bool distinct);

// True iff f participates in a SMAS w.r.t. deletions given suitable
// companions: COUNT alone; SUM if COUNT is included; AVG if COUNT and
// SUM are included. MIN/MAX never.
bool IsSmasUnderDelete(AggFn fn, bool distinct);

// --- Table 2: CSMAS classification and replacement -----------------------

// True iff the aggregate (after replacement) belongs to a completely
// self-maintainable aggregate set: COUNT, SUM, AVG without DISTINCT.
bool IsCsmas(const AggregateSpec& spec);
bool IsCsmasFn(AggFn fn, bool distinct);

// The relaxed classification for insert-only (append-only) detail data
// (paper Sec. 4): with deletions impossible, an aggregate only has to
// be self-maintainable under insertions, which admits MIN and MAX.
// DISTINCT aggregates remain out (the distinct value set is unknown).
bool IsCsmasUnderInsertOnly(const AggregateSpec& spec);

// The distributive replacement set of Table 2, as physical aggregates
// over the *unqualified* attribute name `attr_name`:
//   COUNT(a)  -> { COUNT(*) }
//   COUNT(*)  -> { COUNT(*) }
//   SUM(a)    -> { SUM(a), COUNT(*) }
//   AVG(a)    -> { SUM(a), COUNT(*) }
//   MIN/MAX   -> not replaced (returned unchanged)
// DISTINCT aggregates are never replaced.
// Output names follow the convention "sum_<attr>" / "cnt0" so multiple
// view aggregates over the same attribute share replacement columns.
std::vector<PhysicalAggregate> ReplacementSet(const AggregateSpec& spec,
                                              const std::string& attr_name);

// Canonical replacement column names.
std::string SumColumnName(const std::string& attr_name);
// The COUNT(*) column every compressed auxiliary view carries
// ("cnt0" when on the root table, paper Sec. 3.2).
inline constexpr char kCountStarColumn[] = "cnt0";

// Hidden columns of an *augmented summary* rendering — the contract
// between the maintenance engine (SummaryStore::RenderAugmented) and
// every consumer of the augmented table (checkpoints, the serving
// layer's roll-up rewriter): the view's output columns are followed by
// a shadow COUNT(*) and one running-sum column per non-DISTINCT
// SUM/AVG output, named after the output they back.
inline constexpr char kShadowColumn[] = "__shadow";
std::string ShadowSumColumn(const std::string& output_name);

// Renders the classification row of paper Table 1 for `fn`
// (benchmark/report support).
std::string Table1Row(AggFn fn);
// Renders the classification row of paper Table 2 for `fn`.
std::string Table2Row(AggFn fn);

}  // namespace mindetail

#endif  // MINDETAIL_GPSJ_AGGREGATE_H_
