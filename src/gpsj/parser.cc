#include "gpsj/parser.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"
#include "gpsj/builder.h"

namespace mindetail {
namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class TokenType {
  kIdent,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // One of . , ( ) * plus the comparison operators.
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Raw text; identifiers keep their original case.
  std::string upper;  // Uppercased text for keyword matching.
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.type = TokenType::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      const char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.type = TokenType::kIdent;
        token.text = ReadWhile([](char ch) {
          return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
        });
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string digits = ReadWhile([](char ch) {
          return std::isdigit(static_cast<unsigned char>(ch)) != 0;
        });
        if (!AtEnd() && Peek() == '.' && LookaheadIsDigit()) {
          Advance();  // '.'
          digits += '.';
          digits += ReadWhile([](char ch) {
            return std::isdigit(static_cast<unsigned char>(ch)) != 0;
          });
          token.type = TokenType::kFloat;
        } else {
          token.type = TokenType::kInteger;
        }
        token.text = std::move(digits);
      } else if (c == '\'') {
        Advance();
        std::string value;
        while (!AtEnd() && Peek() != '\'') {
          value += Peek();
          Advance();
        }
        if (AtEnd()) {
          return InvalidArgumentError(
              StrCat(token.line, ":", token.column,
                     ": unterminated string literal"));
        }
        Advance();  // Closing quote.
        token.type = TokenType::kString;
        token.text = std::move(value);
      } else if (c == '<' || c == '>' || c == '!' || c == '=') {
        token.type = TokenType::kSymbol;
        token.text += c;
        Advance();
        if (!AtEnd() && ((c == '<' && (Peek() == '=' || Peek() == '>')) ||
                         (c == '>' && Peek() == '=') ||
                         (c == '!' && Peek() == '='))) {
          token.text += Peek();
          Advance();
        }
        if (token.text == "!") {
          return InvalidArgumentError(
              StrCat(token.line, ":", token.column, ": stray '!'"));
        }
      } else if (c == '.' || c == ',' || c == '(' || c == ')' || c == '*' ||
                 c == ';' || c == '+' || c == '-') {
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        Advance();
      } else {
        return InvalidArgumentError(StrCat(token.line, ":", token.column,
                                           ": unexpected character '", c,
                                           "'"));
      }
      token.upper = token.text;
      std::transform(token.upper.begin(), token.upper.end(),
                     token.upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookaheadIsDigit() const {
    return pos_ + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]));
  }
  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }
  template <typename Pred>
  std::string ReadWhile(Pred pred) {
    std::string out;
    while (!AtEnd() && pred(Peek())) {
      out += Peek();
      Advance();
    }
    return out;
  }
  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
        continue;
      }
      if (Peek() == '-' && pos_ + 1 < input_.size() &&
          input_[pos_ + 1] == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      break;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct QualAttr {
  std::string table;
  std::string attr;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Result<GpsjViewDef> Parse() {
    MD_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    MD_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    MD_ASSIGN_OR_RETURN(std::string view_name, ExpectIdent("view name"));
    MD_RETURN_IF_ERROR(ExpectKeyword("AS"));
    MD_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    GpsjViewBuilder builder(view_name);

    // SELECT items are buffered: plain items become group-bys once the
    // GROUP BY clause confirms them; aggregates are appended in order.
    struct PlainItem {
      QualAttr attr;
      std::string alias;
      Token at;
    };
    std::vector<PlainItem> plain_items;
    struct AggItem {
      AggregateSpec spec;
    };
    std::vector<AggItem> agg_items;
    std::vector<int> item_order;  // >=0: plain index; <0: ~agg index.
    std::set<std::string> used_names;

    while (true) {
      const Token& token = Peek();
      // An aggregate only when the function name is followed by '(' —
      // a table could legitimately be named "sum".
      const bool is_aggregate =
          token.type == TokenType::kIdent && IsAggregateFn(token.upper) &&
          pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].type == TokenType::kSymbol &&
          tokens_[pos_ + 1].text == "(";
      if (is_aggregate) {
        MD_ASSIGN_OR_RETURN(AggregateSpec spec, ParseAggregate(&builder));
        MD_ASSIGN_OR_RETURN(std::string alias, ParseOptionalAlias());
        spec.output_name =
            alias.empty() ? DefaultAggName(spec, used_names) : alias;
        used_names.insert(spec.output_name);
        item_order.push_back(~static_cast<int>(agg_items.size()));
        agg_items.push_back(AggItem{std::move(spec)});
      } else {
        Token at = Peek();
        MD_ASSIGN_OR_RETURN(QualAttr attr, ParseQualAttr());
        MD_ASSIGN_OR_RETURN(std::string alias, ParseOptionalAlias());
        if (alias.empty()) alias = attr.attr;
        used_names.insert(alias);
        item_order.push_back(static_cast<int>(plain_items.size()));
        plain_items.push_back(PlainItem{std::move(attr), std::move(alias),
                                        std::move(at)});
      }
      if (!ConsumeSymbol(",")) break;
    }

    MD_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::vector<std::string> tables;
    while (true) {
      MD_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      tables.push_back(table);
      builder.From(table);
      if (!ConsumeSymbol(",")) break;
    }

    if (ConsumeKeyword("WHERE")) {
      while (true) {
        MD_RETURN_IF_ERROR(ParseCondition(&builder));
        if (!ConsumeKeyword("AND")) break;
      }
    }

    std::vector<QualAttr> group_by;
    if (ConsumeKeyword("GROUP")) {
      MD_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        MD_ASSIGN_OR_RETURN(QualAttr attr, ParseQualAttr());
        group_by.push_back(std::move(attr));
        if (!ConsumeSymbol(",")) break;
      }
    }

    // HAVING: conditions over output columns, referenced by alias, by
    // group-by attribute, or by repeating an aggregate expression that
    // also appears in SELECT.
    if (ConsumeKeyword("HAVING")) {
      while (true) {
        const Token at = Peek();
        std::string output_name;
        const bool is_having_aggregate =
            at.type == TokenType::kIdent && IsAggregateFn(at.upper) &&
            pos_ + 1 < tokens_.size() &&
            tokens_[pos_ + 1].type == TokenType::kSymbol &&
            tokens_[pos_ + 1].text == "(";
        if (is_having_aggregate) {
          MD_ASSIGN_OR_RETURN(AggregateSpec spec, ParseAggregate(&builder));
          bool matched = false;
          for (const AggItem& item : agg_items) {
            AggregateSpec candidate = item.spec;
            AggregateSpec probe = spec;
            probe.output_name = candidate.output_name;
            if (probe == candidate) {
              output_name = candidate.output_name;
              matched = true;
              break;
            }
          }
          if (!matched) {
            return Error(at,
                         "HAVING aggregate must also appear in SELECT");
          }
        } else if (at.type == TokenType::kIdent && pos_ + 1 < tokens_.size() &&
                   tokens_[pos_ + 1].type == TokenType::kSymbol &&
                   tokens_[pos_ + 1].text == ".") {
          MD_ASSIGN_OR_RETURN(QualAttr attr, ParseQualAttr());
          bool matched = false;
          for (const PlainItem& item : plain_items) {
            if (item.attr.table == attr.table &&
                item.attr.attr == attr.attr) {
              output_name = item.alias;
              matched = true;
              break;
            }
          }
          if (!matched) {
            return Error(at, StrCat("HAVING references ", attr.table, ".",
                                    attr.attr,
                                    " which is not a selected group-by "
                                    "attribute"));
          }
        } else {
          MD_ASSIGN_OR_RETURN(output_name,
                              ExpectIdent("an output column in HAVING"));
        }

        MD_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
        MD_ASSIGN_OR_RETURN(Value constant, ParseLiteral());
        builder.Having(output_name, op, std::move(constant));
        if (!ConsumeKeyword("AND")) break;
      }
    }
    (void)ConsumeSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error(Peek(), "trailing input after the view definition");
    }

    // Generalized projection discipline: plain SELECT items are exactly
    // the GROUP BY attributes.
    auto in_group_by = [&group_by](const QualAttr& attr) {
      for (const QualAttr& g : group_by) {
        if (g.table == attr.table && g.attr == attr.attr) return true;
      }
      return false;
    };
    for (const PlainItem& item : plain_items) {
      if (!in_group_by(item.attr)) {
        return Error(item.at,
                     StrCat("selected attribute ", item.attr.table, ".",
                            item.attr.attr,
                            " is not in GROUP BY (a GPSJ view projects "
                            "exactly its grouping attributes)"));
      }
    }
    for (const QualAttr& g : group_by) {
      const bool selected =
          std::any_of(plain_items.begin(), plain_items.end(),
                      [&g](const PlainItem& item) {
                        return item.attr.table == g.table &&
                               item.attr.attr == g.attr;
                      });
      if (!selected) {
        return InvalidArgumentError(
            StrCat("GROUP BY attribute ", g.table, ".", g.attr,
                   " is not selected (a GPSJ view projects its grouping "
                   "attributes)"));
      }
    }

    // Emit outputs in SELECT order.
    for (int code : item_order) {
      if (code >= 0) {
        const PlainItem& item = plain_items[static_cast<size_t>(code)];
        builder.GroupBy(item.attr.table, item.attr.attr, item.alias);
      } else {
        builder.Aggregate(agg_items[static_cast<size_t>(~code)].spec);
      }
    }
    return builder.Build(catalog_);
  }

 private:
  static bool IsAggregateFn(const std::string& upper) {
    return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
           upper == "MIN" || upper == "MAX";
  }

  static Status Error(const Token& token, std::string message) {
    return InvalidArgumentError(
        StrCat(token.line, ":", token.column, ": ", message,
               token.type == TokenType::kEnd
                   ? " (at end of input)"
                   : StrCat(" (near '", token.text, "')")));
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeKeyword(const char* keyword) {
    if (Peek().type == TokenType::kIdent && Peek().upper == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Error(Peek(), StrCat("expected ", keyword));
    }
    return Status::Ok();
  }
  bool ConsumeSymbol(const char* symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Error(Peek(), StrCat("expected '", symbol, "'"));
    }
    return Status::Ok();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      return Error(Peek(), StrCat("expected ", what));
    }
    return Next().text;
  }

  Result<QualAttr> ParseQualAttr() {
    MD_ASSIGN_OR_RETURN(std::string table,
                        ExpectIdent("a table-qualified attribute"));
    MD_RETURN_IF_ERROR(ExpectSymbol("."));
    MD_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute name"));
    return QualAttr{std::move(table), std::move(attr)};
  }

  Result<std::string> ParseOptionalAlias() {
    if (ConsumeKeyword("AS")) {
      return ExpectIdent("output name after AS");
    }
    return std::string();
  }

  // Parses `fn([DISTINCT] qualattr [arith (qualattr | number)])`.
  // Arithmetic operands register a derived attribute on `builder` with
  // a generated name (e.g. SUM(sale.price * sale.qty) aggregates the
  // derived `price_mul_qty`).
  Result<AggregateSpec> ParseAggregate(GpsjViewBuilder* builder) {
    const Token fn_token = Next();
    MD_RETURN_IF_ERROR(ExpectSymbol("("));
    AggregateSpec spec;
    if (fn_token.upper == "COUNT" && ConsumeSymbol("*")) {
      spec.fn = AggFn::kCountStar;
      MD_RETURN_IF_ERROR(ExpectSymbol(")"));
      return spec;
    }
    if (fn_token.upper == "COUNT") {
      spec.fn = AggFn::kCount;
    } else if (fn_token.upper == "SUM") {
      spec.fn = AggFn::kSum;
    } else if (fn_token.upper == "AVG") {
      spec.fn = AggFn::kAvg;
    } else if (fn_token.upper == "MIN") {
      spec.fn = AggFn::kMin;
    } else {
      spec.fn = AggFn::kMax;
    }
    spec.distinct = ConsumeKeyword("DISTINCT");
    const Token at = Peek();
    MD_ASSIGN_OR_RETURN(QualAttr attr, ParseQualAttr());

    // Optional arithmetic: attr (*|+|-) (attr | number).
    std::optional<DerivedAttr::Op> op;
    const char* op_name = "";
    if (ConsumeSymbol("*")) {
      op = DerivedAttr::Op::kMul;
      op_name = "mul";
    } else if (ConsumeSymbol("+")) {
      op = DerivedAttr::Op::kAdd;
      op_name = "add";
    } else if (ConsumeSymbol("-")) {
      op = DerivedAttr::Op::kSub;
      op_name = "sub";
    }
    if (!op.has_value()) {
      spec.input =
          AttributeRef{std::move(attr.table), std::move(attr.attr)};
      MD_RETURN_IF_ERROR(ExpectSymbol(")"));
      return spec;
    }

    std::string derived_name;
    const Token& rhs = Peek();
    if (rhs.type == TokenType::kInteger || rhs.type == TokenType::kFloat) {
      Value constant =
          rhs.type == TokenType::kInteger
              ? Value(static_cast<int64_t>(std::stoll(rhs.text)))
              : Value(std::stod(rhs.text));
      ++pos_;
      derived_name = StrCat(attr.attr, "_", op_name, "_",
                            rhs.type == TokenType::kInteger
                                ? rhs.text
                                : StrCat("c", derived_counter_++));
      builder->DeriveConst(attr.table, derived_name, attr.attr, *op,
                           std::move(constant));
    } else {
      MD_ASSIGN_OR_RETURN(QualAttr rhs_attr, ParseQualAttr());
      if (rhs_attr.table != attr.table) {
        return Error(at,
                     "expression operands must come from the same table");
      }
      derived_name = StrCat(attr.attr, "_", op_name, "_", rhs_attr.attr);
      builder->Derive(attr.table, derived_name, attr.attr, *op,
                      rhs_attr.attr);
    }
    spec.input = AttributeRef{attr.table, derived_name};
    MD_RETURN_IF_ERROR(ExpectSymbol(")"));
    return spec;
  }

  static std::string DefaultAggName(const AggregateSpec& spec,
                                    const std::set<std::string>& used) {
    std::string base;
    switch (spec.fn) {
      case AggFn::kCountStar:
        base = "cnt";
        break;
      case AggFn::kCount:
        base = StrCat("count_", spec.input.attr);
        break;
      case AggFn::kSum:
        base = StrCat("sum_", spec.input.attr);
        break;
      case AggFn::kAvg:
        base = StrCat("avg_", spec.input.attr);
        break;
      case AggFn::kMin:
        base = StrCat("min_", spec.input.attr);
        break;
      case AggFn::kMax:
        base = StrCat("max_", spec.input.attr);
        break;
    }
    std::string name = base;
    int suffix = 2;
    while (used.count(name) > 0) name = StrCat(base, suffix++);
    return name;
  }

  // Parses an optionally negated numeric literal or a string literal.
  Result<Value> ParseLiteral() {
    bool negative = false;
    if (Peek().type == TokenType::kSymbol && Peek().text == "-") {
      negative = true;
      ++pos_;
    }
    const Token& token = Peek();
    if (token.type == TokenType::kInteger) {
      const int64_t v = static_cast<int64_t>(std::stoll(token.text));
      ++pos_;
      return Value(negative ? -v : v);
    }
    if (token.type == TokenType::kFloat) {
      const double v = std::stod(token.text);
      ++pos_;
      return Value(negative ? -v : v);
    }
    if (token.type == TokenType::kString && !negative) {
      std::string text = token.text;
      ++pos_;
      return Value(std::move(text));
    }
    return Error(token, "expected a literal");
  }

  Result<CompareOp> ParseCompareOp() {
    const Token& token = Peek();
    if (token.type != TokenType::kSymbol) {
      return Error(token, "expected a comparison operator");
    }
    CompareOp op;
    if (token.text == "=") {
      op = CompareOp::kEq;
    } else if (token.text == "<>" || token.text == "!=") {
      op = CompareOp::kNe;
    } else if (token.text == "<") {
      op = CompareOp::kLt;
    } else if (token.text == "<=") {
      op = CompareOp::kLe;
    } else if (token.text == ">") {
      op = CompareOp::kGt;
    } else if (token.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Error(token, "expected a comparison operator");
    }
    ++pos_;
    return op;
  }

  // cond := qualattr op literal | qualattr "=" qualattr
  Status ParseCondition(GpsjViewBuilder* builder) {
    const Token at = Peek();
    MD_ASSIGN_OR_RETURN(QualAttr lhs, ParseQualAttr());
    const Token op_token = Peek();
    MD_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());

    const Token& rhs = Peek();
    if (rhs.type == TokenType::kIdent) {
      // Join condition: orient by which side names a primary key.
      if (op != CompareOp::kEq) {
        return Error(op_token, "join conditions must use '='");
      }
      MD_ASSIGN_OR_RETURN(QualAttr rhs_attr, ParseQualAttr());
      MD_ASSIGN_OR_RETURN(bool rhs_is_key, IsKeyOf(rhs_attr));
      if (rhs_is_key) {
        builder->Join(lhs.table, lhs.attr, rhs_attr.table);
        return Status::Ok();
      }
      MD_ASSIGN_OR_RETURN(bool lhs_is_key, IsKeyOf(lhs));
      if (lhs_is_key) {
        builder->Join(rhs_attr.table, rhs_attr.attr, lhs.table);
        return Status::Ok();
      }
      return Error(at,
                   StrCat("join condition ", lhs.table, ".", lhs.attr,
                          " = ", rhs_attr.table, ".", rhs_attr.attr,
                          " matches no primary key on either side (GPSJ "
                          "views join on keys)"));
    }

    // Local condition.
    MD_ASSIGN_OR_RETURN(Value constant, ParseLiteral());
    builder->Where(lhs.table, lhs.attr, op, std::move(constant));
    return Status::Ok();
  }

  Result<bool> IsKeyOf(const QualAttr& attr) const {
    if (!catalog_.HasTable(attr.table)) return false;
    Result<std::string> key = catalog_.KeyAttr(attr.table);
    if (!key.ok()) return false;
    return *key == attr.attr;
  }

  std::vector<Token> tokens_;
  const Catalog& catalog_;
  size_t pos_ = 0;
  int derived_counter_ = 0;
};

}  // namespace

Result<GpsjViewDef> ParseGpsjView(std::string_view sql,
                                  const Catalog& catalog) {
  Lexer lexer(sql);
  MD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), catalog);
  return parser.Parse();
}

}  // namespace mindetail
