#include "replication/log_shipper.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "io/warehouse_io.h"

namespace mindetail {
namespace replication {

LogShipper::LogShipper(std::string leader_dir, Options options)
    : leader_dir_(std::move(leader_dir)),
      reader_(StrCat(leader_dir_, "/", kWalFile), options.stream) {}

Result<WalStreamReader::Batch> LogShipper::Poll() {
  return reader_.Poll();
}

Result<bool> LogShipper::NeedsBootstrap(
    uint64_t follower_sequence,
    const std::vector<std::string>& follower_views) const {
  Result<CheckpointInfo> peek = PeekCurrentCheckpoint(leader_dir_);
  if (peek.status().code() == StatusCode::kNotFound) {
    // The leader never checkpointed: its whole history is in the WAL
    // and streaming alone replays it (there are no views to install
    // either — registration checkpoints immediately).
    return false;
  }
  MD_RETURN_IF_ERROR(peek.status());
  if (peek->sequence > follower_sequence) return true;
  // View registrations and removals are checkpoint events: a follower
  // with the right sequence but the wrong view set cannot converge by
  // streaming (frames only carry change batches).
  std::vector<std::string> leader_views = peek->views;
  std::vector<std::string> have = follower_views;
  std::sort(leader_views.begin(), leader_views.end());
  std::sort(have.begin(), have.end());
  return leader_views != have;
}

Result<CheckpointInfo> LogShipper::Bootstrap(
    const std::string& follower_dir) const {
  MD_ASSIGN_OR_RETURN(CheckpointInfo info,
                      PeekCurrentCheckpoint(leader_dir_));
  MD_RETURN_IF_ERROR(
      TransferCheckpoint(leader_dir_, info.name, follower_dir));
  return info;
}

}  // namespace replication
}  // namespace mindetail
