// Leader-epoch fencing primitives for replication.
//
// Failover safety rests on one monotonic number: the leader epoch. A
// promotion bumps it, checkpoints it into the new leader's manifest,
// and stamps it into every WAL frame the new leader writes. Any
// receiver that has seen epoch N refuses frames below N — so a deposed
// leader that keeps writing (a network partition, a slow shutdown)
// cannot corrupt a follower that already acknowledged its successor.
//
// This header also provides a cheap manifest peek: the shipping and
// catch-up paths need a warehouse's checkpoint sequence, leader epoch,
// and view list far more often than they need its tables, so
// PeekCurrentCheckpoint reads only the manifest header lines.

#ifndef MINDETAIL_REPLICATION_EPOCH_H_
#define MINDETAIL_REPLICATION_EPOCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mindetail {
namespace replication {

// What a checkpoint manifest says about itself, without any view state
// loaded (or verified — the full load still checks content hashes).
struct CheckpointInfo {
  std::string name;              // "checkpoint-<epoch>" directory name.
  uint64_t checkpoint_epoch = 0;
  uint64_t sequence = 0;      // Last WAL sequence folded in.
  uint64_t leader_epoch = 0;  // 0 = never replicated/promoted.
  std::vector<std::string> views;  // Registered views, manifest order.
};

// Reads the manifest of the checkpoint CURRENT points at. NotFound
// when `dir` has no CURRENT (a fresh warehouse); DataLoss when CURRENT
// names a checkpoint whose manifest is missing.
Result<CheckpointInfo> PeekCurrentCheckpoint(const std::string& dir);

// A monotonic epoch high-water mark. Adopt() only moves forward;
// Check() refuses anything behind the fence.
class EpochFence {
 public:
  explicit EpochFence(uint64_t epoch = 0) : epoch_(epoch) {}

  uint64_t current() const { return epoch_; }

  // Adopts `epoch` when it is ahead of the fence; returns whether the
  // fence moved.
  bool Adopt(uint64_t epoch) {
    if (epoch <= epoch_) return false;
    epoch_ = epoch;
    return true;
  }

  // Ok when `epoch` is at or above the fence (an unfenced receiver —
  // fence 0 — accepts everything); FailedPrecondition otherwise.
  Status Check(uint64_t epoch) const;

 private:
  uint64_t epoch_ = 0;
};

}  // namespace replication
}  // namespace mindetail

#endif  // MINDETAIL_REPLICATION_EPOCH_H_
