#include "replication/follower.h"

#include <utility>

namespace mindetail {
namespace replication {

Result<Follower> Follower::Open(const std::string& leader_dir,
                                const std::string& follower_dir,
                                Options options) {
  WarehouseOptions wh_options = options.warehouse;
  wh_options.read_only = true;
  MD_ASSIGN_OR_RETURN(Warehouse wh,
                      Warehouse::Open(follower_dir, std::move(wh_options)));
  LogShipper::Options ship_options;
  ship_options.stream = options.stream;
  return Follower(follower_dir, std::move(options),
                  std::make_unique<Warehouse>(std::move(wh)),
                  LogShipper(leader_dir, ship_options));
}

Result<Follower::Progress> Follower::CatchUp(
    const CancellationToken& cancel) {
  Progress progress;
  // Streaming can only carry the replica forward from the leader's last
  // checkpoint boundary; anything older (or any view-set difference)
  // needs a checkpoint install first.
  MD_ASSIGN_OR_RETURN(
      bool needs_bootstrap,
      shipper_.NeedsBootstrap(warehouse_->last_sequence(),
                              warehouse_->ViewNames()));
  if (needs_bootstrap) MD_RETURN_IF_ERROR(Bootstrap(&progress));

  MD_ASSIGN_OR_RETURN(WalStreamReader::Batch batch, shipper_.Poll());
  for (const WriteAheadLog::Record& record : batch.records) {
    if (!cancel.Check().ok()) {
      // Stop between frames: everything already applied is committed
      // and published; the rest re-ships next round (idempotent by
      // sequence), so cancellation never tears a batch. Poll() already
      // advanced the stream cursor past the frames we are abandoning,
      // so drop the stream state like the failure path does — the next
      // round rescans from zero and the sequence filter dedups.
      progress.cancelled = true;
      LogShipper::Options ship_options;
      ship_options.stream = options_.stream;
      shipper_ = LogShipper(std::string(shipper_.leader_dir()),
                            ship_options);
      break;
    }
    if (record.sequence <= warehouse_->last_sequence()) {
      ++progress.duplicates;  // Re-shipped after a restart; exactly-once.
      continue;
    }
    Status applied = warehouse_->ApplyReplicated(record);
    if (applied.code() == StatusCode::kFailedPrecondition &&
        record.sequence > warehouse_->last_sequence() + 1) {
      // A leader checkpoint raced this round: the frame is beyond what
      // streaming can bridge. Install the checkpoint and retry once.
      MD_RETURN_IF_ERROR(Bootstrap(&progress));
      if (record.sequence <= warehouse_->last_sequence()) {
        ++progress.duplicates;
        continue;
      }
      applied = warehouse_->ApplyReplicated(record);
    }
    if (!applied.ok()) {
      // Drop the stream state: the next round rescans the leader's WAL
      // from zero, and the warehouse's sequence filter turns every
      // re-delivered frame into a no-op — so the frames this round
      // fetched but never applied are not lost.
      LogShipper::Options ship_options;
      ship_options.stream = options_.stream;
      shipper_ = LogShipper(std::string(shipper_.leader_dir()),
                            ship_options);
      return applied;
    }
    ++progress.applied;
  }
  return progress;
}

Status Follower::Bootstrap(Progress* progress) {
  MD_RETURN_IF_ERROR(shipper_.Bootstrap(follower_dir_).status());
  // A bootstrap is a stream discontinuity: the leader checkpointed
  // (and Reset its WAL) past what the old reader had fetched, and the
  // regrown log may be large enough that the reader's byte offset
  // never observes a shrink — leaving it misaligned mid-frame. Start a
  // fresh reader from offset zero; the warehouse's sequence filter
  // turns any re-delivered frames into duplicates.
  LogShipper::Options ship_options;
  ship_options.stream = options_.stream;
  shipper_ =
      LogShipper(std::string(shipper_.leader_dir()), ship_options);
  // Reopen from the installed checkpoint. The local WAL tail is all at
  // or below the checkpoint sequence (that is why a bootstrap was
  // needed), so replay skips it.
  warehouse_.reset();
  WarehouseOptions wh_options = options_.warehouse;
  wh_options.read_only = true;
  MD_ASSIGN_OR_RETURN(Warehouse reopened,
                      Warehouse::Open(follower_dir_, std::move(wh_options)));
  warehouse_ = std::make_unique<Warehouse>(std::move(reopened));
  progress->bootstrapped = true;
  return Status::Ok();
}

}  // namespace replication
}  // namespace mindetail
