// Replica health monitoring: drives every registered follower's
// catch-up, tracks applied-sequence and snapshot lag, and classifies
// each replica for the degraded-read contract.
//
// States:
//   kHealthy      — last round succeeded and the replica trails the
//                   leader by at most the lag budget; reads serve the
//                   strong contract (bit-identical to the leader at
//                   the snapshot's version).
//   kDegraded     — catching up, but behind by more than the budget;
//                   reads still serve a consistent snapshot, just a
//                   stale one, and callers honoring the degraded-read
//                   contract must surface that (or route elsewhere).
//   kDisconnected — the catch-up budget for the tick was exhausted (or
//                   the replica hit a permanent error: a fenced deposed
//                   leader, corrupt shipped frames); reconnection is
//                   retried with backoff on subsequent ticks.
//
// Transient failures inside one Tick are retried with the same bounded
// exponential-backoff-with-jitter schedule the warehouse uses for
// batch applies (RetryOptions); permanent failures (DataLoss,
// FailedPrecondition) skip the retries — waiting cannot fix them.

#ifndef MINDETAIL_REPLICATION_HEALTH_H_
#define MINDETAIL_REPLICATION_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "maintenance/warehouse.h"
#include "replication/follower.h"

namespace mindetail {
namespace replication {

enum class ReplicaState { kHealthy, kDegraded, kDisconnected };

const char* ReplicaStateName(ReplicaState state);

struct HealthOptions {
  // Committed frames a replica may trail the leader by — measured
  // after its catch-up round — before its reads are marked degraded.
  uint64_t lag_budget = 0;
  // Catch-up attempts per replica per Tick before it is declared
  // disconnected for the tick.
  int max_attempts = 3;
  // Backoff between attempts; only max_retries is ignored (the attempt
  // budget above governs), the schedule knobs and sleeper apply.
  RetryOptions retry;
};

struct ReplicaHealth {
  std::string name;
  ReplicaState state = ReplicaState::kDisconnected;
  uint64_t applied_sequence = 0;   // Leader sequence last folded in.
  uint64_t snapshot_version = 0;   // Version the replica serves reads at.
  uint64_t lag = 0;                // leader_sequence − applied_sequence.
  uint64_t rounds = 0;             // Successful catch-up rounds.
  uint64_t failures = 0;           // Failed catch-up attempts.
  uint64_t reconnects = 0;         // Successes that followed a failure.
  std::string last_error;          // Empty while healthy.
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = HealthOptions());

  // Registers a follower (not owned; must outlive the monitor).
  void Register(std::string name, Follower* follower);

  // One monitoring round: every registered follower catches up (with
  // bounded retry), then is classified against `leader_sequence` —
  // normally the leader warehouse's last_sequence().
  void Tick(uint64_t leader_sequence);

  // Health of one replica (nullptr when never registered).
  const ReplicaHealth* Find(const std::string& name) const;

  // True when `name`'s reads must be served under the degraded-read
  // contract (stale-but-consistent at best). Unknown replicas are
  // degraded by definition.
  bool DegradedRead(const std::string& name) const;

  std::vector<ReplicaHealth> Report() const;

  // Human-readable fleet summary for the CLI.
  std::string ReportText() const;

 private:
  struct Entry {
    Follower* follower = nullptr;
    ReplicaHealth health;
  };

  void BackoffSleep(int attempt);

  HealthOptions options_;
  Rng rng_;
  std::vector<Entry> replicas_;
};

}  // namespace replication
}  // namespace mindetail

#endif  // MINDETAIL_REPLICATION_HEALTH_H_
