#include "replication/health.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace mindetail {
namespace replication {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kDegraded:
      return "degraded";
    case ReplicaState::kDisconnected:
      return "disconnected";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(std::move(options)), rng_(options_.retry.jitter_seed) {}

void HealthMonitor::Register(std::string name, Follower* follower) {
  Entry entry;
  entry.follower = follower;
  entry.health.name = std::move(name);
  replicas_.push_back(std::move(entry));
}

void HealthMonitor::BackoffSleep(int attempt) {
  const RetryOptions& retry = options_.retry;
  double delay = static_cast<double>(retry.base_delay_ms) *
                 std::pow(2.0, attempt - 1);
  delay = std::min(delay, static_cast<double>(retry.max_delay_ms));
  delay *= 0.5 + 0.5 * rng_.NextDouble();
  const int ms = std::max(0, static_cast<int>(delay));
  if (retry.sleeper) {
    retry.sleeper(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void HealthMonitor::Tick(uint64_t leader_sequence) {
  for (Entry& entry : replicas_) {
    ReplicaHealth& health = entry.health;
    const bool was_failing = !health.last_error.empty();
    bool succeeded = false;
    const int attempts = std::max(1, options_.max_attempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      Result<Follower::Progress> round = entry.follower->CatchUp();
      if (round.ok()) {
        succeeded = true;
        ++health.rounds;
        if (was_failing) ++health.reconnects;
        health.last_error.clear();
        break;
      }
      ++health.failures;
      health.last_error = StrCat(
          StatusCodeName(round.status().code()), ": ",
          round.status().message());
      // A fenced deposed leader or corrupt shipped frames will not heal
      // by waiting; keep the replica visible as disconnected instead of
      // burning the backoff budget.
      if (round.status().code() == StatusCode::kFailedPrecondition ||
          round.status().code() == StatusCode::kDataLoss) {
        break;
      }
      if (attempt < attempts) BackoffSleep(attempt);
    }

    health.applied_sequence = entry.follower->applied_sequence();
    const std::shared_ptr<const WarehouseSnapshot> snapshot =
        entry.follower->warehouse().CurrentSnapshot();
    health.snapshot_version =
        snapshot != nullptr ? snapshot->version : health.applied_sequence;
    health.lag = leader_sequence > health.applied_sequence
                     ? leader_sequence - health.applied_sequence
                     : 0;
    if (!succeeded) {
      health.state = ReplicaState::kDisconnected;
    } else if (health.lag > options_.lag_budget) {
      health.state = ReplicaState::kDegraded;
    } else {
      health.state = ReplicaState::kHealthy;
    }
  }
}

const ReplicaHealth* HealthMonitor::Find(const std::string& name) const {
  for (const Entry& entry : replicas_) {
    if (entry.health.name == name) return &entry.health;
  }
  return nullptr;
}

bool HealthMonitor::DegradedRead(const std::string& name) const {
  const ReplicaHealth* health = Find(name);
  return health == nullptr || health->state != ReplicaState::kHealthy;
}

std::vector<ReplicaHealth> HealthMonitor::Report() const {
  std::vector<ReplicaHealth> out;
  out.reserve(replicas_.size());
  for (const Entry& entry : replicas_) out.push_back(entry.health);
  return out;
}

std::string HealthMonitor::ReportText() const {
  std::string out = StrCat("Replicas: ", replicas_.size(), "\n");
  for (const Entry& entry : replicas_) {
    const ReplicaHealth& health = entry.health;
    out += StrCat("  ", health.name, ": ", ReplicaStateName(health.state),
                  ", applied seq ", health.applied_sequence,
                  " (snapshot v", health.snapshot_version, "), lag ",
                  health.lag, ", ", health.rounds, " round(s), ",
                  health.failures, " failure(s), ", health.reconnects,
                  " reconnect(s)");
    if (!health.last_error.empty()) {
      out += StrCat(" — ", health.last_error);
    }
    out += "\n";
  }
  return out;
}

}  // namespace replication
}  // namespace mindetail
