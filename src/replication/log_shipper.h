// Leader-side log shipping: streams committed WAL frames to followers
// and installs checkpoint bootstraps for new or lagging ones.
//
// The shipper is a read-only observer of a leader's warehouse
// directory — it opens nothing for writing and takes no locks, so it
// runs safely beside live maintenance (the WAL is append-only between
// checkpoints, and every shipped frame was fsync'd before the leader
// acknowledged it; an uncommitted tail frame is carried, never
// shipped). Robustness is pushed into the stream reader: torn tails
// heal on the next poll, checkpoint truncations restart the scan, and
// re-delivered frames are filtered by sequence — each committed frame
// is handed out exactly once.
//
// Catch-up protocol (driven by replication/follower.h):
//   1. The follower asks NeedsBootstrap(applied, views): streaming can
//      only carry a follower forward from the leader's last checkpoint
//      boundary — frames before it were truncated from the WAL, and
//      view registrations are checkpoint events, not WAL events.
//   2. If so, Bootstrap(follower_dir) installs the leader's CURRENT
//      checkpoint atomically (io/warehouse_io.h TransferCheckpoint).
//   3. Poll() then streams the WAL tail; the follower replays each
//      frame through Warehouse::ApplyReplicated.

#ifndef MINDETAIL_REPLICATION_LOG_SHIPPER_H_
#define MINDETAIL_REPLICATION_LOG_SHIPPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "maintenance/wal.h"
#include "replication/epoch.h"

namespace mindetail {
namespace replication {

class LogShipper {
 public:
  struct Options {
    WalStreamReader::Options stream;
  };

  // Ships from the leader warehouse rooted at `leader_dir`.
  explicit LogShipper(std::string leader_dir, Options options = Options());

  // Committed WAL frames appended since the previous poll, in sequence
  // order, each delivered exactly once. A missing or truncated WAL
  // reads as empty/restarted, never as an error; permanent frame
  // corruption is DataLoss.
  Result<WalStreamReader::Batch> Poll();

  // Whether a follower whose applied sequence is `follower_sequence`
  // and whose registered views are `follower_views` must install a
  // checkpoint before streaming: true when the leader's CURRENT
  // checkpoint is ahead of the follower, or registers a different view
  // set. False when the leader has no checkpoint yet (everything it
  // ever logged is still in the WAL).
  Result<bool> NeedsBootstrap(
      uint64_t follower_sequence,
      const std::vector<std::string>& follower_views) const;

  // Installs the leader's CURRENT checkpoint into `follower_dir`
  // (atomic: a crash leaves the follower's previous state intact) and
  // returns what was installed. NotFound when the leader has no
  // checkpoint to ship.
  Result<CheckpointInfo> Bootstrap(const std::string& follower_dir) const;

  // The leader's CURRENT checkpoint manifest header (NotFound when the
  // leader has never checkpointed).
  Result<CheckpointInfo> PeekCheckpoint() const {
    return PeekCurrentCheckpoint(leader_dir_);
  }

  // Highest sequence ever returned by Poll().
  uint64_t last_shipped_sequence() const { return reader_.last_sequence(); }

  const std::string& leader_dir() const { return leader_dir_; }

 private:
  std::string leader_dir_;
  WalStreamReader reader_;
};

}  // namespace replication
}  // namespace mindetail

#endif  // MINDETAIL_REPLICATION_LOG_SHIPPER_H_
