// A hot-standby follower replica: a read-only Warehouse kept current
// by replaying the leader's shipped WAL frames.
//
// The follower owns its own warehouse directory — a full durable
// warehouse with its own WAL (mirroring the leader's frames under the
// leader's exact sequences/keys/epochs), its own checkpoints, and its
// own crash recovery. Reads go through the ordinary serving layer:
// CatchUp() publishes each replayed batch as a WarehouseSnapshot at
// the leader's committed sequence, so Query()/ExplainQuery() on the
// follower return bit-identical answers to the leader's at the same
// version, and result-cache entries (keyed by version) are shareable
// across replicas.
//
// CatchUp() is one round of the catch-up protocol and is safe to call
// forever, from cold start through steady state, across crashes of
// either side:
//   * fresh or lagging follower      → checkpoint bootstrap, then stream
//   * leader checkpointed (WAL reset) → stream restarts, dups filtered
//   * leader crashed mid-append       → torn tail carried, never applied
//   * follower crashed mid-replay     → local recovery, replay resumes
//   * frames re-shipped after either  → idempotent no-ops by sequence
//   * deposed leader still shipping   → refused by the epoch fence
//
// Promotion (failover) goes through warehouse().PromoteToLeader();
// after it this object should be discarded — the directory is now a
// leader directory and accepts writes.

#ifndef MINDETAIL_REPLICATION_FOLLOWER_H_
#define MINDETAIL_REPLICATION_FOLLOWER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "maintenance/warehouse.h"
#include "replication/log_shipper.h"

namespace mindetail {
namespace replication {

class Follower {
 public:
  struct Options {
    // Options for the follower's warehouse; read_only is forced on.
    WarehouseOptions warehouse;
    WalStreamReader::Options stream;
  };

  // What one CatchUp() round did.
  struct Progress {
    uint64_t applied = 0;     // Frames folded in this round.
    uint64_t duplicates = 0;  // Re-shipped frames skipped by sequence.
    bool bootstrapped = false;  // A leader checkpoint was installed.
    bool cancelled = false;     // The round stopped early on a tripped
                                // token; everything applied so far is
                                // committed, the rest re-ships next
                                // round.
  };

  // Opens (or creates) the follower warehouse at `follower_dir`,
  // shipping from the leader warehouse at `leader_dir`.
  static Result<Follower> Open(const std::string& leader_dir,
                               const std::string& follower_dir,
                               Options options = Options());

  Follower(Follower&&) = default;
  Follower& operator=(Follower&&) = default;

  // One catch-up round: bootstrap from the leader's checkpoint when
  // streaming cannot close the gap, then poll the leader's WAL and
  // replay every new committed frame. Returns what happened; errors
  // are transient unless they are DataLoss (corrupt leader WAL) or
  // FailedPrecondition (this follower is fenced ahead of the leader —
  // the leader was deposed).
  Result<Progress> CatchUp() { return CatchUp(CancellationToken()); }

  // As above with cooperative cancellation: the token is polled
  // between frames, and a tripped token ends the round cleanly after
  // the frame in flight — Progress::cancelled is set, no error is
  // raised, and the unapplied remainder re-ships on the next round
  // (replay is idempotent by sequence).
  Result<Progress> CatchUp(const CancellationToken& cancel);

  // The replica itself — serve reads from it, or promote it.
  Warehouse& warehouse() { return *warehouse_; }
  const Warehouse& warehouse() const { return *warehouse_; }

  // Leader sequence of the last frame folded in.
  uint64_t applied_sequence() const { return warehouse_->last_sequence(); }

  const std::string& leader_dir() const { return shipper_.leader_dir(); }
  const std::string& follower_dir() const { return follower_dir_; }

 private:
  Follower(std::string follower_dir, Options options,
           std::unique_ptr<Warehouse> warehouse, LogShipper shipper)
      : follower_dir_(std::move(follower_dir)),
        options_(std::move(options)),
        warehouse_(std::move(warehouse)),
        shipper_(std::move(shipper)) {}

  // Installs the leader's CURRENT checkpoint and reopens the local
  // warehouse from it.
  Status Bootstrap(Progress* progress);

  std::string follower_dir_;
  Options options_;
  std::unique_ptr<Warehouse> warehouse_;
  LogShipper shipper_;
};

}  // namespace replication
}  // namespace mindetail

#endif  // MINDETAIL_REPLICATION_FOLLOWER_H_
