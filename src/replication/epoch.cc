#include "replication/epoch.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "io/log_format.h"
#include "io/warehouse_io.h"

namespace mindetail {
namespace replication {

Result<CheckpointInfo> PeekCurrentCheckpoint(const std::string& dir) {
  Result<std::string> current =
      logfmt::ReadFileContents(StrCat(dir, "/", kCurrentFile));
  if (!current.ok()) {
    return NotFoundError(
        StrCat("warehouse '", dir, "' has no CURRENT checkpoint"));
  }
  CheckpointInfo info;
  info.name = *current;
  while (!info.name.empty() &&
         (info.name.back() == '\n' || info.name.back() == '\r')) {
    info.name.pop_back();
  }

  std::ifstream in(
      StrCat(dir, "/", info.name, "/", kCheckpointManifest));
  if (!in.is_open()) {
    return DataLossError(StrCat("CURRENT of '", dir, "' names '",
                                info.name,
                                "' but its manifest is missing"));
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "EPOCH") {
      fields >> info.checkpoint_epoch;
    } else if (directive == "SEQ") {
      fields >> info.sequence;
    } else if (directive == "LEADER_EPOCH") {
      fields >> info.leader_epoch;
    } else if (directive == "VIEW") {
      std::string name;
      fields >> name;
      if (!name.empty()) info.views.push_back(std::move(name));
    }
    // Everything else (catalog block, per-view metadata) is load-time
    // detail; the peek only wants the header and the view directory.
  }
  return info;
}

Status EpochFence::Check(uint64_t epoch) const {
  if (epoch_ > 0 && epoch < epoch_) {
    return FailedPreconditionError(
        StrCat("epoch ", epoch, " is behind the fence at ", epoch_,
               "; the sender was deposed"));
  }
  return Status::Ok();
}

}  // namespace replication
}  // namespace mindetail
