// Ingest-path overload protection.
//
// An `OverloadController` bounds how many change batches may be in
// flight at once and sheds load before the warehouse falls behind.
// Shedding is prioritized: duplicate acks never reach the controller
// (the warehouse answers them before admission — they cost ~nothing
// and re-sending them would only add load), new *heavy* batches are
// refused first (once the window is half full, or whenever the
// observed apply latency exceeds the soft target), and every batch is
// refused once the window is full. A shed batch gets `kUnavailable`
// with a retry-after hint computed from the same exponential-backoff
// schedule as RetryOptions (jitterless, so the hint is deterministic):
// consecutive sheds back the hint off, an admit resets it.
//
// The controller also owns the warehouse's degradation counters
// (cancelled batches/queries, deadline expiries, budget refusals) so
// the const, multi-threaded Query() path can bump them lock-free.

#ifndef MINDETAIL_MAINTENANCE_ADMISSION_H_
#define MINDETAIL_MAINTENANCE_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"

namespace mindetail {

// Plain snapshot of the controller's state, for WarehouseReport.
struct OverloadStats {
  bool admission_enabled = false;
  int max_inflight = 0;
  int inflight = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;        // Total refused with kUnavailable.
  uint64_t shed_heavy = 0;  // Of those, refused by the heavy-first rule.
  double apply_latency_ewma_ms = 0.0;
  int last_retry_after_ms = 0;
  // Graceful-degradation counters (bumped by the warehouse).
  uint64_t cancelled_batches = 0;
  uint64_t cancelled_queries = 0;
  uint64_t deadline_queries = 0;
  uint64_t budget_refusals = 0;
};

class OverloadController {
 public:
  struct Options {
    // In-flight batch window; 0 disables shedding (the controller then
    // only tracks latency and counters).
    int max_inflight_batches = 0;
    // Total changed rows at or above which a batch counts as heavy.
    uint64_t heavy_batch_rows = 10000;
    // Apply-latency EWMA above this sheds heavy batches even with a
    // non-full window; 0 disables the latency signal.
    int soft_apply_latency_ms = 0;
    // EWMA smoothing factor in (0, 1].
    double latency_alpha = 0.25;
    // Retry-after schedule: min(max_delay_ms, base_delay_ms·2^(n-1))
    // for the n-th consecutive shed. Mirrors RetryOptions sans jitter.
    int base_delay_ms = 1;
    int max_delay_ms = 64;
    // Injectable monotonic clock (tests); null = process steady clock.
    MonotonicClock clock;
  };

  // RAII admission slot: releasing it (or letting it die) frees the
  // in-flight slot and folds the batch's apply latency into the EWMA.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept
        : controller_(other.controller_), start_nanos_(other.start_nanos_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        start_nanos_ = other.start_nanos_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    void Release();
    bool active() const { return controller_ != nullptr; }

   private:
    friend class OverloadController;
    Permit(OverloadController* controller, int64_t start_nanos)
        : controller_(controller), start_nanos_(start_nanos) {}

    OverloadController* controller_ = nullptr;
    int64_t start_nanos_ = 0;
  };

  explicit OverloadController(Options options);

  // Admission decision for a batch touching `batch_rows` changed rows.
  // Returns a live Permit, or kUnavailable with a retry-after hint.
  // Always admits (and tracks latency) when shedding is disabled.
  Result<Permit> Admit(uint64_t batch_rows);

  // Degradation counters, bumped from the apply/query paths.
  void RecordCancelledBatch() { Bump(cancelled_batches_); }
  void RecordCancelledQuery() { Bump(cancelled_queries_); }
  void RecordDeadlineQuery() { Bump(deadline_queries_); }
  void RecordBudgetRefusal() { Bump(budget_refusals_); }

  OverloadStats Snapshot() const;

  // The hint attached to the most recent shed, in milliseconds (0 when
  // nothing has been shed since the last admit). Public so a transport
  // layer can emit it on the wire (e.g. an HTTP Retry-After header)
  // without composing a full WarehouseReport per refusal.
  int last_retry_after_ms() const {
    return last_retry_after_ms_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t NowNanos() const;
  // min(max_delay, base·2^(n-1)) for the n-th consecutive shed.
  int RetryAfterMs(int consecutive_sheds) const;
  void Finish(int64_t start_nanos);  // Permit release.

  const Options options_;
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> shed_heavy_{0};
  std::atomic<int> consecutive_sheds_{0};
  std::atomic<int> last_retry_after_ms_{0};
  // EWMA of batch apply latency, in nanoseconds (CAS-updated).
  std::atomic<int64_t> latency_ewma_nanos_{0};

  std::atomic<uint64_t> cancelled_batches_{0};
  std::atomic<uint64_t> cancelled_queries_{0};
  std::atomic<uint64_t> deadline_queries_{0};
  std::atomic<uint64_t> budget_refusals_{0};
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_ADMISSION_H_
