#include "maintenance/ingest.h"

#include <optional>
#include <utility>

#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "io/log_format.h"

namespace mindetail {

void KeyLedger::Track(const std::string& table, size_t key_index,
                      const Table& rows) {
  if (tables_.count(table) > 0) return;
  Tracked& tracked = tables_[table];
  tracked.key_index = key_index;
  for (const Tuple& row : rows.rows()) {
    tracked.live.insert(KeyToken(row[key_index]));
  }
}

bool KeyLedger::Tracks(const std::string& table) const {
  return tables_.count(table) > 0;
}

bool KeyLedger::Contains(const std::string& table, const Value& key) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return false;
  return it->second.live.count(KeyToken(key)) > 0;
}

size_t KeyLedger::NumKeys(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.live.size();
}

void KeyLedger::Fold(const std::map<std::string, Delta>& changes) {
  for (const auto& [table, delta] : changes) {
    auto it = tables_.find(table);
    if (it == tables_.end()) continue;
    Tracked& tracked = it->second;
    // Mirror ApplyDelta: deletes, then updates, then inserts.
    for (const Tuple& t : delta.deletes) {
      tracked.live.erase(KeyToken(t[tracked.key_index]));
    }
    for (const Update& u : delta.updates) {
      const std::string before = KeyToken(u.before[tracked.key_index]);
      const std::string after = KeyToken(u.after[tracked.key_index]);
      if (before != after) {
        tracked.live.erase(before);
        tracked.live.insert(after);
      }
    }
    for (const Tuple& t : delta.inserts) {
      tracked.live.insert(KeyToken(t[tracked.key_index]));
    }
  }
}

std::string KeyLedger::KeyToken(const Value& v) {
  std::string token;
  logfmt::PutValue(&token, v);
  return token;
}

void KeyLedger::SerializeInto(std::string* out) const {
  logfmt::PutU32(out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [table, tracked] : tables_) {
    logfmt::PutString(out, table);
    logfmt::PutU32(out, static_cast<uint32_t>(tracked.key_index));
    logfmt::PutU32(out, static_cast<uint32_t>(tracked.live.size()));
    for (const std::string& token : tracked.live) {
      logfmt::PutString(out, token);
    }
  }
}

Result<KeyLedger> KeyLedger::Deserialize(const std::string& payload,
                                         size_t* consumed) {
  KeyLedger ledger;
  logfmt::PayloadReader reader(payload.data(), payload.size());
  uint32_t num_tables = 0;
  if (!reader.ReadU32(&num_tables)) {
    return InvalidArgumentError("key ledger payload is truncated");
  }
  size_t read_bytes = 4;
  for (uint32_t i = 0; i < num_tables; ++i) {
    std::string table;
    uint32_t key_index = 0, num_keys = 0;
    if (!reader.ReadString(&table) || !reader.ReadU32(&key_index) ||
        !reader.ReadU32(&num_keys)) {
      return InvalidArgumentError("key ledger payload is truncated");
    }
    read_bytes += 4 + table.size() + 8;
    Tracked& tracked = ledger.tables_[table];
    tracked.key_index = key_index;
    for (uint32_t k = 0; k < num_keys; ++k) {
      std::string token;
      if (!reader.ReadString(&token)) {
        return InvalidArgumentError("key ledger payload is truncated");
      }
      read_bytes += 4 + token.size();
      tracked.live.insert(std::move(token));
    }
  }
  if (consumed != nullptr) *consumed = read_bytes;
  return ledger;
}

namespace {

// Per-table key-set delta this batch would apply, layered over the
// ledger so validation never copies a live set.
struct KeySim {
  bool tracked = false;
  std::set<std::string> added;
  std::set<std::string> removed;
};

// Liveness of `token` under the simulated post-state: 1 live, 0 dead,
// -1 unknown (table untracked and the batch has not touched the key).
int SimLiveness(const KeySim& sim, const KeyLedger& ledger,
                const std::string& table, const std::string& token,
                const Value& value) {
  if (sim.removed.count(token) > 0) return 0;
  if (sim.added.count(token) > 0) return 1;
  if (!sim.tracked) return -1;
  return ledger.Contains(table, value) ? 1 : 0;
}

// One table's admission checks: tuple shape against the schema, then
// the key simulation in ApplyDelta order. Writes the post-state
// simulation into `sim` for the cross-table RI pass. Reads only shared
// immutable state (catalog, ledger), so any number of tables validate
// concurrently.
Status ValidateTableDelta(const Catalog& catalog, const KeyLedger& ledger,
                          const std::string& table, const Delta& delta,
                          KeySim* sim_out) {
  if (!catalog.HasTable(table)) {
    return InvalidArgumentError(
        StrCat("batch references unknown table '", table, "'"));
  }
  MD_ASSIGN_OR_RETURN(const Table* base, catalog.GetTable(table));
  const Schema& schema = base->schema();

  auto check_tuple = [&](const Tuple& t, const char* role) {
    Status s = schema.ValidateTuple(t, /*allow_null=*/false);
    if (!s.ok()) {
      return InvalidArgumentError(
          StrCat("table '", table, "' ", role, ": ", s.message()));
    }
    return Status::Ok();
  };
  for (const Tuple& t : delta.deletes) {
    MD_RETURN_IF_ERROR(check_tuple(t, "delete"));
  }
  for (const Update& u : delta.updates) {
    MD_RETURN_IF_ERROR(check_tuple(u.before, "update before-image"));
    MD_RETURN_IF_ERROR(check_tuple(u.after, "update after-image"));
  }
  for (const Tuple& t : delta.inserts) {
    MD_RETURN_IF_ERROR(check_tuple(t, "insert"));
  }

  const std::optional<size_t> key_index = base->key_index();
  if (!key_index.has_value()) return Status::Ok();  // Key-less: done.
  const size_t ki = *key_index;

  KeySim& sim = *sim_out;
  sim.tracked = ledger.Tracks(table);

  // Simulate in ApplyDelta order: deletes, then updates, then
  // inserts. Every violation below would otherwise fail mid-apply
  // inside an engine (forcing a rollback) or, worse, silently skew a
  // view that never sees base rows again.
  for (const Tuple& t : delta.deletes) {
    const Value& key = t[ki];
    const std::string token = KeyLedger::KeyToken(key);
    if (SimLiveness(sim, ledger, table, token, key) == 0) {
      return InvalidArgumentError(
          StrCat("table '", table, "' delete targets key ",
                 key.ToString(), " which does not exist (or was already"
                 " deleted by this batch)"));
    }
    sim.removed.insert(token);
    sim.added.erase(token);
  }
  for (const Update& u : delta.updates) {
    const Value& before_key = u.before[ki];
    const Value& after_key = u.after[ki];
    const std::string before_token = KeyLedger::KeyToken(before_key);
    if (SimLiveness(sim, ledger, table, before_token, before_key) == 0) {
      return InvalidArgumentError(
          StrCat("table '", table, "' update targets key ",
                 before_key.ToString(), " which does not exist (or was"
                 " deleted by this batch)"));
    }
    const std::string after_token = KeyLedger::KeyToken(after_key);
    if (after_token != before_token) {
      if (SimLiveness(sim, ledger, table, after_token, after_key) == 1) {
        return InvalidArgumentError(
            StrCat("table '", table, "' update moves key ",
                   before_key.ToString(), " onto existing key ",
                   after_key.ToString()));
      }
      sim.removed.insert(before_token);
      sim.added.erase(before_token);
      sim.added.insert(after_token);
      sim.removed.erase(after_token);
    }
  }
  for (const Tuple& t : delta.inserts) {
    const Value& key = t[ki];
    const std::string token = KeyLedger::KeyToken(key);
    if (SimLiveness(sim, ledger, table, token, key) == 1) {
      return InvalidArgumentError(
          StrCat("table '", table, "' insert duplicates key ",
                 key.ToString()));
    }
    sim.added.insert(token);
    sim.removed.erase(token);
  }
  return Status::Ok();
}

}  // namespace

Status ValidateBatch(const Catalog& catalog, const KeyLedger& ledger,
                     const std::map<std::string, Delta>& changes,
                     ThreadPool* pool) {
  // Tables validate independently (each touches only its own KeySim);
  // shard them over the pool when one is available. Results land in
  // batch (map) order, so the error reported below is exactly the one
  // the serial walk would hit first.
  struct TableItem {
    const std::string* table = nullptr;
    const Delta* delta = nullptr;
    KeySim sim;
    Status status;
  };
  std::vector<TableItem> items;
  items.reserve(changes.size());
  for (const auto& [table, delta] : changes) {
    TableItem item;
    item.table = &table;
    item.delta = &delta;
    items.push_back(std::move(item));
  }
  auto validate_one = [&](size_t i) {
    items[i].status = ValidateTableDelta(catalog, ledger, *items[i].table,
                                         *items[i].delta, &items[i].sim);
  };
  if (pool != nullptr && items.size() >= 2) {
    pool->ParallelFor(items.size(), validate_one);
  } else {
    for (size_t i = 0; i < items.size(); ++i) validate_one(i);
  }
  std::map<std::string, KeySim> sims;
  for (TableItem& item : items) {
    MD_RETURN_IF_ERROR(item.status);
    sims.emplace(*item.table, std::move(item.sim));
  }

  // Referential integrity of the transaction as a whole: every inserted
  // (or updated-to) child row must reference a parent key that is live
  // once the entire batch has applied — a parent inserted by this batch
  // satisfies the constraint, a parent deleted by it does not. (The
  // engines order the pieces RI-consistently; this checks that a
  // consistent order exists at all.)
  for (const ForeignKey& fk : catalog.foreign_keys()) {
    auto child_it = changes.find(fk.from_table);
    if (child_it == changes.end()) continue;
    const Delta& delta = child_it->second;
    if (delta.inserts.empty() && delta.updates.empty()) continue;
    MD_ASSIGN_OR_RETURN(const Table* child, catalog.GetTable(fk.from_table));
    const std::optional<size_t> ref_index =
        child->schema().IndexOf(fk.from_attr);
    if (!ref_index.has_value()) continue;

    auto parent_sim = sims.find(fk.to_table);
    const KeySim* psim =
        parent_sim != sims.end() ? &parent_sim->second : nullptr;
    const bool parent_tracked = ledger.Tracks(fk.to_table);

    auto check_reference = [&](const Tuple& t, const char* role) {
      const Value& ref = t[*ref_index];
      const std::string token = KeyLedger::KeyToken(ref);
      int live = -1;
      if (psim != nullptr) {
        if (psim->removed.count(token) > 0) {
          live = 0;
        } else if (psim->added.count(token) > 0) {
          live = 1;
        }
      }
      if (live == -1 && parent_tracked) {
        live = ledger.Contains(fk.to_table, ref) ? 1 : 0;
      }
      if (live == 0) {
        return InvalidArgumentError(StrCat(
            "table '", fk.from_table, "' ", role, " references ",
            fk.to_table, " key ", ref.ToString(),
            " which is missing or deleted by this batch"));
      }
      return Status::Ok();
    };
    for (const Tuple& t : delta.inserts) {
      MD_RETURN_IF_ERROR(check_reference(t, "insert"));
    }
    for (const Update& u : delta.updates) {
      MD_RETURN_IF_ERROR(check_reference(u.after, "update"));
    }
  }
  return Status::Ok();
}

}  // namespace mindetail
