// A materialized auxiliary view with incremental update support.
//
// Compressed auxiliary views (the fact table's) are indexed by their
// grouping columns so that a batch of compressed group deltas merges in
// O(1) per group: SUM columns accumulate, the COUNT(*) column tracks
// duplicates, and a group vanishes when its count reaches zero.
// Plain (PSJ-degenerate / dimension) auxiliary views are maintained at
// row granularity.
//
// Row order is canonical: the Merge* entry points (and Create) always
// leave the table sorted by the plain-column key tuple, which is unique
// per row. Canonical order makes checkpoints order-stable, lets delta
// joins see the same auxiliary row order at every thread count, and
// lets the sharded merge path commit shard results in any order — the
// final sort reconstructs the one true order.

#ifndef MINDETAIL_MAINTENANCE_AUX_STORE_H_
#define MINDETAIL_MAINTENANCE_AUX_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/derive.h"
#include "relational/table.h"

namespace mindetail {

class ThreadPool;

class AuxStore {
 public:
  AuxStore() = default;

  // Wraps the initially materialized contents of the auxiliary view
  // `def` (from MaterializeAuxView) and sorts them into canonical
  // order. `initial`'s schema must match. `owner_view` (the summary
  // view the store maintains detail for) is woven into
  // inconsistent-delta error messages.
  static Result<AuxStore> Create(const AuxViewDef& def, Table initial,
                                 std::string owner_view = "");

  const AuxViewDef& def() const { return def_; }
  const Table& contents() const { return table_; }
  size_t NumRows() const { return table_.NumRows(); }

  // Compressed plans only: merges one group delta. `group` holds the
  // plain-column values, `agg_values` the delta group's raw aggregate
  // values — one per non-COUNT aggregate column, in plan order — and
  // `cnt` the COUNT(*) increment (negative for deletions). SUM columns
  // accumulate with the sign; MIN/MAX columns merge monotonically and
  // reject deletions (they only occur under the insert-only
  // relaxation). Fails if a deletion would drive a group's count
  // negative or touch a missing group (an inconsistent delta).
  //
  // Group membership changes leave the table out of canonical order
  // until the next Canonicalize() — the Merge* entry points restore it
  // automatically; direct callers (tests) call Canonicalize themselves.
  Status ApplyGroupDelta(const Tuple& group,
                         const std::vector<Value>& agg_values, int64_t cnt);

  // Compressed plans only: merges a whole compressed delta fragment
  // (column order = plan order, as produced by the engine's fragment
  // pipeline) with the given sign (+1 insertions, -1 deletions) and
  // restores canonical row order. Rows merge in fragment order. With a
  // non-null `pool`, fragment rows are hash-partitioned by group key
  // and merged concurrently — per-group accumulation order still
  // matches the serial merge (a group's delta rows stay in one shard,
  // in fragment order), so the resulting store is bit-identical to the
  // serial merge at every thread count.
  Status MergeCompressedFragment(const Table& fragment, int sign,
                                 ThreadPool* pool = nullptr);

  // Plain plans only: row-level maintenance. Like ApplyGroupDelta,
  // these leave the table out of canonical order until Canonicalize().
  Status InsertRow(Tuple row);
  Status DeleteRow(const Tuple& row);

  // Plain plans only: inserts (sign = +1) or deletes (sign = -1) every
  // row of `fragment` and restores canonical row order. With a
  // non-null `pool`, fragment rows are hash-partitioned (plain rows are
  // duplicate-free, so shards touch disjoint rows) and validated
  // concurrently; the result is bit-identical to the serial merge.
  Status MergePlainFragment(const Table& fragment, int sign,
                            ThreadPool* pool = nullptr);

  // Restores canonical row order (sort by the unique plain-column key
  // tuple; in-place aggregate updates never disturb it) and rebuilds
  // the group index. No-op when the order is already canonical.
  void Canonicalize();

  // True iff rows are sorted by the plain-column key tuple. Exposed so
  // tests can assert the canonical-order invariant.
  bool InCanonicalOrder() const;

 private:
  // "auxiliary view 'X' of view 'V'" (owner omitted when unset), for
  // error messages.
  std::string Describe() const;

  // The plain-column key tuple of a row (unique per row).
  Tuple KeyOf(const Tuple& row) const;
  // Lexicographic comparison of two rows by their key tuples.
  bool KeyLess(const Tuple& a, const Tuple& b) const;

  // The sharded halves of the Merge* entry points; `num_shards` >= 2.
  Status MergeCompressedSharded(const Table& fragment, int sign,
                                ThreadPool* pool, size_t num_shards);
  Status MergePlainSharded(const Table& fragment, int sign,
                           ThreadPool* pool, size_t num_shards);

  AuxViewDef def_;
  std::string owner_view_;
  Table table_;
  // Maps the tuple of plain-column values to a row index. For plain
  // plans this is the full row (which is duplicate-free: the base key
  // is among the columns).
  std::unordered_map<Tuple, size_t, TupleHash, TupleEqual> index_;
  std::vector<size_t> plain_idx_;  // Column indexes of plain columns.
  // Non-COUNT aggregate columns (SUM/MIN/MAX), in plan order.
  struct AggCol {
    size_t idx;
    AuxColumn::Kind kind;
  };
  std::vector<AggCol> agg_cols_;
  int cnt_idx_ = -1;  // Column index of COUNT(*), or -1.
  // True when a membership change (insert/delete) may have left the
  // rows out of canonical order. In-place aggregate updates never set
  // it: they keep each row at its position.
  bool order_dirty_ = false;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_AUX_STORE_H_
