// A materialized auxiliary view with incremental update support.
//
// Compressed auxiliary views (the fact table's) are indexed by their
// grouping columns so that a batch of compressed group deltas merges in
// O(1) per group: SUM columns accumulate, the COUNT(*) column tracks
// duplicates, and a group vanishes when its count reaches zero.
// Plain (PSJ-degenerate / dimension) auxiliary views are maintained at
// row granularity.

#ifndef MINDETAIL_MAINTENANCE_AUX_STORE_H_
#define MINDETAIL_MAINTENANCE_AUX_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/derive.h"
#include "relational/table.h"

namespace mindetail {

class AuxStore {
 public:
  AuxStore() = default;

  // Wraps the initially materialized contents of the auxiliary view
  // `def` (from MaterializeAuxView). `initial`'s schema must match.
  // `owner_view` (the summary view the store maintains detail for) is
  // woven into inconsistent-delta error messages.
  static Result<AuxStore> Create(const AuxViewDef& def, Table initial,
                                 std::string owner_view = "");

  const AuxViewDef& def() const { return def_; }
  const Table& contents() const { return table_; }
  size_t NumRows() const { return table_.NumRows(); }

  // Compressed plans only: merges one group delta. `group` holds the
  // plain-column values, `agg_values` the delta group's raw aggregate
  // values — one per non-COUNT aggregate column, in plan order — and
  // `cnt` the COUNT(*) increment (negative for deletions). SUM columns
  // accumulate with the sign; MIN/MAX columns merge monotonically and
  // reject deletions (they only occur under the insert-only
  // relaxation). Fails if a deletion would drive a group's count
  // negative or touch a missing group (an inconsistent delta).
  Status ApplyGroupDelta(const Tuple& group,
                         const std::vector<Value>& agg_values, int64_t cnt);

  // Compressed plans only: merges a whole compressed delta fragment
  // (column order = plan order, as produced by the engine's fragment
  // pipeline) with the given sign (+1 insertions, -1 deletions). Rows
  // merge in fragment order, so feeding the concatenated-and-sorted
  // shard outputs of the parallel fragment path leaves the store in
  // exactly the state the serial path produces.
  Status MergeCompressedFragment(const Table& fragment, int sign);

  // Plain plans only: row-level maintenance.
  Status InsertRow(Tuple row);
  Status DeleteRow(const Tuple& row);

  // Plain plans only: inserts (sign = +1) or deletes (sign = -1) every
  // row of `fragment`, in row order.
  Status MergePlainFragment(const Table& fragment, int sign);

 private:
  // "auxiliary view 'X' of view 'V'" (owner omitted when unset), for
  // error messages.
  std::string Describe() const;

  AuxViewDef def_;
  std::string owner_view_;
  Table table_;
  // Maps the tuple of plain-column values to a row index. For plain
  // plans this is the full row (which is duplicate-free: the base key
  // is among the columns).
  std::unordered_map<Tuple, size_t, TupleHash, TupleEqual> index_;
  std::vector<size_t> plain_idx_;  // Column indexes of plain columns.
  // Non-COUNT aggregate columns (SUM/MIN/MAX), in plan order.
  struct AggCol {
    size_t idx;
    AuxColumn::Kind kind;
  };
  std::vector<AggCol> agg_cols_;
  int cnt_idx_ = -1;  // Column index of COUNT(*), or -1.
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_AUX_STORE_H_
