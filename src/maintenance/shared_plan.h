// Per-batch shared delta-join cache (the "shared maintenance plan").
//
// When one committed batch fans out across several engines, any two
// engines whose delta-join subexpressions have the same canonical
// signature (core/plan_signature.h) AND the same lineage token (equal
// aux contents by construction — see Warehouse::AddView) would compute
// byte-identical fragments and contribution tables. The warehouse
// hands each fan-out one SharedJoinCache; the first engine to reach a
// given key computes the result on its own state (using its own
// per-batch DimensionIndex) and publishes an immutable copy, and every
// sibling reuses it instead of re-joining.
//
// Correctness notes:
//   - The cache lives for exactly one ApplyToEngines attempt. Retries
//     and rollbacks get a fresh cache, so a rolled-back engine can
//     never leak state into a later attempt.
//   - Only *successful* results are memoized. A failed computation
//     leaves the slot unfilled, so every engine reproduces the
//     baseline error path deterministically.
//   - Values are self-contained owned Tables (never pointers into an
//     engine's live aux state), so a reusing engine cannot observe the
//     computing engine's later mutations.
//   - One per-slot mutex serializes computation of each key; distinct
//     keys compute concurrently. The engine never nests GetOrCompute
//     calls (the fragment slot is filled and released before the join
//     slot is taken), so lock ordering is trivial and deadlock-free.

#ifndef MINDETAIL_MAINTENANCE_SHARED_PLAN_H_
#define MINDETAIL_MAINTENANCE_SHARED_PLAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "relational/table.h"

namespace mindetail {

// Counters for one batch (or accumulated across batches by the
// warehouse). "fragments" are the compressed/plain delta fragments of
// the changed table; "joins" are the contribution computations
// (fragment ⋈ dimension aux views).
struct SharedJoinStats {
  uint64_t joins_computed = 0;
  uint64_t joins_reused = 0;
  uint64_t fragments_computed = 0;
  uint64_t fragments_reused = 0;

  SharedJoinStats& operator+=(const SharedJoinStats& other) {
    joins_computed += other.joins_computed;
    joins_reused += other.joins_reused;
    fragments_computed += other.fragments_computed;
    fragments_reused += other.fragments_reused;
    return *this;
  }
};

class SharedJoinCache {
 public:
  enum class Kind { kFragment, kJoin };

  SharedJoinCache() = default;
  SharedJoinCache(const SharedJoinCache&) = delete;
  SharedJoinCache& operator=(const SharedJoinCache&) = delete;

  // Returns the memoized table for `key`, computing it via `compute`
  // if this is the first engine to arrive. Sets *reused (if non-null)
  // to true on a cache hit. On compute failure the error is returned
  // and nothing is memoized — the next engine with the same key runs
  // `compute` again and fails the same way.
  Result<std::shared_ptr<const Table>> GetOrCompute(
      Kind kind, const std::string& key,
      const std::function<Result<Table>()>& compute, bool* reused = nullptr);

  SharedJoinStats stats() const;

 private:
  struct Slot {
    std::mutex mu;           // Serializes computation of this key.
    bool done = false;       // Guarded by mu.
    std::shared_ptr<const Table> value;  // Immutable once done.
  };

  mutable std::mutex mu_;  // Guards slots_ map shape and stats_.
  std::map<std::string, std::unique_ptr<Slot>> slots_;
  SharedJoinStats stats_;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_SHARED_PLAN_H_
