#include "maintenance/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "io/log_format.h"

namespace mindetail {
namespace {

constexpr uint32_t kMagic = 0x4C57444D;  // "MDWL"

bool DecodeRecord(const std::string& payload,
                  WriteAheadLog::Record* record) {
  logfmt::PayloadReader reader(payload.data(), payload.size());
  if (!reader.ReadU64(&record->sequence) || !reader.ReadU8(&record->kind)) {
    return false;
  }
  if (record->kind != WriteAheadLog::kKindApply &&
      record->kind != WriteAheadLog::kKindTransaction &&
      record->kind != WriteAheadLog::kKindKeyedTransaction &&
      record->kind != WriteAheadLog::kKindEpochTransaction) {
    return false;
  }
  if (record->kind == WriteAheadLog::kKindEpochTransaction &&
      !reader.ReadU64(&record->epoch)) {
    return false;
  }
  if ((record->kind == WriteAheadLog::kKindKeyedTransaction ||
       record->kind == WriteAheadLog::kKindEpochTransaction) &&
      !reader.ReadString(&record->key)) {
    return false;
  }
  if (!reader.ReadChanges(&record->changes)) return false;
  return reader.AtEnd();
}

std::string EncodePayload(uint64_t sequence, uint8_t kind,
                          const std::map<std::string, Delta>& changes,
                          const std::string& key, uint64_t epoch) {
  std::string payload;
  logfmt::PutU64(&payload, sequence);
  logfmt::PutU8(&payload, kind);
  if (kind == WriteAheadLog::kKindEpochTransaction) {
    logfmt::PutU64(&payload, epoch);
  }
  if (kind == WriteAheadLog::kKindKeyedTransaction ||
      kind == WriteAheadLog::kKindEpochTransaction) {
    logfmt::PutString(&payload, key);
  }
  logfmt::PutChanges(&payload, changes);
  return payload;
}

// Scans `contents`, appending complete records to `records` (when
// non-null), and returns the byte offset just past the last complete
// record.
size_t ScanRecords(const std::string& contents,
                   std::vector<WriteAheadLog::Record>* records,
                   uint64_t* last_sequence, uint64_t* num_records) {
  return logfmt::ScanFrames(
      contents, kMagic, [&](const std::string& payload) {
        WriteAheadLog::Record record;
        if (!DecodeRecord(payload, &record)) return false;
        if (last_sequence != nullptr) *last_sequence = record.sequence;
        if (num_records != nullptr) ++*num_records;
        if (records != nullptr) records->push_back(std::move(record));
        return true;
      });
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      options_(other.options_),
      last_sequence_(other.last_sequence_),
      num_records_(other.num_records_),
      size_bytes_(other.size_bytes_),
      abortable_(other.abortable_),
      prev_last_sequence_(other.prev_last_sequence_),
      prev_size_bytes_(other.prev_size_bytes_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    options_ = other.options_;
    last_sequence_ = other.last_sequence_;
    num_records_ = other.num_records_;
    size_bytes_ = other.size_bytes_;
    abortable_ = other.abortable_;
    prev_last_sequence_ = other.prev_last_sequence_;
    prev_size_bytes_ = other.prev_size_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          Options options) {
  WriteAheadLog wal;
  wal.path_ = path;
  wal.options_ = options;

  std::string contents;
  if (Result<std::string> existing = logfmt::ReadFileContents(path);
      existing.ok()) {
    contents = std::move(*existing);
  }
  const size_t good_end = ScanRecords(contents, nullptr,
                                      &wal.last_sequence_,
                                      &wal.num_records_);

  wal.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (wal.fd_ < 0) {
    return InternalError(StrCat("cannot open WAL '", path,
                                "': ", std::strerror(errno)));
  }
  // Drop a torn tail so the next append starts on a clean frame
  // boundary.
  if (good_end < contents.size()) {
    if (::ftruncate(wal.fd_, static_cast<off_t>(good_end)) != 0) {
      return InternalError(StrCat("cannot truncate torn WAL tail of '",
                                  path, "': ", std::strerror(errno)));
    }
  }
  if (::lseek(wal.fd_, 0, SEEK_END) < 0) {
    return InternalError(StrCat("cannot seek WAL '", path,
                                "': ", std::strerror(errno)));
  }
  wal.size_bytes_ = good_end;
  return wal;
}

Result<std::vector<WriteAheadLog::Record>> WriteAheadLog::ReadAll(
    const std::string& path) {
  std::vector<Record> records;
  Result<std::string> contents = logfmt::ReadFileContents(path);
  if (!contents.ok()) return records;  // Missing log = empty log.
  ScanRecords(*contents, &records, nullptr, nullptr);
  return records;
}

Status WriteAheadLog::Append(uint64_t sequence, uint8_t kind,
                             const std::map<std::string, Delta>& changes,
                             const std::string& key, uint64_t epoch) {
  MD_CHECK_GE(fd_, 0);
  // Strictly increasing, including across Reset(): the warehouse keys
  // recovery off "record.sequence > checkpoint sequence", so a reused
  // sequence number would make a replay skip or double-apply a batch.
  if (sequence <= last_sequence_) {
    return InvalidArgumentError(
        StrCat("WAL sequence ", sequence, " does not advance past ",
               last_sequence_));
  }
  if (epoch > 0) {
    kind = kKindEpochTransaction;
  } else if (!key.empty()) {
    kind = kKindKeyedTransaction;
  }
  const std::string frame = logfmt::FrameRecord(
      kMagic, EncodePayload(sequence, kind, changes, key, epoch));

  // Once any byte of the frame is on disk, a failure must rewind the
  // log to the last acknowledged record: otherwise a complete-but-
  // unacknowledged frame survives, and a later crash recovery would
  // replay a batch the caller was told failed (and a retried append of
  // the same sequence would be shadowed by the dead frame).
  auto abandon = [&](Status status) {
    ::ftruncate(fd_, static_cast<off_t>(size_bytes_));
    ::lseek(fd_, static_cast<off_t>(size_bytes_), SEEK_SET);
    return status;
  };

  MD_FAILPOINT("wal.append.before_write");
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return abandon(InternalError(StrCat(
          "WAL write to '", path_, "' failed: ", std::strerror(errno))));
    }
    written += static_cast<size_t>(n);
  }
  if (Status s = FailpointCheck("wal.append.before_sync"); !s.ok()) {
    return abandon(std::move(s));
  }
  if (options_.sync && ::fsync(fd_) != 0) {
    return abandon(InternalError(StrCat(
        "WAL fsync of '", path_, "' failed: ", std::strerror(errno))));
  }
  if (Status s = FailpointCheck("wal.append.after_sync"); !s.ok()) {
    return abandon(std::move(s));
  }
  abortable_ = true;
  prev_last_sequence_ = last_sequence_;
  prev_size_bytes_ = size_bytes_;
  last_sequence_ = sequence;
  ++num_records_;
  size_bytes_ += frame.size();
  return Status::Ok();
}

Status WriteAheadLog::AbortLast(uint64_t sequence) {
  MD_CHECK_GE(fd_, 0);
  if (!abortable_ || sequence != last_sequence_) {
    return FailedPreconditionError(StrCat(
        "WAL abort of sequence ", sequence,
        " refused: only the most recent append (", last_sequence_,
        abortable_ ? "" : ", no longer abortable", ") can be undone"));
  }
  if (::ftruncate(fd_, static_cast<off_t>(prev_size_bytes_)) != 0) {
    return InternalError(StrCat("cannot truncate aborted WAL frame of '",
                                path_, "': ", std::strerror(errno)));
  }
  if (::lseek(fd_, static_cast<off_t>(prev_size_bytes_), SEEK_SET) < 0) {
    return InternalError(StrCat("cannot rewind WAL '", path_,
                                "': ", std::strerror(errno)));
  }
  if (options_.sync && ::fsync(fd_) != 0) {
    return InternalError(StrCat("WAL fsync of '", path_,
                                "' failed: ", std::strerror(errno)));
  }
  last_sequence_ = prev_last_sequence_;
  --num_records_;
  size_bytes_ = prev_size_bytes_;
  abortable_ = false;
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  MD_CHECK_GE(fd_, 0);
  if (::ftruncate(fd_, 0) != 0) {
    return InternalError(StrCat("cannot truncate WAL '", path_,
                                "': ", std::strerror(errno)));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return InternalError(StrCat("cannot rewind WAL '", path_,
                                "': ", std::strerror(errno)));
  }
  if (options_.sync && ::fsync(fd_) != 0) {
    return InternalError(StrCat("WAL fsync of '", path_,
                                "' failed: ", std::strerror(errno)));
  }
  // last_sequence_ is intentionally preserved: see Append().
  num_records_ = 0;
  size_bytes_ = 0;
  abortable_ = false;
  return Status::Ok();
}

WalStreamReader::WalStreamReader(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
}

Result<bool> WalStreamReader::FetchAndScan(Batch* batch) {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return true;  // No log yet = nothing shipped.
    return InternalError(StrCat("cannot open WAL '", path_,
                                "' for shipping: ", std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return InternalError(StrCat("cannot stat WAL '", path_,
                                "': ", std::strerror(err)));
  }
  if (static_cast<uint64_t>(st.st_size) < offset_) {
    // The writer truncated (checkpoint Reset or abandoned append):
    // everything we were mid-way through is gone. Restart from zero;
    // the sequence filter below drops frames already delivered.
    ::close(fd);
    offset_ = 0;
    pending_.clear();
    batch->restarted = true;
    return FetchAndScan(batch);
  }

  // Pull [offset_, EOF) in bounded chunks.
  std::string chunk(options_.chunk_bytes, '\0');
  while (true) {
    const ssize_t n = ::pread(fd, chunk.data(), chunk.size(),
                              static_cast<off_t>(offset_));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return InternalError(StrCat("cannot read WAL '", path_,
                                  "': ", std::strerror(err)));
    }
    if (n == 0) break;
    pending_.append(chunk.data(), static_cast<size_t>(n));
    offset_ += static_cast<uint64_t>(n);
    if (static_cast<size_t>(n) < chunk.size()) break;
  }
  ::close(fd);

  const logfmt::FrameScan scan = logfmt::ScanFramesDetail(
      pending_, kMagic, [&](const std::string& payload) {
        WriteAheadLog::Record record;
        if (!DecodeRecord(payload, &record)) return false;
        if (record.sequence > last_sequence_) {
          last_sequence_ = record.sequence;
          batch->records.push_back(std::move(record));
        }
        return true;
      });
  pending_.erase(0, scan.good_end);
  batch->torn_tail = scan.stop == logfmt::FrameScanStop::kTornTail;
  return scan.stop != logfmt::FrameScanStop::kCorrupt &&
         scan.stop != logfmt::FrameScanStop::kConsumerStop;
}

Result<WalStreamReader::Batch> WalStreamReader::Poll() {
  Batch batch;
  MD_ASSIGN_OR_RETURN(bool clean, FetchAndScan(&batch));
  if (!clean && !batch.restarted) {
    // A frame failed its checks mid-file. If the writer reset the log
    // and regrew it past our offset between polls, we may simply be
    // misaligned — rescan once from zero (the sequence filter keeps
    // delivery exactly-once) before declaring the bytes lost.
    offset_ = 0;
    pending_.clear();
    batch.restarted = true;
    MD_ASSIGN_OR_RETURN(clean, FetchAndScan(&batch));
  }
  if (!clean) {
    return DataLossError(StrCat("WAL '", path_,
                                "' has a corrupt frame at offset ",
                                offset_ - pending_.size()));
  }
  return batch;
}

}  // namespace mindetail
