#include "maintenance/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace mindetail {
namespace {

constexpr uint32_t kMagic = 0x4C57444D;  // "MDWL"
constexpr size_t kHeaderSize = 12;       // magic + length + crc.
// Frames larger than this are treated as corruption, not allocation
// requests.
constexpr uint32_t kMaxPayload = 1u << 30;

// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
uint32_t Crc32(const char* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      PutU8(out, 0);
      break;
    case ValueType::kInt64: {
      PutU8(out, 1);
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    }
    case ValueType::kDouble: {
      PutU8(out, 2);
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutU8(out, 3);
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& tuple) {
  PutU32(out, static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple) PutValue(out, v);
}

void PutDelta(std::string* out, const Delta& delta) {
  PutU32(out, static_cast<uint32_t>(delta.inserts.size()));
  PutU32(out, static_cast<uint32_t>(delta.deletes.size()));
  PutU32(out, static_cast<uint32_t>(delta.updates.size()));
  for (const Tuple& t : delta.inserts) PutTuple(out, t);
  for (const Tuple& t : delta.deletes) PutTuple(out, t);
  for (const Update& u : delta.updates) {
    PutTuple(out, u.before);
    PutTuple(out, u.after);
  }
}

// Bounds-checked little-endian reader over one payload.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len) || pos_ + len > size_) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool ReadValue(Value* v) {
    uint8_t tag;
    if (!ReadU8(&tag)) return false;
    switch (tag) {
      case 0:
        *v = Value();
        return true;
      case 1: {
        uint64_t raw;
        if (!ReadU64(&raw)) return false;
        *v = Value(static_cast<int64_t>(raw));
        return true;
      }
      case 2: {
        uint64_t bits;
        if (!ReadU64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, 8);
        *v = Value(d);
        return true;
      }
      case 3: {
        std::string s;
        if (!ReadString(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }
  bool ReadTuple(Tuple* tuple) {
    uint32_t arity;
    if (!ReadU32(&arity) || arity > size_ - pos_) return false;
    tuple->clear();
    tuple->reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      Value v;
      if (!ReadValue(&v)) return false;
      tuple->push_back(std::move(v));
    }
    return true;
  }
  bool ReadDelta(Delta* delta) {
    uint32_t ins, del, upd;
    if (!ReadU32(&ins) || !ReadU32(&del) || !ReadU32(&upd)) return false;
    for (uint32_t i = 0; i < ins; ++i) {
      Tuple t;
      if (!ReadTuple(&t)) return false;
      delta->inserts.push_back(std::move(t));
    }
    for (uint32_t i = 0; i < del; ++i) {
      Tuple t;
      if (!ReadTuple(&t)) return false;
      delta->deletes.push_back(std::move(t));
    }
    for (uint32_t i = 0; i < upd; ++i) {
      Update u;
      if (!ReadTuple(&u.before) || !ReadTuple(&u.after)) return false;
      delta->updates.push_back(std::move(u));
    }
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

bool DecodeRecord(const std::string& payload,
                  WriteAheadLog::Record* record) {
  PayloadReader reader(payload.data(), payload.size());
  uint32_t num_tables;
  if (!reader.ReadU64(&record->sequence) || !reader.ReadU8(&record->kind) ||
      !reader.ReadU32(&num_tables)) {
    return false;
  }
  if (record->kind != WriteAheadLog::kKindApply &&
      record->kind != WriteAheadLog::kKindTransaction) {
    return false;
  }
  for (uint32_t i = 0; i < num_tables; ++i) {
    std::string table;
    Delta delta;
    if (!reader.ReadString(&table) || !reader.ReadDelta(&delta)) {
      return false;
    }
    if (!record->changes.emplace(std::move(table), std::move(delta))
             .second) {
      return false;
    }
  }
  return reader.AtEnd();
}

std::string EncodePayload(uint64_t sequence, uint8_t kind,
                          const std::map<std::string, Delta>& changes) {
  std::string payload;
  PutU64(&payload, sequence);
  PutU8(&payload, kind);
  PutU32(&payload, static_cast<uint32_t>(changes.size()));
  for (const auto& [table, delta] : changes) {
    PutString(&payload, table);
    PutDelta(&payload, delta);
  }
  return payload;
}

// Scans `contents`, appending complete records to `records` (when
// non-null), and returns the byte offset just past the last complete
// record.
size_t ScanRecords(const std::string& contents,
                   std::vector<WriteAheadLog::Record>* records,
                   uint64_t* last_sequence, uint64_t* num_records) {
  size_t good_end = 0;
  size_t pos = 0;
  while (pos + kHeaderSize <= contents.size()) {
    uint32_t magic, length, crc;
    std::memcpy(&magic, contents.data() + pos, 4);
    std::memcpy(&length, contents.data() + pos + 4, 4);
    std::memcpy(&crc, contents.data() + pos + 8, 4);
    if (magic != kMagic || length > kMaxPayload ||
        pos + kHeaderSize + length > contents.size()) {
      break;
    }
    const std::string payload =
        contents.substr(pos + kHeaderSize, length);
    if (Crc32(payload.data(), payload.size()) != crc) break;
    WriteAheadLog::Record record;
    if (!DecodeRecord(payload, &record)) break;
    if (last_sequence != nullptr) *last_sequence = record.sequence;
    if (num_records != nullptr) ++*num_records;
    if (records != nullptr) records->push_back(std::move(record));
    pos += kHeaderSize + length;
    good_end = pos;
  }
  return good_end;
}

Result<std::string> ReadFileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError(StrCat("cannot open '", path, "'"));
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      options_(other.options_),
      last_sequence_(other.last_sequence_),
      num_records_(other.num_records_),
      size_bytes_(other.size_bytes_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    options_ = other.options_;
    last_sequence_ = other.last_sequence_;
    num_records_ = other.num_records_;
    size_bytes_ = other.size_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          Options options) {
  WriteAheadLog wal;
  wal.path_ = path;
  wal.options_ = options;

  std::string contents;
  if (Result<std::string> existing = ReadFileContents(path); existing.ok()) {
    contents = std::move(*existing);
  }
  const size_t good_end = ScanRecords(contents, nullptr,
                                      &wal.last_sequence_,
                                      &wal.num_records_);

  wal.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (wal.fd_ < 0) {
    return InternalError(StrCat("cannot open WAL '", path,
                                "': ", std::strerror(errno)));
  }
  // Drop a torn tail so the next append starts on a clean frame
  // boundary.
  if (good_end < contents.size()) {
    if (::ftruncate(wal.fd_, static_cast<off_t>(good_end)) != 0) {
      return InternalError(StrCat("cannot truncate torn WAL tail of '",
                                  path, "': ", std::strerror(errno)));
    }
  }
  if (::lseek(wal.fd_, 0, SEEK_END) < 0) {
    return InternalError(StrCat("cannot seek WAL '", path,
                                "': ", std::strerror(errno)));
  }
  wal.size_bytes_ = good_end;
  return wal;
}

Result<std::vector<WriteAheadLog::Record>> WriteAheadLog::ReadAll(
    const std::string& path) {
  std::vector<Record> records;
  Result<std::string> contents = ReadFileContents(path);
  if (!contents.ok()) return records;  // Missing log = empty log.
  ScanRecords(*contents, &records, nullptr, nullptr);
  return records;
}

Status WriteAheadLog::Append(uint64_t sequence, uint8_t kind,
                             const std::map<std::string, Delta>& changes) {
  MD_CHECK_GE(fd_, 0);
  if (sequence <= last_sequence_ && num_records_ > 0) {
    return InvalidArgumentError(
        StrCat("WAL sequence ", sequence, " does not advance past ",
               last_sequence_));
  }
  const std::string payload = EncodePayload(sequence, kind, changes);
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  PutU32(&frame, kMagic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);

  MD_FAILPOINT("wal.append.before_write");
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrCat("WAL write to '", path_,
                                  "' failed: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  MD_FAILPOINT("wal.append.before_sync");
  if (options_.sync && ::fsync(fd_) != 0) {
    return InternalError(StrCat("WAL fsync of '", path_,
                                "' failed: ", std::strerror(errno)));
  }
  MD_FAILPOINT("wal.append.after_sync");
  last_sequence_ = sequence;
  ++num_records_;
  size_bytes_ += frame.size();
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  MD_CHECK_GE(fd_, 0);
  if (::ftruncate(fd_, 0) != 0) {
    return InternalError(StrCat("cannot truncate WAL '", path_,
                                "': ", std::strerror(errno)));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return InternalError(StrCat("cannot rewind WAL '", path_,
                                "': ", std::strerror(errno)));
  }
  if (options_.sync && ::fsync(fd_) != 0) {
    return InternalError(StrCat("WAL fsync of '", path_,
                                "' failed: ", std::strerror(errno)));
  }
  num_records_ = 0;
  size_bytes_ = 0;
  return Status::Ok();
}

}  // namespace mindetail
