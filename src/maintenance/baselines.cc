#include "maintenance/baselines.h"

#include <algorithm>

#include "common/strings.h"
#include "gpsj/builder.h"
#include "relational/ops.h"

namespace mindetail {

// ---------------------------------------------------------------------
// FullReplicationMaintainer
// ---------------------------------------------------------------------

Result<FullReplicationMaintainer> FullReplicationMaintainer::Create(
    const Catalog& source, const GpsjViewDef& def) {
  FullReplicationMaintainer maintainer;
  maintainer.def_ = def;
  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* base, source.GetTable(table));
    MD_ASSIGN_OR_RETURN(std::string key, source.KeyAttr(table));
    MD_RETURN_IF_ERROR(
        maintainer.replica_.CreateTable(table, base->schema(), key));
    MD_ASSIGN_OR_RETURN(Table* replica,
                        maintainer.replica_.MutableTable(table));
    for (const Tuple& row : base->rows()) {
      MD_RETURN_IF_ERROR(replica->Insert(row));
    }
  }
  return maintainer;
}

Status FullReplicationMaintainer::Apply(const std::string& table,
                                        const Delta& delta) {
  MD_ASSIGN_OR_RETURN(Table* replica, replica_.MutableTable(table));
  return ApplyDelta(replica, delta);
}

Result<Table> FullReplicationMaintainer::View() const {
  return EvaluateGpsj(replica_, def_);
}

uint64_t FullReplicationMaintainer::DetailPaperSizeBytes() const {
  uint64_t total = 0;
  for (const std::string& table : def_.tables()) {
    total += (*replica_.GetTable(table))->PaperSizeBytes();
  }
  return total;
}

uint64_t FullReplicationMaintainer::DetailActualSizeBytes() const {
  uint64_t total = 0;
  for (const std::string& table : def_.tables()) {
    total += (*replica_.GetTable(table))->ActualSizeBytes();
  }
  return total;
}

const Table& FullReplicationMaintainer::ReplicaContents(
    const std::string& table) const {
  Result<const Table*> result = replica_.GetTable(table);
  MD_CHECK(result.ok());
  return **result;
}

// ---------------------------------------------------------------------
// PsjStyleMaintainer
// ---------------------------------------------------------------------

namespace {

// Rebuilds `def` without its local selection conditions (they are
// pre-applied in the detail tables).
Result<GpsjViewDef> StripLocalConditions(const GpsjViewDef& def,
                                         const Catalog& catalog) {
  GpsjViewBuilder builder(def.name());
  for (const std::string& table : def.tables()) builder.From(table);
  for (const JoinEdge& edge : def.joins()) {
    builder.Join(edge.from_table, edge.from_attr, edge.to_table);
  }
  for (const std::string& table : def.tables()) {
    for (const DerivedAttr& d : def.DerivedAttrsOf(table)) {
      if (d.rhs_attr.empty()) {
        builder.DeriveConst(table, d.name, d.lhs, d.op, d.rhs_constant);
      } else {
        builder.Derive(table, d.name, d.lhs, d.op, d.rhs_attr);
      }
    }
  }
  for (const OutputItem& item : def.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      builder.GroupBy(item.attr.table, item.attr.attr, item.output_name);
    } else {
      builder.Aggregate(item.agg);
    }
  }
  return builder.Build(catalog);
}

}  // namespace

Result<PsjStyleMaintainer> PsjStyleMaintainer::Create(
    const Catalog& source, const GpsjViewDef& def) {
  PsjStyleMaintainer maintainer;
  maintainer.def_ = def;
  MD_ASSIGN_OR_RETURN(maintainer.recompute_def_,
                      StripLocalConditions(def, source));
  MD_ASSIGN_OR_RETURN(maintainer.derivation_,
                      Derivation::Derive(def, source));

  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* base, source.GetTable(table));
    maintainer.base_schemas_.emplace(table, base->schema());
    MD_ASSIGN_OR_RETURN(std::string key, source.KeyAttr(table));
    const AuxViewDef& aux = maintainer.derivation_.aux_for(table);
    std::vector<std::string> attrs = aux.reduction.attrs;
    if (std::find(attrs.begin(), attrs.end(), key) == attrs.end()) {
      attrs.push_back(key);  // PSJ detail tables must retain the key.
    }
    maintainer.stored_attrs_.emplace(table, std::move(attrs));
  }

  // Materialize detail tables leaves-first so semijoin reductions see
  // their dependencies.
  std::vector<std::string> order =
      maintainer.derivation_.graph().TopologicalOrder();
  std::reverse(order.begin(), order.end());
  for (const std::string& table : order) {
    const AuxViewDef& aux = maintainer.derivation_.aux_for(table);
    MD_ASSIGN_OR_RETURN(const Table* base, source.GetTable(table));
    MD_ASSIGN_OR_RETURN(Table current,
                        Select(*base, aux.reduction.conditions));
    MD_ASSIGN_OR_RETURN(current,
                        def.AppendDerivedColumns(table, std::move(current)));
    MD_ASSIGN_OR_RETURN(
        current, Project(current, maintainer.stored_attrs_.at(table),
                         /*distinct=*/false));
    for (const AuxDependency& dep : aux.dependencies) {
      MD_ASSIGN_OR_RETURN(
          current, SemiJoin(current, maintainer.detail_.at(dep.to_table),
                            dep.from_attr,
                            maintainer.derivation_.aux_for(dep.to_table)
                                .key_attr));
    }
    MD_ASSIGN_OR_RETURN(std::string key, source.KeyAttr(table));
    MD_ASSIGN_OR_RETURN(Table keyed,
                        Table::WithKey(StrCat(table, "PSJ"),
                                       current.schema(), key));
    for (const Tuple& row : current.rows()) {
      MD_RETURN_IF_ERROR(keyed.Insert(row));
    }
    maintainer.detail_.emplace(table, std::move(keyed));
  }
  return maintainer;
}

Status PsjStyleMaintainer::Apply(const std::string& table,
                                 const Delta& delta) {
  auto it = detail_.find(table);
  if (it == detail_.end()) {
    return NotFoundError(
        StrCat("table '", table, "' not maintained by this view"));
  }
  Table& stored = it->second;
  const AuxViewDef& aux = derivation_.aux_for(table);
  const Schema& base_schema = base_schemas_.at(table);
  const size_t key_idx = *base_schema.IndexOf(aux.key_attr);

  const Delta normalized = NormalizeUpdates(delta);

  // Deletions: drop by key; a tuple that never passed the local
  // conditions is simply absent.
  for (const Tuple& row : normalized.deletes) {
    if (row.size() != base_schema.size()) {
      return InvalidArgumentError(
          StrCat("delete arity mismatch against '", table, "'"));
    }
    if (stored.ContainsKey(row[key_idx])) {
      MD_RETURN_IF_ERROR(stored.DeleteByKey(row[key_idx]));
    }
  }

  // Insertions: σ + π + semijoin reductions, then insert.
  Table staged(StrCat("delta_", table), base_schema);
  for (const Tuple& row : normalized.inserts) {
    MD_RETURN_IF_ERROR(staged.Insert(row));
  }
  MD_ASSIGN_OR_RETURN(Table current,
                      Select(staged, aux.reduction.conditions));
  MD_ASSIGN_OR_RETURN(
      current, def_.AppendDerivedColumns(table, std::move(current)));
  MD_ASSIGN_OR_RETURN(current,
                      Project(current, stored_attrs_.at(table), false));
  for (const AuxDependency& dep : aux.dependencies) {
    MD_ASSIGN_OR_RETURN(
        current, SemiJoin(current, detail_.at(dep.to_table), dep.from_attr,
                          derivation_.aux_for(dep.to_table).key_attr));
  }
  for (const Tuple& row : current.rows()) {
    MD_RETURN_IF_ERROR(stored.Insert(row));
  }
  return Status::Ok();
}

Result<Table> PsjStyleMaintainer::View() const {
  std::map<std::string, const Table*> tables;
  for (const auto& [name, table] : detail_) {
    tables.emplace(name, &table);
  }
  return EvaluateGpsjOver(tables, recompute_def_);
}

uint64_t PsjStyleMaintainer::DetailPaperSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, table] : detail_) total += table.PaperSizeBytes();
  return total;
}

uint64_t PsjStyleMaintainer::DetailActualSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, table] : detail_) total += table.ActualSizeBytes();
  return total;
}

const Table& PsjStyleMaintainer::DetailContents(
    const std::string& table) const {
  auto it = detail_.find(table);
  MD_CHECK(it != detail_.end());
  return it->second;
}

}  // namespace mindetail
