// Self-maintenance of a GPSJ view from its minimal auxiliary views.
//
// After Create() reads the source once to materialize the auxiliary
// views and the summary table, the engine never touches base tables
// again: every change batch (Delta) is propagated using only the delta
// itself, the auxiliary views, and the materialized summary — the
// self-maintainability property of paper Theorem 1, made operational.
//
// Maintenance paths:
//  * Root (fact) deltas are locally reduced, semijoin-reduced against
//    the dimension auxiliary views, compressed, merged into the root
//    auxiliary view, and joined with the dimension auxiliary views to
//    produce CSMAS contribution deltas for the summary (paper Sec. 3.2).
//  * Dimension deltas update the dimension's auxiliary view; their
//    effect on the summary is computed by joining the delta fragment
//    with the root auxiliary view (the *delta join*). Changes to fully
//    dependable dimensions (key join + referential integrity + no
//    exposed updates along the whole path) provably cannot change the
//    summary and are skipped.
//  * Non-CSMAS outputs (MIN/MAX/DISTINCT) of affected groups are
//    recomputed from the auxiliary views (paper Sec. 3.2).
//  * With an eliminated root auxiliary view (Sec. 3.3), root deltas are
//    applied directly to the summary, and updates to the (necessarily
//    key-grouped) dimensions rewrite the summary in place.

#ifndef MINDETAIL_MAINTENANCE_ENGINE_H_
#define MINDETAIL_MAINTENANCE_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "core/derive.h"
#include "core/reconstruct.h"
#include "gpsj/evaluator.h"
#include "maintenance/aux_store.h"
#include "maintenance/shared_plan.h"
#include "relational/delta.h"

namespace mindetail {

// The incrementally maintained summary table: exact CSMAS accumulators
// (a shadow COUNT(*) plus one running SUM per SUM/AVG output) and cached
// values for non-CSMAS outputs.
class SummaryStore {
 public:
  SummaryStore() = default;

  static Result<SummaryStore> Create(const GpsjViewDef& def,
                                     const Catalog& catalog);

  // Also used for testability: true when the view was classified as
  // insert-only at creation time.
  bool insert_only() const { return insert_only_; }

  // The view to evaluate for the initial load: the original outputs
  // followed by the hidden shadow count and running sums.
  const GpsjViewDef& augmented_def() const { return augmented_def_; }

  // Loads state from an evaluation of augmented_def() — or from a
  // RenderAugmented() table written by a checkpoint.
  Status LoadFrom(const Table& augmented_rows);

  // Schema of RenderAugmented(): the view outputs followed by the
  // hidden shadow count and running-sum columns.
  Schema AugmentedSchema() const;

  // Renders every maintained group — HAVING ignored, hidden state
  // columns included — sorted for deterministic bytes.
  // LoadFrom(RenderAugmented()) restores bit-identical state.
  Result<Table> RenderAugmented() const;

  // Merges a contribution table (ComputeContributions output) with the
  // given sign (+1 insertions, -1 deletions). Appends every touched
  // group key to `affected` when non-null.
  Status ApplyContributions(const Table& contributions, int sign,
                            GroupKeySet* affected);

  // Overwrites the non-CSMAS cached outputs of `groups` from
  // `recomputed` (a final-view-shaped table covering exactly the groups
  // of `groups` that are still alive).
  Status UpdateCachedFrom(const Table& recomputed,
                          const GroupKeySet& groups);

  // Direct summary rewrite for updates to a key-grouped dimension when
  // the root auxiliary view is eliminated: for every group whose
  // `key_pos`-th group column equals `key`, overwrite the group columns
  // listed in `group_rewrites` (position → new value) and adjust the
  // SUM slots listed in `sum_adjust` (slot → per-duplicate delta, which
  // is scaled by the group's shadow count).
  Status RewriteGroupsByKey(
      size_t key_pos, const Value& key,
      const std::map<size_t, Value>& group_rewrites,
      const std::map<size_t, Value>& sum_adjust);

  bool has_non_csmas() const { return num_cached_slots_ > 0; }
  bool GroupAlive(const Tuple& key) const { return groups_.count(key) > 0; }
  size_t NumGroups() const { return groups_.size(); }

  // Position of a group-by output that references `ref` within the
  // group key, or -1.
  int GroupPositionOf(const AttributeRef& ref) const;
  // SUM-slot index maintained for aggregate output `output_name`, or -1.
  int SumSlotOf(const std::string& output_name) const;

  // Renders the current view contents (view-output columns, sorted).
  Result<Table> Render() const;

 private:
  // How one view output is rendered. kMinInc/kMaxInc only arise for
  // insert-only derivations (paper Sec. 4), where MIN/MAX merge
  // monotonically instead of requiring recomputation.
  struct Slot {
    enum class Kind {
      kGroupBy,
      kCount,
      kSum,
      kAvg,
      kMinInc,
      kMaxInc,
      kCached,
    };
    Kind kind = Kind::kGroupBy;
    int index = 0;  // Group position, sum/minmax slot, or cached slot.
    ValueType type = ValueType::kInt64;
  };

  struct GroupState {
    int64_t shadow = 0;
    std::vector<Value> sums;
    std::vector<Value> minmax;
    std::vector<Value> cached;
  };

  GpsjViewDef def_;
  GpsjViewDef augmented_def_;
  std::vector<Slot> slots_;  // One per view output.
  std::vector<AttributeRef> group_refs_;
  std::vector<std::string> sum_slot_outputs_;  // Output name per sum slot.
  // Element type of each running sum (the aggregate input's type; for
  // AVG this differs from the rendered double) — drives the hidden
  // columns of AugmentedSchema().
  std::vector<ValueType> sum_slot_types_;
  // Output name and direction per incremental MIN/MAX slot.
  std::vector<std::pair<std::string, AggFn>> minmax_slot_outputs_;
  size_t num_cached_slots_ = 0;
  bool insert_only_ = false;
  Schema render_schema_;
  std::unordered_map<Tuple, GroupState, TupleHash, TupleEqual> groups_;
};

struct EngineOptions {
  // When true (default), deltas against fully dependable dimensions —
  // key join + declared referential integrity + no exposed updates on
  // every edge from the root — skip the delta join entirely: the paper's
  // constraints guarantee they cannot change the view. Disable to force
  // the general path (ablation benches do).
  bool trust_referential_integrity = true;
  // When true (default), delta joins touch only the tables that supply
  // view outputs (plus connecting path) — the maintenance use of the
  // Need machinery the paper points at ("this can be exploited in view
  // maintenance", Sec. 3.3). Disable to join every auxiliary view
  // (ablation).
  bool prune_delta_joins = true;
  // Forwarded to Algorithm 3.2 (ablation: disable Sec. 3.3 elimination).
  DeriveOptions derive;
  // Worker threads for the sharded maintenance path. 1 (default) keeps
  // everything on the calling thread with the exact serial code path.
  // With N > 1, delta fragments are prepared over N shards (compressed
  // plans hash-partition rows by group key; plain plans chunk
  // contiguously), delta joins run over contiguous root chunks,
  // auxiliary-store merges and affected-group recomputation shard by
  // group key, all re-merged deterministically — the maintained state
  // and the view are bit-identical to the serial engine at every thread
  // count.
  int num_threads = 1;
};

// Maintenance statistics (exposed for benches and tests).
struct EngineStats {
  uint64_t batches_applied = 0;
  uint64_t rows_processed = 0;
  // Delta joins *planned* (a non-empty fragment had to reach the
  // summary), *executed* by this engine, and satisfied by a shared-plan
  // *reuse* instead. planned == executed + reused always; joins skipped
  // by pruning, shielding, or empty fragments appear in none of them.
  uint64_t delta_joins_planned = 0;
  uint64_t delta_joins_executed = 0;
  uint64_t delta_joins_reused = 0;
  uint64_t group_recomputes = 0;
  uint64_t shielded_skips = 0;
};

class SelfMaintenanceEngine {
 public:
  // Runs Algorithm 3.2, materializes the auxiliary views and the
  // summary from `source`. This is the only time base tables are read.
  static Result<SelfMaintenanceEngine> Create(
      const Catalog& source, const GpsjViewDef& def,
      EngineOptions options = EngineOptions{});

  // Reconstructs an engine from checkpointed state without reading any
  // base-table rows: `schema_source` supplies table schemas, keys, and
  // integrity metadata only (Algorithm 3.2's derivation is purely
  // structural); `aux_contents` holds each non-eliminated auxiliary
  // view's table and `augmented_summary` a RenderAugmented() table.
  static Result<SelfMaintenanceEngine> Restore(
      const Catalog& schema_source, const GpsjViewDef& def,
      EngineOptions options, std::map<std::string, Table> aux_contents,
      const Table& augmented_summary);

  // Opaque copy of the whole mutable maintenance state (auxiliary
  // stores, summary, statistics). Cheap relative to a batch apply only
  // in the sense that it allocates no derived structures; it is a deep
  // copy, used by Warehouse to make multi-engine application atomic.
  struct StateSnapshot {
    std::map<std::string, AuxStore> aux;
    SummaryStore summary;
    EngineStats stats;
  };
  StateSnapshot SnapshotState() const {
    return StateSnapshot{aux_, summary_, stats_};
  }
  // Reverts to a snapshot taken on this engine (any failed or partial
  // applies since are rolled back completely).
  void RestoreState(StateSnapshot snapshot) {
    aux_ = std::move(snapshot.aux);
    summary_ = std::move(snapshot.summary);
    stats_ = snapshot.stats;
  }

  // Propagates a change batch against base table `table`. Tuples carry
  // full before-/after-images; the engine never consults base tables.
  // Batches must be applied in a referential-integrity-consistent order
  // (delete facts before their dimensions; insert dimensions before
  // facts that reference them). When `shared` is non-null and this
  // engine carries a nonzero lineage token, root-delta fragments and
  // delta joins go through the per-batch shared cache — bit-identical
  // to the unshared path (see shared_plan.h). A non-null `cancel` is
  // polled between maintenance stages and inside sharded fragment
  // workers; a tripped token surfaces kCancelled/kDeadlineExceeded,
  // which the caller handles exactly like any other mid-apply failure
  // (Warehouse rolls the engine back to its pre-batch snapshot).
  Status Apply(const std::string& table, const Delta& delta,
               SharedJoinCache* shared = nullptr,
               const CancellationToken* cancel = nullptr);

  // Applies a multi-table change set as one unit, ordering the pieces
  // for referential-integrity consistency automatically: deletions run
  // root-first down the join tree, then insertions and updates run
  // leaves-first — so facts never dangle.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes,
                          SharedJoinCache* shared = nullptr,
                          const CancellationToken* cancel = nullptr);

  // The current view contents (view-output columns, sorted rows).
  Result<Table> View() const { return summary_.Render(); }

  // Recomputes the full view contents from the auxiliary views alone
  // (fails when the root auxiliary view was eliminated — V itself is
  // then the only copy of its data). Used by the integrity scrubber to
  // cross-check the incrementally maintained summary against the
  // auxiliary state it is supposed to be derivable from.
  Result<Table> ReconstructFromAux() const;

  const Derivation& derivation() const { return derivation_; }
  const EngineStats& stats() const { return stats_; }
  const EngineOptions& options() const { return options_; }

  // Lineage token for shared-plan eligibility: equal tokens certify
  // that two engines were registered over identical contents at the
  // same warehouse sequence, so equal structural signatures imply
  // byte-identical auxiliary state forever after. 0 means unknown
  // (e.g. restored from a pre-lineage checkpoint) and disables
  // sharing for this engine. Assigned by Warehouse, persisted in
  // checkpoints.
  uint64_t shared_lineage() const { return shared_lineage_; }
  void set_shared_lineage(uint64_t token) { shared_lineage_ = token; }

  // Canonical signatures of this engine's root-delta work (computed
  // once at creation; see core/plan_signature.h).
  const std::string& root_fragment_signature() const {
    return root_fragment_sig_;
  }
  const std::string& root_join_signature() const { return root_join_sig_; }

  // The summary with hidden state columns, for checkpointing (see
  // SummaryStore::RenderAugmented).
  Result<Table> RenderAugmentedSummary() const {
    return summary_.RenderAugmented();
  }
  Schema AugmentedSummarySchema() const {
    return summary_.AugmentedSchema();
  }

  bool HasAux(const std::string& table) const {
    return aux_.count(table) > 0;
  }
  const Table& AuxContents(const std::string& table) const;

  // Total current detail footprint under the paper's 4-bytes-per-field
  // model / honest in-memory accounting.
  uint64_t AuxPaperSizeBytes() const;
  uint64_t AuxActualSizeBytes() const;

 private:
  SelfMaintenanceEngine() = default;

  // The shared structural part of Create/Restore: derivation, schema
  // and integrity metadata, summary-store shape — everything except
  // auxiliary/summary *contents*.
  static Result<SelfMaintenanceEngine> CreateSkeleton(
      const Catalog& catalog, const GpsjViewDef& def,
      EngineOptions options);

  // σ local → π reduced attrs → ⋉ dependency aux views → compression.
  // The result stands in for the table's auxiliary view in delta joins.
  // With a thread pool, `rows` are sharded, piped through
  // RunFragmentPipeline concurrently, and re-merged into the exact
  // serial result (see EngineOptions::num_threads). `dims` holds the
  // batch's prebuilt dimension indexes (semijoin probe sides).
  Result<Table> PrepareFragment(const std::string& table,
                                const std::vector<Tuple>& rows,
                                const DimensionIndex* dims) const;

  // The serial fragment pipeline over one staged slice of a delta.
  Result<Table> RunFragmentPipeline(const std::string& table, Table staged,
                                    const DimensionIndex* dims) const;

  std::map<std::string, const Table*> AuxTableMap() const;

  // Ok unless the in-flight Apply's token tripped.
  Status CheckCancel() const {
    return cancel_ == nullptr ? Status::Ok() : cancel_->Check();
  }

  Status ApplyRootDelta(const Delta& delta, SharedJoinCache* shared);
  Status ApplyDimDelta(const std::string& table, const Delta& delta);
  Status ApplyEliminatedDimUpdates(const std::string& table,
                                   const std::vector<Update>& updates);

  // Joins `fragment` (standing in for `table`) with the other auxiliary
  // views and merges the resulting CSMAS contributions with `sign`.
  // With a non-empty `shared_tag` (root path only), the contribution
  // table is memoized in `shared` under the tag + lineage + join
  // signature so structurally identical siblings reuse it.
  Status ApplyFragmentToSummary(const std::string& table,
                                const Table& fragment, int sign,
                                GroupKeySet* affected,
                                const DimensionIndex* dims,
                                SharedJoinCache* shared = nullptr,
                                const std::string& shared_tag = {});

  // Recomputes non-CSMAS outputs of the still-alive affected groups.
  // `dims` must not cover any auxiliary view changed since it was built.
  Status RecomputeAffected(const GroupKeySet& affected,
                           const DimensionIndex* dims);

  Derivation derivation_;
  EngineOptions options_;
  EngineStats stats_;
  std::map<std::string, Schema> base_schemas_;
  std::map<std::string, std::string> base_keys_;
  // True when every edge on the path root → table is a dependence.
  std::map<std::string, bool> shielded_;
  // Attributes of each table whose update would be "exposed" (local
  // condition attributes plus child-join attributes).
  std::map<std::string, std::set<std::string>> exposed_attrs_;
  // Tables declared (in the source catalog) to have exposed updates.
  std::set<std::string> exposed_flagged_;
  // Tables declared append-only: deletions and updates are rejected.
  std::set<std::string> append_only_;
  std::map<std::string, AuxStore> aux_;
  SummaryStore summary_;
  // Shared-plan identity: lineage token (0 = sharing disabled) and the
  // precomputed canonical signatures of the root fragment pipeline and
  // root delta join (fixed per engine — `required` depends only on the
  // derivation and options).
  uint64_t shared_lineage_ = 0;
  std::string root_fragment_sig_;
  std::string root_join_sig_;
  // Non-null iff options_.num_threads > 1 (shared_ptr so the engine
  // stays movable with ThreadPool forward-declared).
  std::shared_ptr<ThreadPool> pool_;
  // The in-flight Apply's cancellation token (null outside an apply).
  // Set at Apply entry so the const fragment pipeline can poll it
  // without threading a parameter through every private signature.
  const CancellationToken* cancel_ = nullptr;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_ENGINE_H_
