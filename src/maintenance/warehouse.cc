#include "maintenance/warehouse.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/plan_signature.h"
#include "io/log_format.h"
#include "io/warehouse_io.h"

namespace mindetail {
namespace {

EngineOptionsData ToOptionsData(const EngineOptions& options) {
  EngineOptionsData data;
  data.num_threads = options.num_threads;
  data.trust_referential_integrity = options.trust_referential_integrity;
  data.prune_delta_joins = options.prune_delta_joins;
  data.allow_elimination = options.derive.allow_elimination;
  return data;
}

EngineOptions FromOptionsData(const EngineOptionsData& data) {
  EngineOptions options;
  options.num_threads = data.num_threads;
  options.trust_referential_integrity = data.trust_referential_integrity;
  options.prune_delta_joins = data.prune_delta_joins;
  options.derive.allow_elimination = data.allow_elimination;
  return options;
}

// WarehouseCheckpoint::ingest_state encoding: u32 version, the key
// ledger, then the idempotency window (u32 count + entries, oldest
// first). Version 2 tags each window key with the sequence its batch
// committed under (what a duplicate resend is acked with); version 1
// carried bare keys and reads back with sequence 0 ("unknown").
constexpr uint32_t kIngestStateVersion = 2;

std::string ComposeIngestState(
    const KeyLedger& ledger,
    const std::deque<std::pair<std::string, uint64_t>>& recent_keys) {
  std::string out;
  logfmt::PutU32(&out, kIngestStateVersion);
  ledger.SerializeInto(&out);
  logfmt::PutU32(&out, static_cast<uint32_t>(recent_keys.size()));
  for (const auto& [key, sequence] : recent_keys) {
    logfmt::PutString(&out, key);
    logfmt::PutU64(&out, sequence);
  }
  return out;
}

Status ParseIngestState(
    const std::string& payload, KeyLedger* ledger,
    std::deque<std::pair<std::string, uint64_t>>* recent_keys) {
  logfmt::PayloadReader reader(payload.data(), payload.size());
  uint32_t version = 0;
  if (!reader.ReadU32(&version) ||
      (version != 1 && version != kIngestStateVersion)) {
    return InternalError("checkpoint ingest state has unknown version");
  }
  const size_t ledger_at = reader.pos();
  size_t consumed = 0;
  MD_ASSIGN_OR_RETURN(
      *ledger, KeyLedger::Deserialize(payload.substr(ledger_at), &consumed));
  logfmt::PayloadReader tail(payload.data() + ledger_at + consumed,
                             payload.size() - ledger_at - consumed);
  uint32_t num_keys = 0;
  if (!tail.ReadU32(&num_keys)) {
    return InternalError("checkpoint ingest state is truncated");
  }
  recent_keys->clear();
  for (uint32_t i = 0; i < num_keys; ++i) {
    std::string key;
    uint64_t sequence = 0;
    if (!tail.ReadString(&key) ||
        (version >= 2 && !tail.ReadU64(&sequence))) {
      return InternalError("checkpoint ingest state is truncated");
    }
    recent_keys->emplace_back(std::move(key), sequence);
  }
  if (!tail.AtEnd()) {
    return InternalError("checkpoint ingest state has trailing bytes");
  }
  return Status::Ok();
}

// Approximate table equality for the scrubber's reconstruction check:
// exact for ints/strings/NULLs, relative-tolerance for doubles (the
// incremental accumulators and a fresh recomputation may round
// differently).
bool ValuesClose(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == ValueType::kDouble) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    const double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return a.Compare(b) == 0;
}

// Deterministic content hashing for the shared-plan lineage token.
// Doubles hash by bit pattern (never via text rendering), so two
// engines hash equal exactly when their state is byte-identical.
uint64_t HashValueInto(uint64_t hash, const Value& value) {
  hash = HashCombine(hash, static_cast<uint64_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      return hash;
    case ValueType::kInt64:
      return HashCombine(hash, static_cast<uint64_t>(value.AsInt64()));
    case ValueType::kDouble: {
      const double d = value.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashCombine(hash, bits);
    }
    case ValueType::kString:
      return HashCombine(hash, Fnv1a(value.AsString()));
  }
  return hash;
}

uint64_t HashTableInto(uint64_t hash, const Table& table) {
  hash = HashCombine(hash, Fnv1a(table.schema().ToString()));
  hash = HashCombine(hash, table.NumRows());
  for (const Tuple& row : table.rows()) {
    for (const Value& value : row) {
      hash = HashValueInto(hash, value);
    }
  }
  return hash;
}

// The admission controller inherits the retry backoff schedule for its
// retry-after hints, so a shed client and a retrying server pace
// themselves identically.
OverloadController::Options MakeOverloadOptions(
    const WarehouseOptions& options) {
  OverloadController::Options overload;
  overload.max_inflight_batches = options.max_inflight_batches;
  overload.base_delay_ms = options.retry.base_delay_ms;
  overload.max_delay_ms = options.retry.max_delay_ms;
  return overload;
}

// Cancellation is a caller decision, not a warehouse failure: these
// outcomes bypass quarantine and the failed counter, and are safe to
// resend verbatim.
bool IsCancelCode(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded;
}

uint64_t TotalChangedRows(const std::map<std::string, Delta>& changes) {
  uint64_t rows = 0;
  for (const auto& [table, delta] : changes) rows += delta.Size();
  return rows;
}

bool TablesClose(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) return false;
  for (size_t r = 0; r < a.rows().size(); ++r) {
    const Tuple& ra = a.rows()[r];
    const Tuple& rb = b.rows()[r];
    if (ra.size() != rb.size()) return false;
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!ValuesClose(ra[c], rb[c])) return false;
    }
  }
  return true;
}

}  // namespace

Warehouse::Warehouse(WarehouseOptions options)
    : options_(std::move(options)),
      retry_rng_(options_.retry.jitter_seed) {
  if (options_.parallelism > 1) {
    view_pool_ = std::make_shared<ThreadPool>(options_.parallelism);
  }
  overload_ =
      std::make_shared<OverloadController>(MakeOverloadOptions(options_));
  query_budget_root_ =
      std::make_shared<MemoryBudget>("warehouse.query", /*limit_bytes=*/0);
  if (options_.serve_snapshots) {
    snapshots_ = std::make_shared<SnapshotManager>();
    result_cache_ = std::make_shared<ResultCache>(
        options_.result_cache_entries, options_.result_cache_bytes);
    if (options_.lattice_budget_bytes > 0) {
      LatticeOptions lattice;
      lattice.budget_bytes = options_.lattice_budget_bytes;
      lattice.promote_hits = options_.lattice_promote_hits;
      lattice_ = std::make_shared<RollupLattice>(lattice);
    }
  }
}

void Warehouse::set_options(WarehouseOptions options) {
  options_ = std::move(options);
  view_pool_ = options_.parallelism > 1
                   ? std::make_shared<ThreadPool>(options_.parallelism)
                   : nullptr;
  retry_rng_ = Rng(options_.retry.jitter_seed);
  // Overload state starts cold under the new knobs, like the lattice
  // below; degradation counters do not survive an options swap.
  overload_ =
      std::make_shared<OverloadController>(MakeOverloadOptions(options_));
  query_budget_root_ =
      std::make_shared<MemoryBudget>("warehouse.query", /*limit_bytes=*/0);
  if (options_.serve_snapshots) {
    snapshots_ = std::make_shared<SnapshotManager>();
    result_cache_ = std::make_shared<ResultCache>(
        options_.result_cache_entries, options_.result_cache_bytes);
    // The lattice starts cold under the new budget; promotion heat does
    // not survive an options swap.
    if (options_.lattice_budget_bytes > 0) {
      LatticeOptions lattice;
      lattice.budget_bytes = options_.lattice_budget_bytes;
      lattice.promote_hits = options_.lattice_promote_hits;
      lattice_ = std::make_shared<RollupLattice>(lattice);
    } else {
      lattice_ = nullptr;
    }
    // Re-render everything into the fresh manager.
    PublishSnapshot(
        std::set<std::string>(registration_order_.begin(),
                              registration_order_.end()),
        /*schema_changed=*/true);
  } else {
    snapshots_ = nullptr;
    result_cache_ = nullptr;
    lattice_ = nullptr;
  }
}

Result<Warehouse> Warehouse::Open(const std::string& dir,
                                  WarehouseOptions options) {
  MD_RETURN_IF_ERROR(EnsureDirectory(dir));
  Warehouse wh(std::move(options));
  wh.dir_ = dir;

  Result<WarehouseCheckpoint> loaded = LoadWarehouseCheckpoint(dir);
  if (loaded.status().code() == StatusCode::kDataLoss) {
    // CURRENT names a checkpoint that is missing or incomplete. An
    // older complete checkpoint may still be on disk (stale-checkpoint
    // removal is best-effort and runs after CURRENT moves): fall back
    // to the newest one that loads, repoint CURRENT durably, and let
    // WAL replay carry recovery as far forward as it can. Only when no
    // checkpoint loads does the DataLoss propagate.
    for (const std::string& name : ListCheckpointNames(dir)) {
      Result<WarehouseCheckpoint> fallback = LoadCheckpointByName(dir, name);
      if (!fallback.ok()) continue;
      MD_RETURN_IF_ERROR(SetCurrentCheckpoint(dir, name));
      wh.recovery_.fallback_checkpoint = name;
      loaded = std::move(fallback);
      break;
    }
  }
  if (loaded.ok()) {
    WarehouseCheckpoint cp = std::move(loaded).value();
    wh.checkpoint_epoch_ = cp.epoch;
    wh.sequence_ = cp.sequence;
    wh.leader_epoch_ = cp.leader_epoch;
    wh.recovery_.checkpoint_sequence = cp.sequence;
    wh.schema_catalog_ = std::move(cp.schema_catalog);
    for (ViewCheckpoint& vc : cp.views) {
      MD_ASSIGN_OR_RETURN(
          SelfMaintenanceEngine engine,
          SelfMaintenanceEngine::Restore(
              wh.schema_catalog_, vc.def, FromOptionsData(vc.options),
              std::move(vc.aux), vc.summary));
      // Checkpoints written before sharing landed carry lineage 0,
      // which simply keeps those engines out of the shared-join cache.
      engine.set_shared_lineage(vc.lineage);
      wh.engines_.emplace(vc.name, std::make_unique<SelfMaintenanceEngine>(
                                       std::move(engine)));
      wh.registration_order_.push_back(vc.name);
    }
    if (!cp.ingest_state.empty()) {
      MD_RETURN_IF_ERROR(ParseIngestState(cp.ingest_state, &wh.ledger_,
                                          &wh.recent_keys_));
      for (const auto& [key, sequence] : wh.recent_keys_) {
        wh.recent_key_set_.emplace(key, sequence);
      }
    }
    // Restore the promoted-node directory and candidate heat; the node
    // tables themselves are rebuilt from the recovered summaries by the
    // recovery publish below, so promotions survive Open bit-correctly
    // no matter where the crash landed.
    if (!cp.lattice_state.empty() && wh.lattice_ != nullptr) {
      MD_RETURN_IF_ERROR(wh.lattice_->RestoreState(cp.lattice_state));
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }

  const std::string wal_path = StrCat(dir, "/", kWalFile);
  MD_ASSIGN_OR_RETURN(std::vector<WriteAheadLog::Record> records,
                      WriteAheadLog::ReadAll(wal_path));
  WriteAheadLog::Options wal_options;
  wal_options.sync = wh.options_.sync_wal;
  MD_ASSIGN_OR_RETURN(WriteAheadLog wal,
                      WriteAheadLog::Open(wal_path, wal_options));
  wh.wal_ = std::make_unique<WriteAheadLog>(std::move(wal));

  QuarantineLog::Options quarantine_options;
  quarantine_options.max_entries = wh.options_.quarantine_max_entries;
  quarantine_options.max_bytes = wh.options_.quarantine_max_bytes;
  MD_ASSIGN_OR_RETURN(
      QuarantineLog quarantine,
      QuarantineLog::Open(StrCat(dir, "/", kQuarantineFile),
                          quarantine_options));
  wh.quarantine_ =
      std::make_unique<QuarantineLog>(std::move(quarantine));

  for (const WriteAheadLog::Record& record : records) {
    // Records at or below the checkpoint sequence are already folded in.
    if (record.sequence <= wh.sequence_) continue;
    // The fence may have advanced past the checkpoint inside the WAL
    // tail (a promotion is itself followed by epoch-stamped frames).
    if (record.epoch > wh.leader_epoch_) wh.leader_epoch_ = record.epoch;
    // New records are all transactions; kKindApply only appears in WALs
    // written before Apply became a wrapper over ApplyTransaction, and
    // replays with its original single-call semantics.
    const Status status = wh.ApplyToEngines(
        record.changes, record.kind != WriteAheadLog::kKindApply);
    wh.sequence_ = record.sequence;
    if (status.ok()) {
      ++wh.recovery_.replayed_batches;
      // A replayed batch is an accepted batch: fold its keys forward
      // and remember its idempotency key, so a source that resends the
      // in-flight batch after our crash gets a duplicate ack instead of
      // a double apply.
      wh.ledger_.Fold(record.changes);
      wh.RecordKey(record.key, record.sequence);
    } else {
      // The batch was rejected when first applied too (atomically — no
      // engine kept any of it); preserve that outcome and move on.
      ++wh.recovery_.rejected_batches;
    }
  }
  // Recovery is one big (re)build: publish everything at once.
  wh.PublishSnapshot(
      std::set<std::string>(wh.registration_order_.begin(),
                            wh.registration_order_.end()),
      /*schema_changed=*/true);
  return wh;
}

Status Warehouse::MergeSchemas(const Catalog& source,
                               const GpsjViewDef& def) {
  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* contents, source.GetTable(table));
    MD_ASSIGN_OR_RETURN(std::string key, source.KeyAttr(table));
    if (!schema_catalog_.HasTable(table)) {
      MD_RETURN_IF_ERROR(
          schema_catalog_.CreateTable(table, contents->schema(), key));
    }
    if (source.HasExposedUpdates(table)) {
      MD_RETURN_IF_ERROR(schema_catalog_.SetExposedUpdates(table, true));
    }
    if (source.IsAppendOnly(table)) {
      MD_RETURN_IF_ERROR(schema_catalog_.SetAppendOnly(table, true));
    }
    // Seed admission control with the table's live keys as of
    // registration; from here on the ledger folds forward with every
    // accepted batch. Already-tracked tables keep their folded state.
    if (std::optional<size_t> key_index = contents->key_index();
        key_index.has_value()) {
      ledger_.Track(table, *key_index, *contents);
    }
  }
  for (const ForeignKey& fk : source.foreign_keys()) {
    if (!def.ReferencesTable(fk.from_table) ||
        !def.ReferencesTable(fk.to_table)) {
      continue;
    }
    if (schema_catalog_.HasForeignKey(fk.from_table, fk.from_attr,
                                      fk.to_table)) {
      continue;
    }
    MD_RETURN_IF_ERROR(schema_catalog_.AddForeignKey(
        fk.from_table, fk.from_attr, fk.to_table));
  }
  return Status::Ok();
}

uint64_t Warehouse::ComputeLineage(const SelfMaintenanceEngine& engine,
                                   uint64_t sequence) {
  uint64_t hash = Fnv1a("mindetail.lineage");
  for (const AuxViewDef& aux : engine.derivation().aux_views()) {
    if (aux.eliminated) continue;
    hash = HashCombine(hash, Fnv1a(aux.base_table));
    hash = HashTableInto(hash, engine.AuxContents(aux.base_table));
  }
  Result<Table> augmented = engine.RenderAugmentedSummary();
  if (!augmented.ok()) return 0;  // Unknown — sharing stays off.
  hash = HashTableInto(hash, *augmented);
  // Fence history: equal content hashes at *different* registration
  // sequences do not certify equal futures (the source may have moved
  // between the two registrations), so the sequence is part of the
  // token. Engines registered at the same sequence with equal contents
  // receive the identical batch stream from here on.
  hash = HashCombine(hash, sequence);
  if (hash == 0) hash = 0x6D696E64;  // 0 is reserved for "unknown".
  return hash;
}

Status Warehouse::AddView(const Catalog& source, const GpsjViewDef& def,
                          std::optional<EngineOptions> options) {
  if (options_.read_only) {
    return FailedPreconditionError(
        "warehouse is a read-only follower; register views on the leader");
  }
  if (engines_.count(def.name()) > 0) {
    return AlreadyExistsError(
        StrCat("view '", def.name(), "' is already registered"));
  }
  MD_ASSIGN_OR_RETURN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(
          source, def, options.has_value() ? *options : options_.engine));
  MD_RETURN_IF_ERROR(MergeSchemas(source, def));
  // Stamp the sharing lineage token now: sibling views registered at
  // this same sequence with byte-identical auxiliary state get equal
  // tokens and may share delta joins (see maintenance/shared_plan.h).
  engine.set_shared_lineage(ComputeLineage(engine, sequence_));
  engines_.emplace(def.name(), std::make_unique<SelfMaintenanceEngine>(
                                   std::move(engine)));
  registration_order_.push_back(def.name());
  PublishSnapshot({def.name()}, /*schema_changed=*/true);
  // Registrations are not WAL events — persist them right away.
  if (durable()) return Checkpoint();
  return Status::Ok();
}

Status Warehouse::AddViewSql(const Catalog& source, std::string_view sql,
                             std::optional<EngineOptions> options) {
  MD_ASSIGN_OR_RETURN(GpsjViewDef def, ParseGpsjView(sql, source));
  return AddView(source, def, std::move(options));
}

Status Warehouse::RemoveView(const std::string& view_name) {
  if (options_.read_only) {
    return FailedPreconditionError(
        "warehouse is a read-only follower; remove views on the leader");
  }
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  engines_.erase(it);
  registration_order_.erase(
      std::remove(registration_order_.begin(), registration_order_.end(),
                  view_name),
      registration_order_.end());
  degraded_.erase(view_name);
  // The publish loop walks registration_order_, so the removed view
  // simply drops out; InvalidateViews flushes its cached answers.
  PublishSnapshot({view_name}, /*schema_changed=*/true);
  if (durable()) return Checkpoint();
  return Status::Ok();
}

bool Warehouse::HasView(const std::string& view_name) const {
  return engines_.count(view_name) > 0;
}

std::vector<std::string> Warehouse::ViewNames() const {
  return registration_order_;
}

void Warehouse::RecordKey(const std::string& key, uint64_t sequence) {
  if (key.empty() || options_.idempotency_window == 0) return;
  if (!recent_key_set_.emplace(key, sequence).second) return;
  recent_keys_.emplace_back(key, sequence);
  while (recent_keys_.size() > options_.idempotency_window) {
    recent_key_set_.erase(recent_keys_.front().first);
    recent_keys_.pop_front();
  }
}

std::optional<uint64_t> Warehouse::SequenceForKey(
    const std::string& key) const {
  if (key.empty()) return std::nullopt;
  const auto it = recent_key_set_.find(key);
  if (it == recent_key_set_.end()) return std::nullopt;
  return it->second;
}

int Warehouse::retry_after_hint_ms() const {
  return overload_->last_retry_after_ms();
}

void Warehouse::BackoffSleep(int attempt) {
  const RetryOptions& retry = options_.retry;
  double delay = static_cast<double>(retry.base_delay_ms) *
                 std::pow(2.0, attempt - 1);
  delay = std::min(delay, static_cast<double>(retry.max_delay_ms));
  delay *= 0.5 + 0.5 * retry_rng_.NextDouble();
  const int ms = std::max(0, static_cast<int>(delay));
  if (retry.sleeper) {
    retry.sleeper(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void Warehouse::QuarantineBatch(const Status& cause, const std::string& key,
                                const std::map<std::string, Delta>& changes) {
  if (quarantine_ == nullptr) return;
  // A fresh append gets the next id; a dedup returns an older entry's.
  // (Entry-count growth can't tell the two apart: a capped log rotates
  // an old entry out while admitting the new one, count unchanged.)
  const uint64_t next_before = quarantine_->next_id();
  Result<uint64_t> id =
      quarantine_->Append(cause.code(), cause.message(), key, changes);
  if (id.ok() && *id >= next_before) {
    ++ingest_stats_.quarantined;
  }
}

Status Warehouse::IngestBatch(const std::map<std::string, Delta>& changes,
                              const std::string& client_key,
                              const CancellationToken* cancel) {
  if (options_.read_only) {
    return FailedPreconditionError(
        "warehouse is a read-only follower; ingest on the leader (or "
        "PromoteToLeader first)");
  }
  std::string key = client_key;
  if (key.empty() && options_.hash_idempotency) {
    key = logfmt::ContentHashKey(changes);
  }
  // Duplicate acks come before admission control: they cost ~nothing
  // and re-sending them under backoff would only add load.
  if (IsDuplicate(key)) {
    ++ingest_stats_.duplicates;
    return Status::Ok();
  }
  // Admission: shed before any validation or logging work is spent.
  // A shed batch is not a warehouse failure — no quarantine, no failed
  // count; the client retries after the hinted delay.
  OverloadController::Permit permit;
  {
    Result<OverloadController::Permit> admitted =
        overload_->Admit(TotalChangedRows(changes));
    MD_RETURN_IF_ERROR(admitted.status());
    permit = std::move(*admitted);
  }
  if (options_.validate_batches) {
    Status admitted =
        ValidateBatch(schema_catalog_, ledger_, changes, view_pool_.get());
    if (!admitted.ok()) {
      ++ingest_stats_.rejected;
      QuarantineBatch(admitted, key, changes);
      return admitted;
    }
  }
  Status applied = ApplyLogged(changes, key, cancel);
  if (!applied.ok()) {
    if (IsCancelCode(applied.code())) {
      // The rollback already ran: every view, the WAL, and the sequence
      // are bit-identical to the batch never arriving. Don't quarantine
      // — the client cancelled on purpose and may resend verbatim.
      overload_->RecordCancelledBatch();
      return applied;
    }
    ++ingest_stats_.failed;
    QuarantineBatch(applied, key, changes);
    return applied;
  }
  ++ingest_stats_.accepted;
  RecordKey(key, sequence_);
  ledger_.Fold(changes);
  if (snapshots_ != nullptr) {
    // Copy-on-write publish: only views referencing a changed table are
    // re-rendered; everything else is shared with the prior snapshot.
    std::set<std::string> touched;
    for (const std::string& name : registration_order_) {
      const GpsjViewDef& def = engines_.at(name)->derivation().view();
      for (const auto& [table, delta] : changes) {
        if (def.ReferencesTable(table)) {
          touched.insert(name);
          break;
        }
      }
    }
    PublishSnapshot(touched, /*schema_changed=*/false);
  }
  return Status::Ok();
}

Status Warehouse::ApplyLogged(const std::map<std::string, Delta>& changes,
                              const std::string& key,
                              const CancellationToken* cancel) {
  const int budget = std::max(0, options_.retry.max_retries);
  // Pre-log check: a batch cancelled before its WAL append consumes no
  // sequence number and leaves zero trace.
  if (cancel != nullptr) MD_RETURN_IF_ERROR(cancel->Check());
  if (wal_ != nullptr) {
    // Phase one: get the batch durably logged. A failed append
    // truncates back to the last acknowledged record (see
    // WriteAheadLog::Append), so retrying the same sequence is safe.
    Status logged = Status::Ok();
    for (int attempt = 0;; ++attempt) {
      logged = wal_->Append(sequence_ + 1, WriteAheadLog::kKindTransaction,
                            changes, key, leader_epoch_);
      if (logged.ok() || attempt >= budget ||
          logged.code() != StatusCode::kInternal) {
        break;
      }
      ++ingest_stats_.retries;
      BackoffSleep(attempt + 1);
    }
    MD_RETURN_IF_ERROR(logged);
    ++sequence_;
    MD_FAILPOINT("warehouse.apply.after_log");
  } else {
    ++sequence_;
  }
  // Phase two: fold the batch into the engines. A failed apply rolls
  // every engine back to the pre-batch state, so a retry starts clean.
  // Cancel codes are not kInternal, so a tripped token is never
  // retried.
  Status applied = Status::Ok();
  for (int attempt = 0;; ++attempt) {
    applied = ApplyToEngines(changes, /*transaction=*/true, cancel);
    if (applied.ok() || attempt >= budget ||
        applied.code() != StatusCode::kInternal) {
      break;
    }
    ++ingest_stats_.retries;
    BackoffSleep(attempt + 1);
  }
  if (!applied.ok() && IsCancelCode(applied.code())) {
    // The engines already rolled back; now un-log the batch so crash
    // recovery cannot replay (and commit) work the client cancelled.
    // Without this the WAL record would outlive the rollback and the
    // batch would apply on the next Open — the one case where a logged
    // record must be withdrawn rather than skipped.
    if (wal_ != nullptr) {
      (void)FailpointCheck("warehouse.cancel.before_wal_abort");
      Status aborted = wal_->AbortLast(sequence_);
      if (!aborted.ok()) {
        // The record could not be withdrawn: recovery would replay it.
        // Surface that as the (retryable) infrastructure failure it is
        // rather than pretending the cancellation was clean.
        return InternalError(StrCat(
            "batch cancelled but its WAL record could not be withdrawn (",
            aborted.message(), "); recovery would replay it"));
      }
      (void)FailpointCheck("warehouse.cancel.after_wal_abort");
    }
    --sequence_;
  }
  return applied;
}

Status Warehouse::ApplyToEngines(const std::map<std::string, Delta>& changes,
                                 bool transaction,
                                 const CancellationToken* cancel) {
  // The affected engines and their slices of the batch, in registration
  // order — which is also the serial apply order, so "first failure in
  // registration order" below reports exactly the error the serial
  // warehouse would.
  struct EngineTask {
    SelfMaintenanceEngine* engine = nullptr;
    std::map<std::string, Delta> relevant;
  };
  std::vector<EngineTask> tasks;
  for (const std::string& name : registration_order_) {
    SelfMaintenanceEngine& engine = *engines_.at(name);
    EngineTask task;
    for (const auto& [table, delta] : changes) {
      if (engine.derivation().view().ReferencesTable(table)) {
        task.relevant.emplace(table, delta);
      }
    }
    if (task.relevant.empty()) continue;
    task.engine = &engine;
    tasks.push_back(std::move(task));
  }

  // One shared-join cache per apply *attempt*: sibling engines whose
  // delta joins canonicalize to the same signature (and whose lineage
  // tokens match) compute each distinct join once and reuse the result.
  // The cache memoizes successes only, so a failing attempt reproduces
  // the per-engine baseline error exactly; its stats are folded into
  // shared_stats_ only when the attempt commits.
  const bool share = options_.share_delta_joins && tasks.size() >= 2;
  std::optional<SharedJoinCache> cache;
  if (share) cache.emplace();
  SharedJoinCache* shared = share ? &*cache : nullptr;

  auto run = [transaction, shared, cancel](EngineTask& task) {
    return transaction
               ? task.engine->ApplyTransaction(task.relevant, shared, cancel)
               : task.engine->Apply(task.relevant.begin()->first,
                                    task.relevant.begin()->second, shared,
                                    cancel);
  };

  if (view_pool_ == nullptr || tasks.size() < 2) {
    // Serial: snapshot each engine immediately before its apply, so a
    // failing engine (possibly left partially applied) is restored too.
    std::vector<std::pair<SelfMaintenanceEngine*,
                          SelfMaintenanceEngine::StateSnapshot>>
        applied;
    Status failure = Status::Ok();
    for (EngineTask& task : tasks) {
      applied.emplace_back(task.engine, task.engine->SnapshotState());
      failure = run(task);
      if (!failure.ok()) break;
    }
    // Fires after every engine applied but before the batch would be
    // acknowledged: error mode exercises the full rollback, crash mode
    // dies with the batch logged but unacknowledged.
    if (failure.ok()) failure = FailpointCheck("warehouse.apply.before_ack");
    if (!failure.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        it->first->RestoreState(std::move(it->second));
      }
      return failure;
    }
    if (shared != nullptr) shared_stats_ += shared->stats();
    return Status::Ok();
  }

  // Parallel: snapshot everything up front (no engine has been touched
  // yet, so these equal the serial snapshots), then fan the engines out
  // over the shared view pool. Engines maintain disjoint state; the
  // per-task slots below are disjoint too, so tasks never race.
  std::vector<SelfMaintenanceEngine::StateSnapshot> snapshots;
  snapshots.reserve(tasks.size());
  for (EngineTask& task : tasks) {
    snapshots.push_back(task.engine->SnapshotState());
  }
  std::vector<Status> statuses(tasks.size(), Status::Ok());
  std::vector<char> attempted(tasks.size(), 0);
  std::atomic<bool> cancelled{false};
  view_pool_->ParallelFor(tasks.size(), [&](size_t i) {
    // Best-effort cancellation: an engine that has not started when a
    // failure lands skips its (doomed) work entirely. Engines already
    // running finish and are rolled back below.
    if (cancelled.load(std::memory_order_acquire)) return;
    attempted[i] = 1;
    statuses[i] = run(tasks[i]);
    if (!statuses[i].ok()) {
      cancelled.store(true, std::memory_order_release);
    }
  });

  // Deterministic error selection: the first failure in registration
  // order, exactly as the serial loop would have reported it.
  Status failure = Status::Ok();
  for (const Status& status : statuses) {
    if (!status.ok()) {
      failure = status;
      break;
    }
  }
  if (failure.ok()) failure = FailpointCheck("warehouse.apply.before_ack");
  if (!failure.ok()) {
    for (size_t i = tasks.size(); i-- > 0;) {
      if (attempted[i] == 0) continue;  // Never touched its engine.
      tasks[i].engine->RestoreState(std::move(snapshots[i]));
    }
    return failure;
  }
  if (shared != nullptr) shared_stats_ += shared->stats();
  return Status::Ok();
}

Status Warehouse::Apply(const std::string& table, const Delta& delta) {
  std::map<std::string, Delta> changes;
  changes.emplace(table, delta);
  return ApplyTransaction(changes);
}

Status Warehouse::ApplyTransaction(
    const std::map<std::string, Delta>& changes) {
  return IngestBatch(changes, std::string(), nullptr);
}

Status Warehouse::ApplyTransaction(
    const std::map<std::string, Delta>& changes,
    const std::string& idempotency_key) {
  return IngestBatch(changes, idempotency_key, nullptr);
}

Status Warehouse::ApplyTransaction(
    const std::map<std::string, Delta>& changes,
    const std::string& idempotency_key, const CancellationToken& cancel) {
  return IngestBatch(changes, idempotency_key, &cancel);
}

Status Warehouse::ApplyReplicated(const WriteAheadLog::Record& record) {
  if (leader_epoch_ > 0 && record.epoch < leader_epoch_) {
    return FailedPreconditionError(StrCat(
        "replicated frame carries leader epoch ", record.epoch,
        " but this replica is fenced at epoch ", leader_epoch_,
        "; the sender was deposed"));
  }
  // Exactly-once replay: re-shipped frames at or below the local high
  // water mark are acknowledged as no-ops.
  if (record.sequence <= sequence_) return Status::Ok();
  if (record.sequence != sequence_ + 1) {
    return FailedPreconditionError(StrCat(
        "replicated frame jumps from local sequence ", sequence_, " to ",
        record.sequence, "; bootstrap from a leader checkpoint first"));
  }
  if (record.epoch > leader_epoch_) leader_epoch_ = record.epoch;

  const int budget = std::max(0, options_.retry.max_retries);
  if (wal_ != nullptr) {
    // Log under the leader's exact sequence/key/epoch so the follower's
    // WAL is a byte-faithful mirror: its own recovery replays the same
    // frames, and a later promotion ships them onward unchanged.
    Status logged = Status::Ok();
    for (int attempt = 0;; ++attempt) {
      logged = wal_->Append(record.sequence, WriteAheadLog::kKindTransaction,
                            record.changes, record.key, record.epoch);
      if (logged.ok() || attempt >= budget ||
          logged.code() != StatusCode::kInternal) {
        break;
      }
      ++ingest_stats_.retries;
      BackoffSleep(attempt + 1);
    }
    MD_RETURN_IF_ERROR(logged);
  }
  sequence_ = record.sequence;
  MD_FAILPOINT("warehouse.replica.after_log");

  Status applied = Status::Ok();
  for (int attempt = 0;; ++attempt) {
    applied = ApplyToEngines(record.changes,
                             record.kind != WriteAheadLog::kKindApply);
    if (applied.ok() || attempt >= budget ||
        applied.code() != StatusCode::kInternal) {
      break;
    }
    ++ingest_stats_.retries;
    BackoffSleep(attempt + 1);
  }
  if (!applied.ok()) {
    // Mirror Open's replay: the frame keeps its sequence, the engines
    // rolled back atomically, and the outcome is preserved — the leader
    // resolves the same frame the same way at its own recovery, so the
    // replicas stay bit-identical.
    ++ingest_stats_.rejected;
    return Status::Ok();
  }
  ++ingest_stats_.accepted;
  ledger_.Fold(record.changes);
  RecordKey(record.key, record.sequence);
  if (snapshots_ != nullptr) {
    // Publish at the leader's sequence: readers on any replica see the
    // same versioned snapshot, and result-cache entries keyed on it are
    // shareable across the fleet.
    std::set<std::string> touched;
    for (const std::string& name : registration_order_) {
      const GpsjViewDef& def = engines_.at(name)->derivation().view();
      for (const auto& [table, delta] : record.changes) {
        if (def.ReferencesTable(table)) {
          touched.insert(name);
          break;
        }
      }
    }
    PublishSnapshot(touched, /*schema_changed=*/false);
  }
  return Status::Ok();
}

Status Warehouse::PromoteToLeader() {
  if (!options_.read_only) {
    return FailedPreconditionError("warehouse is already a leader");
  }
  if (!durable()) {
    return FailedPreconditionError(
        "warehouse is in-memory; promotion needs a durable epoch fence");
  }
  options_.read_only = false;
  ++leader_epoch_;
  // Persist the fence before acknowledging the promotion: the manifest
  // carries the new epoch and every subsequent WAL frame is stamped
  // with it, so a deposed leader's stale frames are refused by every
  // replica even across restarts.
  return Checkpoint();
}

Status Warehouse::Checkpoint() {
  if (!durable()) {
    return FailedPreconditionError(
        "warehouse is in-memory (not constructed by Open); nothing to "
        "checkpoint");
  }
  WarehouseCheckpoint cp;
  cp.epoch = checkpoint_epoch_ + 1;
  cp.sequence = sequence_;
  cp.leader_epoch = leader_epoch_;
  cp.schema_catalog = schema_catalog_;
  for (const std::string& name : registration_order_) {
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    ViewCheckpoint vc;
    vc.name = name;
    vc.def = engine.derivation().view();
    vc.options = ToOptionsData(engine.options());
    vc.lineage = engine.shared_lineage();
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      vc.aux.emplace(aux.base_table, engine.AuxContents(aux.base_table));
    }
    MD_ASSIGN_OR_RETURN(vc.summary, engine.RenderAugmentedSummary());
    cp.views.push_back(std::move(vc));
  }
  cp.ingest_state = ComposeIngestState(ledger_, recent_keys_);
  if (lattice_ != nullptr) cp.lattice_state = lattice_->SerializeState();
  MD_ASSIGN_OR_RETURN(std::string kept, SaveWarehouseCheckpoint(cp, dir_));
  checkpoint_epoch_ = cp.epoch;
  // The WAL is now redundant up to cp.sequence — and nothing beyond it
  // exists, since checkpoints run between batches.
  MD_RETURN_IF_ERROR(wal_->Reset());
  RemoveStaleCheckpoints(dir_, kept);
  return Status::Ok();
}

Result<std::vector<QuarantineLog::Entry>> Warehouse::QuarantineEntries()
    const {
  if (quarantine_ == nullptr) {
    return FailedPreconditionError(
        "warehouse is in-memory; no quarantine log");
  }
  return quarantine_->Entries();
}

Status Warehouse::QuarantineRetry(uint64_t id) {
  if (quarantine_ == nullptr) {
    return FailedPreconditionError(
        "warehouse is in-memory; no quarantine log");
  }
  MD_ASSIGN_OR_RETURN(std::vector<QuarantineLog::Entry> entries,
                      quarantine_->Entries());
  const QuarantineLog::Entry* entry = nullptr;
  for (const QuarantineLog::Entry& candidate : entries) {
    if (candidate.id == id) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    return NotFoundError(StrCat("quarantine has no entry with id ", id));
  }
  // Re-run the full pipeline. A batch that actually landed before a
  // crash comes back as a duplicate ack — still a success. A batch
  // that fails again stays quarantined (the re-append dedupes on its
  // key), and the entry is kept.
  MD_RETURN_IF_ERROR(IngestBatch(entry->changes, entry->key, nullptr));
  return quarantine_->Remove(id);
}

Status Warehouse::QuarantineDrop(uint64_t id) {
  if (quarantine_ == nullptr) {
    return FailedPreconditionError(
        "warehouse is in-memory; no quarantine log");
  }
  return quarantine_->Remove(id);
}

std::vector<std::string> Warehouse::CheckEngineInvariants(
    const SelfMaintenanceEngine& engine) const {
  std::vector<std::string> problems;
  // Every group of a compressed auxiliary view represents at least one
  // base row: its COUNT column must be ≥ 1.
  for (const AuxViewDef& aux : engine.derivation().aux_views()) {
    if (aux.eliminated || !aux.plan.compressed) continue;
    const int cnt = aux.plan.CountColumnIndex();
    if (cnt < 0) continue;
    const Table& contents = engine.AuxContents(aux.base_table);
    for (const Tuple& row : contents.rows()) {
      const Value& count = row[static_cast<size_t>(cnt)];
      if (count.type() != ValueType::kInt64 || count.AsInt64() < 1) {
        problems.push_back(
            StrCat("auxiliary view ", aux.name, " has a group with COUNT ",
                   count.ToString(), " (must be >= 1)"));
        break;
      }
    }
  }
  // Every maintained summary group exists because at least one joined
  // row contributed to it — its shadow count must be positive. The
  // exception is a scalar (no group-by) view, whose single group
  // legitimately reaches shadow 0 when everything is deleted.
  bool scalar = true;
  for (const OutputItem& item :
       engine.derivation().view().outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      scalar = false;
      break;
    }
  }
  Result<Table> augmented = engine.RenderAugmentedSummary();
  if (!augmented.ok()) {
    problems.push_back(StrCat("summary cannot be rendered: ",
                              augmented.status().message()));
    return problems;
  }
  std::optional<size_t> shadow_idx =
      augmented->schema().IndexOf("__shadow");
  if (!shadow_idx.has_value()) {
    problems.push_back("augmented summary lacks the __shadow column");
    return problems;
  }
  if (!scalar) {
    for (const Tuple& row : augmented->rows()) {
      const Value& shadow = row[*shadow_idx];
      if (shadow.type() != ValueType::kInt64 || shadow.AsInt64() < 1) {
        problems.push_back(
            StrCat("summary group has shadow count ", shadow.ToString(),
                   " (must be >= 1 for grouped views)"));
        break;
      }
    }
  }
  // When the root auxiliary view exists, the summary is redundant with
  // the auxiliary state: a full reconstruction must agree with the
  // incrementally maintained view.
  Result<Table> reconstructed = engine.ReconstructFromAux();
  if (reconstructed.ok()) {
    Result<Table> rendered = engine.View();
    if (!rendered.ok()) {
      problems.push_back(StrCat("view cannot be rendered: ",
                                rendered.status().message()));
    } else if (!TablesClose(*reconstructed, *rendered)) {
      problems.push_back(
          "summary disagrees with a full reconstruction from the "
          "auxiliary views");
    }
  }
  return problems;
}

Result<IntegrityReport> Warehouse::VerifyIntegrity() {
  IntegrityReport report;
  for (const std::string& name : registration_order_) {
    ++report.views_checked;
    std::vector<std::string> problems =
        CheckEngineInvariants(*engines_.at(name));
    if (problems.empty()) {
      degraded_.erase(name);
      continue;
    }
    degraded_.insert(name);
    for (std::string& problem : problems) {
      report.issues.push_back(IntegrityIssue{name, std::move(problem)});
    }
  }
  return report;
}

Status Warehouse::RepairView(const std::string& view_name) {
  if (!durable()) {
    return FailedPreconditionError(
        "warehouse is in-memory; repair needs a checkpoint to rebuild "
        "from");
  }
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  MD_ASSIGN_OR_RETURN(WarehouseCheckpoint cp, LoadWarehouseCheckpoint(dir_));
  ViewCheckpoint* vc = nullptr;
  for (ViewCheckpoint& candidate : cp.views) {
    if (candidate.name == view_name) {
      vc = &candidate;
      break;
    }
  }
  if (vc == nullptr) {
    // AddView checkpoints immediately, so every registered view is in
    // the latest checkpoint; missing state means the directory was
    // tampered with.
    return InternalError(StrCat("checkpoint has no state for view '",
                                view_name, "'"));
  }
  MD_ASSIGN_OR_RETURN(
      SelfMaintenanceEngine rebuilt,
      SelfMaintenanceEngine::Restore(schema_catalog_, vc->def,
                                     FromOptionsData(vc->options),
                                     std::move(vc->aux), vc->summary));
  rebuilt.set_shared_lineage(vc->lineage);
  // Roll the rebuilt engine forward through the WAL tail, mirroring
  // recovery: apply each record's slice for this view, preserving the
  // original accept/reject outcome per record.
  MD_ASSIGN_OR_RETURN(std::vector<WriteAheadLog::Record> records,
                      WriteAheadLog::ReadAll(StrCat(dir_, "/", kWalFile)));
  for (const WriteAheadLog::Record& record : records) {
    if (record.sequence <= cp.sequence) continue;
    std::map<std::string, Delta> relevant;
    for (const auto& [table, delta] : record.changes) {
      if (rebuilt.derivation().view().ReferencesTable(table)) {
        relevant.emplace(table, delta);
      }
    }
    if (relevant.empty()) continue;
    Status applied =
        record.kind == WriteAheadLog::kKindApply
            ? rebuilt.Apply(relevant.begin()->first,
                            relevant.begin()->second)
            : rebuilt.ApplyTransaction(relevant);
    // A record the engine rejected at ingest time is rejected again
    // here — ApplyTransaction rolled it back atomically then, so
    // skipping it reproduces the live engine's state.
    (void)applied;
  }
  *it->second = std::move(rebuilt);
  degraded_.erase(view_name);
  PublishSnapshot({view_name}, /*schema_changed=*/false);
  return Status::Ok();
}

std::string Warehouse::DurabilityReport() const {
  if (!durable()) return "in-memory warehouse (no directory)\n";
  std::string out = StrCat("directory: ", dir_, "\n");
  out += StrCat("last sequence: ", sequence_, "\n");
  out += StrCat("checkpoint epoch: ", checkpoint_epoch_, "\n");
  out += StrCat("role: ",
                options_.read_only ? "follower (read-only)" : "leader",
                ", leader epoch ", leader_epoch_, "\n");
  out += StrCat("recovered: checkpoint seq ",
                recovery_.checkpoint_sequence, ", ",
                recovery_.replayed_batches, " replayed, ",
                recovery_.rejected_batches, " rejected\n");
  out += StrCat("wal: ", wal_->num_records(), " record(s), ",
                FormatBytes(wal_->size_bytes()),
                options_.sync_wal ? " (fsync on)" : " (fsync OFF)",
                "\n");
  out += StrCat("ingest: ", ingest_stats_.accepted, " accepted, ",
                ingest_stats_.duplicates, " duplicate(s), ",
                ingest_stats_.rejected, " rejected, ",
                ingest_stats_.failed, " failed, ",
                ingest_stats_.retries, " retrie(s), ",
                quarantine_ != nullptr ? quarantine_->num_entries() : 0,
                " quarantined\n");
  if (!degraded_.empty()) {
    out += "degraded views:";
    for (const std::string& name : degraded_) out += StrCat(" ", name);
    out += "\n";
  }
  return out;
}

Result<Table> Warehouse::View(const std::string& view_name) const {
  if (snapshots_ != nullptr) {
    // Serve the already-rendered snapshot table: no aggregation-state
    // walk, no HAVING re-evaluation, no sort — just one table copy.
    MD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> contents,
                        snapshots_->Current()->View(view_name));
    return *contents;
  }
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  return it->second->View();
}

Result<Table> Warehouse::Query(std::string_view sql) const {
  return Query(sql, CancellationToken());
}

Result<Table> Warehouse::Query(std::string_view sql,
                               const CancellationToken& cancel) const {
  auto run = [&]() -> Result<Table> {
    if (snapshots_ == nullptr) {
      return FailedPreconditionError(
          "serving is disabled (WarehouseOptions::serve_snapshots)");
    }
    // The caller's token merged with the configured default deadline —
    // whichever limit is stricter governs the whole query.
    const CancellationToken token =
        options_.default_query_deadline_ms > 0
            ? cancel.MergedWith(
                  Deadline::After(options_.default_query_deadline_ms))
            : cancel;
    MD_RETURN_IF_ERROR(token.Check());
    // One snapshot for the whole query: parse, plan, and execute all see
    // the same batch boundary no matter what maintenance does meanwhile.
    const std::shared_ptr<const WarehouseSnapshot> snapshot =
        snapshots_->Current();
    const Catalog empty_catalog;
    const Catalog& catalog = snapshot->schema_catalog != nullptr
                                 ? *snapshot->schema_catalog
                                 : empty_catalog;
    MD_ASSIGN_OR_RETURN(GpsjViewDef query, ParseServeQuery(catalog, sql));
    const std::string key = query.ToSqlString();
    if (result_cache_ != nullptr) {
      if (std::shared_ptr<const Table> hit =
              result_cache_->Lookup(key, *snapshot)) {
        return *hit;
      }
    }
    QueryPlanner planner(snapshot.get());
    MD_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(query));
    MD_RETURN_IF_ERROR(token.Check());
    if (lattice_ != nullptr) {
      // Promotion heat: a node answer keeps the node hot; a summary
      // roll-up that *could* have come from a (not yet promoted) coarser
      // node records that grouping as a candidate.
      if (plan.strategy == QueryPlan::Strategy::kLatticeRollup) {
        lattice_->RecordHit(plan.lattice_node);
      } else if (plan.strategy == QueryPlan::Strategy::kSummaryRollup) {
        if (const ServedView* served = snapshot->Find(plan.view)) {
          if (std::optional<std::vector<std::string>> grouping =
                  LatticeCandidateGrouping(*served, plan.summary)) {
            lattice_->RecordUse(plan.view, *grouping);
          }
        }
      }
    }
    // The per-query budget is a child of the warehouse root, so the
    // root's peak tracks cross-query pressure while each query is
    // refused individually at its own limit.
    MemoryBudget query_budget("query", options_.query_memory_budget_bytes,
                              query_budget_root_.get());
    ExecContext ctx;
    ctx.cancel = &token;
    if (options_.query_memory_budget_bytes > 0) ctx.budget = &query_budget;
    MD_ASSIGN_OR_RETURN(Table result, planner.Execute(plan, query, ctx));
    if (result_cache_ != nullptr) {
      // Guard the entry with its actual source: the node key and version
      // for lattice answers, so a demotion or refresh invalidates it.
      // Only a completed result lands here — a cancelled or
      // budget-refused query never caches anything.
      const std::string source =
          plan.strategy == QueryPlan::Strategy::kLatticeRollup
              ? plan.lattice_node
              : plan.view;
      if (std::optional<uint64_t> version = snapshot->SourceVersion(source)) {
        result_cache_->Insert(key, source, *version,
                              std::make_shared<const Table>(result));
      }
    }
    return result;
  };
  Result<Table> result = run();
  if (!result.ok()) {
    switch (result.status().code()) {
      case StatusCode::kDeadlineExceeded:
        overload_->RecordDeadlineQuery();
        break;
      case StatusCode::kCancelled:
        overload_->RecordCancelledQuery();
        break;
      case StatusCode::kResourceExhausted:
        overload_->RecordBudgetRefusal();
        break;
      default:
        break;
    }
  }
  return result;
}

Result<QueryExplanation> Warehouse::ExplainQuery(std::string_view sql) const {
  return ExplainQuery(sql, CancellationToken());
}

Result<QueryExplanation> Warehouse::ExplainQuery(
    std::string_view sql, const CancellationToken& cancel) const {
  if (snapshots_ == nullptr) {
    return FailedPreconditionError(
        "serving is disabled (WarehouseOptions::serve_snapshots)");
  }
  const std::shared_ptr<const WarehouseSnapshot> snapshot =
      snapshots_->Current();
  const Catalog empty_catalog;
  const Catalog& catalog = snapshot->schema_catalog != nullptr
                               ? *snapshot->schema_catalog
                               : empty_catalog;
  MD_ASSIGN_OR_RETURN(GpsjViewDef query, ParseServeQuery(catalog, sql));
  QueryPlanner planner(snapshot.get());
  QueryExplanation explanation = planner.Explain(query);
  if (result_cache_ != nullptr) {
    explanation.has_cache = true;
    explanation.cache_hit =
        result_cache_->Contains(query.ToSqlString(), *snapshot);
    explanation.cache_entries = result_cache_->size();
    explanation.cache_capacity = result_cache_->capacity();
  }
  if (lattice_ != nullptr) {
    explanation.has_lattice = true;
    explanation.lattice = lattice_->stats();
    explanation.lattice_budget_bytes = options_.lattice_budget_bytes;
  }
  if (options_.default_query_deadline_ms > 0 ||
      options_.query_memory_budget_bytes > 0 || cancel.can_cancel() ||
      !cancel.deadline().unlimited()) {
    explanation.has_governor = true;
    explanation.deadline_ms = options_.default_query_deadline_ms;
    explanation.memory_budget_bytes = options_.query_memory_budget_bytes;
    // A plan the governor would reject outright explains why: the
    // caller's token has already tripped (deadline or cancel), so
    // Query() with this token returns this status without executing.
    const CancellationToken token =
        options_.default_query_deadline_ms > 0
            ? cancel.MergedWith(
                  Deadline::After(options_.default_query_deadline_ms))
            : cancel;
    if (Status governed = token.Check(); !governed.ok()) {
      explanation.governor_rejection = std::string(governed.message());
    }
  }
  return explanation;
}

void Warehouse::PublishSnapshot(const std::set<std::string>& touched,
                                bool schema_changed) {
  if (snapshots_ == nullptr) return;
  const std::shared_ptr<const WarehouseSnapshot> prev = snapshots_->Current();
  auto next = std::make_shared<WarehouseSnapshot>();
  next->version = sequence_;
  next->epoch = leader_epoch_;
  next->publish_nanos = MonotonicNowNanos();
  next->schema_catalog =
      (schema_changed || prev->schema_catalog == nullptr)
          ? std::make_shared<const Catalog>(schema_catalog_)
          : prev->schema_catalog;
  next->order = registration_order_;
  for (const std::string& name : registration_order_) {
    auto prev_it = prev->views.find(name);
    if (touched.count(name) == 0 && prev_it != prev->views.end()) {
      next->views.emplace(name, prev_it->second);  // COW: share.
      continue;
    }
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    Result<Table> contents = engine.View();
    Result<Table> augmented = engine.RenderAugmentedSummary();
    if (!contents.ok() || !augmented.ok()) {
      // Best-effort: a render failure keeps the view's last published
      // state (readers stay consistent) rather than failing the commit
      // that already happened.
      if (prev_it != prev->views.end()) {
        next->views.emplace(name, prev_it->second);
      }
      continue;
    }
    auto served = std::make_shared<ServedView>();
    served->version = sequence_;
    served->def =
        std::make_shared<const GpsjViewDef>(engine.derivation().view());
    served->derivation =
        std::make_shared<const Derivation>(engine.derivation());
    served->contents =
        std::make_shared<const Table>(std::move(*contents));
    served->augmented =
        std::make_shared<const Table>(std::move(*augmented));
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      served->aux.emplace(
          aux.base_table,
          std::make_shared<const Table>(engine.AuxContents(aux.base_table)));
    }
    next->views.emplace(name, std::move(served));
  }
  std::set<std::string> invalidate = touched;
  if (lattice_ != nullptr) {
    // Fold the batch upward into every promoted node, promote/demote
    // under the budget, and attach the node snapshots. Runs strictly
    // after the commit succeeded — a rolled-back batch never gets here,
    // so lattice state and engine state cannot diverge.
    const std::optional<std::map<std::string, std::string>> diff_keys =
        LatticeDiffKeys();
    std::set<std::string> stale = lattice_->Maintain(
        *prev, next.get(), touched, diff_keys ? &*diff_keys : nullptr);
    invalidate.insert(stale.begin(), stale.end());
  }
  if (result_cache_ != nullptr) result_cache_->InvalidateViews(invalidate);
  const std::shared_ptr<const WarehouseSnapshot> published = next;
  snapshots_->Publish(std::move(next));
  // Fire the change-feed hook strictly after the snapshot is visible to
  // readers: a listener that republishes the boundary downstream never
  // advertises a version Current() cannot serve yet.
  if (commit_listener_) commit_listener_(prev, published);
}

Status Warehouse::LatticePromote(
    const std::string& view, const std::vector<std::string>& group_outputs) {
  if (lattice_ == nullptr) {
    return FailedPreconditionError(
        "lattice is disabled (WarehouseOptions::lattice_budget_bytes)");
  }
  MD_RETURN_IF_ERROR(
      lattice_->ForcePromote(*snapshots_->Current(), view, group_outputs));
  // An empty touched set re-publishes with every view shared; only the
  // lattice map changes.
  PublishSnapshot({}, /*schema_changed=*/false);
  return Status::Ok();
}

Status Warehouse::LatticeDemote(const std::string& node_key) {
  if (lattice_ == nullptr) {
    return FailedPreconditionError(
        "lattice is disabled (WarehouseOptions::lattice_budget_bytes)");
  }
  MD_RETURN_IF_ERROR(lattice_->Demote(node_key));
  PublishSnapshot({}, /*schema_changed=*/false);
  return Status::Ok();
}

std::vector<LatticeNodeInfo> Warehouse::LatticeNodes() const {
  return lattice_ != nullptr ? lattice_->Nodes()
                             : std::vector<LatticeNodeInfo>{};
}

LatticeStats Warehouse::lattice_stats() const {
  return lattice_ != nullptr ? lattice_->stats() : LatticeStats{};
}

std::string Warehouse::LatticeReport() const {
  if (lattice_ == nullptr) {
    return "lattice disabled (WarehouseOptions::lattice_budget_bytes)\n";
  }
  const LatticeStats stats = lattice_->stats();
  std::string out = StrCat(
      "Lattice: ", stats.nodes, " node(s), ", FormatBytes(stats.bytes),
      " of ",
      options_.lattice_budget_bytes == SIZE_MAX
          ? std::string("unbounded")
          : FormatBytes(options_.lattice_budget_bytes),
      " budget\n");
  out += StrCat("  promotions ", stats.promotions, ", demotions ",
                stats.demotions, ", folds ", stats.folds, ", rebuilds ",
                stats.rebuilds, ", hits ", stats.hits, "\n");
  for (const LatticeNodeInfo& node : lattice_->Nodes()) {
    out += StrCat("  node ", node.key, ": ", node.rows, " rows, ",
                  FormatBytes(node.bytes), ", v", node.version, ", ",
                  node.hits, " hit(s)\n");
  }
  for (const LatticeCandidateInfo& candidate : lattice_->Candidates()) {
    out += StrCat("  candidate ", candidate.key, ": ", candidate.hits,
                  " use(s)\n");
  }
  return out;
}

const SelfMaintenanceEngine& Warehouse::engine(
    const std::string& view_name) const {
  auto it = engines_.find(view_name);
  MD_CHECK(it != engines_.end());
  return *it->second;
}

SelfMaintenanceEngine& Warehouse::mutable_engine(
    const std::string& view_name) {
  auto it = engines_.find(view_name);
  MD_CHECK(it != engines_.end());
  return *it->second;
}

uint64_t Warehouse::TotalDetailPaperSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxPaperSizeBytes();
  }
  return total;
}

uint64_t Warehouse::TotalDetailActualSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxActualSizeBytes();
  }
  return total;
}

std::optional<std::map<std::string, std::string>> Warehouse::LatticeDiffKeys()
    const {
  if (!options_.share_delta_joins || engines_.size() < 2) return std::nullopt;
  std::map<std::string, std::string> keys;
  for (const auto& [name, engine] : engines_) {
    const uint64_t lineage = engine->shared_lineage();
    // Lineage 0 means "history unknown" (pre-sharing checkpoint): the
    // view keeps its name as its diff class — no cross-view sharing.
    if (lineage == 0) continue;
    keys.emplace(name,
                 StrCat(ViewStructuralSignature(engine->derivation().view()),
                        "#", lineage));
  }
  if (keys.empty()) return std::nullopt;
  return keys;
}

WarehouseReport Warehouse::Report() const {
  // Reads every subsystem directly — the per-subsystem getters forward
  // *here*, so going through them would recurse.
  WarehouseReport report;
  for (const auto& [name, engine] : engines_) {
    const EngineStats& stats = engine->stats();
    report.maintenance.batches_applied += stats.batches_applied;
    report.maintenance.rows_processed += stats.rows_processed;
    report.maintenance.delta_joins_planned += stats.delta_joins_planned;
    report.maintenance.delta_joins_executed += stats.delta_joins_executed;
    report.maintenance.delta_joins_reused += stats.delta_joins_reused;
    report.maintenance.group_recomputes += stats.group_recomputes;
    report.maintenance.shielded_skips += stats.shielded_skips;
  }
  report.maintenance.shared = shared_stats_;
  report.ingest = ingest_stats_;
  if (result_cache_ != nullptr) report.cache = result_cache_->stats();
  if (lattice_ != nullptr) report.lattice = lattice_->stats();
  if (overload_ != nullptr) report.overload = overload_->Snapshot();
  if (query_budget_root_ != nullptr) {
    report.query_memory_peak_bytes = query_budget_root_->peak_bytes();
  }
  report.recovery = recovery_;
  report.durable = durable();
  report.directory = dir_;
  report.read_only = options_.read_only;
  report.leader_epoch = leader_epoch_;
  report.last_sequence = sequence_;
  for (const std::string& name : registration_order_) {
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    ViewReport view;
    view.name = name;
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      ViewReport::AuxLine line;
      line.name = aux.name;
      line.eliminated = aux.eliminated;
      if (!aux.eliminated) {
        const Table& contents = engine.AuxContents(aux.base_table);
        line.rows = contents.NumRows();
        line.paper_bytes = contents.PaperSizeBytes();
      }
      view.aux.push_back(std::move(line));
    }
    report.views.push_back(std::move(view));
  }
  report.total_detail_paper_bytes = TotalDetailPaperSizeBytes();
  return report;
}

std::string WarehouseReport::ToString() const {
  // The per-view inventory and total keep the exact legacy Report()
  // text; the subsystem sections below are additive.
  std::string out =
      StrCat("Warehouse: ", views.size(), " summary view(s)\n");
  for (const ViewReport& view : views) {
    out += StrCat("\n== ", view.name, " ==\n");
    for (const ViewReport::AuxLine& aux : view.aux) {
      if (aux.eliminated) {
        out += StrCat("  ", aux.name, ": eliminated\n");
      } else {
        out += StrCat("  ", aux.name, ": ", aux.rows, " rows, ",
                      FormatBytes(aux.paper_bytes), "\n");
      }
    }
  }
  out += StrCat("\nTotal current detail: ",
                FormatBytes(total_detail_paper_bytes), "\n");
  out += StrCat("\nMaintenance: ", maintenance.batches_applied,
                " batch(es), ", maintenance.rows_processed,
                " row(s) processed\n");
  out += StrCat("  delta joins: ", maintenance.delta_joins_planned,
                " planned, ", maintenance.delta_joins_executed,
                " executed, ", maintenance.delta_joins_reused, " reused\n");
  out += StrCat("  shared plans: ", maintenance.shared.joins_computed,
                " join(s) computed, ", maintenance.shared.joins_reused,
                " reused; ", maintenance.shared.fragments_computed,
                " fragment(s) computed, ",
                maintenance.shared.fragments_reused, " reused\n");
  out += StrCat("  group recomputes ", maintenance.group_recomputes,
                ", shielded skips ", maintenance.shielded_skips, "\n");
  out += StrCat("Ingest: ", ingest.accepted, " accepted, ",
                ingest.duplicates, " duplicates, ", ingest.rejected,
                " rejected, ", ingest.failed, " failed, ", ingest.retries,
                " retries, ", ingest.quarantined, " quarantined\n");
  out += StrCat("Result cache: ", cache.hits, " hit(s), ", cache.misses,
                " miss(es), ", cache.insertions, " insertion(s), ",
                cache.invalidations, " invalidation(s), ", cache.evictions,
                " eviction(s)\n");
  out += StrCat("  bytes: ", FormatBytes(cache.bytes_used), " resident, ",
                FormatBytes(cache.bytes_evicted), " evicted (",
                cache.byte_evictions, " byte eviction(s))\n");
  out += StrCat("Overload: admission ",
                overload.admission_enabled
                    ? StrCat("on (", overload.inflight, " of ",
                             overload.max_inflight, " in flight)")
                    : std::string("off"),
                ", ", overload.admitted, " admitted, ", overload.shed,
                " shed (", overload.shed_heavy, " heavy)\n");
  out += StrCat("  cancelled: ", overload.cancelled_batches, " batch(es), ",
                overload.cancelled_queries, " query(ies); deadline expiries ",
                overload.deadline_queries, ", budget refusals ",
                overload.budget_refusals, "\n");
  {
    const double ewma = overload.apply_latency_ewma_ms;
    const int64_t tenths = static_cast<int64_t>(ewma * 10.0 + 0.5);
    out += StrCat("  apply latency ewma ", tenths / 10, ".", tenths % 10,
                  " ms, last retry-after ", overload.last_retry_after_ms,
                  " ms, query memory peak ",
                  FormatBytes(query_memory_peak_bytes), "\n");
  }
  out += StrCat("Lattice: ", lattice.nodes, " node(s), ",
                FormatBytes(lattice.bytes), "; ", lattice.folds,
                " fold(s), ", lattice.rebuilds, " rebuild(s), ",
                lattice.hits, " hit(s), ", lattice.diffs_computed,
                " diff(s) computed, ", lattice.diffs_shared, " shared\n");
  if (durable) {
    out += StrCat("Durability: ", directory, ", ",
                  read_only ? "follower" : "leader", " epoch ",
                  leader_epoch, ", last sequence ", last_sequence, "\n");
    out += StrCat("Recovery: checkpoint seq ",
                  recovery.checkpoint_sequence, ", ",
                  recovery.replayed_batches, " replayed, ",
                  recovery.rejected_batches, " rejected\n");
  }
  return out;
}

}  // namespace mindetail
