#include "maintenance/warehouse.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/strings.h"

namespace mindetail {

Status Warehouse::AddView(const Catalog& source, const GpsjViewDef& def,
                          EngineOptions options) {
  if (engines_.count(def.name()) > 0) {
    return AlreadyExistsError(
        StrCat("view '", def.name(), "' is already registered"));
  }
  MD_ASSIGN_OR_RETURN(SelfMaintenanceEngine engine,
                      SelfMaintenanceEngine::Create(source, def, options));
  engines_.emplace(def.name(), std::make_unique<SelfMaintenanceEngine>(
                                   std::move(engine)));
  registration_order_.push_back(def.name());
  return Status::Ok();
}

Status Warehouse::AddView(const Catalog& source, const GpsjViewDef& def) {
  return AddView(source, def, default_options_);
}

Status Warehouse::AddViewSql(const Catalog& source, std::string_view sql,
                             EngineOptions options) {
  MD_ASSIGN_OR_RETURN(GpsjViewDef def, ParseGpsjView(sql, source));
  return AddView(source, def, options);
}

Status Warehouse::AddViewSql(const Catalog& source, std::string_view sql) {
  return AddViewSql(source, sql, default_options_);
}

Status Warehouse::RemoveView(const std::string& view_name) {
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  engines_.erase(it);
  registration_order_.erase(
      std::remove(registration_order_.begin(), registration_order_.end(),
                  view_name),
      registration_order_.end());
  return Status::Ok();
}

bool Warehouse::HasView(const std::string& view_name) const {
  return engines_.count(view_name) > 0;
}

std::vector<std::string> Warehouse::ViewNames() const {
  return registration_order_;
}

Status Warehouse::Apply(const std::string& table, const Delta& delta) {
  for (const std::string& name : registration_order_) {
    SelfMaintenanceEngine& engine = *engines_.at(name);
    if (!engine.derivation().view().ReferencesTable(table)) continue;
    MD_RETURN_IF_ERROR(engine.Apply(table, delta));
  }
  return Status::Ok();
}

Status Warehouse::ApplyTransaction(
    const std::map<std::string, Delta>& changes) {
  for (const std::string& name : registration_order_) {
    SelfMaintenanceEngine& engine = *engines_.at(name);
    std::map<std::string, Delta> relevant;
    for (const auto& [table, delta] : changes) {
      if (engine.derivation().view().ReferencesTable(table)) {
        relevant.emplace(table, delta);
      }
    }
    if (relevant.empty()) continue;
    MD_RETURN_IF_ERROR(engine.ApplyTransaction(relevant));
  }
  return Status::Ok();
}

Result<Table> Warehouse::View(const std::string& view_name) const {
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  return it->second->View();
}

const SelfMaintenanceEngine& Warehouse::engine(
    const std::string& view_name) const {
  auto it = engines_.find(view_name);
  MD_CHECK(it != engines_.end());
  return *it->second;
}

uint64_t Warehouse::TotalDetailPaperSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxPaperSizeBytes();
  }
  return total;
}

uint64_t Warehouse::TotalDetailActualSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxActualSizeBytes();
  }
  return total;
}

std::string Warehouse::Report() const {
  std::string out = StrCat("Warehouse: ", engines_.size(),
                           " summary view(s)\n");
  for (const std::string& name : registration_order_) {
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    out += StrCat("\n== ", name, " ==\n");
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) {
        out += StrCat("  ", aux.name, ": eliminated\n");
      } else {
        const Table& contents = engine.AuxContents(aux.base_table);
        out += StrCat("  ", aux.name, ": ", contents.NumRows(), " rows, ",
                      FormatBytes(contents.PaperSizeBytes()), "\n");
      }
    }
  }
  out += StrCat("\nTotal current detail: ",
                FormatBytes(TotalDetailPaperSizeBytes()), "\n");
  return out;
}

}  // namespace mindetail
