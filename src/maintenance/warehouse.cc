#include "maintenance/warehouse.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "io/warehouse_io.h"

namespace mindetail {
namespace {

EngineOptionsData ToOptionsData(const EngineOptions& options) {
  EngineOptionsData data;
  data.num_threads = options.num_threads;
  data.trust_referential_integrity = options.trust_referential_integrity;
  data.prune_delta_joins = options.prune_delta_joins;
  data.allow_elimination = options.derive.allow_elimination;
  return data;
}

EngineOptions FromOptionsData(const EngineOptionsData& data) {
  EngineOptions options;
  options.num_threads = data.num_threads;
  options.trust_referential_integrity = data.trust_referential_integrity;
  options.prune_delta_joins = data.prune_delta_joins;
  options.derive.allow_elimination = data.allow_elimination;
  return options;
}

}  // namespace

Warehouse::Warehouse(WarehouseOptions options)
    : options_(std::move(options)) {
  if (options_.parallelism > 1) {
    view_pool_ = std::make_shared<ThreadPool>(options_.parallelism);
  }
}

void Warehouse::set_options(WarehouseOptions options) {
  options_ = std::move(options);
  view_pool_ = options_.parallelism > 1
                   ? std::make_shared<ThreadPool>(options_.parallelism)
                   : nullptr;
}

Result<Warehouse> Warehouse::Open(const std::string& dir,
                                  WarehouseOptions options) {
  MD_RETURN_IF_ERROR(EnsureDirectory(dir));
  Warehouse wh(std::move(options));
  wh.dir_ = dir;

  Result<WarehouseCheckpoint> loaded = LoadWarehouseCheckpoint(dir);
  if (loaded.ok()) {
    WarehouseCheckpoint cp = std::move(loaded).value();
    wh.checkpoint_epoch_ = cp.epoch;
    wh.sequence_ = cp.sequence;
    wh.recovery_.checkpoint_sequence = cp.sequence;
    wh.schema_catalog_ = std::move(cp.schema_catalog);
    for (ViewCheckpoint& vc : cp.views) {
      MD_ASSIGN_OR_RETURN(
          SelfMaintenanceEngine engine,
          SelfMaintenanceEngine::Restore(
              wh.schema_catalog_, vc.def, FromOptionsData(vc.options),
              std::move(vc.aux), vc.summary));
      wh.engines_.emplace(vc.name, std::make_unique<SelfMaintenanceEngine>(
                                       std::move(engine)));
      wh.registration_order_.push_back(vc.name);
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }

  const std::string wal_path = StrCat(dir, "/", kWalFile);
  MD_ASSIGN_OR_RETURN(std::vector<WriteAheadLog::Record> records,
                      WriteAheadLog::ReadAll(wal_path));
  WriteAheadLog::Options wal_options;
  wal_options.sync = wh.options_.sync_wal;
  MD_ASSIGN_OR_RETURN(WriteAheadLog wal,
                      WriteAheadLog::Open(wal_path, wal_options));
  wh.wal_ = std::make_unique<WriteAheadLog>(std::move(wal));

  for (const WriteAheadLog::Record& record : records) {
    // Records at or below the checkpoint sequence are already folded in.
    if (record.sequence <= wh.sequence_) continue;
    // New records are all transactions; kKindApply only appears in WALs
    // written before Apply became a wrapper over ApplyTransaction, and
    // replays with its original single-call semantics.
    const Status status = wh.ApplyToEngines(
        record.changes, record.kind == WriteAheadLog::kKindTransaction);
    wh.sequence_ = record.sequence;
    if (status.ok()) {
      ++wh.recovery_.replayed_batches;
    } else {
      // The batch was rejected when first applied too (atomically — no
      // engine kept any of it); preserve that outcome and move on.
      ++wh.recovery_.rejected_batches;
    }
  }
  return wh;
}

Status Warehouse::MergeSchemas(const Catalog& source,
                               const GpsjViewDef& def) {
  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* contents, source.GetTable(table));
    MD_ASSIGN_OR_RETURN(std::string key, source.KeyAttr(table));
    if (!schema_catalog_.HasTable(table)) {
      MD_RETURN_IF_ERROR(
          schema_catalog_.CreateTable(table, contents->schema(), key));
    }
    if (source.HasExposedUpdates(table)) {
      MD_RETURN_IF_ERROR(schema_catalog_.SetExposedUpdates(table, true));
    }
    if (source.IsAppendOnly(table)) {
      MD_RETURN_IF_ERROR(schema_catalog_.SetAppendOnly(table, true));
    }
  }
  for (const ForeignKey& fk : source.foreign_keys()) {
    if (!def.ReferencesTable(fk.from_table) ||
        !def.ReferencesTable(fk.to_table)) {
      continue;
    }
    if (schema_catalog_.HasForeignKey(fk.from_table, fk.from_attr,
                                      fk.to_table)) {
      continue;
    }
    MD_RETURN_IF_ERROR(schema_catalog_.AddForeignKey(
        fk.from_table, fk.from_attr, fk.to_table));
  }
  return Status::Ok();
}

Status Warehouse::AddView(const Catalog& source, const GpsjViewDef& def,
                          std::optional<EngineOptions> options) {
  if (engines_.count(def.name()) > 0) {
    return AlreadyExistsError(
        StrCat("view '", def.name(), "' is already registered"));
  }
  MD_ASSIGN_OR_RETURN(
      SelfMaintenanceEngine engine,
      SelfMaintenanceEngine::Create(
          source, def, options.has_value() ? *options : options_.engine));
  MD_RETURN_IF_ERROR(MergeSchemas(source, def));
  engines_.emplace(def.name(), std::make_unique<SelfMaintenanceEngine>(
                                   std::move(engine)));
  registration_order_.push_back(def.name());
  // Registrations are not WAL events — persist them right away.
  if (durable()) return Checkpoint();
  return Status::Ok();
}

Status Warehouse::AddViewSql(const Catalog& source, std::string_view sql,
                             std::optional<EngineOptions> options) {
  MD_ASSIGN_OR_RETURN(GpsjViewDef def, ParseGpsjView(sql, source));
  return AddView(source, def, std::move(options));
}

Status Warehouse::RemoveView(const std::string& view_name) {
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  engines_.erase(it);
  registration_order_.erase(
      std::remove(registration_order_.begin(), registration_order_.end(),
                  view_name),
      registration_order_.end());
  if (durable()) return Checkpoint();
  return Status::Ok();
}

bool Warehouse::HasView(const std::string& view_name) const {
  return engines_.count(view_name) > 0;
}

std::vector<std::string> Warehouse::ViewNames() const {
  return registration_order_;
}

Status Warehouse::ApplyLogged(const std::map<std::string, Delta>& changes) {
  if (wal_ != nullptr) {
    MD_RETURN_IF_ERROR(wal_->Append(sequence_ + 1,
                                    WriteAheadLog::kKindTransaction,
                                    changes));
    ++sequence_;
    MD_FAILPOINT("warehouse.apply.after_log");
  } else {
    ++sequence_;
  }
  return ApplyToEngines(changes, /*transaction=*/true);
}

Status Warehouse::ApplyToEngines(const std::map<std::string, Delta>& changes,
                                 bool transaction) {
  // The affected engines and their slices of the batch, in registration
  // order — which is also the serial apply order, so "first failure in
  // registration order" below reports exactly the error the serial
  // warehouse would.
  struct EngineTask {
    SelfMaintenanceEngine* engine = nullptr;
    std::map<std::string, Delta> relevant;
  };
  std::vector<EngineTask> tasks;
  for (const std::string& name : registration_order_) {
    SelfMaintenanceEngine& engine = *engines_.at(name);
    EngineTask task;
    for (const auto& [table, delta] : changes) {
      if (engine.derivation().view().ReferencesTable(table)) {
        task.relevant.emplace(table, delta);
      }
    }
    if (task.relevant.empty()) continue;
    task.engine = &engine;
    tasks.push_back(std::move(task));
  }

  auto run = [transaction](EngineTask& task) {
    return transaction
               ? task.engine->ApplyTransaction(task.relevant)
               : task.engine->Apply(task.relevant.begin()->first,
                                    task.relevant.begin()->second);
  };

  if (view_pool_ == nullptr || tasks.size() < 2) {
    // Serial: snapshot each engine immediately before its apply, so a
    // failing engine (possibly left partially applied) is restored too.
    std::vector<std::pair<SelfMaintenanceEngine*,
                          SelfMaintenanceEngine::StateSnapshot>>
        applied;
    Status failure = Status::Ok();
    for (EngineTask& task : tasks) {
      applied.emplace_back(task.engine, task.engine->SnapshotState());
      failure = run(task);
      if (!failure.ok()) break;
    }
    // Fires after every engine applied but before the batch would be
    // acknowledged: error mode exercises the full rollback, crash mode
    // dies with the batch logged but unacknowledged.
    if (failure.ok()) failure = FailpointCheck("warehouse.apply.before_ack");
    if (!failure.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        it->first->RestoreState(std::move(it->second));
      }
      return failure;
    }
    return Status::Ok();
  }

  // Parallel: snapshot everything up front (no engine has been touched
  // yet, so these equal the serial snapshots), then fan the engines out
  // over the shared view pool. Engines maintain disjoint state; the
  // per-task slots below are disjoint too, so tasks never race.
  std::vector<SelfMaintenanceEngine::StateSnapshot> snapshots;
  snapshots.reserve(tasks.size());
  for (EngineTask& task : tasks) {
    snapshots.push_back(task.engine->SnapshotState());
  }
  std::vector<Status> statuses(tasks.size(), Status::Ok());
  std::vector<char> attempted(tasks.size(), 0);
  std::atomic<bool> cancelled{false};
  view_pool_->ParallelFor(tasks.size(), [&](size_t i) {
    // Best-effort cancellation: an engine that has not started when a
    // failure lands skips its (doomed) work entirely. Engines already
    // running finish and are rolled back below.
    if (cancelled.load(std::memory_order_acquire)) return;
    attempted[i] = 1;
    statuses[i] = run(tasks[i]);
    if (!statuses[i].ok()) {
      cancelled.store(true, std::memory_order_release);
    }
  });

  // Deterministic error selection: the first failure in registration
  // order, exactly as the serial loop would have reported it.
  Status failure = Status::Ok();
  for (const Status& status : statuses) {
    if (!status.ok()) {
      failure = status;
      break;
    }
  }
  if (failure.ok()) failure = FailpointCheck("warehouse.apply.before_ack");
  if (!failure.ok()) {
    for (size_t i = tasks.size(); i-- > 0;) {
      if (attempted[i] == 0) continue;  // Never touched its engine.
      tasks[i].engine->RestoreState(std::move(snapshots[i]));
    }
    return failure;
  }
  return Status::Ok();
}

Status Warehouse::Apply(const std::string& table, const Delta& delta) {
  std::map<std::string, Delta> changes;
  changes.emplace(table, delta);
  return ApplyTransaction(changes);
}

Status Warehouse::ApplyTransaction(
    const std::map<std::string, Delta>& changes) {
  return ApplyLogged(changes);
}

Status Warehouse::Checkpoint() {
  if (!durable()) {
    return FailedPreconditionError(
        "warehouse is in-memory (not constructed by Open); nothing to "
        "checkpoint");
  }
  WarehouseCheckpoint cp;
  cp.epoch = checkpoint_epoch_ + 1;
  cp.sequence = sequence_;
  cp.schema_catalog = schema_catalog_;
  for (const std::string& name : registration_order_) {
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    ViewCheckpoint vc;
    vc.name = name;
    vc.def = engine.derivation().view();
    vc.options = ToOptionsData(engine.options());
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) continue;
      vc.aux.emplace(aux.base_table, engine.AuxContents(aux.base_table));
    }
    MD_ASSIGN_OR_RETURN(vc.summary, engine.RenderAugmentedSummary());
    cp.views.push_back(std::move(vc));
  }
  MD_ASSIGN_OR_RETURN(std::string kept, SaveWarehouseCheckpoint(cp, dir_));
  checkpoint_epoch_ = cp.epoch;
  // The WAL is now redundant up to cp.sequence — and nothing beyond it
  // exists, since checkpoints run between batches.
  MD_RETURN_IF_ERROR(wal_->Reset());
  RemoveStaleCheckpoints(dir_, kept);
  return Status::Ok();
}

std::string Warehouse::DurabilityReport() const {
  if (!durable()) return "in-memory warehouse (no directory)\n";
  std::string out = StrCat("directory: ", dir_, "\n");
  out += StrCat("last sequence: ", sequence_, "\n");
  out += StrCat("checkpoint epoch: ", checkpoint_epoch_, "\n");
  out += StrCat("recovered: checkpoint seq ",
                recovery_.checkpoint_sequence, ", ",
                recovery_.replayed_batches, " replayed, ",
                recovery_.rejected_batches, " rejected\n");
  out += StrCat("wal: ", wal_->num_records(), " record(s), ",
                FormatBytes(wal_->size_bytes()),
                options_.sync_wal ? " (fsync on)" : " (fsync OFF)",
                "\n");
  return out;
}

Result<Table> Warehouse::View(const std::string& view_name) const {
  auto it = engines_.find(view_name);
  if (it == engines_.end()) {
    return NotFoundError(
        StrCat("view '", view_name, "' is not registered"));
  }
  return it->second->View();
}

const SelfMaintenanceEngine& Warehouse::engine(
    const std::string& view_name) const {
  auto it = engines_.find(view_name);
  MD_CHECK(it != engines_.end());
  return *it->second;
}

uint64_t Warehouse::TotalDetailPaperSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxPaperSizeBytes();
  }
  return total;
}

uint64_t Warehouse::TotalDetailActualSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->AuxActualSizeBytes();
  }
  return total;
}

std::string Warehouse::Report() const {
  std::string out = StrCat("Warehouse: ", engines_.size(),
                           " summary view(s)\n");
  for (const std::string& name : registration_order_) {
    const SelfMaintenanceEngine& engine = *engines_.at(name);
    out += StrCat("\n== ", name, " ==\n");
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) {
        out += StrCat("  ", aux.name, ": eliminated\n");
      } else {
        const Table& contents = engine.AuxContents(aux.base_table);
        out += StrCat("  ", aux.name, ": ", contents.NumRows(), " rows, ",
                      FormatBytes(contents.PaperSizeBytes()), "\n");
      }
    }
  }
  out += StrCat("\nTotal current detail: ",
                FormatBytes(TotalDetailPaperSizeBytes()), "\n");
  return out;
}

}  // namespace mindetail
