#include "maintenance/aux_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace mindetail {

namespace {

// Fragment rows below which the sharded merge is pure overhead.
// Scheduling only — the sharded merge is bit-identical to the serial
// one either way.
constexpr size_t kMinRowsPerMergeShard = 256;

}  // namespace

std::string AuxStore::Describe() const {
  if (owner_view_.empty()) {
    return StrCat("auxiliary view '", def_.name, "'");
  }
  return StrCat("auxiliary view '", def_.name, "' of view '", owner_view_,
                "'");
}

Tuple AuxStore::KeyOf(const Tuple& row) const {
  Tuple key;
  key.reserve(plain_idx_.size());
  for (size_t idx : plain_idx_) key.push_back(row[idx]);
  return key;
}

bool AuxStore::KeyLess(const Tuple& a, const Tuple& b) const {
  for (size_t idx : plain_idx_) {
    const int c = a[idx].Compare(b[idx]);
    if (c != 0) return c < 0;
  }
  return false;
}

void AuxStore::Canonicalize() {
  if (!order_dirty_) return;
  table_.SortRowsBy(
      [this](const Tuple& a, const Tuple& b) { return KeyLess(a, b); });
  index_.clear();
  index_.reserve(table_.NumRows());
  for (size_t i = 0; i < table_.NumRows(); ++i) {
    index_.emplace(KeyOf(table_.row(i)), i);
  }
  order_dirty_ = false;
}

bool AuxStore::InCanonicalOrder() const {
  for (size_t i = 1; i < table_.NumRows(); ++i) {
    if (!KeyLess(table_.row(i - 1), table_.row(i))) return false;
  }
  return true;
}

Result<AuxStore> AuxStore::Create(const AuxViewDef& def, Table initial,
                                  std::string owner_view) {
  if (initial.schema().size() != def.plan.columns.size()) {
    return InvalidArgumentError(StrCat(
        "auxiliary contents for '", def.name, "' have ",
        initial.schema().size(), " columns; the plan expects ",
        def.plan.columns.size()));
  }
  AuxStore store;
  store.def_ = def;
  store.owner_view_ = std::move(owner_view);
  store.table_ = std::move(initial);
  for (size_t i = 0; i < def.plan.columns.size(); ++i) {
    switch (def.plan.columns[i].kind) {
      case AuxColumn::Kind::kPlain:
        store.plain_idx_.push_back(i);
        break;
      case AuxColumn::Kind::kSum:
      case AuxColumn::Kind::kMin:
      case AuxColumn::Kind::kMax:
        store.agg_cols_.push_back(AggCol{i, def.plan.columns[i].kind});
        break;
      case AuxColumn::Kind::kCountStar:
        store.cnt_idx_ = static_cast<int>(i);
        break;
    }
  }
  store.index_.reserve(store.table_.NumRows());
  for (size_t i = 0; i < store.table_.NumRows(); ++i) {
    auto [it, inserted] =
        store.index_.emplace(store.KeyOf(store.table_.row(i)), i);
    if (!inserted) {
      return InvalidArgumentError(
          StrCat("auxiliary contents for '", def.name,
                 "' contain duplicate group ", TupleToString(it->first)));
    }
  }
  // Initial contents arrive in materialization (or checkpoint) order;
  // establish the canonical order unconditionally.
  store.order_dirty_ = true;
  store.Canonicalize();
  return store;
}

Status AuxStore::ApplyGroupDelta(const Tuple& group,
                                 const std::vector<Value>& agg_values,
                                 int64_t cnt) {
  MD_CHECK(def_.plan.compressed);
  MD_CHECK_EQ(agg_values.size(), agg_cols_.size());
  MD_CHECK_GE(cnt_idx_, 0);
  if (cnt == 0) return Status::Ok();

  if (cnt < 0) {
    // Deletions cannot be merged into MIN/MAX columns; those only exist
    // under the insert-only relaxation, where deletions are illegal.
    for (const AggCol& col : agg_cols_) {
      if (col.kind != AuxColumn::Kind::kSum) {
        return FailedPreconditionError(StrCat(
            "deletion delta for group ", TupleToString(group),
            " against append-only ", Describe(), ": MIN/MAX column '",
            def_.plan.columns[col.idx].output_name,
            "' cannot be decremented"));
      }
    }
  }

  auto it = index_.find(group);
  if (it == index_.end()) {
    if (cnt < 0) {
      return FailedPreconditionError(StrCat(
          "deletion delta for ", Describe(), " touches missing group ",
          TupleToString(group), " (count column '",
          def_.plan.columns[cnt_idx_].output_name, "' would go below 0)"));
    }
    Tuple row(def_.plan.columns.size());
    for (size_t i = 0; i < plain_idx_.size(); ++i) {
      row[plain_idx_[i]] = group[i];
    }
    for (size_t i = 0; i < agg_cols_.size(); ++i) {
      row[agg_cols_[i].idx] = agg_values[i];
    }
    row[cnt_idx_] = Value(cnt);
    const size_t new_idx = table_.NumRows();
    MD_RETURN_IF_ERROR(table_.Insert(std::move(row)));
    index_.emplace(group, new_idx);
    order_dirty_ = true;
    return Status::Ok();
  }

  const size_t row_idx = it->second;
  Tuple row = table_.row(row_idx);
  const int64_t new_cnt = row[cnt_idx_].AsInt64() + cnt;
  if (new_cnt < 0) {
    return FailedPreconditionError(StrCat(
        "deletion delta for ", Describe(), " drives group ",
        TupleToString(group), " count negative (count column '",
        def_.plan.columns[cnt_idx_].output_name, "': ",
        row[cnt_idx_].AsInt64(), " + ", cnt, " = ", new_cnt, ")"));
  }
  if (new_cnt == 0) {
    // The group vanished. Swap-and-pop; re-point the moved row's index.
    index_.erase(it);
    const size_t last = table_.NumRows() - 1;
    table_.DeleteRowAt(row_idx);
    if (row_idx != last) {
      index_[KeyOf(table_.row(row_idx))] = row_idx;
    }
    order_dirty_ = true;
    return Status::Ok();
  }
  row[cnt_idx_] = Value(new_cnt);
  for (size_t i = 0; i < agg_cols_.size(); ++i) {
    Value& current = row[agg_cols_[i].idx];
    const Value& incoming = agg_values[i];
    switch (agg_cols_[i].kind) {
      case AuxColumn::Kind::kSum:
        current = AddValues(
            current, cnt < 0 ? NegateValue(incoming) : incoming);
        break;
      case AuxColumn::Kind::kMin:
        if (!incoming.is_null() &&
            (current.is_null() || incoming.Compare(current) < 0)) {
          current = incoming;
        }
        break;
      case AuxColumn::Kind::kMax:
        if (!incoming.is_null() &&
            (current.is_null() || incoming.Compare(current) > 0)) {
          current = incoming;
        }
        break;
      default:
        return InternalError("unexpected aggregate column kind");
    }
  }
  return table_.ReplaceRow(row_idx, std::move(row));
}

Status AuxStore::MergeCompressedFragment(const Table& fragment, int sign,
                                         ThreadPool* pool) {
  MD_CHECK(def_.plan.compressed);
  MD_CHECK(sign == 1 || sign == -1);
  MD_CHECK_GE(cnt_idx_, 0);
  const size_t num_shards =
      pool == nullptr
          ? 1
          : std::min(static_cast<size_t>(pool->num_threads()),
                     fragment.NumRows() / kMinRowsPerMergeShard);
  if (num_shards <= 1) {
    for (const Tuple& row : fragment.rows()) {
      Tuple group;
      group.reserve(plain_idx_.size());
      for (size_t idx : plain_idx_) group.push_back(row[idx]);
      std::vector<Value> agg_values;
      agg_values.reserve(agg_cols_.size());
      for (const AggCol& col : agg_cols_) agg_values.push_back(row[col.idx]);
      MD_RETURN_IF_ERROR(ApplyGroupDelta(group, agg_values,
                                         sign * row[cnt_idx_].AsInt64()));
    }
  } else {
    MD_RETURN_IF_ERROR(
        MergeCompressedSharded(fragment, sign, pool, num_shards));
  }
  Canonicalize();
  return Status::Ok();
}

Status AuxStore::MergeCompressedSharded(const Table& fragment, int sign,
                                        ThreadPool* pool,
                                        size_t num_shards) {
  // Working state of one group touched by this merge. The shard applies
  // its fragment rows (in fragment order) against a private copy of the
  // stored row, replicating ApplyGroupDelta arithmetic exactly; nothing
  // is committed until every shard finished without error, and groups
  // hash-partition so shards touch disjoint rows.
  struct PendingGroup {
    bool existed = false;  // Present in the store before this merge.
    size_t row_idx = 0;    // Valid iff existed.
    bool alive = false;
    Tuple values;  // Full row in plan column order, valid iff alive.
  };
  struct Shard {
    std::vector<size_t> rows;  // Fragment row indexes, ascending.
    std::unordered_map<Tuple, PendingGroup, TupleHash, TupleEqual> groups;
    size_t error_row = SIZE_MAX;
    Status error = Status::Ok();
  };

  std::vector<Shard> shards(num_shards);
  TupleHash hasher;
  for (size_t i = 0; i < fragment.NumRows(); ++i) {
    shards[hasher(KeyOf(fragment.row(i))) % num_shards].rows.push_back(i);
  }

  pool->ParallelFor(num_shards, [&](size_t s) {
    Shard& shard = shards[s];
    for (size_t i : shard.rows) {
      const Tuple& frow = fragment.row(i);
      const int64_t cnt = sign * frow[cnt_idx_].AsInt64();
      if (cnt == 0) continue;
      const Tuple group = KeyOf(frow);

      Status status = Status::Ok();
      if (cnt < 0) {
        for (const AggCol& col : agg_cols_) {
          if (col.kind != AuxColumn::Kind::kSum) {
            status = FailedPreconditionError(StrCat(
                "deletion delta for group ", TupleToString(group),
                " against append-only ", Describe(), ": MIN/MAX column '",
                def_.plan.columns[col.idx].output_name,
                "' cannot be decremented"));
            break;
          }
        }
      }

      PendingGroup* pending = nullptr;
      if (status.ok()) {
        auto [it, inserted] = shard.groups.try_emplace(group);
        pending = &it->second;
        if (inserted) {
          auto stored = index_.find(group);
          if (stored != index_.end()) {
            pending->existed = true;
            pending->row_idx = stored->second;
            pending->alive = true;
            pending->values = table_.row(stored->second);
          }
        }
      }

      if (status.ok() && !pending->alive) {
        if (cnt < 0) {
          status = FailedPreconditionError(StrCat(
              "deletion delta for ", Describe(), " touches missing group ",
              TupleToString(group), " (count column '",
              def_.plan.columns[cnt_idx_].output_name,
              "' would go below 0)"));
        } else {
          Tuple row(def_.plan.columns.size());
          for (size_t p = 0; p < plain_idx_.size(); ++p) {
            row[plain_idx_[p]] = group[p];
          }
          for (const AggCol& col : agg_cols_) row[col.idx] = frow[col.idx];
          row[cnt_idx_] = Value(cnt);
          pending->values = std::move(row);
          pending->alive = true;
        }
      } else if (status.ok()) {
        Tuple& row = pending->values;
        const int64_t new_cnt = row[cnt_idx_].AsInt64() + cnt;
        if (new_cnt < 0) {
          status = FailedPreconditionError(StrCat(
              "deletion delta for ", Describe(), " drives group ",
              TupleToString(group), " count negative (count column '",
              def_.plan.columns[cnt_idx_].output_name, "': ",
              row[cnt_idx_].AsInt64(), " + ", cnt, " = ", new_cnt, ")"));
        } else if (new_cnt == 0) {
          pending->alive = false;
          row.clear();
        } else {
          row[cnt_idx_] = Value(new_cnt);
          for (const AggCol& col : agg_cols_) {
            Value& current = row[col.idx];
            const Value& incoming = frow[col.idx];
            switch (col.kind) {
              case AuxColumn::Kind::kSum:
                current = AddValues(
                    current, cnt < 0 ? NegateValue(incoming) : incoming);
                break;
              case AuxColumn::Kind::kMin:
                if (!incoming.is_null() &&
                    (current.is_null() || incoming.Compare(current) < 0)) {
                  current = incoming;
                }
                break;
              case AuxColumn::Kind::kMax:
                if (!incoming.is_null() &&
                    (current.is_null() || incoming.Compare(current) > 0)) {
                  current = incoming;
                }
                break;
              default:
                status = InternalError("unexpected aggregate column kind");
                break;
            }
            if (!status.ok()) break;
          }
        }
      }

      if (!status.ok()) {
        shard.error = std::move(status);
        shard.error_row = i;
        return;
      }
    }
  });

  // Deterministic error selection: the failure the serial merge would
  // have hit first (lowest fragment row index). Nothing was committed.
  const Shard* failed = nullptr;
  for (const Shard& shard : shards) {
    if (shard.error.ok()) continue;
    if (failed == nullptr || shard.error_row < failed->error_row) {
      failed = &shard;
    }
  }
  if (failed != nullptr) return failed->error;

  // Commit. In-place updates first (row indexes still valid), then
  // order-preserving deletions, then appends; Canonicalize() (run by
  // the caller — membership changes mark the order dirty) re-sorts and
  // rebuilds the index.
  std::vector<size_t> deleted;
  for (Shard& shard : shards) {
    for (auto& [group, pending] : shard.groups) {
      (void)group;
      if (pending.existed && pending.alive) {
        MD_RETURN_IF_ERROR(
            table_.ReplaceRow(pending.row_idx, std::move(pending.values)));
      } else if (pending.existed) {
        deleted.push_back(pending.row_idx);
      }
    }
  }
  std::sort(deleted.begin(), deleted.end());
  if (!deleted.empty()) {
    table_.EraseRowsInOrder(deleted);
    order_dirty_ = true;
  }
  for (Shard& shard : shards) {
    for (auto& [group, pending] : shard.groups) {
      (void)group;
      if (!pending.existed && pending.alive) {
        MD_RETURN_IF_ERROR(table_.Insert(std::move(pending.values)));
        order_dirty_ = true;
      }
    }
  }
  return Status::Ok();
}

Status AuxStore::InsertRow(Tuple row) {
  MD_CHECK(!def_.plan.compressed);
  auto it = index_.find(row);
  if (it != index_.end()) {
    return AlreadyExistsError(
        StrCat("duplicate row ", TupleToString(row), " in '", def_.name,
               "' (plain auxiliary views are duplicate-free)"));
  }
  const size_t new_idx = table_.NumRows();
  Tuple key = row;
  MD_RETURN_IF_ERROR(table_.Insert(std::move(row)));
  index_.emplace(std::move(key), new_idx);
  order_dirty_ = true;
  return Status::Ok();
}

Status AuxStore::DeleteRow(const Tuple& row) {
  MD_CHECK(!def_.plan.compressed);
  auto it = index_.find(row);
  if (it == index_.end()) {
    return NotFoundError(StrCat("row ", TupleToString(row),
                                " not found in '", def_.name, "'"));
  }
  const size_t row_idx = it->second;
  index_.erase(it);
  const size_t last = table_.NumRows() - 1;
  table_.DeleteRowAt(row_idx);
  if (row_idx != last) {
    index_[table_.row(row_idx)] = row_idx;
  }
  order_dirty_ = true;
  return Status::Ok();
}

Status AuxStore::MergePlainFragment(const Table& fragment, int sign,
                                    ThreadPool* pool) {
  MD_CHECK(sign == 1 || sign == -1);
  const size_t num_shards =
      pool == nullptr
          ? 1
          : std::min(static_cast<size_t>(pool->num_threads()),
                     fragment.NumRows() / kMinRowsPerMergeShard);
  if (num_shards <= 1) {
    for (const Tuple& row : fragment.rows()) {
      if (sign < 0) {
        MD_RETURN_IF_ERROR(DeleteRow(row));
      } else {
        MD_RETURN_IF_ERROR(InsertRow(row));
      }
    }
  } else {
    MD_RETURN_IF_ERROR(MergePlainSharded(fragment, sign, pool, num_shards));
  }
  Canonicalize();
  return Status::Ok();
}

Status AuxStore::MergePlainSharded(const Table& fragment, int sign,
                                   ThreadPool* pool, size_t num_shards) {
  // Plain rows are duplicate-free and a full row is its own key, so
  // hash-partitioning by row puts every occurrence of a row (and any
  // in-fragment duplicate, which must fail exactly as it does serially)
  // in one shard. Validation runs concurrently; commits run after every
  // shard succeeded.
  struct Shard {
    std::vector<size_t> rows;  // Fragment row indexes, ascending.
    std::vector<size_t> victims;  // Store row indexes to delete.
    std::unordered_set<Tuple, TupleHash, TupleEqual> seen;
    size_t error_row = SIZE_MAX;
    Status error = Status::Ok();
  };

  std::vector<Shard> shards(num_shards);
  TupleHash hasher;
  for (size_t i = 0; i < fragment.NumRows(); ++i) {
    shards[hasher(fragment.row(i)) % num_shards].rows.push_back(i);
  }

  pool->ParallelFor(num_shards, [&](size_t s) {
    Shard& shard = shards[s];
    for (size_t i : shard.rows) {
      const Tuple& row = fragment.row(i);
      if (sign < 0) {
        auto it = index_.find(row);
        if (it == index_.end() || shard.seen.count(row) > 0) {
          shard.error = NotFoundError(StrCat("row ", TupleToString(row),
                                             " not found in '", def_.name,
                                             "'"));
          shard.error_row = i;
          return;
        }
        shard.seen.insert(row);
        shard.victims.push_back(it->second);
      } else {
        if (index_.count(row) > 0 || shard.seen.count(row) > 0) {
          shard.error = AlreadyExistsError(StrCat(
              "duplicate row ", TupleToString(row), " in '", def_.name,
              "' (plain auxiliary views are duplicate-free)"));
          shard.error_row = i;
          return;
        }
        shard.seen.insert(row);
      }
    }
  });

  const Shard* failed = nullptr;
  for (const Shard& shard : shards) {
    if (shard.error.ok()) continue;
    if (failed == nullptr || shard.error_row < failed->error_row) {
      failed = &shard;
    }
  }
  if (failed != nullptr) return failed->error;

  if (sign < 0) {
    std::vector<size_t> deleted;
    for (const Shard& shard : shards) {
      deleted.insert(deleted.end(), shard.victims.begin(),
                     shard.victims.end());
    }
    std::sort(deleted.begin(), deleted.end());
    if (!deleted.empty()) {
      table_.EraseRowsInOrder(deleted);
      order_dirty_ = true;
    }
  } else {
    for (const Tuple& row : fragment.rows()) {
      MD_RETURN_IF_ERROR(table_.Insert(row));
      order_dirty_ = true;
    }
  }
  return Status::Ok();
}

}  // namespace mindetail
