#include "maintenance/aux_store.h"

#include "common/strings.h"

namespace mindetail {

std::string AuxStore::Describe() const {
  if (owner_view_.empty()) {
    return StrCat("auxiliary view '", def_.name, "'");
  }
  return StrCat("auxiliary view '", def_.name, "' of view '", owner_view_,
                "'");
}

Result<AuxStore> AuxStore::Create(const AuxViewDef& def, Table initial,
                                  std::string owner_view) {
  if (initial.schema().size() != def.plan.columns.size()) {
    return InvalidArgumentError(StrCat(
        "auxiliary contents for '", def.name, "' have ",
        initial.schema().size(), " columns; the plan expects ",
        def.plan.columns.size()));
  }
  AuxStore store;
  store.def_ = def;
  store.owner_view_ = std::move(owner_view);
  store.table_ = std::move(initial);
  for (size_t i = 0; i < def.plan.columns.size(); ++i) {
    switch (def.plan.columns[i].kind) {
      case AuxColumn::Kind::kPlain:
        store.plain_idx_.push_back(i);
        break;
      case AuxColumn::Kind::kSum:
      case AuxColumn::Kind::kMin:
      case AuxColumn::Kind::kMax:
        store.agg_cols_.push_back(AggCol{i, def.plan.columns[i].kind});
        break;
      case AuxColumn::Kind::kCountStar:
        store.cnt_idx_ = static_cast<int>(i);
        break;
    }
  }
  store.index_.reserve(store.table_.NumRows());
  for (size_t i = 0; i < store.table_.NumRows(); ++i) {
    Tuple key;
    key.reserve(store.plain_idx_.size());
    for (size_t idx : store.plain_idx_) {
      key.push_back(store.table_.row(i)[idx]);
    }
    auto [it, inserted] = store.index_.emplace(std::move(key), i);
    if (!inserted) {
      return InvalidArgumentError(
          StrCat("auxiliary contents for '", def.name,
                 "' contain duplicate group ", TupleToString(it->first)));
    }
  }
  return store;
}

Status AuxStore::ApplyGroupDelta(const Tuple& group,
                                 const std::vector<Value>& agg_values,
                                 int64_t cnt) {
  MD_CHECK(def_.plan.compressed);
  MD_CHECK_EQ(agg_values.size(), agg_cols_.size());
  MD_CHECK_GE(cnt_idx_, 0);
  if (cnt == 0) return Status::Ok();

  if (cnt < 0) {
    // Deletions cannot be merged into MIN/MAX columns; those only exist
    // under the insert-only relaxation, where deletions are illegal.
    for (const AggCol& col : agg_cols_) {
      if (col.kind != AuxColumn::Kind::kSum) {
        return FailedPreconditionError(StrCat(
            "deletion delta for group ", TupleToString(group),
            " against append-only ", Describe(), ": MIN/MAX column '",
            def_.plan.columns[col.idx].output_name,
            "' cannot be decremented"));
      }
    }
  }

  auto it = index_.find(group);
  if (it == index_.end()) {
    if (cnt < 0) {
      return FailedPreconditionError(StrCat(
          "deletion delta for ", Describe(), " touches missing group ",
          TupleToString(group), " (count column '",
          def_.plan.columns[cnt_idx_].output_name, "' would go below 0)"));
    }
    Tuple row(def_.plan.columns.size());
    for (size_t i = 0; i < plain_idx_.size(); ++i) {
      row[plain_idx_[i]] = group[i];
    }
    for (size_t i = 0; i < agg_cols_.size(); ++i) {
      row[agg_cols_[i].idx] = agg_values[i];
    }
    row[cnt_idx_] = Value(cnt);
    const size_t new_idx = table_.NumRows();
    MD_RETURN_IF_ERROR(table_.Insert(std::move(row)));
    index_.emplace(group, new_idx);
    return Status::Ok();
  }

  const size_t row_idx = it->second;
  Tuple row = table_.row(row_idx);
  const int64_t new_cnt = row[cnt_idx_].AsInt64() + cnt;
  if (new_cnt < 0) {
    return FailedPreconditionError(StrCat(
        "deletion delta for ", Describe(), " drives group ",
        TupleToString(group), " count negative (count column '",
        def_.plan.columns[cnt_idx_].output_name, "': ",
        row[cnt_idx_].AsInt64(), " + ", cnt, " = ", new_cnt, ")"));
  }
  if (new_cnt == 0) {
    // The group vanished. Swap-and-pop; re-point the moved row's index.
    index_.erase(it);
    const size_t last = table_.NumRows() - 1;
    table_.DeleteRowAt(row_idx);
    if (row_idx != last) {
      Tuple moved_key;
      moved_key.reserve(plain_idx_.size());
      for (size_t idx : plain_idx_) {
        moved_key.push_back(table_.row(row_idx)[idx]);
      }
      index_[moved_key] = row_idx;
    }
    return Status::Ok();
  }
  row[cnt_idx_] = Value(new_cnt);
  for (size_t i = 0; i < agg_cols_.size(); ++i) {
    Value& current = row[agg_cols_[i].idx];
    const Value& incoming = agg_values[i];
    switch (agg_cols_[i].kind) {
      case AuxColumn::Kind::kSum:
        current = AddValues(
            current, cnt < 0 ? NegateValue(incoming) : incoming);
        break;
      case AuxColumn::Kind::kMin:
        if (!incoming.is_null() &&
            (current.is_null() || incoming.Compare(current) < 0)) {
          current = incoming;
        }
        break;
      case AuxColumn::Kind::kMax:
        if (!incoming.is_null() &&
            (current.is_null() || incoming.Compare(current) > 0)) {
          current = incoming;
        }
        break;
      default:
        return InternalError("unexpected aggregate column kind");
    }
  }
  return table_.ReplaceRow(row_idx, std::move(row));
}

Status AuxStore::MergeCompressedFragment(const Table& fragment, int sign) {
  MD_CHECK(def_.plan.compressed);
  MD_CHECK(sign == 1 || sign == -1);
  MD_CHECK_GE(cnt_idx_, 0);
  for (const Tuple& row : fragment.rows()) {
    Tuple group;
    group.reserve(plain_idx_.size());
    for (size_t idx : plain_idx_) group.push_back(row[idx]);
    std::vector<Value> agg_values;
    agg_values.reserve(agg_cols_.size());
    for (const AggCol& col : agg_cols_) agg_values.push_back(row[col.idx]);
    MD_RETURN_IF_ERROR(
        ApplyGroupDelta(group, agg_values, sign * row[cnt_idx_].AsInt64()));
  }
  return Status::Ok();
}

Status AuxStore::InsertRow(Tuple row) {
  MD_CHECK(!def_.plan.compressed);
  auto it = index_.find(row);
  if (it != index_.end()) {
    return AlreadyExistsError(
        StrCat("duplicate row ", TupleToString(row), " in '", def_.name,
               "' (plain auxiliary views are duplicate-free)"));
  }
  const size_t new_idx = table_.NumRows();
  Tuple key = row;
  MD_RETURN_IF_ERROR(table_.Insert(std::move(row)));
  index_.emplace(std::move(key), new_idx);
  return Status::Ok();
}

Status AuxStore::DeleteRow(const Tuple& row) {
  MD_CHECK(!def_.plan.compressed);
  auto it = index_.find(row);
  if (it == index_.end()) {
    return NotFoundError(StrCat("row ", TupleToString(row),
                                " not found in '", def_.name, "'"));
  }
  const size_t row_idx = it->second;
  index_.erase(it);
  const size_t last = table_.NumRows() - 1;
  table_.DeleteRowAt(row_idx);
  if (row_idx != last) {
    index_[table_.row(row_idx)] = row_idx;
  }
  return Status::Ok();
}

Status AuxStore::MergePlainFragment(const Table& fragment, int sign) {
  MD_CHECK(sign == 1 || sign == -1);
  for (const Tuple& row : fragment.rows()) {
    if (sign < 0) {
      MD_RETURN_IF_ERROR(DeleteRow(row));
    } else {
      MD_RETURN_IF_ERROR(InsertRow(row));
    }
  }
  return Status::Ok();
}

}  // namespace mindetail
