// Dead-letter log for batches the warehouse refused.
//
// A batch that fails admission control, or a valid batch that exhausts
// its retry budget, is serialized here (quarantine.log in the warehouse
// directory, same CRC framing as the WAL — io/log_format.h) together
// with the rejecting Status and the batch's idempotency key. The
// warehouse keeps serving; an operator inspects the entries via the
// CLI (`quarantine list`), fixes the source, and either re-submits
// (`quarantine retry <id>`) or discards (`quarantine drop <id>`).
//
// Entries carry everything needed to replay the batch exactly: a
// retried entry goes back through the full ingestion pipeline, so a
// batch that was in fact applied before a crash is acknowledged as an
// idempotent no-op rather than double-applied.

#ifndef MINDETAIL_MAINTENANCE_QUARANTINE_H_
#define MINDETAIL_MAINTENANCE_QUARANTINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/delta.h"

namespace mindetail {

inline constexpr char kQuarantineFile[] = "quarantine.log";

class QuarantineLog {
 public:
  // Growth caps. A poison source that keeps producing distinct bad
  // batches must not grow the dead-letter log without bound: when a cap
  // would be exceeded, the oldest entries rotate out (atomic rewrite,
  // same mechanism as Remove) until the newest entry fits. 0 disables a
  // cap. The newest entry is always kept, even when it alone exceeds
  // max_bytes — the cap bounds growth, it never refuses fresh evidence.
  struct Options {
    uint64_t max_entries = 0;
    uint64_t max_bytes = 0;
  };

  struct Entry {
    uint64_t id = 0;  // Stable handle; assigned at append, never reused.
    StatusCode code = StatusCode::kInvalidArgument;
    std::string message;  // Why the batch was refused.
    std::string key;      // Idempotency key (may be empty).
    std::map<std::string, Delta> changes;
  };

  QuarantineLog() = default;
  ~QuarantineLog();
  QuarantineLog(const QuarantineLog&) = delete;
  QuarantineLog& operator=(const QuarantineLog&) = delete;
  QuarantineLog(QuarantineLog&& other) noexcept;
  QuarantineLog& operator=(QuarantineLog&& other) noexcept;

  // Opens `path` for appending, creating it if absent; scans existing
  // entries (truncating a torn tail) to restore the id counter. An
  // existing log over the caps is rotated down at open.
  static Result<QuarantineLog> Open(const std::string& path,
                                    Options options);
  static Result<QuarantineLog> Open(const std::string& path) {
    return Open(path, Options());
  }

  // Durably appends one refused batch; returns its assigned id. A
  // non-empty `key` already present in the log is not duplicated — the
  // existing entry's id is returned (a source that keeps resending a
  // bad batch quarantines it once).
  Result<uint64_t> Append(StatusCode code, const std::string& message,
                          const std::string& key,
                          const std::map<std::string, Delta>& changes);

  // All current entries, oldest first.
  Result<std::vector<Entry>> Entries() const;

  // Removes the entry with `id` (after a successful retry or an
  // explicit drop) by atomically rewriting the log. NotFound when no
  // such entry exists.
  Status Remove(uint64_t id);

  uint64_t num_entries() const { return num_entries_; }
  // Id the next fresh append will be assigned. An Append returning an
  // id below this deduplicated against an existing entry.
  uint64_t next_id() const { return next_id_; }
  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  // Atomically replaces the log's contents with `entries` (temp file +
  // fsync + rename + fd swap).
  Status RewriteAll(const std::vector<Entry>& entries);
  // Rotates oldest entries out until `incoming_bytes` more fit under
  // the caps.
  Status EnforceCaps(uint64_t incoming_entries, uint64_t incoming_bytes);

  std::string path_;
  int fd_ = -1;
  Options options_;
  uint64_t next_id_ = 1;
  uint64_t num_entries_ = 0;
  uint64_t size_bytes_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_QUARANTINE_H_
