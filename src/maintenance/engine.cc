#include "maintenance/engine.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/plan_signature.h"
#include "gpsj/builder.h"
#include "relational/ops.h"

namespace mindetail {

// ---------------------------------------------------------------------
// SummaryStore
// ---------------------------------------------------------------------

// The hidden-column names (kShadowColumn, ShadowSumColumn) are the
// shared augmented-summary contract declared in gpsj/aggregate.h —
// checkpoints and the serving layer's roll-up rewriter read the same
// columns this store renders.

Result<SummaryStore> SummaryStore::Create(const GpsjViewDef& def,
                                          const Catalog& catalog) {
  SummaryStore store;
  store.def_ = def;
  store.insert_only_ = def.IsInsertOnly(catalog);

  // Build the augmented definition: original outputs + shadow count +
  // hidden running sums for every SUM/AVG output.
  GpsjViewBuilder builder(StrCat(def.name(), "__aug"));
  for (const std::string& table : def.tables()) builder.From(table);
  for (const std::string& table : def.tables()) {
    for (const Condition& c : def.LocalConditions(table).conditions()) {
      builder.Where(table, c.attr, c.op, c.constant);
    }
  }
  for (const JoinEdge& edge : def.joins()) {
    builder.Join(edge.from_table, edge.from_attr, edge.to_table);
  }
  for (const std::string& table : def.tables()) {
    for (const DerivedAttr& d : def.DerivedAttrsOf(table)) {
      if (d.rhs_attr.empty()) {
        builder.DeriveConst(table, d.name, d.lhs, d.op, d.rhs_constant);
      } else {
        builder.Derive(table, d.name, d.lhs, d.op, d.rhs_attr);
      }
    }
  }

  std::vector<Attribute> render_attrs;
  for (const OutputItem& item : def.outputs()) {
    Slot slot;
    if (item.kind == OutputItem::Kind::kGroupBy) {
      builder.GroupBy(item.attr.table, item.attr.attr, item.output_name);
      slot.kind = Slot::Kind::kGroupBy;
      slot.index = static_cast<int>(store.group_refs_.size());
      MD_ASSIGN_OR_RETURN(slot.type, def.AttrType(catalog, item.attr));
      store.group_refs_.push_back(item.attr);
    } else {
      builder.Aggregate(item.agg);
      const AggregateSpec& agg = item.agg;
      if (IsCsmas(agg)) {
        switch (agg.fn) {
          case AggFn::kCountStar:
          case AggFn::kCount:
            slot.kind = Slot::Kind::kCount;
            slot.type = ValueType::kInt64;
            break;
          case AggFn::kSum:
          case AggFn::kAvg: {
            slot.kind = agg.fn == AggFn::kSum ? Slot::Kind::kSum
                                              : Slot::Kind::kAvg;
            slot.index = static_cast<int>(store.sum_slot_outputs_.size());
            store.sum_slot_outputs_.push_back(item.output_name);
            MD_ASSIGN_OR_RETURN(ValueType sum_type,
                                def.AttrType(catalog, agg.input));
            store.sum_slot_types_.push_back(sum_type);
            slot.type =
                agg.fn == AggFn::kAvg ? ValueType::kDouble : sum_type;
            break;
          }
          default:
            return InternalError("unexpected CSMAS aggregate");
        }
      } else if (store.insert_only_ && !agg.distinct &&
                 (agg.fn == AggFn::kMin || agg.fn == AggFn::kMax)) {
        // Insert-only relaxation: MIN/MAX merge monotonically.
        slot.kind = agg.fn == AggFn::kMin ? Slot::Kind::kMinInc
                                          : Slot::Kind::kMaxInc;
        slot.index = static_cast<int>(store.minmax_slot_outputs_.size());
        store.minmax_slot_outputs_.emplace_back(item.output_name, agg.fn);
        MD_ASSIGN_OR_RETURN(slot.type, def.AttrType(catalog, agg.input));
      } else {
        slot.kind = Slot::Kind::kCached;
        slot.index = static_cast<int>(store.num_cached_slots_++);
        if (agg.fn == AggFn::kCount) {
          slot.type = ValueType::kInt64;
        } else if (agg.fn == AggFn::kAvg) {
          slot.type = ValueType::kDouble;
        } else {
          MD_ASSIGN_OR_RETURN(slot.type, def.AttrType(catalog, agg.input));
        }
      }
    }
    render_attrs.push_back(Attribute{item.output_name, slot.type});
    store.slots_.push_back(slot);
  }
  store.render_schema_ = Schema(std::move(render_attrs));

  builder.CountStar(kShadowColumn);
  for (const OutputItem& item : def.outputs()) {
    if (item.kind != OutputItem::Kind::kAggregate) continue;
    const AggregateSpec& agg = item.agg;
    if (!IsCsmas(agg)) continue;
    if (agg.fn != AggFn::kSum && agg.fn != AggFn::kAvg) continue;
    AggregateSpec hidden;
    hidden.fn = AggFn::kSum;
    hidden.input = agg.input;
    hidden.distinct = false;
    hidden.output_name = ShadowSumColumn(item.output_name);
    builder.Aggregate(std::move(hidden));
  }
  MD_ASSIGN_OR_RETURN(store.augmented_def_, builder.Build(catalog));
  return store;
}

Status SummaryStore::LoadFrom(const Table& augmented_rows) {
  groups_.clear();
  const Schema& schema = augmented_rows.schema();
  std::optional<size_t> shadow_idx = schema.IndexOf(kShadowColumn);
  if (!shadow_idx.has_value()) {
    return InvalidArgumentError("augmented load table lacks __shadow");
  }
  // Group key columns: the group-by outputs, by name and output order.
  std::vector<size_t> key_idx;
  std::vector<size_t> cached_src;
  std::vector<int> cached_slot;
  std::vector<size_t> minmax_src;
  std::vector<int> minmax_slot;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const std::string& name = def_.outputs()[i].output_name;
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return InvalidArgumentError(
          StrCat("augmented load table lacks output '", name, "'"));
    }
    if (slots_[i].kind == Slot::Kind::kGroupBy) {
      key_idx.push_back(*idx);
    } else if (slots_[i].kind == Slot::Kind::kCached) {
      cached_src.push_back(*idx);
      cached_slot.push_back(slots_[i].index);
    } else if (slots_[i].kind == Slot::Kind::kMinInc ||
               slots_[i].kind == Slot::Kind::kMaxInc) {
      minmax_src.push_back(*idx);
      minmax_slot.push_back(slots_[i].index);
    }
  }
  std::vector<size_t> sum_idx;
  for (const std::string& output : sum_slot_outputs_) {
    std::optional<size_t> idx = schema.IndexOf(ShadowSumColumn(output));
    if (!idx.has_value()) {
      return InvalidArgumentError(
          StrCat("augmented load table lacks hidden sum for '", output,
                 "'"));
    }
    sum_idx.push_back(*idx);
  }

  for (const Tuple& row : augmented_rows.rows()) {
    const int64_t shadow = row[*shadow_idx].is_null()
                               ? 0
                               : row[*shadow_idx].AsInt64();
    if (shadow == 0) continue;  // Scalar phantom row over empty input.
    Tuple key;
    key.reserve(key_idx.size());
    for (size_t idx : key_idx) key.push_back(row[idx]);
    GroupState state;
    state.shadow = shadow;
    state.sums.reserve(sum_idx.size());
    for (size_t idx : sum_idx) state.sums.push_back(row[idx]);
    state.cached.resize(num_cached_slots_);
    for (size_t c = 0; c < cached_src.size(); ++c) {
      state.cached[cached_slot[c]] = row[cached_src[c]];
    }
    state.minmax.resize(minmax_slot_outputs_.size());
    for (size_t m = 0; m < minmax_src.size(); ++m) {
      state.minmax[minmax_slot[m]] = row[minmax_src[m]];
    }
    auto [it, inserted] = groups_.emplace(std::move(key), std::move(state));
    if (!inserted) {
      return InternalError(StrCat("duplicate group ",
                                  TupleToString(it->first),
                                  " in augmented load"));
    }
  }
  return Status::Ok();
}

Status SummaryStore::ApplyContributions(const Table& contributions, int sign,
                                        GroupKeySet* affected) {
  MD_CHECK(sign == 1 || sign == -1);
  const Schema& schema = contributions.schema();
  std::vector<size_t> key_idx;
  for (const AttributeRef& ref : group_refs_) {
    std::optional<size_t> idx = schema.IndexOf(ref.ToString());
    if (!idx.has_value()) {
      return InternalError(StrCat("contributions lack group column '",
                                  ref.ToString(), "'"));
    }
    key_idx.push_back(*idx);
  }
  std::optional<size_t> cnt_idx = schema.IndexOf(kContribCountColumn);
  if (!cnt_idx.has_value()) {
    return InternalError("contributions lack the __cnt column");
  }
  std::vector<size_t> sum_idx;
  for (const std::string& output : sum_slot_outputs_) {
    std::optional<size_t> idx = schema.IndexOf(ContribSumColumn(output));
    if (!idx.has_value()) {
      return InternalError(
          StrCat("contributions lack the sum column for '", output, "'"));
    }
    sum_idx.push_back(*idx);
  }
  std::vector<size_t> minmax_idx;
  for (const auto& [output, fn] : minmax_slot_outputs_) {
    (void)fn;
    std::optional<size_t> idx =
        schema.IndexOf(ContribMinMaxColumn(output));
    if (!idx.has_value()) {
      return InternalError(StrCat(
          "contributions lack the min/max column for '", output, "'"));
    }
    minmax_idx.push_back(*idx);
  }
  if (sign < 0 && !minmax_slot_outputs_.empty()) {
    return FailedPreconditionError(
        "deletion delta against an insert-only (append-only) view");
  }

  for (const Tuple& row : contributions.rows()) {
    Tuple key;
    key.reserve(key_idx.size());
    for (size_t idx : key_idx) key.push_back(row[idx]);
    const Value& cnt_value = row[*cnt_idx];
    const int64_t cnt = cnt_value.is_null() ? 0 : cnt_value.AsInt64();
    if (cnt == 0) continue;
    if (affected != nullptr) affected->insert(key);

    auto it = groups_.find(key);
    if (it == groups_.end()) {
      if (sign < 0) {
        return FailedPreconditionError(
            StrCat("deletion delta touches missing view group ",
                   TupleToString(key)));
      }
      GroupState fresh;
      fresh.sums.assign(sum_slot_outputs_.size(), Value());
      fresh.minmax.assign(minmax_slot_outputs_.size(), Value());
      fresh.cached.assign(num_cached_slots_, Value());
      it = groups_.emplace(std::move(key), std::move(fresh)).first;
    }
    GroupState& state = it->second;
    state.shadow += sign * cnt;
    if (state.shadow < 0) {
      return FailedPreconditionError(
          StrCat("deletion delta drives view group ",
                 TupleToString(it->first), " count negative"));
    }
    for (size_t s = 0; s < sum_idx.size(); ++s) {
      const Value& v = row[sum_idx[s]];
      if (v.is_null()) continue;
      state.sums[s] =
          AddValues(state.sums[s], sign < 0 ? NegateValue(v) : v);
    }
    for (size_t m = 0; m < minmax_idx.size(); ++m) {
      const Value& v = row[minmax_idx[m]];
      if (v.is_null()) continue;
      Value& current = state.minmax[m];
      const bool is_min = minmax_slot_outputs_[m].second == AggFn::kMin;
      if (current.is_null() || (is_min ? v.Compare(current) < 0
                                       : v.Compare(current) > 0)) {
        current = v;
      }
    }
    if (state.shadow == 0) groups_.erase(it);
  }
  return Status::Ok();
}

Status SummaryStore::UpdateCachedFrom(const Table& recomputed,
                                      const GroupKeySet& groups) {
  // Index recomputed rows by group key (group-by outputs, render order).
  std::vector<size_t> key_idx;
  std::vector<size_t> cached_src;
  std::vector<int> cached_slot;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].kind == Slot::Kind::kGroupBy) {
      key_idx.push_back(i);
    } else if (slots_[i].kind == Slot::Kind::kCached) {
      cached_src.push_back(i);
      cached_slot.push_back(slots_[i].index);
    }
  }
  std::unordered_map<Tuple, const Tuple*, TupleHash, TupleEqual> by_key;
  by_key.reserve(recomputed.NumRows());
  for (const Tuple& row : recomputed.rows()) {
    Tuple key;
    key.reserve(key_idx.size());
    for (size_t idx : key_idx) key.push_back(row[idx]);
    by_key.emplace(std::move(key), &row);
  }

  for (const Tuple& key : groups) {
    auto group_it = groups_.find(key);
    if (group_it == groups_.end()) continue;  // Died during the batch.
    auto row_it = by_key.find(key);
    if (row_it == by_key.end()) {
      return InternalError(
          StrCat("alive group ", TupleToString(key),
                 " missing from recomputation"));
    }
    for (size_t c = 0; c < cached_src.size(); ++c) {
      group_it->second.cached[cached_slot[c]] =
          (*row_it->second)[cached_src[c]];
    }
  }
  return Status::Ok();
}

Status SummaryStore::RewriteGroupsByKey(
    size_t key_pos, const Value& key,
    const std::map<size_t, Value>& group_rewrites,
    const std::map<size_t, Value>& sum_adjust) {
  MD_CHECK_LT(key_pos, group_refs_.size());
  // Collect matching groups first; keys cannot be mutated in place.
  std::vector<Tuple> matching;
  for (const auto& [group_key, state] : groups_) {
    (void)state;
    if (group_key[key_pos].Compare(key) == 0) matching.push_back(group_key);
  }
  for (const Tuple& old_key : matching) {
    auto it = groups_.find(old_key);
    MD_CHECK(it != groups_.end());
    GroupState state = std::move(it->second);
    groups_.erase(it);
    Tuple new_key = old_key;
    for (const auto& [pos, value] : group_rewrites) {
      MD_CHECK_LT(pos, new_key.size());
      new_key[pos] = value;
    }
    for (const auto& [slot, delta] : sum_adjust) {
      MD_CHECK_LT(slot, state.sums.size());
      state.sums[slot] =
          AddValues(state.sums[slot], ScaleValue(delta, state.shadow));
    }
    auto [new_it, inserted] =
        groups_.emplace(std::move(new_key), std::move(state));
    if (!inserted) {
      return InternalError(
          StrCat("group rewrite collides at ", TupleToString(new_it->first),
                 "; key-grouped dimensions cannot merge groups"));
    }
  }
  return Status::Ok();
}

int SummaryStore::GroupPositionOf(const AttributeRef& ref) const {
  for (size_t i = 0; i < group_refs_.size(); ++i) {
    if (group_refs_[i] == ref) return static_cast<int>(i);
  }
  return -1;
}

int SummaryStore::SumSlotOf(const std::string& output_name) const {
  for (size_t i = 0; i < sum_slot_outputs_.size(); ++i) {
    if (sum_slot_outputs_[i] == output_name) return static_cast<int>(i);
  }
  return -1;
}

Result<Table> SummaryStore::Render() const {
  Table out(def_.name(), render_schema_);
  out.set_allow_null(true);

  auto render_group = [&](const Tuple& key,
                          const GroupState& state) -> Tuple {
    Tuple row;
    row.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      switch (slot.kind) {
        case Slot::Kind::kGroupBy:
          row.push_back(key[slot.index]);
          break;
        case Slot::Kind::kCount:
          row.push_back(Value(state.shadow));
          break;
        case Slot::Kind::kSum:
          row.push_back(state.shadow > 0 ? state.sums[slot.index]
                                         : Value());
          break;
        case Slot::Kind::kAvg:
          if (state.shadow > 0 && !state.sums[slot.index].is_null()) {
            row.push_back(Value(state.sums[slot.index].NumericAsDouble() /
                                static_cast<double>(state.shadow)));
          } else {
            row.push_back(Value());
          }
          break;
        case Slot::Kind::kMinInc:
        case Slot::Kind::kMaxInc:
          row.push_back(state.shadow > 0 ? state.minmax[slot.index]
                                         : Value());
          break;
        case Slot::Kind::kCached:
          row.push_back(state.cached[slot.index]);
          break;
      }
    }
    return row;
  };

  for (const auto& [key, state] : groups_) {
    Tuple row = render_group(key, state);
    // HAVING filters the rendered contents only; the group state stays
    // maintained so groups can re-qualify after later changes.
    if (!def_.having().empty() && !def_.PassesHaving(row)) continue;
    MD_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  if (group_refs_.empty() && groups_.empty()) {
    // Scalar view over empty data: SQL yields one row of empty-input
    // aggregates (COUNT = 0, everything else NULL) — still subject to
    // HAVING.
    GroupState empty;
    empty.sums.assign(sum_slot_outputs_.size(), Value());
    empty.minmax.assign(minmax_slot_outputs_.size(), Value());
    empty.cached.assign(num_cached_slots_, Value());
    Tuple row = render_group(Tuple{}, empty);
    if (def_.having().empty() || def_.PassesHaving(row)) {
      MD_RETURN_IF_ERROR(out.Insert(std::move(row)));
    }
  }
  SortRows(&out);
  return out;
}

Schema SummaryStore::AugmentedSchema() const {
  std::vector<Attribute> attrs = render_schema_.attributes();
  attrs.push_back(Attribute{kShadowColumn, ValueType::kInt64});
  for (size_t s = 0; s < sum_slot_outputs_.size(); ++s) {
    attrs.push_back(Attribute{ShadowSumColumn(sum_slot_outputs_[s]),
                              sum_slot_types_[s]});
  }
  return Schema(std::move(attrs));
}

Result<Table> SummaryStore::RenderAugmented() const {
  Table out(StrCat(def_.name(), "__aug"), AugmentedSchema());
  out.set_allow_null(true);
  for (const auto& [key, state] : groups_) {
    Tuple row;
    row.reserve(slots_.size() + 1 + state.sums.size());
    for (const Slot& slot : slots_) {
      switch (slot.kind) {
        case Slot::Kind::kGroupBy:
          row.push_back(key[slot.index]);
          break;
        case Slot::Kind::kCount:
          row.push_back(Value(state.shadow));
          break;
        case Slot::Kind::kSum:
          row.push_back(state.shadow > 0 ? state.sums[slot.index]
                                         : Value());
          break;
        case Slot::Kind::kAvg:
          if (state.shadow > 0 && !state.sums[slot.index].is_null()) {
            row.push_back(Value(state.sums[slot.index].NumericAsDouble() /
                                static_cast<double>(state.shadow)));
          } else {
            row.push_back(Value());
          }
          break;
        case Slot::Kind::kMinInc:
        case Slot::Kind::kMaxInc:
          row.push_back(state.shadow > 0 ? state.minmax[slot.index]
                                         : Value());
          break;
        case Slot::Kind::kCached:
          row.push_back(state.cached[slot.index]);
          break;
      }
    }
    row.push_back(Value(state.shadow));
    for (const Value& sum : state.sums) row.push_back(sum);
    MD_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  // Group keys are unique, so sorting is total and the rendered bytes
  // are deterministic across runs and thread counts.
  SortRows(&out);
  return out;
}

// ---------------------------------------------------------------------
// SelfMaintenanceEngine
// ---------------------------------------------------------------------

Result<SelfMaintenanceEngine> SelfMaintenanceEngine::CreateSkeleton(
    const Catalog& catalog, const GpsjViewDef& def, EngineOptions options) {
  SelfMaintenanceEngine engine;
  engine.options_ = options;
  if (options.num_threads > 1) {
    engine.pool_ = std::make_shared<ThreadPool>(options.num_threads);
  }
  // Algorithm 3.2 is purely structural — it reads schemas, keys, and
  // integrity metadata, never rows — so the skeleton also builds from a
  // rowless catalog during recovery.
  MD_ASSIGN_OR_RETURN(engine.derivation_,
                      Derivation::Derive(def, catalog, options.derive));
  const Derivation& derivation = engine.derivation_;

  for (const std::string& table : def.tables()) {
    MD_ASSIGN_OR_RETURN(const Table* base, catalog.GetTable(table));
    engine.base_schemas_.emplace(table, base->schema());
    MD_ASSIGN_OR_RETURN(std::string key, catalog.KeyAttr(table));
    engine.base_keys_.emplace(table, std::move(key));
  }

  // Shielding: every edge on the path root → table is a dependence.
  const ExtendedJoinGraph& graph = derivation.graph();
  for (const std::string& table : graph.TopologicalOrder()) {
    if (table == graph.root()) {
      engine.shielded_.emplace(table, false);
      continue;
    }
    const JoinGraphVertex& v = graph.vertex(table);
    const bool parent_ok = *v.parent == graph.root()
                               ? true
                               : engine.shielded_.at(*v.parent);
    engine.shielded_.emplace(
        table, parent_ok && graph.DependsOn(*v.parent, table, catalog));
  }

  // Exposed attributes: local condition attributes plus this table's
  // child-join attributes (updates to them change selection/join
  // condition outcomes and require the exposed-updates flag).
  for (const std::string& table : def.tables()) {
    std::set<std::string> exposed;
    for (const Condition& c : def.LocalConditions(table).conditions()) {
      exposed.insert(c.attr);
    }
    for (const JoinEdge& edge : def.joins()) {
      if (edge.from_table == table) exposed.insert(edge.from_attr);
    }
    engine.exposed_attrs_.emplace(table, std::move(exposed));
    if (catalog.HasExposedUpdates(table)) {
      engine.exposed_flagged_.insert(table);
    }
    if (catalog.IsAppendOnly(table)) {
      engine.append_only_.insert(table);
    }
  }

  MD_ASSIGN_OR_RETURN(engine.summary_, SummaryStore::Create(def, catalog));

  // Canonical shared-plan signatures for the root-delta path. The join
  // signature bakes in the `required` set, so ablation options that
  // change the join's shape (prune_delta_joins, elimination) can never
  // share with an engine configured differently.
  const std::string& root = derivation.root();
  engine.root_fragment_sig_ = AuxStructuralSignature(derivation, root);
  std::set<std::string> required =
      options.prune_delta_joins
          ? OutputSupplierTables(derivation, /*csmas_only=*/true)
          : std::set<std::string>(def.tables().begin(), def.tables().end());
  required.insert(root);
  engine.root_join_sig_ = DeltaJoinSignature(derivation, root, required);
  return engine;
}

Result<SelfMaintenanceEngine> SelfMaintenanceEngine::Create(
    const Catalog& source, const GpsjViewDef& def, EngineOptions options) {
  MD_ASSIGN_OR_RETURN(SelfMaintenanceEngine engine,
                      CreateSkeleton(source, def, options));
  const Derivation& derivation = engine.derivation_;

  Result<std::map<std::string, Table>> materialized_result =
      MaterializeAuxViews(source, derivation);
  if (!materialized_result.ok()) return materialized_result.status();
  std::map<std::string, Table>& materialized = *materialized_result;
  for (auto& [table, contents] : materialized) {
    MD_ASSIGN_OR_RETURN(
        AuxStore store,
        AuxStore::Create(derivation.aux_for(table), std::move(contents),
                         def.name()));
    engine.aux_.emplace(table, std::move(store));
  }

  MD_ASSIGN_OR_RETURN(Table augmented,
                      EvaluateGpsj(source, engine.summary_.augmented_def()));
  MD_RETURN_IF_ERROR(engine.summary_.LoadFrom(augmented));
  return engine;
}

Result<SelfMaintenanceEngine> SelfMaintenanceEngine::Restore(
    const Catalog& schema_source, const GpsjViewDef& def,
    EngineOptions options, std::map<std::string, Table> aux_contents,
    const Table& augmented_summary) {
  MD_ASSIGN_OR_RETURN(SelfMaintenanceEngine engine,
                      CreateSkeleton(schema_source, def, options));
  for (const AuxViewDef& aux : engine.derivation_.aux_views()) {
    if (aux.eliminated) continue;
    auto it = aux_contents.find(aux.base_table);
    if (it == aux_contents.end()) {
      return InvalidArgumentError(
          StrCat("restore of view '", def.name(),
                 "' lacks auxiliary contents for '", aux.base_table, "'"));
    }
    MD_ASSIGN_OR_RETURN(
        AuxStore store,
        AuxStore::Create(aux, std::move(it->second), def.name()));
    engine.aux_.emplace(aux.base_table, std::move(store));
  }
  MD_RETURN_IF_ERROR(engine.summary_.LoadFrom(augmented_summary));
  return engine;
}

const Table& SelfMaintenanceEngine::AuxContents(
    const std::string& table) const {
  auto it = aux_.find(table);
  MD_CHECK(it != aux_.end());
  return it->second.contents();
}

uint64_t SelfMaintenanceEngine::AuxPaperSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [table, store] : aux_) {
    total += store.contents().PaperSizeBytes();
  }
  return total;
}

uint64_t SelfMaintenanceEngine::AuxActualSizeBytes() const {
  uint64_t total = 0;
  for (const auto& [table, store] : aux_) {
    total += store.contents().ActualSizeBytes();
  }
  return total;
}

Result<Table> SelfMaintenanceEngine::ReconstructFromAux() const {
  return ReconstructView(derivation_, AuxTableMap());
}

std::map<std::string, const Table*> SelfMaintenanceEngine::AuxTableMap()
    const {
  std::map<std::string, const Table*> out;
  for (const auto& [table, store] : aux_) {
    out.emplace(table, &store.contents());
  }
  return out;
}

namespace {

// Delta rows below which sharded fragment preparation is pure
// overhead. Scheduling only — the sharded result is bit-identical to
// the serial one either way.
constexpr size_t kMinRowsPerFragmentShard = 64;

// How one grouping (plain) column of a compressed plan is computed
// from a raw base row, for hash-sharding before the pipeline runs:
// either a base column, or a derived attribute over base operands.
struct ShardKeySource {
  int base_idx = -1;
  const DerivedAttr* derived = nullptr;
  int lhs_idx = -1;
  int rhs_idx = -1;  // -1: constant right operand.
};

}  // namespace

Result<Table> SelfMaintenanceEngine::RunFragmentPipeline(
    const std::string& table, Table staged,
    const DimensionIndex* dims) const {
  const AuxViewDef& aux = derivation_.aux_for(table);
  MD_ASSIGN_OR_RETURN(Table current,
                      Select(staged, aux.reduction.conditions));
  MD_ASSIGN_OR_RETURN(current, derivation_.view().AppendDerivedColumns(
                                   table, std::move(current)));
  MD_ASSIGN_OR_RETURN(current,
                      Project(current, aux.reduction.attrs, false));
  for (const AuxDependency& dep : aux.dependencies) {
    // The batch's prebuilt index keys the dependency's auxiliary view by
    // exactly the attribute this semijoin probes; every shard shares it.
    const TableIndex* index =
        dims == nullptr ? nullptr : dims->Find(dep.to_table);
    if (index != nullptr) {
      MD_ASSIGN_OR_RETURN(current,
                          SemiJoinIndexed(current, dep.from_attr, *index));
      continue;
    }
    auto it = aux_.find(dep.to_table);
    MD_CHECK(it != aux_.end());
    MD_ASSIGN_OR_RETURN(
        current,
        SemiJoin(current, it->second.contents(), dep.from_attr,
                 derivation_.aux_for(dep.to_table).key_attr));
  }
  if (aux.plan.compressed) {
    MD_ASSIGN_OR_RETURN(current,
                        GroupAggregate(current, aux.plan.PlainAttrs(),
                                       aux.plan.Aggregates(),
                                       StrCat("delta_", table)));
    const int cnt_idx = aux.plan.CountColumnIndex();
    Table filtered(current.name(), current.schema());
    filtered.set_allow_null(true);
    for (const Tuple& row : current.rows()) {
      if (!row[cnt_idx].is_null() && row[cnt_idx].AsInt64() > 0) {
        MD_RETURN_IF_ERROR(filtered.Insert(row));
      }
    }
    return filtered;
  }
  Table named(StrCat("delta_", table), current.schema());
  named.set_allow_null(true);
  for (const Tuple& row : current.rows()) {
    MD_RETURN_IF_ERROR(named.Insert(row));
  }
  return named;
}

Result<Table> SelfMaintenanceEngine::PrepareFragment(
    const std::string& table, const std::vector<Tuple>& rows,
    const DimensionIndex* dims) const {
  const AuxViewDef& aux = derivation_.aux_for(table);
  const Schema& schema = base_schemas_.at(table);
  const size_t num_shards =
      pool_ == nullptr
          ? 1
          : std::min(static_cast<size_t>(pool_->num_threads()),
                     rows.size() / kMinRowsPerFragmentShard);

  // For compressed plans the shard key is the plan's grouping (plain)
  // columns, computed straight from the raw base row so partitioning
  // can happen before the pipeline runs. Every source must resolve to a
  // base column or a derived attribute over base operands; otherwise
  // (and for scalar compression, whose GroupAggregate emits a phantom
  // row per empty shard) fall back to the serial path.
  std::vector<ShardKeySource> key_sources;
  bool shardable = num_shards > 1;
  if (shardable && aux.plan.compressed) {
    const std::vector<std::string> plain_attrs = aux.plan.PlainAttrs();
    if (plain_attrs.empty()) shardable = false;
    for (const std::string& attr : plain_attrs) {
      if (!shardable) break;
      ShardKeySource src;
      if (std::optional<size_t> idx = schema.IndexOf(attr);
          idx.has_value()) {
        src.base_idx = static_cast<int>(*idx);
      } else {
        src.derived = derivation_.view().FindDerived(table, attr);
        if (src.derived == nullptr) {
          shardable = false;
          break;
        }
        std::optional<size_t> lhs = schema.IndexOf(src.derived->lhs);
        if (!lhs.has_value()) {
          shardable = false;
          break;
        }
        src.lhs_idx = static_cast<int>(*lhs);
        if (!src.derived->rhs_attr.empty()) {
          std::optional<size_t> rhs = schema.IndexOf(src.derived->rhs_attr);
          if (!rhs.has_value()) {
            shardable = false;
            break;
          }
          src.rhs_idx = static_cast<int>(*rhs);
        }
      }
      key_sources.push_back(src);
    }
  }

  if (!shardable) {
    MD_RETURN_IF_ERROR(CheckCancel());
    Table staged(StrCat("delta_", table), schema);
    for (const Tuple& row : rows) {
      MD_RETURN_IF_ERROR(staged.Insert(row));
    }
    return RunFragmentPipeline(table, std::move(staged), dims);
  }

  // Partition the delta rows across shards. Compressed plans hash the
  // group key, so a group's rows land in one shard in delta order and
  // the per-group (floating-point) accumulation order matches the
  // serial pipeline; plain plans chunk contiguously, and every
  // per-shard operator preserves row order.
  std::vector<std::vector<Tuple>> shards(num_shards);
  if (aux.plan.compressed) {
    TupleHash hasher;
    for (const Tuple& row : rows) {
      Tuple key;
      key.reserve(key_sources.size());
      for (const ShardKeySource& src : key_sources) {
        if (src.base_idx >= 0) {
          key.push_back(row[src.base_idx]);
        } else {
          const Value& rhs = src.rhs_idx >= 0 ? row[src.rhs_idx]
                                              : src.derived->rhs_constant;
          key.push_back(src.derived->Eval(row[src.lhs_idx], rhs));
        }
      }
      shards[hasher(key) % num_shards].push_back(row);
    }
  } else {
    const size_t total = rows.size();
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = total * s / num_shards;
      const size_t end = total * (s + 1) / num_shards;
      shards[s].assign(rows.begin() + begin, rows.begin() + end);
    }
  }

  std::vector<Result<Table>> shard_results(
      num_shards, Result<Table>(InternalError("fragment shard not run")));
  pool_->ParallelFor(num_shards, [&](size_t s) {
    // Between-fragment cancellation: a tripped token stops this shard
    // before it stages anything; the first shard's status wins below.
    if (Status cancelled = CheckCancel(); !cancelled.ok()) {
      shard_results[s] = std::move(cancelled);
      return;
    }
    Table staged(StrCat("delta_", table), schema);
    for (const Tuple& row : shards[s]) {
      const Status status = staged.Insert(row);
      if (!status.ok()) {
        shard_results[s] = status;
        return;
      }
    }
    shard_results[s] = RunFragmentPipeline(table, std::move(staged), dims);
  });

  MD_RETURN_IF_ERROR(shard_results.front().status());
  Table merged = std::move(*shard_results.front());
  for (size_t s = 1; s < num_shards; ++s) {
    MD_RETURN_IF_ERROR(shard_results[s].status());
    MD_RETURN_IF_ERROR(merged.AppendRowsFrom(std::move(*shard_results[s])));
  }
  // Plain shards concatenate back into exactly the serial row order;
  // compressed shard outputs (each sorted by GroupAggregate, with
  // disjoint group sets) re-sort into the serial pipeline's canonical
  // sorted order.
  if (aux.plan.compressed) SortRows(&merged);
  return merged;
}

Status SelfMaintenanceEngine::ApplyFragmentToSummary(
    const std::string& table, const Table& fragment, int sign,
    GroupKeySet* affected, const DimensionIndex* dims,
    SharedJoinCache* shared, const std::string& shared_tag) {
  if (fragment.Empty()) return Status::Ok();
  ++stats_.delta_joins_planned;
  const auto compute = [&]() -> Result<Table> {
    std::map<std::string, const Table*> tables = AuxTableMap();
    tables[table] = &fragment;
    std::set<std::string> required =
        options_.prune_delta_joins
            ? OutputSupplierTables(derivation_, /*csmas_only=*/true)
            : std::set<std::string>(derivation_.view().tables().begin(),
                                    derivation_.view().tables().end());
    required.insert(table);
    return ComputeContributions(derivation_, tables, required, pool_.get(),
                                dims);
  };
  if (shared != nullptr && !shared_tag.empty()) {
    bool reused = false;
    MD_ASSIGN_OR_RETURN(
        std::shared_ptr<const Table> contributions,
        shared->GetOrCompute(
            SharedJoinCache::Kind::kJoin,
            StrCat("join|", shared_tag, "|", shared_lineage_, "|",
                   root_join_sig_),
            compute, &reused));
    if (reused) {
      ++stats_.delta_joins_reused;
    } else {
      ++stats_.delta_joins_executed;
    }
    return summary_.ApplyContributions(*contributions, sign, affected);
  }
  MD_ASSIGN_OR_RETURN(Table contributions, compute());
  ++stats_.delta_joins_executed;
  return summary_.ApplyContributions(contributions, sign, affected);
}

Status SelfMaintenanceEngine::RecomputeAffected(const GroupKeySet& affected,
                                                const DimensionIndex* dims) {
  GroupKeySet alive;
  for (const Tuple& key : affected) {
    if (summary_.GroupAlive(key)) alive.insert(key);
  }
  if (alive.empty()) return Status::Ok();
  MD_ASSIGN_OR_RETURN(
      Table recomputed,
      ReconstructGroups(derivation_, AuxTableMap(), alive, pool_.get(),
                        dims));
  stats_.group_recomputes += alive.size();
  return summary_.UpdateCachedFrom(recomputed, alive);
}

Status SelfMaintenanceEngine::ApplyRootDelta(const Delta& delta,
                                             SharedJoinCache* shared) {
  const std::string& root = derivation_.root();
  const Delta normalized = NormalizeUpdates(delta);
  // One read-only index per dimension auxiliary view, built once and
  // shared by the semijoin reductions, every delta-join chunk, and the
  // affected-group recomputation. A root batch never changes dimension
  // auxiliary views, so the indexes stay valid for the whole batch.
  MD_ASSIGN_OR_RETURN(DimensionIndex dims,
                      DimensionIndex::Build(derivation_, AuxTableMap()));

  // Shared-plan tags: within a transaction the engine sees the root at
  // most once per phase, and the two phases are distinguishable from
  // the normalized delta alone (phase 1 carries pure deletions; phase 2
  // always has inserts and/or update-afters). "D-"/"I-"/"I+" are thus
  // unambiguous per batch and computed identically by every sibling.
  const bool share = shared != nullptr && shared_lineage_ != 0;
  const char* step = normalized.inserts.empty() ? "D" : "I";
  const auto prepare = [&](const std::vector<Tuple>& rows, const char* sign)
      -> Result<std::shared_ptr<const Table>> {
    const auto compute = [&]() -> Result<Table> {
      return PrepareFragment(root, rows, &dims);
    };
    if (share && !rows.empty()) {
      return shared->GetOrCompute(
          SharedJoinCache::Kind::kFragment,
          StrCat("frag|", step, sign, "|", shared_lineage_, "|",
                 root_fragment_sig_),
          compute);
    }
    MD_ASSIGN_OR_RETURN(Table fragment, compute());
    return std::make_shared<const Table>(std::move(fragment));
  };
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> del_frag,
                      prepare(normalized.deletes, "-"));
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const Table> ins_frag,
                      prepare(normalized.inserts, "+"));
  MD_RETURN_IF_ERROR(CheckCancel());

  // Merge into the root auxiliary view (unless eliminated). Canonical
  // row order makes the merge shardable: however shard commits
  // interleave, the store sorts back into the one true order.
  auto aux_it = aux_.find(root);
  if (aux_it != aux_.end()) {
    AuxStore& store = aux_it->second;
    if (store.def().plan.compressed) {
      MD_RETURN_IF_ERROR(
          store.MergeCompressedFragment(*del_frag, -1, pool_.get()));
      MD_RETURN_IF_ERROR(
          store.MergeCompressedFragment(*ins_frag, +1, pool_.get()));
    } else {
      MD_RETURN_IF_ERROR(
          store.MergePlainFragment(*del_frag, -1, pool_.get()));
      MD_RETURN_IF_ERROR(
          store.MergePlainFragment(*ins_frag, +1, pool_.get()));
    }
  }
  // Crash/error here leaves the root auxiliary view ahead of the
  // summary — exactly the partial state rollback and recovery must fix.
  MD_FAILPOINT("engine.root.after_aux_merge");
  MD_RETURN_IF_ERROR(CheckCancel());

  GroupKeySet affected;
  SharedJoinCache* join_cache = share ? shared : nullptr;
  MD_RETURN_IF_ERROR(ApplyFragmentToSummary(root, *del_frag, -1, &affected,
                                            &dims, join_cache,
                                            StrCat(step, "-")));
  MD_RETURN_IF_ERROR(ApplyFragmentToSummary(root, *ins_frag, +1, &affected,
                                            &dims, join_cache,
                                            StrCat(step, "+")));
  if (summary_.has_non_csmas()) {
    MD_RETURN_IF_ERROR(RecomputeAffected(affected, &dims));
  }
  return Status::Ok();
}

Status SelfMaintenanceEngine::ApplyEliminatedDimUpdates(
    const std::string& table, const std::vector<Update>& updates) {
  // With an eliminated root every dimension is key-grouped (annotated
  // k), so the view groups affected by an update are exactly those whose
  // key column matches — rewritable in place (paper Definition 3: the
  // Need set of a k-annotated vertex is empty).
  const Schema& schema = base_schemas_.at(table);
  const std::string& key_attr = base_keys_.at(table);
  const size_t key_idx = *schema.IndexOf(key_attr);
  const int key_pos =
      summary_.GroupPositionOf(AttributeRef{table, key_attr});
  if (key_pos < 0) {
    return InternalError(StrCat(
        "eliminated-root update path: key of '", table,
        "' is not a group-by output, which contradicts elimination"));
  }

  for (const Update& update : updates) {
    std::map<size_t, Value> group_rewrites;
    std::map<size_t, Value> sum_adjust;
    for (size_t i = 0; i < schema.size(); ++i) {
      if (update.before[i].Compare(update.after[i]) == 0) continue;
      const AttributeRef ref{table, schema.attribute(i).name};
      const int pos = summary_.GroupPositionOf(ref);
      if (pos >= 0) {
        group_rewrites.emplace(static_cast<size_t>(pos), update.after[i]);
        continue;
      }
      // The attribute feeds CSMAS SUM/AVG outputs: adjust each by
      // (new − old) per duplicate.
      for (const OutputItem& item : derivation_.view().outputs()) {
        if (item.kind != OutputItem::Kind::kAggregate) continue;
        if (!(item.agg.input == ref)) continue;
        const int slot = summary_.SumSlotOf(item.output_name);
        if (slot < 0) continue;  // COUNT outputs are value-independent.
        sum_adjust.emplace(
            static_cast<size_t>(slot),
            AddValues(update.after[i], NegateValue(update.before[i])));
      }
    }
    // Derived attributes of this table whose operands changed: their
    // SUM/AVG slots (and group positions) move by (new − old) as well.
    for (const DerivedAttr& derived :
         derivation_.view().DerivedAttrsOf(table)) {
      const size_t lhs_idx = *schema.IndexOf(derived.lhs);
      std::optional<size_t> rhs_idx =
          derived.rhs_attr.empty() ? std::nullopt
                                   : schema.IndexOf(derived.rhs_attr);
      const bool touched =
          update.before[lhs_idx].Compare(update.after[lhs_idx]) != 0 ||
          (rhs_idx.has_value() &&
           update.before[*rhs_idx].Compare(update.after[*rhs_idx]) != 0);
      if (!touched) continue;
      const Value& rhs_before =
          rhs_idx.has_value() ? update.before[*rhs_idx]
                              : derived.rhs_constant;
      const Value& rhs_after = rhs_idx.has_value() ? update.after[*rhs_idx]
                                                   : derived.rhs_constant;
      const Value old_value =
          derived.Eval(update.before[lhs_idx], rhs_before);
      const Value new_value = derived.Eval(update.after[lhs_idx], rhs_after);
      const AttributeRef ref{table, derived.name};
      const int pos = summary_.GroupPositionOf(ref);
      if (pos >= 0) {
        group_rewrites.emplace(static_cast<size_t>(pos), new_value);
        continue;
      }
      for (const OutputItem& item : derivation_.view().outputs()) {
        if (item.kind != OutputItem::Kind::kAggregate) continue;
        if (!(item.agg.input == ref)) continue;
        const int slot = summary_.SumSlotOf(item.output_name);
        if (slot < 0) continue;
        sum_adjust.emplace(static_cast<size_t>(slot),
                           AddValues(new_value, NegateValue(old_value)));
      }
    }
    if (group_rewrites.empty() && sum_adjust.empty()) continue;
    MD_RETURN_IF_ERROR(summary_.RewriteGroupsByKey(
        static_cast<size_t>(key_pos), update.before[key_idx],
        group_rewrites, sum_adjust));
  }
  return Status::Ok();
}

Status SelfMaintenanceEngine::ApplyDimDelta(const std::string& table,
                                            const Delta& delta) {
  const Schema& schema = base_schemas_.at(table);
  const std::string& key_attr = base_keys_.at(table);
  const size_t key_idx = *schema.IndexOf(key_attr);
  const AuxViewDef& aux_def = derivation_.aux_for(table);
  const std::set<std::string>& exposed = exposed_attrs_.at(table);
  const bool exposed_allowed = exposed_flagged_.count(table) > 0;

  std::set<std::string> stored(aux_def.reduction.attrs.begin(),
                               aux_def.reduction.attrs.end());
  // A stored derived attribute makes its base operands relevant: an
  // update to `price` changes a stored `revenue = price * qty`.
  for (const std::string& attr : aux_def.reduction.attrs) {
    const DerivedAttr* derived =
        derivation_.view().FindDerived(table, attr);
    if (derived != nullptr) {
      stored.insert(derived->lhs);
      if (!derived->rhs_attr.empty()) stored.insert(derived->rhs_attr);
    }
  }

  // Classify updates: reject key changes, police the exposed-updates
  // flag, split relevant updates into delete+insert pairs, drop the
  // rest (they touch nothing the warehouse stores or conditions on).
  std::vector<Tuple> dels = delta.deletes;
  std::vector<Tuple> inss = delta.inserts;
  std::vector<Update> relevant_updates;
  for (const Update& update : delta.updates) {
    if (update.before.size() != schema.size() ||
        update.after.size() != schema.size()) {
      return InvalidArgumentError(
          StrCat("update arity mismatch against '", table, "'"));
    }
    if (update.before[key_idx].Compare(update.after[key_idx]) != 0) {
      return InvalidArgumentError(
          StrCat("update changes the key of '", table,
                 "'; model it as a deletion plus an insertion"));
    }
    bool touches_relevant = false;
    for (size_t i = 0; i < schema.size(); ++i) {
      if (update.before[i].Compare(update.after[i]) == 0) continue;
      const std::string& attr = schema.attribute(i).name;
      if (exposed.count(attr) > 0 && !exposed_allowed) {
        return FailedPreconditionError(StrCat(
            "update changes condition/join attribute '", attr, "' of '",
            table, "', which was not declared to have exposed updates; "
            "the derived auxiliary views assumed otherwise"));
      }
      if (stored.count(attr) > 0 || exposed.count(attr) > 0) {
        touches_relevant = true;
      }
    }
    if (touches_relevant) relevant_updates.push_back(update);
  }

  const bool root_eliminated = derivation_.IsEliminated(derivation_.root());
  if (!root_eliminated) {
    for (const Update& update : relevant_updates) {
      dels.push_back(update.before);
      inss.push_back(update.after);
    }
  }

  // Prebuilt indexes for every *other* dimension auxiliary view: this
  // table's own contents change mid-batch, so it is excluded and any
  // join against it (affected-group recomputation) indexes it locally.
  MD_ASSIGN_OR_RETURN(DimensionIndex dims,
                      DimensionIndex::Build(derivation_, AuxTableMap(),
                                            /*exclude=*/{table}));

  MD_ASSIGN_OR_RETURN(Table del_frag, PrepareFragment(table, dels, &dims));
  MD_ASSIGN_OR_RETURN(Table ins_frag, PrepareFragment(table, inss, &dims));
  if (root_eliminated) {
    // Updates still flow into the dimension auxiliary view.
    std::vector<Tuple> upd_dels, upd_inss;
    for (const Update& update : relevant_updates) {
      upd_dels.push_back(update.before);
      upd_inss.push_back(update.after);
    }
    MD_ASSIGN_OR_RETURN(Table upd_del_frag,
                        PrepareFragment(table, upd_dels, &dims));
    MD_ASSIGN_OR_RETURN(Table upd_ins_frag,
                        PrepareFragment(table, upd_inss, &dims));
    AuxStore& store = aux_.at(table);
    MD_RETURN_IF_ERROR(store.MergePlainFragment(upd_del_frag, -1,
                                                pool_.get()));
    MD_RETURN_IF_ERROR(store.MergePlainFragment(upd_ins_frag, +1,
                                                pool_.get()));
  }

  // Maintain the dimension's auxiliary view.
  {
    AuxStore& store = aux_.at(table);
    MD_RETURN_IF_ERROR(store.MergePlainFragment(del_frag, -1, pool_.get()));
    MD_RETURN_IF_ERROR(store.MergePlainFragment(ins_frag, +1, pool_.get()));
  }
  MD_FAILPOINT("engine.dim.after_aux_merge");

  // Propagate to the summary.
  if (root_eliminated) {
    // Pure insertions/deletions of a dependable dimension cannot affect
    // the view (elimination implies full dependence); updates rewrite
    // the (key-grouped) summary in place.
    ++stats_.shielded_skips;
    return ApplyEliminatedDimUpdates(table, relevant_updates);
  }

  const bool can_skip = options_.trust_referential_integrity &&
                        shielded_.at(table) && relevant_updates.empty();
  if (can_skip) {
    ++stats_.shielded_skips;
    return Status::Ok();
  }

  GroupKeySet affected;
  MD_RETURN_IF_ERROR(CheckCancel());
  // The delta join must see the *other* auxiliary views as they are,
  // and the changed table replaced by the delta fragment; the
  // dimension's own store state does not participate.
  MD_RETURN_IF_ERROR(
      ApplyFragmentToSummary(table, del_frag, -1, &affected, &dims));
  MD_RETURN_IF_ERROR(
      ApplyFragmentToSummary(table, ins_frag, +1, &affected, &dims));
  if (summary_.has_non_csmas()) {
    MD_RETURN_IF_ERROR(RecomputeAffected(affected, &dims));
  }
  return Status::Ok();
}

Status SelfMaintenanceEngine::Apply(const std::string& table,
                                    const Delta& delta,
                                    SharedJoinCache* shared,
                                    const CancellationToken* cancel) {
  if (!derivation_.view().ReferencesTable(table)) {
    return NotFoundError(StrCat("table '", table,
                                "' is not referenced by view '",
                                derivation_.view().name(), "'"));
  }
  // Stash the token for the duration of this apply so the const
  // maintenance internals (fragment pipeline shards, delta joins) can
  // poll it. Cleared on every exit path.
  cancel_ = cancel;
  struct ClearCancel {
    const CancellationToken*& slot;
    ~ClearCancel() { slot = nullptr; }
  } clear_cancel{cancel_};
  MD_RETURN_IF_ERROR(CheckCancel());
  ++stats_.batches_applied;
  stats_.rows_processed += delta.Size();
  if (delta.Empty()) return Status::Ok();
  if (append_only_.count(table) > 0 &&
      (!delta.deletes.empty() || !delta.updates.empty())) {
    return FailedPreconditionError(
        StrCat("table '", table, "' is append-only; deletions and "
               "updates are not allowed"));
  }
  if (table == derivation_.root()) {
    MD_RETURN_IF_ERROR(ApplyRootDelta(delta, shared));
  } else {
    // Dimension deltas stay per-engine: the delta join reads the root
    // auxiliary view, whose contents this batch is mutating.
    MD_RETURN_IF_ERROR(ApplyDimDelta(table, delta));
  }
  // Fires after the batch is fully merged: an error here makes a
  // successful apply report failure (exercising caller rollback), a
  // crash dies with the batch applied but unacknowledged.
  MD_FAILPOINT("engine.apply.commit");
  return Status::Ok();
}

Status SelfMaintenanceEngine::ApplyTransaction(
    const std::map<std::string, Delta>& changes, SharedJoinCache* shared,
    const CancellationToken* cancel) {
  for (const auto& [table, delta] : changes) {
    (void)delta;
    if (!derivation_.view().ReferencesTable(table)) {
      return NotFoundError(StrCat("table '", table,
                                  "' is not referenced by view '",
                                  derivation_.view().name(), "'"));
    }
  }
  const std::vector<std::string>& order =
      derivation_.graph().TopologicalOrder();
  // Phase 1: deletions, root-first (a fact disappears before the
  // dimension rows it referenced).
  for (const std::string& table : order) {
    auto it = changes.find(table);
    if (it == changes.end() || it->second.deletes.empty()) continue;
    Delta deletions;
    deletions.deletes = it->second.deletes;
    MD_RETURN_IF_ERROR(Apply(table, deletions, shared, cancel));
  }
  // Phase 2: insertions and updates, leaves-first (a dimension row
  // exists before any fact referencing it).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    auto change = changes.find(*it);
    if (change == changes.end()) continue;
    Delta rest;
    rest.inserts = change->second.inserts;
    rest.updates = change->second.updates;
    if (rest.Empty()) continue;
    MD_RETURN_IF_ERROR(Apply(*it, rest, shared, cancel));
  }
  return Status::Ok();
}

}  // namespace mindetail
