#include "maintenance/shared_plan.h"

#include <utility>

namespace mindetail {

Result<std::shared_ptr<const Table>> SharedJoinCache::GetOrCompute(
    Kind kind, const std::string& key,
    const std::function<Result<Table>()>& compute, bool* reused) {
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Slot>& entry = slots_[key];
    if (!entry) entry = std::make_unique<Slot>();
    slot = entry.get();
  }

  std::unique_lock<std::mutex> slot_lock(slot->mu);
  if (slot->done) {
    if (reused) *reused = true;
    std::lock_guard<std::mutex> lock(mu_);
    if (kind == Kind::kJoin) {
      ++stats_.joins_reused;
    } else {
      ++stats_.fragments_reused;
    }
    return slot->value;
  }

  if (reused) *reused = false;
  Result<Table> computed = compute();
  if (!computed.ok()) {
    // Leave the slot not-done: each sibling recomputes and fails the
    // same way the per-engine baseline would.
    return computed.status();
  }
  slot->value = std::make_shared<const Table>(std::move(*computed));
  slot->done = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (kind == Kind::kJoin) {
      ++stats_.joins_computed;
    } else {
      ++stats_.fragments_computed;
    }
  }
  return slot->value;
}

SharedJoinStats SharedJoinCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mindetail
