// Ingestion admission control: the trust boundary of the warehouse.
//
// Per the paper the warehouse is self-maintainable from change batches
// alone — there is no base-table access to fall back on, so a
// malformed, duplicated, or replayed delta silently corrupts every
// auxiliary view downstream. This header holds the two pieces that
// make the ingest path defensive:
//
//  * KeyLedger — the live primary-key set of every base table any view
//    references, seeded from the source at registration time and folded
//    forward on every committed batch. It is the warehouse's only
//    memory of base-table contents, and what lets the validator reject
//    a deletion of a nonexistent row or a duplicate insertion *before*
//    the batch consumes WAL space or a sequence number.
//
//  * ValidateBatch — checks an incoming change set against the schema
//    catalog (arity, exact column types, no NULLs), the ledger (key
//    liveness in ApplyDelta order: deletes, then updates, then
//    inserts), within-batch key consistency, and declared referential
//    integrity (inserted rows must reference a parent key that is live
//    after the whole transaction — a parent inserted by the same batch
//    counts, a parent deleted by it does not).
//
// Both are deliberately independent of the engines so they run (and are
// testable) without touching any view state.

#ifndef MINDETAIL_MAINTENANCE_INGEST_H_
#define MINDETAIL_MAINTENANCE_INGEST_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/result.h"
#include "relational/catalog.h"
#include "relational/delta.h"

namespace mindetail {

class ThreadPool;

// Ingestion counters, exposed via Warehouse::ingest_stats().
struct IngestStats {
  uint64_t accepted = 0;       // Batches applied and acknowledged.
  uint64_t duplicates = 0;     // Resends acknowledged as no-ops.
  uint64_t rejected = 0;       // Batches that failed admission control.
  uint64_t failed = 0;         // Valid batches that failed to apply.
  uint64_t retries = 0;        // Transient-failure retry attempts.
  uint64_t quarantined = 0;    // Entries written to the quarantine log.
};

// Live primary keys per tracked base table. Key values are stored as
// canonical binary tokens (the log-format value encoding), so int64,
// double, and string keys share one representation.
class KeyLedger {
 public:
  // Starts tracking a table whose key is column `key_index`, seeding
  // the live set from `rows` (the source contents at view-registration
  // time). Tracking an already-tracked table is a no-op: the ledger
  // has been folding that table forward since it was first seen.
  void Track(const std::string& table, size_t key_index, const Table& rows);

  bool Tracks(const std::string& table) const;
  bool Contains(const std::string& table, const Value& key) const;
  size_t NumKeys(const std::string& table) const;

  // Folds a committed change set forward (deletes, then update key
  // moves, then inserts — mirroring ApplyDelta). Untracked tables are
  // skipped. Call only after the batch is durably applied.
  void Fold(const std::map<std::string, Delta>& changes);

  // Canonical binary token of a key value.
  static std::string KeyToken(const Value& v);

  // Checkpoint round trip (appended to / read from a payload using the
  // log-format primitives).
  void SerializeInto(std::string* out) const;
  static Result<KeyLedger> Deserialize(const std::string& payload,
                                       size_t* consumed);

 private:
  struct Tracked {
    size_t key_index = 0;
    std::set<std::string> live;  // Key tokens.
  };
  std::map<std::string, Tracked> tables_;
};

// Admission control: checks `changes` against the schema catalog and
// the ledger before any WAL or engine work. Returns InvalidArgument
// with a precise reason on the first problem found. Tables the ledger
// does not track skip the key-liveness checks (their within-batch
// consistency is still enforced); referential integrity is checked only
// against tracked parent tables.
//
// With a non-null `pool`, the per-table checks (tuple shape, key
// simulation) run concurrently — tables are independent until the
// final cross-table referential-integrity pass, which stays serial
// over the collected per-table simulations. Errors are reported
// identically to the serial validator: the first failing table in
// batch (map) order wins, with the same message.
Status ValidateBatch(const Catalog& catalog, const KeyLedger& ledger,
                     const std::map<std::string, Delta>& changes,
                     ThreadPool* pool = nullptr);

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_INGEST_H_
