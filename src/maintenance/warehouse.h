// A multi-view warehouse: many summary tables maintained over the same
// data sources (the setting of the paper's introduction, and of Mumick
// et al. [13] which it cites). The warehouse derives the minimal
// auxiliary views for every registered summary, routes each incoming
// change batch to the engines whose views reference the changed table,
// and reports the combined current-detail footprint.
//
// Views can be registered from SQL text (ParseGpsjView) or from
// prebuilt definitions.
//
// Change batches apply atomically across every affected view: either
// all engines fold the batch in, or — on any engine failure — every
// already-applied engine is rolled back and the warehouse is left
// bit-identical to its pre-batch state. A rejected batch is therefore
// recoverable in place; no rebuild from the source is ever needed.
//
// Maintenance parallelism has two independent levels, both configured
// through WarehouseOptions: `parallelism` fans one change batch out
// across the affected views (engines maintain disjoint state, so they
// apply concurrently), and `engine.num_threads` shards the work within
// each view. Every combination is bit-identical to the serial
// warehouse — including rollback on a concurrent engine failure, where
// the first failure in view-registration order is reported.
//
// A warehouse constructed with Open(dir) is additionally durable: each
// batch is appended to a write-ahead log before it touches any engine,
// Checkpoint() persists the complete maintenance state (auxiliary
// views, augmented summaries, view definitions, schema catalog), and a
// later Open(dir) recovers from the last checkpoint plus WAL replay —
// tolerating a crash at any point, including mid-append (a torn final
// WAL record is discarded).
//
// Ingestion hardening (all knobs in WarehouseOptions):
//  * Admission control — every batch is validated against the schema
//    catalog and a key ledger (arity/types, key uniqueness, deletions
//    of nonexistent rows, referential-integrity ordering) before it
//    consumes a WAL record or a sequence number.
//  * Exactly-once — a client idempotency key (or a content-hash
//    fallback) rides in the WAL frame and checkpoint state; a resent
//    or replayed batch is acknowledged as a no-op, including a source
//    retry racing crash recovery.
//  * Bounded retry — transient (kInternal) failures are retried with
//    exponential backoff and jitter, deterministic under test via an
//    injected sleeper and seeded RNG.
//  * Quarantine — batches failing validation or exhausting retries are
//    serialized durably (quarantine.log) with the rejecting Status and
//    can be listed, retried, or dropped.
//  * Integrity scrubbing — VerifyIntegrity() cross-checks every view's
//    GPSJ invariants against its auxiliary views; failing views are
//    marked degraded and RepairView() rebuilds them from the last
//    checkpoint plus WAL replay.
//
// Serving layer (on by default, see WarehouseOptions::serve_snapshots):
// every committed batch publishes an immutable WarehouseSnapshot —
// copy-on-write at batch boundaries, re-rendering only the views the
// batch touched — so View() and Query() read consistent state without
// locking maintenance, from any number of threads. Query() answers
// ad-hoc GPSJ queries by rewriting over the materialized views (summary
// roll-up, or the auxiliary-view join fallback; see serve/planner.h)
// and memoizes results in an invalidation-aware LRU cache keyed by the
// view version each answer was computed from.

#ifndef MINDETAIL_MAINTENANCE_WAREHOUSE_H_
#define MINDETAIL_MAINTENANCE_WAREHOUSE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/mem_budget.h"
#include "common/rng.h"
#include "gpsj/parser.h"
#include "maintenance/admission.h"
#include "maintenance/engine.h"
#include "maintenance/ingest.h"
#include "maintenance/quarantine.h"
#include "maintenance/wal.h"
#include "serve/lattice.h"
#include "serve/planner.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"

namespace mindetail {

// Bounded retry of transiently failing batch applies. Only kInternal
// failures are retried (I/O errors, injected faults); validation
// errors and other deterministic rejections fail immediately. Attempt
// n (1-based) sleeps min(max_delay_ms, base_delay_ms·2^(n-1)) scaled
// by a jitter factor uniform in [0.5, 1.0) drawn from a Rng seeded
// with `jitter_seed` — fully deterministic given the seed.
struct RetryOptions {
  int max_retries = 0;     // Extra attempts after the first (0 = off).
  int base_delay_ms = 1;
  int max_delay_ms = 64;
  uint64_t jitter_seed = 0x6D696E64;  // "mind"
  // Called instead of actually sleeping when set — tests inject a
  // recorder to assert the deterministic backoff schedule.
  std::function<void(int /*delay_ms*/)> sleeper;
};

// Every warehouse-level knob in one place: per-view engine defaults,
// cross-view parallelism, durability, and ingestion hardening. The
// With* setters form a fluent builder:
//
//   Warehouse wh(WarehouseOptions{}.WithParallelism(4).WithRetries(3));
struct WarehouseOptions {
  // Defaults for engines registered by AddView/AddViewSql calls that
  // pass no per-view EngineOptions.
  EngineOptions engine;
  // Number of views maintained concurrently per change batch. 1
  // (default) applies engines one after another on the calling thread;
  // N > 1 submits the affected engines to a shared pool of N threads.
  // Either way the outcome — including rollback on failure — is
  // bit-identical to the serial warehouse.
  int parallelism = 1;
  // fsync the WAL on every Append (durable warehouses only). Disable
  // only for benchmarks that measure the cost of durability itself.
  bool sync_wal = true;
  // Admission control: validate every batch against the schema catalog
  // and key ledger before logging it. Disable only for benchmarks that
  // measure the validation cost itself.
  bool validate_batches = true;
  // When a batch arrives without a client idempotency key, derive one
  // from a content hash of the batch — so an identical resend is still
  // detected. Disable to restore apply-what-you're-sent semantics for
  // keyless batches.
  bool hash_idempotency = true;
  // How many recently accepted idempotency keys are remembered (FIFO).
  // 0 disables duplicate detection entirely.
  size_t idempotency_window = 4096;
  // Serving layer: publish an immutable snapshot after every committed
  // batch (and on registration/recovery/repair), and route View() and
  // Query() through it. Disable to fall back to rendering views from
  // the live engines on every View() call (and to make Query() a
  // FailedPrecondition).
  bool serve_snapshots = true;
  // Result-cache capacity for Query() answers (0 disables caching).
  size_t result_cache_entries = 64;
  // Adaptive roll-up lattice (serve/lattice.h): total bytes of promoted
  // mini-view tables. 0 (default) disables the lattice entirely;
  // SIZE_MAX is an unbounded budget. Requires serve_snapshots.
  size_t lattice_budget_bytes = 0;
  // Observed uses of one coarser grouping before it is promoted.
  uint64_t lattice_promote_hits = 3;
  // Shared maintenance plans: before fanning a batch across engines,
  // memoize each distinct root-delta fragment and delta join (keyed by
  // canonical structural signature + lineage token) in a per-batch
  // SharedJoinCache, so N identically-defined sibling views pay each
  // join once instead of N times. Bit-identical to the per-engine
  // baseline at every thread count. Only kicks in when at least two
  // engines share a batch.
  bool share_delta_joins = true;
  // Follower mode (replication): external mutations — ApplyTransaction,
  // Apply, AddView, RemoveView, quarantine retry — are refused with
  // FailedPrecondition; the warehouse changes only through
  // ApplyReplicated (shipped leader WAL frames) and serves reads.
  // PromoteToLeader() clears this at failover.
  bool read_only = false;
  // Quarantine dead-letter log growth caps (oldest entries rotate out;
  // see QuarantineLog::Options). 0 disables a cap.
  uint64_t quarantine_max_entries = 1024;
  uint64_t quarantine_max_bytes = 64ull << 20;
  // Overload protection (see maintenance/admission.h and DESIGN.md §19).
  // Every Query() runs under this deadline unless the caller passes a
  // stricter token; an expired deadline returns kDeadlineExceeded and
  // never publishes or caches a partial result. 0 = no deadline.
  int64_t default_query_deadline_ms = 0;
  // Per-query cap on bytes materialized by planner intermediates (aux
  // joins); exceeding it returns kResourceExhausted instead of OOMing.
  // 0 = unlimited.
  uint64_t query_memory_budget_bytes = 0;
  // Byte cap for the result cache, alongside result_cache_entries
  // (0 = entries-only).
  uint64_t result_cache_bytes = 0;
  // Ingest admission window: at most this many batches in flight at
  // once; past it (or for heavy batches under latency pressure) new
  // batches are shed with kUnavailable + a retry-after hint. 0 = off.
  int max_inflight_batches = 0;
  RetryOptions retry;

  WarehouseOptions& WithEngineDefaults(EngineOptions options) {
    engine = std::move(options);
    return *this;
  }
  WarehouseOptions& WithEngineThreads(int num_threads) {
    engine.num_threads = num_threads;
    return *this;
  }
  WarehouseOptions& WithParallelism(int num_views) {
    parallelism = num_views;
    return *this;
  }
  WarehouseOptions& WithSyncWal(bool sync) {
    sync_wal = sync;
    return *this;
  }
  WarehouseOptions& WithValidation(bool validate) {
    validate_batches = validate;
    return *this;
  }
  WarehouseOptions& WithHashIdempotency(bool hash) {
    hash_idempotency = hash;
    return *this;
  }
  WarehouseOptions& WithIdempotencyWindow(size_t window) {
    idempotency_window = window;
    return *this;
  }
  WarehouseOptions& WithServing(bool serve) {
    serve_snapshots = serve;
    return *this;
  }
  WarehouseOptions& WithResultCache(size_t entries) {
    result_cache_entries = entries;
    return *this;
  }
  WarehouseOptions& WithLatticeBudget(size_t bytes) {
    lattice_budget_bytes = bytes;
    return *this;
  }
  WarehouseOptions& WithLatticePromoteHits(uint64_t hits) {
    lattice_promote_hits = hits;
    return *this;
  }
  WarehouseOptions& WithSharedJoins(bool share) {
    share_delta_joins = share;
    return *this;
  }
  WarehouseOptions& WithReadOnly(bool read_only_mode) {
    read_only = read_only_mode;
    return *this;
  }
  WarehouseOptions& WithQuarantineCaps(uint64_t max_entries,
                                       uint64_t max_bytes) {
    quarantine_max_entries = max_entries;
    quarantine_max_bytes = max_bytes;
    return *this;
  }
  WarehouseOptions& WithQueryDeadline(int64_t ms) {
    default_query_deadline_ms = ms;
    return *this;
  }
  WarehouseOptions& WithQueryMemoryBudget(uint64_t bytes) {
    query_memory_budget_bytes = bytes;
    return *this;
  }
  WarehouseOptions& WithResultCacheBytes(uint64_t bytes) {
    result_cache_bytes = bytes;
    return *this;
  }
  WarehouseOptions& WithMaxInflightBatches(int batches) {
    max_inflight_batches = batches;
    return *this;
  }
  WarehouseOptions& WithRetries(int max_retries) {
    retry.max_retries = max_retries;
    return *this;
  }
  WarehouseOptions& WithRetryBackoff(int base_delay_ms, int max_delay_ms) {
    retry.base_delay_ms = base_delay_ms;
    retry.max_delay_ms = max_delay_ms;
    return *this;
  }
  WarehouseOptions& WithRetryJitterSeed(uint64_t seed) {
    retry.jitter_seed = seed;
    return *this;
  }
  WarehouseOptions& WithRetrySleeper(std::function<void(int)> fn) {
    retry.sleeper = std::move(fn);
    return *this;
  }
};

// What recovery found, for tests and the CLI.
struct RecoveryStats {
  uint64_t checkpoint_sequence = 0;  // Folded into the loaded checkpoint.
  uint64_t replayed_batches = 0;     // WAL records applied on Open.
  uint64_t rejected_batches = 0;     // WAL records engines rejected.
  // CURRENT named a missing/incomplete checkpoint and recovery fell
  // back to the named older complete one (empty = no fallback needed).
  std::string fallback_checkpoint;
};

// One integrity problem found by VerifyIntegrity().
struct IntegrityIssue {
  std::string view;
  std::string problem;
};

struct IntegrityReport {
  uint64_t views_checked = 0;
  std::vector<IntegrityIssue> issues;
  bool clean() const { return issues.empty(); }
};

// Warehouse-level maintenance counters: the per-engine EngineStats
// summed across registered views, plus the shared-plan totals
// accumulated over every committed batch. delta_joins_planned ==
// delta_joins_executed + delta_joins_reused always holds.
struct MaintenanceStats {
  uint64_t batches_applied = 0;
  uint64_t rows_processed = 0;
  uint64_t delta_joins_planned = 0;
  uint64_t delta_joins_executed = 0;
  uint64_t delta_joins_reused = 0;
  uint64_t group_recomputes = 0;
  uint64_t shielded_skips = 0;
  SharedJoinStats shared;
};

// One view's line in the WarehouseReport inventory.
struct ViewReport {
  struct AuxLine {
    std::string name;
    bool eliminated = false;
    uint64_t rows = 0;
    uint64_t paper_bytes = 0;
  };
  std::string name;
  std::vector<AuxLine> aux;
};

// Every introspection surface of the warehouse, composed: maintenance,
// ingestion, serving (result cache + lattice), recovery, replication,
// and the per-view auxiliary inventory. Returned by Warehouse::Report();
// the per-subsystem getters forward to slices of this.
struct WarehouseReport {
  MaintenanceStats maintenance;
  IngestStats ingest;
  ResultCache::Stats cache;
  LatticeStats lattice;
  RecoveryStats recovery;
  // Overload protection: admission window, shed/cancelled/deadline/
  // budget-refusal counters, observed apply latency.
  OverloadStats overload;
  // Per-query memory-budget high-water marks (root accounting).
  uint64_t query_memory_peak_bytes = 0;
  // Replication / durability.
  bool durable = false;
  std::string directory;
  bool read_only = false;
  uint64_t leader_epoch = 0;
  uint64_t last_sequence = 0;
  // Inventory.
  std::vector<ViewReport> views;
  uint64_t total_detail_paper_bytes = 0;

  // Human-readable rendering: the classic per-view auxiliary inventory
  // followed by one section per subsystem (used by the CLI's `report`
  // and `stats` commands).
  std::string ToString() const;
};

class Warehouse {
 public:
  // An in-memory (non-durable) warehouse.
  explicit Warehouse(WarehouseOptions options = WarehouseOptions{});

  // Opens a durable warehouse rooted at `dir` (created if absent):
  // loads the CURRENT checkpoint if any (verifying every view file
  // against its manifest checksum), replays the WAL tail, restores the
  // idempotency window and key ledger, and arranges for every
  // subsequent batch to be logged before it is applied.
  static Result<Warehouse> Open(
      const std::string& dir, WarehouseOptions options = WarehouseOptions{});

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;
  Warehouse(Warehouse&&) = default;
  Warehouse& operator=(Warehouse&&) = default;

  const WarehouseOptions& options() const { return options_; }
  // Replaces the options wholesale; `engine` affects views registered
  // afterwards, `parallelism` re-sizes the shared view pool, `sync_wal`
  // applies from the next Open (the running WAL keeps its mode), and
  // `retry.jitter_seed` re-seeds the backoff RNG.
  void set_options(WarehouseOptions options);

  // Registers a summary view: runs Algorithm 3.2 against `source` and
  // materializes its auxiliary views and summary. The engine uses
  // `options` when given, otherwise this warehouse's engine defaults.
  // The source's current rows seed the admission-control key ledger.
  // On a durable warehouse this also writes a fresh checkpoint — view
  // registrations are not WAL events, so they must be durable
  // immediately.
  Status AddView(const Catalog& source, const GpsjViewDef& def,
                 std::optional<EngineOptions> options = std::nullopt);

  // Convenience: parse a CREATE VIEW statement and register it.
  Status AddViewSql(const Catalog& source, std::string_view sql,
                    std::optional<EngineOptions> options = std::nullopt);

  Status RemoveView(const std::string& view_name);

  bool HasView(const std::string& view_name) const;
  std::vector<std::string> ViewNames() const;

  // Propagates a change batch against base table `table` to every
  // registered view that references it. A thin wrapper over
  // ApplyTransaction({{table, delta}}) — one table is simply the
  // single-entry transaction, with the same logging, atomicity, and
  // rollback behavior.
  Status Apply(const std::string& table, const Delta& delta);

  // Applies a multi-table change set to every view referencing any of
  // the changed tables; each engine orders the pieces RI-consistently
  // (see SelfMaintenanceEngine::ApplyTransaction). Tables unknown to a
  // given view are skipped for that view. The batch applies atomically:
  // if any engine rejects it (e.g. an inconsistent delta), every engine
  // that already applied it is rolled back and the whole warehouse is
  // left bit-identical to its pre-batch state. On a durable warehouse
  // the batch is WAL-logged (and fsync'd) before any engine sees it.
  // With options().parallelism > 1 the affected engines apply
  // concurrently; the outcome is identical.
  //
  // The full ingestion pipeline runs first: duplicate detection (via
  // the content-hash key unless hash_idempotency is off), admission
  // control (validate_batches), bounded retry of transient failures
  // (retry.max_retries), and quarantine of refused batches. A detected
  // duplicate returns Ok without re-applying anything.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes);

  // As above with an explicit idempotency key: if `idempotency_key` is
  // non-empty and matches a recently accepted batch, the resend is
  // acknowledged as a no-op (ingest_stats().duplicates counts it; the
  // original sequence stays visible through SequenceForKey). The key is
  // logged in the batch's WAL record and persisted across checkpoints,
  // so the guarantee holds across crash recovery too.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes,
                          const std::string& idempotency_key);

  // As above with cooperative cancellation: the token is polled between
  // maintenance stages and sharded fragments (see engine.h). A token
  // that trips mid-apply rolls back exactly like a mid-batch failure —
  // every view, the WAL sequence, and the idempotency window are left
  // bit-identical to the batch never having arrived (a batch cancelled
  // after its WAL append is un-logged via WriteAheadLog::AbortLast).
  // Cancelled batches return kCancelled/kDeadlineExceeded, are never
  // quarantined, and may be resent verbatim.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes,
                          const std::string& idempotency_key,
                          const CancellationToken& cancel);

  // Persists the complete maintenance state under the warehouse
  // directory (atomic rename; the previous checkpoint stays valid until
  // the new one is complete) and truncates the WAL. Every view file's
  // content hash is recorded in the manifest and re-verified on load.
  // Fails on an in-memory warehouse.
  Status Checkpoint();

  // --- Replication (src/replication/) --------------------------------

  // Applies one shipped leader WAL frame on a follower: logs it to the
  // local WAL under the leader's exact sequence/key/epoch, folds it
  // into the engines through the same apply path as the leader, and
  // publishes the snapshot at the leader's committed version — so
  // follower reads are bit-identical to the leader's at that boundary,
  // and result-cache entries keyed by version are shareable across
  // replicas. Idempotent: a frame at or below the local sequence is
  // acknowledged as a no-op (duplicates/resends are harmless).
  // FailedPrecondition when the frame's epoch is behind the local
  // leader-epoch fence (a deposed leader is still writing), or when it
  // would leave a sequence gap (the follower must bootstrap from a
  // leader checkpoint first — see replication/log_shipper.h). A frame
  // the engines deterministically reject consumed a sequence on the
  // leader too; it consumes one here and returns Ok, exactly like WAL
  // replay on Open.
  Status ApplyReplicated(const WriteAheadLog::Record& record);

  // Failover: turns a read-only follower into a leader. Bumps the
  // leader epoch past everything ever seen and checkpoints, making the
  // fence durable — frames the deposed leader keeps writing under its
  // old epoch are refused by every receiver that saw the new one.
  Status PromoteToLeader();

  // Current leader-epoch fence (0 = never replicated/promoted).
  uint64_t leader_epoch() const { return leader_epoch_; }

  // True when this warehouse is a read-only follower.
  bool read_only() const { return options_.read_only; }

  // True when this warehouse was constructed by Open() and logs/
  // checkpoints under a directory.
  bool durable() const { return !dir_.empty(); }
  const std::string& directory() const { return dir_; }

  // Sequence number of the last batch accepted into the WAL (or simply
  // counted, when in-memory). Batches refused by admission control (or
  // acknowledged as duplicates) consume no sequence number and leave no
  // WAL record; batches an engine rejects *after* logging do — their
  // record exists and is skipped on replay.
  uint64_t last_sequence() const { return sequence_; }

  // The sequence number the batch with this idempotency key committed
  // under, while the key remains inside the idempotency window — what a
  // transport acks a duplicate resend with (the *original* sequence,
  // not a new one). Keys restored from a checkpoint written before
  // sequences were recorded report 0 ("accepted, sequence unknown").
  // Call from the writer side only (it reads the same window the
  // ingest path mutates); a serialized front end satisfies this by
  // holding its ingest lock across apply + lookup.
  std::optional<uint64_t> SequenceForKey(const std::string& key) const;

  // The retry-after hint attached to the ingest controller's most
  // recent shed, in milliseconds — what a transport puts in an HTTP
  // Retry-After header next to a 503. Lock-free; does not compose a
  // WarehouseReport.
  int retry_after_hint_ms() const;

  // Registers (or clears, with nullptr) the commit listener: called on
  // the writer thread immediately after every published snapshot, with
  // the previous and the just-published snapshot — the hook the network
  // front end's change feed turns into per-view delta events. The
  // listener runs synchronously inside the commit path; keep it cheap
  // relative to batch apply, and never call back into the warehouse's
  // write API from it. Set/cleared from the writer side only (not
  // concurrent with ApplyTransaction). No-op snapshots (serving
  // disabled) never fire it.
  using CommitListener = std::function<void(
      const std::shared_ptr<const WarehouseSnapshot>& previous,
      const std::shared_ptr<const WarehouseSnapshot>& published)>;
  void SetCommitListener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  // What Open() found (zeroes for an in-memory warehouse).
  // Prefer Report().recovery; this getter forwards to it.
  RecoveryStats recovery_stats() const { return Report().recovery; }

  // Ingestion pipeline counters (accepted/duplicates/rejected/failed/
  // retries/quarantined) since construction. Prefer Report().ingest;
  // this getter forwards to it.
  IngestStats ingest_stats() const { return Report().ingest; }

  // Warehouse-level maintenance counters (engine stats summed across
  // views + shared-plan totals). Prefer Report().maintenance.
  MaintenanceStats maintenance_stats() const {
    return Report().maintenance;
  }

  // Quarantine access (durable warehouses only — an in-memory
  // warehouse has nowhere to keep a dead-letter log and returns
  // FailedPrecondition). Retry re-runs the full ingestion pipeline on
  // the stored batch and removes the entry on success — including the
  // case where the batch had in fact landed before a crash and the
  // retry is acknowledged as a duplicate. Drop discards the entry.
  Result<std::vector<QuarantineLog::Entry>> QuarantineEntries() const;
  Status QuarantineRetry(uint64_t id);
  Status QuarantineDrop(uint64_t id);

  // Integrity scrubber: checks every registered view's maintained state
  // against its GPSJ invariants — every compressed auxiliary-view group
  // carries COUNT ≥ 1, every summary group's shadow count is positive
  // (scalar views excepted: their single group legitimately reaches 0),
  // and, when the root auxiliary view exists, the summary matches a
  // full reconstruction from the auxiliary views. Views with issues are
  // marked degraded (and un-marked once they verify clean again).
  Result<IntegrityReport> VerifyIntegrity();

  // Views VerifyIntegrity() most recently found damaged.
  const std::set<std::string>& degraded_views() const { return degraded_; }

  // Rebuilds one view's engine from the last checkpoint plus WAL
  // replay, discarding its in-memory state, and clears its degraded
  // mark. Durable warehouses only.
  Status RepairView(const std::string& view_name);

  // Human-readable durability state: directory, sequences, WAL size.
  std::string DurabilityReport() const;

  // Current contents of a registered view, as of the last committed
  // batch. With serving enabled (the default) this reads the published
  // snapshot — one shared, already-rendered table; the returned copy is
  // the only per-call cost, and concurrent maintenance never tears the
  // result. With serving disabled it renders from the live engine.
  Result<Table> View(const std::string& view_name) const;

  // Answers an ad-hoc GPSJ query — a bare SELECT or a full CREATE VIEW
  // statement over the registered base tables — by rewriting it over
  // the materialized views (serve/planner.h): a summary roll-up when
  // the query is derivable from a view's augmented summary, otherwise
  // a duplicate-accounted join of its auxiliary views. The result is
  // bit-compatible with evaluating the query over the base tables.
  // Safe from any thread concurrently with maintenance: the whole
  // query runs over one immutable snapshot. Answers are memoized in
  // the result cache until a batch touches the answering view.
  // FailedPrecondition when serving is disabled; NotFound (with every
  // candidate's rejection reason) when no view can answer.
  Result<Table> Query(std::string_view sql) const;

  // As above with cooperative cancellation. The token merges with the
  // configured default deadline (the stricter limit applies) and is
  // polled during planning and row-at-a-time execution; a tripped token
  // returns kCancelled/kDeadlineExceeded without publishing or caching
  // anything. When query_memory_budget_bytes is set, planner
  // intermediates run under a per-query budget and overflow returns
  // kResourceExhausted instead of OOMing.
  Result<Table> Query(std::string_view sql,
                      const CancellationToken& cancel) const;

  // The planning report for `sql`: chosen view and strategy (or why
  // the query is unanswerable), rejected candidates, and the result
  // cache / lattice footers — structured; render with ToString().
  Result<QueryExplanation> ExplainQuery(std::string_view sql) const;

  // As above under a caller token: when the token has already tripped
  // the explanation still renders, with the rejection reason recorded
  // in QueryExplanation::governor_rejection (a deadline-rejected plan
  // explains itself).
  Result<QueryExplanation> ExplainQuery(
      std::string_view sql, const CancellationToken& cancel) const;

  // Overload-protection counters (admission window, shed/cancelled/
  // deadline counts, apply-latency EWMA). Prefer Report().overload.
  OverloadStats overload_stats() const { return Report().overload; }

  // The currently published snapshot (never null while serving is
  // enabled; null when disabled). Holding the pointer pins the
  // snapshot's tables — they stay valid and consistent regardless of
  // later batches.
  std::shared_ptr<const WarehouseSnapshot> CurrentSnapshot() const {
    return snapshots_ != nullptr ? snapshots_->Current() : nullptr;
  }

  // Result-cache counters (zeroes when serving or caching is off).
  // Prefer Report().cache; this getter forwards to it.
  ResultCache::Stats QueryCacheStats() const { return Report().cache; }

  // --- Adaptive roll-up lattice (serve/lattice.h) ---------------------
  // All entry points need the lattice enabled
  // (lattice_budget_bytes > 0 with serving on); they return
  // FailedPrecondition otherwise (the const accessors return empties).

  // Manually promotes a coarser grouping of `view` — `group_outputs`
  // names a strict subset of the view's group-by output columns — into
  // a maintained mini-view, and publishes a snapshot carrying it.
  Status LatticePromote(const std::string& view,
                        const std::vector<std::string>& group_outputs);
  // Drops a promoted node (by node key, "<view>@<g1,g2,…>") and
  // publishes a snapshot without it; its cached answers are
  // invalidated.
  Status LatticeDemote(const std::string& node_key);

  std::vector<LatticeNodeInfo> LatticeNodes() const;
  // Prefer Report().lattice; this getter forwards to it.
  LatticeStats lattice_stats() const;
  // Human-readable lattice inventory (nodes, candidates, budget).
  std::string LatticeReport() const;

  const SelfMaintenanceEngine& engine(const std::string& view_name) const;
  // Mutable engine access, for tests that tamper with maintained state
  // to exercise the scrubber. Aborts when the view is not registered.
  SelfMaintenanceEngine& mutable_engine(const std::string& view_name);

  // Combined current-detail footprint across all views (paper model /
  // honest accounting). Auxiliary views are per-summary (no sharing),
  // matching the paper's framework.
  uint64_t TotalDetailPaperSizeBytes() const;
  uint64_t TotalDetailActualSizeBytes() const;

  // Every introspection surface, composed: maintenance counters
  // (including shared-plan reuse), ingestion, result cache, lattice,
  // recovery, replication state, and the per-view auxiliary inventory.
  // Render with WarehouseReport::ToString().
  WarehouseReport Report() const;

 private:
  // The full ingestion pipeline: resolve the idempotency key, detect
  // duplicates, pass admission control (duplicates never reach it),
  // validate, apply with retries, record the key or quarantine the
  // batch. A null `cancel` never cancels.
  Status IngestBatch(const std::map<std::string, Delta>& changes,
                     const std::string& client_key,
                     const CancellationToken* cancel);

  // Logs the batch (when durable), then applies it atomically; both
  // the WAL append and the engine apply retry transient failures up to
  // the retry budget. A token that trips after the WAL append un-logs
  // the record (AbortLast) and releases the sequence, so a cancelled
  // batch leaves no durable trace.
  Status ApplyLogged(const std::map<std::string, Delta>& changes,
                     const std::string& key,
                     const CancellationToken* cancel);

  // The atomic all-or-nothing application. Serial mode snapshots each
  // affected engine immediately before its apply; parallel mode
  // snapshots every affected engine up front (engines are untouched
  // between batch start and their own apply, so the snapshots are the
  // same), then applies them concurrently — the first failure in
  // registration order cancels engines that have not started and rolls
  // back the ones that have. Both modes restore every touched engine on
  // failure and return the same error the serial warehouse would.
  //
  // With share_delta_joins on and ≥ 2 affected engines, a fresh
  // per-attempt SharedJoinCache is handed to every engine so sibling
  // views reuse each other's root-delta fragments and delta joins; its
  // counters fold into shared_stats_ only when the attempt commits
  // (a rolled-back attempt leaves no trace, matching engine rollback).
  Status ApplyToEngines(const std::map<std::string, Delta>& changes,
                        bool transaction,
                        const CancellationToken* cancel = nullptr);

  // The lineage token AddView stamps on a freshly created engine: a
  // content hash of its materialized auxiliary views and augmented
  // summary combined with the registration sequence (never 0; 0 is
  // reserved for "unknown", which disables sharing).
  static uint64_t ComputeLineage(const SelfMaintenanceEngine& engine,
                                 uint64_t sequence);

  // The per-view lattice diff-sharing classes for PublishSnapshot:
  // structural view signature + lineage for every engine eligible to
  // share (nullopt when sharing is off or fewer than two views exist).
  std::optional<std::map<std::string, std::string>> LatticeDiffKeys() const;

  // Folds the schemas, keys, and integrity metadata of the tables `def`
  // references into schema_catalog_ (rowless — recovery re-derives the
  // purely structural Algorithm 3.2 output from it), and seeds the key
  // ledger from the source's current rows.
  Status MergeSchemas(const Catalog& source, const GpsjViewDef& def);

  // Remembers an accepted idempotency key in the FIFO window, tagged
  // with the sequence its batch committed under (0 = unknown, for keys
  // restored from pre-sequence checkpoints).
  void RecordKey(const std::string& key, uint64_t sequence);
  // True when `key` matches a remembered accepted batch.
  bool IsDuplicate(const std::string& key) const {
    return !key.empty() && recent_key_set_.count(key) > 0;
  }
  // Sleeps the backoff delay before retry attempt `attempt` (1-based).
  void BackoffSleep(int attempt);
  // Appends a refused batch to the quarantine log (durable only;
  // best-effort — quarantine I/O failures never mask the refusal).
  void QuarantineBatch(const Status& cause, const std::string& key,
                       const std::map<std::string, Delta>& changes);
  // All integrity problems of one engine (empty = clean).
  std::vector<std::string> CheckEngineInvariants(
      const SelfMaintenanceEngine& engine) const;

  // Publishes a fresh snapshot after a committed change. Copy-on-write:
  // views not in `touched` share their rendered state with the previous
  // snapshot; touched views are re-rendered from their engines. Also
  // invalidates cached query results that depend on a touched view.
  // `schema_changed` additionally refreshes the snapshot's catalog.
  // No-op when serving is disabled; best-effort (a render failure keeps
  // the previous state for that view rather than failing the commit).
  void PublishSnapshot(const std::set<std::string>& touched,
                       bool schema_changed);

  // Keyed by view name; unique_ptr keeps engine addresses stable.
  std::map<std::string, std::unique_ptr<SelfMaintenanceEngine>> engines_;
  std::vector<std::string> registration_order_;
  WarehouseOptions options_;
  // Non-null iff options_.parallelism > 1 (shared_ptr so the warehouse
  // stays movable with ThreadPool forward-declared).
  std::shared_ptr<ThreadPool> view_pool_;

  // Serving state; both non-null iff options_.serve_snapshots.
  // (shared_ptr keeps the warehouse movable; readers hold their own
  // references to published snapshots, so moves never race them.)
  std::shared_ptr<SnapshotManager> snapshots_;
  std::shared_ptr<ResultCache> result_cache_;
  // Non-null iff serving is on and lattice_budget_bytes > 0. Mutated
  // only on the commit path (inside PublishSnapshot) and by the manual
  // promote/demote calls — never by a rolled-back batch, so lattice
  // state cannot drift from the engines it derives from.
  std::shared_ptr<RollupLattice> lattice_;

  // Durability state; dir_ empty ⇔ in-memory warehouse (wal_ null).
  std::string dir_;
  std::unique_ptr<WriteAheadLog> wal_;
  // Atomic so transport threads (metrics scrapes, feed catch-up
  // watermarks) can read it while the serialized ingest path advances
  // it under the commit lock. The wrapper keeps Warehouse movable:
  // Open() returns by value before any reader thread exists.
  struct AtomicSequence {
    std::atomic<uint64_t> value{0};
    AtomicSequence() = default;
    AtomicSequence(const AtomicSequence& other)
        : value(other.value.load(std::memory_order_acquire)) {}
    AtomicSequence& operator=(const AtomicSequence& other) {
      value.store(other.value.load(std::memory_order_acquire),
                  std::memory_order_release);
      return *this;
    }
    AtomicSequence& operator=(uint64_t next) {
      value.store(next, std::memory_order_release);
      return *this;
    }
    operator uint64_t() const {
      return value.load(std::memory_order_acquire);
    }
    uint64_t operator++() {
      return value.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    uint64_t operator--() {
      return value.fetch_sub(1, std::memory_order_acq_rel) - 1;
    }
  };
  AtomicSequence sequence_;
  uint64_t checkpoint_epoch_ = 0;
  // Replication fence: the highest leader epoch this warehouse has
  // written, replicated, or recovered. Stamped into WAL frames and
  // checkpoint manifests once > 0.
  uint64_t leader_epoch_ = 0;
  RecoveryStats recovery_;
  // Schemas/keys/metadata of every table any registered view references
  // (no rows); persisted in checkpoints and used to re-derive engines.
  Catalog schema_catalog_;

  // Ingestion-hardening state. The ledger mirrors each tracked table's
  // live key set (seeded at registration, folded on every accepted
  // batch); the FIFO window remembers accepted idempotency keys along
  // with the sequence each batch committed under (what a duplicate
  // resend is acked with). Both persist through checkpoints
  // (WarehouseCheckpoint::ingest_state) and are rebuilt by WAL replay
  // for the tail.
  KeyLedger ledger_;
  std::deque<std::pair<std::string, uint64_t>> recent_keys_;
  std::unordered_map<std::string, uint64_t> recent_key_set_;
  IngestStats ingest_stats_;
  // Shared-plan totals across every committed batch (per-batch caches
  // fold in here on success; see ApplyToEngines).
  SharedJoinStats shared_stats_;
  std::unique_ptr<QuarantineLog> quarantine_;
  std::set<std::string> degraded_;
  // Overload protection. The controller is always constructed (it owns
  // the degradation counters even when shedding is off); shared_ptr so
  // the const Query() path can bump atomics and the warehouse stays
  // movable. The root budget has no limit of its own — it aggregates
  // use and peak across per-query children.
  std::shared_ptr<OverloadController> overload_;
  std::shared_ptr<MemoryBudget> query_budget_root_;
  // Fired at the end of every PublishSnapshot (writer thread).
  CommitListener commit_listener_;
  Rng retry_rng_{0};  // Re-seeded from options in the constructor.
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_WAREHOUSE_H_
