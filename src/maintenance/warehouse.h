// A multi-view warehouse: many summary tables maintained over the same
// data sources (the setting of the paper's introduction, and of Mumick
// et al. [13] which it cites). The warehouse derives the minimal
// auxiliary views for every registered summary, routes each incoming
// change batch to the engines whose views reference the changed table,
// and reports the combined current-detail footprint.
//
// Views can be registered from SQL text (ParseGpsjView) or from
// prebuilt definitions.
//
// Change batches apply atomically across every affected view: either
// all engines fold the batch in, or — on any engine failure — every
// already-applied engine is rolled back and the warehouse is left
// bit-identical to its pre-batch state. A rejected batch is therefore
// recoverable in place; no rebuild from the source is ever needed.
//
// Maintenance parallelism has two independent levels, both configured
// through WarehouseOptions: `parallelism` fans one change batch out
// across the affected views (engines maintain disjoint state, so they
// apply concurrently), and `engine.num_threads` shards the work within
// each view. Every combination is bit-identical to the serial
// warehouse — including rollback on a concurrent engine failure, where
// the first failure in view-registration order is reported.
//
// A warehouse constructed with Open(dir) is additionally durable: each
// batch is appended to a write-ahead log before it touches any engine,
// Checkpoint() persists the complete maintenance state (auxiliary
// views, augmented summaries, view definitions, schema catalog), and a
// later Open(dir) recovers from the last checkpoint plus WAL replay —
// tolerating a crash at any point, including mid-append (a torn final
// WAL record is discarded).

#ifndef MINDETAIL_MAINTENANCE_WAREHOUSE_H_
#define MINDETAIL_MAINTENANCE_WAREHOUSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gpsj/parser.h"
#include "maintenance/engine.h"
#include "maintenance/wal.h"

namespace mindetail {

// Every warehouse-level knob in one place: per-view engine defaults,
// cross-view parallelism, and durability. The With* setters form a
// fluent builder:
//
//   Warehouse wh(WarehouseOptions{}.WithParallelism(4).WithEngineThreads(2));
struct WarehouseOptions {
  // Defaults for engines registered by AddView/AddViewSql calls that
  // pass no per-view EngineOptions.
  EngineOptions engine;
  // Number of views maintained concurrently per change batch. 1
  // (default) applies engines one after another on the calling thread;
  // N > 1 submits the affected engines to a shared pool of N threads.
  // Either way the outcome — including rollback on failure — is
  // bit-identical to the serial warehouse.
  int parallelism = 1;
  // fsync the WAL on every Append (durable warehouses only). Disable
  // only for benchmarks that measure the cost of durability itself.
  bool sync_wal = true;

  WarehouseOptions& WithEngineDefaults(EngineOptions options) {
    engine = std::move(options);
    return *this;
  }
  WarehouseOptions& WithEngineThreads(int num_threads) {
    engine.num_threads = num_threads;
    return *this;
  }
  WarehouseOptions& WithParallelism(int num_views) {
    parallelism = num_views;
    return *this;
  }
  WarehouseOptions& WithSyncWal(bool sync) {
    sync_wal = sync;
    return *this;
  }
};

// What recovery found, for tests and the CLI.
struct RecoveryStats {
  uint64_t checkpoint_sequence = 0;  // Folded into the loaded checkpoint.
  uint64_t replayed_batches = 0;     // WAL records applied on Open.
  uint64_t rejected_batches = 0;     // WAL records engines rejected.
};

class Warehouse {
 public:
  // An in-memory (non-durable) warehouse.
  explicit Warehouse(WarehouseOptions options = WarehouseOptions{});

  // Opens a durable warehouse rooted at `dir` (created if absent):
  // loads the CURRENT checkpoint if any, replays the WAL tail, and
  // arranges for every subsequent batch to be logged before it is
  // applied.
  static Result<Warehouse> Open(
      const std::string& dir, WarehouseOptions options = WarehouseOptions{});

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;
  Warehouse(Warehouse&&) = default;
  Warehouse& operator=(Warehouse&&) = default;

  const WarehouseOptions& options() const { return options_; }
  // Replaces the options wholesale; `engine` affects views registered
  // afterwards, `parallelism` re-sizes the shared view pool, `sync_wal`
  // applies from the next Open (the running WAL keeps its mode).
  void set_options(WarehouseOptions options);

  // Registers a summary view: runs Algorithm 3.2 against `source` and
  // materializes its auxiliary views and summary. The engine uses
  // `options` when given, otherwise this warehouse's engine defaults.
  // On a durable warehouse this also writes a fresh checkpoint — view
  // registrations are not WAL events, so they must be durable
  // immediately.
  Status AddView(const Catalog& source, const GpsjViewDef& def,
                 std::optional<EngineOptions> options = std::nullopt);

  // Convenience: parse a CREATE VIEW statement and register it.
  Status AddViewSql(const Catalog& source, std::string_view sql,
                    std::optional<EngineOptions> options = std::nullopt);

  Status RemoveView(const std::string& view_name);

  bool HasView(const std::string& view_name) const;
  std::vector<std::string> ViewNames() const;

  // Propagates a change batch against base table `table` to every
  // registered view that references it. A thin wrapper over
  // ApplyTransaction({{table, delta}}) — one table is simply the
  // single-entry transaction, with the same logging, atomicity, and
  // rollback behavior.
  Status Apply(const std::string& table, const Delta& delta);

  // Applies a multi-table change set to every view referencing any of
  // the changed tables; each engine orders the pieces RI-consistently
  // (see SelfMaintenanceEngine::ApplyTransaction). Tables unknown to a
  // given view are skipped for that view. The batch applies atomically:
  // if any engine rejects it (e.g. an inconsistent delta), every engine
  // that already applied it is rolled back and the whole warehouse is
  // left bit-identical to its pre-batch state. On a durable warehouse
  // the batch is WAL-logged (and fsync'd) before any engine sees it.
  // With options().parallelism > 1 the affected engines apply
  // concurrently; the outcome is identical.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes);

  // Persists the complete maintenance state under the warehouse
  // directory (atomic rename; the previous checkpoint stays valid until
  // the new one is complete) and truncates the WAL. Fails on an
  // in-memory warehouse.
  Status Checkpoint();

  // True when this warehouse was constructed by Open() and logs/
  // checkpoints under a directory.
  bool durable() const { return !dir_.empty(); }
  const std::string& directory() const { return dir_; }

  // Sequence number of the last batch accepted into the WAL (or simply
  // counted, when in-memory). Rejected batches consume a sequence
  // number too: their WAL record exists and is skipped on replay.
  uint64_t last_sequence() const { return sequence_; }

  // What Open() found (zeroes for an in-memory warehouse).
  const RecoveryStats& recovery_stats() const { return recovery_; }

  // Human-readable durability state: directory, sequences, WAL size.
  std::string DurabilityReport() const;

  // Current contents of a registered view.
  Result<Table> View(const std::string& view_name) const;

  const SelfMaintenanceEngine& engine(const std::string& view_name) const;

  // Combined current-detail footprint across all views (paper model /
  // honest accounting). Auxiliary views are per-summary (no sharing),
  // matching the paper's framework.
  uint64_t TotalDetailPaperSizeBytes() const;
  uint64_t TotalDetailActualSizeBytes() const;

  // Human-readable inventory: per view, its auxiliary views (or their
  // elimination) and sizes.
  std::string Report() const;

 private:
  // Logs the batch (when durable), then applies it atomically.
  Status ApplyLogged(const std::map<std::string, Delta>& changes);

  // The atomic all-or-nothing application. Serial mode snapshots each
  // affected engine immediately before its apply; parallel mode
  // snapshots every affected engine up front (engines are untouched
  // between batch start and their own apply, so the snapshots are the
  // same), then applies them concurrently — the first failure in
  // registration order cancels engines that have not started and rolls
  // back the ones that have. Both modes restore every touched engine on
  // failure and return the same error the serial warehouse would.
  Status ApplyToEngines(const std::map<std::string, Delta>& changes,
                        bool transaction);

  // Folds the schemas, keys, and integrity metadata of the tables `def`
  // references into schema_catalog_ (rowless — recovery re-derives the
  // purely structural Algorithm 3.2 output from it).
  Status MergeSchemas(const Catalog& source, const GpsjViewDef& def);

  // Keyed by view name; unique_ptr keeps engine addresses stable.
  std::map<std::string, std::unique_ptr<SelfMaintenanceEngine>> engines_;
  std::vector<std::string> registration_order_;
  WarehouseOptions options_;
  // Non-null iff options_.parallelism > 1 (shared_ptr so the warehouse
  // stays movable with ThreadPool forward-declared).
  std::shared_ptr<ThreadPool> view_pool_;

  // Durability state; dir_ empty ⇔ in-memory warehouse (wal_ null).
  std::string dir_;
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t sequence_ = 0;
  uint64_t checkpoint_epoch_ = 0;
  RecoveryStats recovery_;
  // Schemas/keys/metadata of every table any registered view references
  // (no rows); persisted in checkpoints and used to re-derive engines.
  Catalog schema_catalog_;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_WAREHOUSE_H_
