// A multi-view warehouse: many summary tables maintained over the same
// data sources (the setting of the paper's introduction, and of Mumick
// et al. [13] which it cites). The warehouse derives the minimal
// auxiliary views for every registered summary, routes each incoming
// change batch to the engines whose views reference the changed table,
// and reports the combined current-detail footprint.
//
// Views can be registered from SQL text (ParseGpsjView) or from
// prebuilt definitions.

#ifndef MINDETAIL_MAINTENANCE_WAREHOUSE_H_
#define MINDETAIL_MAINTENANCE_WAREHOUSE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gpsj/parser.h"
#include "maintenance/engine.h"

namespace mindetail {

class Warehouse {
 public:
  // `source` is read at registration time only (initial loads); the
  // warehouse holds no reference to it afterwards.
  Warehouse() = default;

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;
  Warehouse(Warehouse&&) = default;
  Warehouse& operator=(Warehouse&&) = default;

  // Engine options applied by the overloads below that take none;
  // affects views registered afterwards (e.g. set num_threads before
  // AddView to get parallel maintenance for every subsequent view).
  void set_default_options(EngineOptions options) {
    default_options_ = std::move(options);
  }
  const EngineOptions& default_options() const { return default_options_; }

  // Registers a summary view: runs Algorithm 3.2 against `source` and
  // materializes its auxiliary views and summary.
  Status AddView(const Catalog& source, const GpsjViewDef& def,
                 EngineOptions options);
  Status AddView(const Catalog& source, const GpsjViewDef& def);

  // Convenience: parse a CREATE VIEW statement and register it.
  Status AddViewSql(const Catalog& source, std::string_view sql,
                    EngineOptions options);
  Status AddViewSql(const Catalog& source, std::string_view sql);

  Status RemoveView(const std::string& view_name);

  bool HasView(const std::string& view_name) const;
  std::vector<std::string> ViewNames() const;

  // Propagates a change batch against base table `table` to every
  // registered view that references it. Views that do not reference the
  // table ignore the batch. Stops at the first failing engine (earlier
  // engines in registration order have already applied the batch; a
  // failure indicates an inconsistent delta, after which the warehouse
  // should be rebuilt from the source).
  Status Apply(const std::string& table, const Delta& delta);

  // Applies a multi-table change set to every view referencing any of
  // the changed tables; each engine orders the pieces RI-consistently
  // (see SelfMaintenanceEngine::ApplyTransaction). Tables unknown to a
  // given view are skipped for that view.
  Status ApplyTransaction(const std::map<std::string, Delta>& changes);

  // Current contents of a registered view.
  Result<Table> View(const std::string& view_name) const;

  const SelfMaintenanceEngine& engine(const std::string& view_name) const;

  // Combined current-detail footprint across all views (paper model /
  // honest accounting). Auxiliary views are per-summary (no sharing),
  // matching the paper's framework.
  uint64_t TotalDetailPaperSizeBytes() const;
  uint64_t TotalDetailActualSizeBytes() const;

  // Human-readable inventory: per view, its auxiliary views (or their
  // elimination) and sizes.
  std::string Report() const;

 private:
  // Keyed by view name; unique_ptr keeps engine addresses stable.
  std::map<std::string, std::unique_ptr<SelfMaintenanceEngine>> engines_;
  std::vector<std::string> registration_order_;
  EngineOptions default_options_;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_WAREHOUSE_H_
