#include "maintenance/quarantine.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "io/log_format.h"

namespace mindetail {
namespace {

constexpr uint32_t kMagic = 0x4C51444D;  // "MDQL"

std::string EncodeEntry(const QuarantineLog::Entry& entry) {
  std::string payload;
  logfmt::PutU64(&payload, entry.id);
  logfmt::PutU8(&payload, static_cast<uint8_t>(entry.code));
  logfmt::PutString(&payload, entry.message);
  logfmt::PutString(&payload, entry.key);
  logfmt::PutChanges(&payload, entry.changes);
  return payload;
}

bool DecodeEntry(const std::string& payload, QuarantineLog::Entry* entry) {
  logfmt::PayloadReader reader(payload.data(), payload.size());
  uint8_t code = 0;
  if (!reader.ReadU64(&entry->id) || !reader.ReadU8(&code) ||
      !reader.ReadString(&entry->message) || !reader.ReadString(&entry->key) ||
      !reader.ReadChanges(&entry->changes)) {
    return false;
  }
  entry->code = static_cast<StatusCode>(code);
  return reader.AtEnd();
}

// Scans `contents`, filling `entries` when non-null; returns the byte
// offset just past the last complete entry.
size_t ScanEntries(const std::string& contents,
                   std::vector<QuarantineLog::Entry>* entries,
                   uint64_t* max_id, uint64_t* num_entries) {
  return logfmt::ScanFrames(
      contents, kMagic, [&](const std::string& payload) {
        QuarantineLog::Entry entry;
        if (!DecodeEntry(payload, &entry)) return false;
        if (max_id != nullptr && entry.id > *max_id) *max_id = entry.id;
        if (num_entries != nullptr) ++*num_entries;
        if (entries != nullptr) entries->push_back(std::move(entry));
        return true;
      });
}

Status WriteFrame(int fd, const std::string& path,
                  const std::string& frame) {
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrCat("quarantine write to '", path,
                                  "' failed: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return InternalError(StrCat("quarantine fsync of '", path,
                                "' failed: ", std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace

QuarantineLog::~QuarantineLog() {
  if (fd_ >= 0) ::close(fd_);
}

QuarantineLog::QuarantineLog(QuarantineLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      options_(other.options_),
      next_id_(other.next_id_),
      num_entries_(other.num_entries_),
      size_bytes_(other.size_bytes_) {
  other.fd_ = -1;
}

QuarantineLog& QuarantineLog::operator=(QuarantineLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    options_ = other.options_;
    next_id_ = other.next_id_;
    num_entries_ = other.num_entries_;
    size_bytes_ = other.size_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<QuarantineLog> QuarantineLog::Open(const std::string& path,
                                          Options options) {
  QuarantineLog log;
  log.path_ = path;
  log.options_ = options;

  std::string contents;
  if (Result<std::string> existing = logfmt::ReadFileContents(path);
      existing.ok()) {
    contents = std::move(*existing);
  }
  uint64_t max_id = 0;
  const size_t good_end =
      ScanEntries(contents, nullptr, &max_id, &log.num_entries_);
  log.next_id_ = max_id + 1;

  log.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (log.fd_ < 0) {
    return InternalError(StrCat("cannot open quarantine log '", path,
                                "': ", std::strerror(errno)));
  }
  if (good_end < contents.size()) {
    if (::ftruncate(log.fd_, static_cast<off_t>(good_end)) != 0) {
      return InternalError(
          StrCat("cannot truncate torn quarantine tail of '", path,
                 "': ", std::strerror(errno)));
    }
  }
  if (::lseek(log.fd_, 0, SEEK_END) < 0) {
    return InternalError(StrCat("cannot seek quarantine log '", path,
                                "': ", std::strerror(errno)));
  }
  log.size_bytes_ = good_end;
  // A pre-existing log may already exceed freshly-lowered caps.
  MD_RETURN_IF_ERROR(log.EnforceCaps(0, 0));
  return log;
}

Result<uint64_t> QuarantineLog::Append(
    StatusCode code, const std::string& message, const std::string& key,
    const std::map<std::string, Delta>& changes) {
  MD_CHECK_GE(fd_, 0);
  if (!key.empty()) {
    MD_ASSIGN_OR_RETURN(std::vector<Entry> existing, Entries());
    for (const Entry& entry : existing) {
      if (entry.key == key) return entry.id;
    }
  }
  Entry entry;
  entry.id = next_id_;
  entry.code = code;
  entry.message = message;
  entry.key = key;
  entry.changes = changes;
  const std::string frame = logfmt::FrameRecord(kMagic, EncodeEntry(entry));
  MD_RETURN_IF_ERROR(EnforceCaps(1, frame.size()));
  Status written = WriteFrame(fd_, path_, frame);
  if (!written.ok()) {
    // Rewind a partial frame so the log stays scannable.
    ::ftruncate(fd_, static_cast<off_t>(size_bytes_));
    ::lseek(fd_, static_cast<off_t>(size_bytes_), SEEK_SET);
    return written;
  }
  ++next_id_;
  ++num_entries_;
  size_bytes_ += frame.size();
  return entry.id;
}

Result<std::vector<QuarantineLog::Entry>> QuarantineLog::Entries() const {
  std::vector<Entry> entries;
  Result<std::string> contents = logfmt::ReadFileContents(path_);
  if (!contents.ok()) return entries;  // Missing log = no entries.
  ScanEntries(*contents, &entries, nullptr, nullptr);
  return entries;
}

Status QuarantineLog::Remove(uint64_t id) {
  MD_CHECK_GE(fd_, 0);
  MD_ASSIGN_OR_RETURN(std::vector<Entry> entries, Entries());
  std::vector<Entry> kept;
  bool found = false;
  for (Entry& entry : entries) {
    if (entry.id == id) {
      found = true;
      continue;
    }
    kept.push_back(std::move(entry));
  }
  if (!found) {
    return NotFoundError(
        StrCat("quarantine has no entry with id ", id));
  }
  return RewriteAll(kept);
}

Status QuarantineLog::EnforceCaps(uint64_t incoming_entries,
                                  uint64_t incoming_bytes) {
  const bool over_entries =
      options_.max_entries > 0 &&
      num_entries_ + incoming_entries > options_.max_entries;
  const bool over_bytes =
      options_.max_bytes > 0 &&
      size_bytes_ + incoming_bytes > options_.max_bytes;
  if (!over_entries && !over_bytes) return Status::Ok();

  MD_ASSIGN_OR_RETURN(std::vector<Entry> entries, Entries());
  // Drop oldest-first until the incoming entry fits under both caps.
  // The incoming entry itself is never dropped, so a single oversize
  // batch still quarantines (see Options).
  size_t first_kept = 0;
  std::vector<uint64_t> frame_bytes;
  frame_bytes.reserve(entries.size());
  uint64_t kept_bytes = 0;
  for (const Entry& entry : entries) {
    frame_bytes.push_back(
        logfmt::FrameRecord(kMagic, EncodeEntry(entry)).size());
    kept_bytes += frame_bytes.back();
  }
  while (first_kept < entries.size() &&
         ((options_.max_entries > 0 &&
           entries.size() - first_kept + incoming_entries >
               options_.max_entries) ||
          (options_.max_bytes > 0 &&
           kept_bytes + incoming_bytes > options_.max_bytes))) {
    kept_bytes -= frame_bytes[first_kept];
    ++first_kept;
  }
  // At open (no incoming entry) the newest existing entry plays the
  // "never dropped" role: the caps bound growth, they never empty the
  // log of its freshest evidence.
  if (incoming_entries == 0 && !entries.empty() &&
      first_kept == entries.size()) {
    first_kept = entries.size() - 1;
  }
  if (first_kept == 0) return Status::Ok();
  return RewriteAll(std::vector<Entry>(
      std::make_move_iterator(entries.begin() + first_kept),
      std::make_move_iterator(entries.end())));
}

Status QuarantineLog::RewriteAll(const std::vector<Entry>& entries) {
  std::string rewritten;
  for (const Entry& entry : entries) {
    rewritten += logfmt::FrameRecord(kMagic, EncodeEntry(entry));
  }

  // Atomic rewrite: temp file + fsync + rename, then swap the fd.
  const std::string tmp = StrCat(path_, ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return InternalError(StrCat("cannot write '", tmp, "'"));
    }
    out << rewritten;
    if (!out.good()) {
      return InternalError(StrCat("write to '", tmp, "' failed"));
    }
  }
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY);
  if (tmp_fd < 0) {
    return InternalError(StrCat("cannot reopen '", tmp,
                                "': ", std::strerror(errno)));
  }
  if (::fsync(tmp_fd) != 0) {
    ::close(tmp_fd);
    return InternalError(StrCat("fsync of '", tmp,
                                "' failed: ", std::strerror(errno)));
  }
  ::close(tmp_fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    return InternalError(
        StrCat("rename of '", tmp, "' failed: ", ec.message()));
  }
  const int fd = ::open(path_.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return InternalError(StrCat("cannot reopen quarantine log '", path_,
                                "': ", std::strerror(errno)));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return InternalError(StrCat("cannot seek quarantine log '", path_,
                                "': ", std::strerror(errno)));
  }
  ::close(fd_);
  fd_ = fd;
  num_entries_ = entries.size();
  size_bytes_ = rewritten.size();
  return Status::Ok();
}

}  // namespace mindetail
