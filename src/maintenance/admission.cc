#include "maintenance/admission.h"

#include <algorithm>

#include "common/strings.h"

namespace mindetail {

void OverloadController::Permit::Release() {
  if (controller_ == nullptr) return;
  controller_->Finish(start_nanos_);
  controller_ = nullptr;
}

OverloadController::OverloadController(Options options)
    : options_(std::move(options)) {}

int64_t OverloadController::NowNanos() const {
  return options_.clock ? options_.clock() : MonotonicNowNanos();
}

int OverloadController::RetryAfterMs(int consecutive_sheds) const {
  int64_t delay = options_.base_delay_ms;
  for (int i = 1; i < consecutive_sheds && delay < options_.max_delay_ms;
       ++i) {
    delay *= 2;
  }
  return static_cast<int>(
      std::min<int64_t>(delay, options_.max_delay_ms));
}

Result<OverloadController::Permit> OverloadController::Admit(
    uint64_t batch_rows) {
  if (options_.max_inflight_batches > 0) {
    const int inflight = inflight_.load(std::memory_order_relaxed);
    const bool heavy = batch_rows >= options_.heavy_batch_rows;
    const double latency_ms =
        latency_ewma_nanos_.load(std::memory_order_relaxed) / 1e6;
    const bool latency_pressure =
        options_.soft_apply_latency_ms > 0 &&
        latency_ms > options_.soft_apply_latency_ms;
    const bool window_full = inflight >= options_.max_inflight_batches;
    // Heavy batches refuse first: once the window is half occupied, or
    // whenever observed apply latency is over the soft target.
    const bool shed_heavy =
        heavy && (latency_pressure ||
                  2 * inflight >= options_.max_inflight_batches);
    if (window_full || shed_heavy) {
      const int sheds =
          consecutive_sheds_.fetch_add(1, std::memory_order_relaxed) + 1;
      const int retry_after = RetryAfterMs(sheds);
      last_retry_after_ms_.store(retry_after, std::memory_order_relaxed);
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (!window_full) {
        shed_heavy_.fetch_add(1, std::memory_order_relaxed);
      }
      return UnavailableError(StrCat(
          "overloaded: ", inflight, " of ", options_.max_inflight_batches,
          " batches in flight",
          window_full ? "" : " (heavy batch shed under pressure)",
          "; retry after ", retry_after, " ms"));
    }
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  consecutive_sheds_.store(0, std::memory_order_relaxed);
  return Permit(this, NowNanos());
}

void OverloadController::Finish(int64_t start_nanos) {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  const int64_t elapsed = std::max<int64_t>(0, NowNanos() - start_nanos);
  int64_t prev = latency_ewma_nanos_.load(std::memory_order_relaxed);
  while (true) {
    const int64_t next =
        prev == 0 ? elapsed
                  : static_cast<int64_t>(options_.latency_alpha * elapsed +
                                         (1.0 - options_.latency_alpha) *
                                             prev);
    if (latency_ewma_nanos_.compare_exchange_weak(
            prev, next, std::memory_order_relaxed)) {
      break;
    }
  }
}

OverloadStats OverloadController::Snapshot() const {
  OverloadStats stats;
  stats.admission_enabled = options_.max_inflight_batches > 0;
  stats.max_inflight = options_.max_inflight_batches;
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.shed_heavy = shed_heavy_.load(std::memory_order_relaxed);
  stats.apply_latency_ewma_ms =
      latency_ewma_nanos_.load(std::memory_order_relaxed) / 1e6;
  stats.last_retry_after_ms =
      last_retry_after_ms_.load(std::memory_order_relaxed);
  stats.cancelled_batches =
      cancelled_batches_.load(std::memory_order_relaxed);
  stats.cancelled_queries =
      cancelled_queries_.load(std::memory_order_relaxed);
  stats.deadline_queries =
      deadline_queries_.load(std::memory_order_relaxed);
  stats.budget_refusals =
      budget_refusals_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mindetail
