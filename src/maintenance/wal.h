// Write-ahead log of warehouse change batches.
//
// Record framing (little-endian, shared with the quarantine log — see
// io/log_format.h):
//
//   u32 magic 'MDWL'  | u32 payload length | u32 CRC32(payload) | payload
//
// Payload: u64 sequence, u8 kind (1 = single-table Apply, 2 =
// multi-table ApplyTransaction, 3 = transaction carrying an
// idempotency key, 4 = transaction carrying a leader epoch), for
// kind 3 a length-prefixed idempotency key, for kind 4 a u64 leader
// epoch followed by a length-prefixed idempotency key (possibly
// empty), then u32 table count and per table a length-prefixed name
// and the serialized Delta (tuples as u32 arity + tagged values:
// 0 NULL, 1 int64, 2 double, 3 length-prefixed string). Kind 4 is what
// a replicating leader writes: followers use the epoch to fence stale
// leaders after a promotion.
//
// Append() writes one framed record with a single write() and — in sync
// mode — fsyncs before returning, so an acknowledged batch survives a
// crash. Sequences must be strictly increasing (also across Reset());
// a non-increasing sequence is rejected with InvalidArgument before
// anything is written. If an append fails after the write began (I/O
// error, failed fsync, injected fault), the log is truncated back to
// the last acknowledged record, so an unacknowledged frame can never
// replay as if it had succeeded. Open() scans the existing log,
// truncating a torn final record (partial frame or CRC mismatch) so a
// crashed writer never poisons later appends.

#ifndef MINDETAIL_MAINTENANCE_WAL_H_
#define MINDETAIL_MAINTENANCE_WAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/delta.h"

namespace mindetail {

class WriteAheadLog {
 public:
  struct Options {
    bool sync = true;  // fsync after every append.
  };

  static constexpr uint8_t kKindApply = 1;
  static constexpr uint8_t kKindTransaction = 2;
  static constexpr uint8_t kKindKeyedTransaction = 3;
  static constexpr uint8_t kKindEpochTransaction = 4;

  // One decoded log record.
  struct Record {
    uint64_t sequence = 0;
    uint8_t kind = kKindApply;
    // Leader epoch (kKindEpochTransaction only; 0 otherwise).
    uint64_t epoch = 0;
    // Idempotency key (kKindKeyedTransaction / kKindEpochTransaction
    // only; empty otherwise).
    std::string key;
    // Singleton for kKindApply; the full change set for transactions.
    std::map<std::string, Delta> changes;
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;

  // Opens `path` for appending, creating it if absent. Scans existing
  // records and truncates a torn tail.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    Options options);
  static Result<WriteAheadLog> Open(const std::string& path) {
    return Open(path, Options());
  }

  // Decodes every complete record of `path` (ignoring a torn tail).
  // Missing file decodes as an empty log.
  static Result<std::vector<Record>> ReadAll(const std::string& path);

  // Durably appends one change batch. `sequence` must strictly increase
  // over every earlier append — including appends before a Reset() —
  // or the append is rejected with InvalidArgument. `key` is the
  // batch's idempotency key; non-empty keys are recorded in the frame
  // (kind is then forced to kKindKeyedTransaction). A non-zero `epoch`
  // marks the frame with the writing leader's epoch (kind is then
  // forced to kKindEpochTransaction, which carries the key too).
  Status Append(uint64_t sequence, uint8_t kind,
                const std::map<std::string, Delta>& changes,
                const std::string& key = std::string(), uint64_t epoch = 0);

  // Undoes the most recent successful Append — and only that one:
  // `sequence` must equal last_sequence() and nothing may have been
  // appended or Reset() since, or the call is refused with
  // FailedPrecondition. Truncates the frame off the file (fsync'd in
  // sync mode) and restores the pre-append counters, leaving the log
  // byte-identical to the append never happening; the sequence number
  // becomes reusable. Used when a batch is cancelled after logging but
  // before any engine commits, so a cancelled batch leaves no WAL
  // trace.
  Status AbortLast(uint64_t sequence);

  // Truncates the log to empty (after a successful checkpoint). The
  // sequence high-water mark survives: later appends must still advance
  // past every sequence ever acknowledged by this log object.
  Status Reset();

  uint64_t last_sequence() const { return last_sequence_; }
  uint64_t num_records() const { return num_records_; }
  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  Options options_;
  uint64_t last_sequence_ = 0;
  uint64_t num_records_ = 0;
  uint64_t size_bytes_ = 0;
  // Pre-append state of the most recent successful Append, while it is
  // still abortable (nothing appended or Reset since).
  bool abortable_ = false;
  uint64_t prev_last_sequence_ = 0;
  uint64_t prev_size_bytes_ = 0;
};

// Incremental reader for tailing a live WAL file — the leader half of
// log shipping. Each Poll() re-opens the file, reads newly appended
// bytes in bounded chunks, and decodes every complete frame past the
// previous poll; a trailing partial frame (the writer is mid-append)
// is carried across polls and surfaced as `torn_tail`, never as an
// error. Records are deduplicated by sequence, so a log that was
// Reset() (checkpoint truncation) or rewound (abandoned append) is
// handled by restarting the scan at offset zero: sequences strictly
// increase for the lifetime of the warehouse, so already-delivered
// frames are filtered and only genuinely new ones are returned. A
// complete frame that fails its magic/length/CRC checks from a
// from-zero scan is permanent corruption and reported as DataLoss.
class WalStreamReader {
 public:
  struct Options {
    // Read granularity. Small values exercise frame-at-chunk-boundary
    // paths; the default amortizes syscalls.
    size_t chunk_bytes = 64 * 1024;
  };

  struct Batch {
    std::vector<WriteAheadLog::Record> records;
    // The file shrank since the last poll (leader checkpoint Reset or
    // abandoned append) and the scan restarted from offset zero.
    bool restarted = false;
    // A partial trailing frame was left pending for the next poll.
    bool torn_tail = false;
  };

  WalStreamReader(std::string path, Options options);
  explicit WalStreamReader(std::string path)
      : WalStreamReader(std::move(path), Options()) {}

  // Decodes frames appended since the previous poll. A missing file
  // reads as empty (the leader may not have written yet).
  Result<Batch> Poll();

  // Highest sequence ever returned by Poll().
  uint64_t last_sequence() const { return last_sequence_; }

 private:
  // Reads [offset_, EOF) into pending_ and scans it, appending
  // newly-seen records to `batch`. Returns false when the scan hit a
  // complete-but-corrupt frame.
  Result<bool> FetchAndScan(Batch* batch);

  std::string path_;
  Options options_;
  // File offset up to which bytes have been fetched; pending_ holds
  // the fetched-but-not-yet-consumed suffix ending at offset_.
  uint64_t offset_ = 0;
  std::string pending_;
  uint64_t last_sequence_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_WAL_H_
