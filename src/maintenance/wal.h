// Write-ahead log of warehouse change batches.
//
// Record framing (little-endian, shared with the quarantine log — see
// io/log_format.h):
//
//   u32 magic 'MDWL'  | u32 payload length | u32 CRC32(payload) | payload
//
// Payload: u64 sequence, u8 kind (1 = single-table Apply, 2 =
// multi-table ApplyTransaction, 3 = transaction carrying an
// idempotency key), for kind 3 a length-prefixed idempotency key, then
// u32 table count and per table a length-prefixed name and the
// serialized Delta (tuples as u32 arity + tagged values: 0 NULL,
// 1 int64, 2 double, 3 length-prefixed string).
//
// Append() writes one framed record with a single write() and — in sync
// mode — fsyncs before returning, so an acknowledged batch survives a
// crash. Sequences must be strictly increasing (also across Reset());
// a non-increasing sequence is rejected with InvalidArgument before
// anything is written. If an append fails after the write began (I/O
// error, failed fsync, injected fault), the log is truncated back to
// the last acknowledged record, so an unacknowledged frame can never
// replay as if it had succeeded. Open() scans the existing log,
// truncating a torn final record (partial frame or CRC mismatch) so a
// crashed writer never poisons later appends.

#ifndef MINDETAIL_MAINTENANCE_WAL_H_
#define MINDETAIL_MAINTENANCE_WAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/delta.h"

namespace mindetail {

class WriteAheadLog {
 public:
  struct Options {
    bool sync = true;  // fsync after every append.
  };

  static constexpr uint8_t kKindApply = 1;
  static constexpr uint8_t kKindTransaction = 2;
  static constexpr uint8_t kKindKeyedTransaction = 3;

  // One decoded log record.
  struct Record {
    uint64_t sequence = 0;
    uint8_t kind = kKindApply;
    // Idempotency key (kKindKeyedTransaction only; empty otherwise).
    std::string key;
    // Singleton for kKindApply; the full change set for transactions.
    std::map<std::string, Delta> changes;
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;

  // Opens `path` for appending, creating it if absent. Scans existing
  // records and truncates a torn tail.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    Options options);
  static Result<WriteAheadLog> Open(const std::string& path) {
    return Open(path, Options());
  }

  // Decodes every complete record of `path` (ignoring a torn tail).
  // Missing file decodes as an empty log.
  static Result<std::vector<Record>> ReadAll(const std::string& path);

  // Durably appends one change batch. `sequence` must strictly increase
  // over every earlier append — including appends before a Reset() —
  // or the append is rejected with InvalidArgument. `key` is the
  // batch's idempotency key; non-empty keys are recorded in the frame
  // (kind is then forced to kKindKeyedTransaction).
  Status Append(uint64_t sequence, uint8_t kind,
                const std::map<std::string, Delta>& changes,
                const std::string& key = std::string());

  // Truncates the log to empty (after a successful checkpoint). The
  // sequence high-water mark survives: later appends must still advance
  // past every sequence ever acknowledged by this log object.
  Status Reset();

  uint64_t last_sequence() const { return last_sequence_; }
  uint64_t num_records() const { return num_records_; }
  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  Options options_;
  uint64_t last_sequence_ = 0;
  uint64_t num_records_ = 0;
  uint64_t size_bytes_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_WAL_H_
