// Comparator maintainers.
//
// FullReplicationMaintainer is the naive warehouse of the paper's
// Sec. 1.1: it replicates every base table completely and recomputes the
// view. PsjStyleMaintainer is the prior state of the art the paper
// extends (Quass et al. [14]): local and join reductions are applied,
// but the base key is retained and *no* duplicate compression happens —
// one detail row per surviving base tuple.

#ifndef MINDETAIL_MAINTENANCE_BASELINES_H_
#define MINDETAIL_MAINTENANCE_BASELINES_H_

#include <map>
#include <string>

#include "core/derive.h"
#include "gpsj/evaluator.h"
#include "relational/delta.h"

namespace mindetail {

// Stores complete copies of all referenced base tables; the view is
// recomputed from the replicas on demand.
class FullReplicationMaintainer {
 public:
  static Result<FullReplicationMaintainer> Create(const Catalog& source,
                                                  const GpsjViewDef& def);

  Status Apply(const std::string& table, const Delta& delta);
  Result<Table> View() const;

  uint64_t DetailPaperSizeBytes() const;
  uint64_t DetailActualSizeBytes() const;
  const Table& ReplicaContents(const std::string& table) const;

 private:
  GpsjViewDef def_;
  Catalog replica_;
};

// Self-maintainable detail tables in the PSJ style: σ + π (preserved,
// join, and key attributes) + semijoin reductions, no compression.
class PsjStyleMaintainer {
 public:
  static Result<PsjStyleMaintainer> Create(const Catalog& source,
                                           const GpsjViewDef& def);

  Status Apply(const std::string& table, const Delta& delta);
  Result<Table> View() const;

  uint64_t DetailPaperSizeBytes() const;
  uint64_t DetailActualSizeBytes() const;
  const Table& DetailContents(const std::string& table) const;

 private:
  GpsjViewDef def_;
  GpsjViewDef recompute_def_;  // def_ minus local conditions.
  Derivation derivation_;     // For reductions / dependencies only.
  std::map<std::string, std::vector<std::string>> stored_attrs_;
  std::map<std::string, Table> detail_;  // Keyed by the base key.
  std::map<std::string, Schema> base_schemas_;
};

}  // namespace mindetail

#endif  // MINDETAIL_MAINTENANCE_BASELINES_H_
