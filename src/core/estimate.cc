#include "core/estimate.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace mindetail {

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.rows = table.NumRows();
  for (size_t c = 0; c < table.schema().size(); ++c) {
    std::unordered_set<Value, ValueHash, ValueEqual> values;
    values.reserve(table.NumRows());
    for (const Tuple& row : table.rows()) {
      values.insert(row[c]);
    }
    stats.distinct.emplace(table.schema().attribute(c).name,
                           values.size());
  }
  return stats;
}

Result<std::map<std::string, TableStats>> ComputeAllStats(
    const Catalog& catalog, const Derivation& derivation) {
  std::map<std::string, TableStats> out;
  for (const std::string& table : derivation.graph().TopologicalOrder()) {
    MD_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(table));
    if (derivation.view().DerivedAttrsOf(table).empty()) {
      out.emplace(table, ComputeTableStats(*t));
    } else {
      // Materialize the derived columns so their distinct counts are
      // available too.
      MD_ASSIGN_OR_RETURN(
          Table with_derived,
          derivation.view().AppendDerivedColumns(table, *t));
      out.emplace(table, ComputeTableStats(with_derived));
    }
  }
  return out;
}

namespace {

// Textbook selectivity of one comparison against a column with
// `distinct` values.
double ConditionSelectivity(CompareOp op, uint64_t distinct) {
  const double d = std::max<double>(1.0, static_cast<double>(distinct));
  switch (op) {
    case CompareOp::kEq:
      return 1.0 / d;
    case CompareOp::kNe:
      return 1.0 - 1.0 / d;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe:
      return 1.0 / 3.0;
  }
  return 1.0;
}

// Selectivity of a table's local conjunction.
Result<double> LocalSelectivity(const LocalReduction& reduction,
                                const TableStats& stats) {
  double selectivity = 1.0;
  for (const Condition& c : reduction.conditions.conditions()) {
    auto it = stats.distinct.find(c.attr);
    if (it == stats.distinct.end()) {
      return NotFoundError(
          StrCat("no statistics for condition attribute '", c.attr, "'"));
    }
    selectivity *= ConditionSelectivity(c.op, it->second);
  }
  return selectivity;
}

}  // namespace

Result<AuxSizeEstimate> EstimateAuxSize(
    const Derivation& derivation, const std::string& table,
    const std::map<std::string, TableStats>& stats) {
  const AuxViewDef& aux = derivation.aux_for(table);
  auto stats_it = stats.find(table);
  if (stats_it == stats.end()) {
    return NotFoundError(StrCat("no statistics for table '", table, "'"));
  }
  const TableStats& own = stats_it->second;

  AuxSizeEstimate estimate;
  estimate.eliminated = aux.eliminated;
  if (aux.eliminated) return estimate;

  // Local reduction.
  MD_ASSIGN_OR_RETURN(double selectivity,
                      LocalSelectivity(aux.reduction, own));
  double rows = static_cast<double>(own.rows) * selectivity;

  // Join reductions: each dependency keeps the fraction of referenced
  // keys that survive in the dependency's own auxiliary view — and the
  // surviving rows can only reference that many distinct key values, so
  // the from-attribute's effective distinct count shrinks accordingly.
  std::map<std::string, double> adjusted_distinct;
  for (const auto& [attr, distinct] : own.distinct) {
    adjusted_distinct.emplace(attr, static_cast<double>(distinct));
  }
  for (const AuxDependency& dep : aux.dependencies) {
    MD_ASSIGN_OR_RETURN(AuxSizeEstimate dep_estimate,
                        EstimateAuxSize(derivation, dep.to_table, stats));
    auto dep_stats = stats.find(dep.to_table);
    MD_CHECK(dep_stats != stats.end());
    const double base_rows =
        std::max<double>(1.0, static_cast<double>(dep_stats->second.rows));
    rows *= std::min(1.0, dep_estimate.rows / base_rows);
    auto it = adjusted_distinct.find(dep.from_attr);
    if (it != adjusted_distinct.end()) {
      it->second = std::min(it->second, dep_estimate.rows);
    }
  }
  estimate.retained_rows = rows;

  // Duplicate compression: groups ≤ product of grouping-column distinct
  // counts (independence assumption), and never more than the retained
  // rows.
  if (aux.plan.compressed) {
    double groups = 1.0;
    for (const std::string& attr : aux.plan.PlainAttrs()) {
      auto it = adjusted_distinct.find(attr);
      if (it == adjusted_distinct.end()) {
        return NotFoundError(
            StrCat("no statistics for attribute '", attr, "' of '", table,
                   "'"));
      }
      groups *= std::max(1.0, it->second);
      if (groups > rows) break;  // Already capped.
    }
    estimate.rows = std::min(rows, groups);
  } else {
    estimate.rows = rows;
  }
  estimate.paper_bytes = static_cast<uint64_t>(
      estimate.rows * static_cast<double>(aux.plan.columns.size()) * 4.0);
  return estimate;
}

Result<uint64_t> EstimateTotalDetailBytes(
    const Derivation& derivation,
    const std::map<std::string, TableStats>& stats) {
  uint64_t total = 0;
  for (const AuxViewDef& aux : derivation.aux_views()) {
    if (aux.eliminated) continue;
    MD_ASSIGN_OR_RETURN(
        AuxSizeEstimate estimate,
        EstimateAuxSize(derivation, aux.base_table, stats));
    total += estimate.paper_bytes;
  }
  return total;
}

}  // namespace mindetail
