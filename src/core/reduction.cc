#include "core/reduction.h"

#include <set>

#include "common/strings.h"

namespace mindetail {

Result<LocalReduction> ComputeLocalReduction(const GpsjViewDef& def,
                                             const Catalog& catalog,
                                             const std::string& table) {
  if (!def.ReferencesTable(table)) {
    return InvalidArgumentError(
        StrCat("table '", table, "' not referenced by view '", def.name(),
               "'"));
  }
  LocalReduction out;
  out.table = table;
  std::set<std::string> seen;
  for (const std::string& attr : def.PreservedAttrs(table)) {
    if (seen.insert(attr).second) out.attrs.push_back(attr);
  }
  for (const std::string& attr : def.JoinAttrs(table, catalog)) {
    if (seen.insert(attr).second) out.attrs.push_back(attr);
  }
  out.conditions = def.LocalConditions(table);
  return out;
}

}  // namespace mindetail
