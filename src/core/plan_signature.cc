#include "core/plan_signature.h"

#include <sstream>

#include "core/join_graph.h"
#include "core/reconstruct.h"
#include "gpsj/view_def.h"

namespace mindetail {

namespace {

// Derived-attribute formulas of `table`, in definition order. The view
// SQL does not render these, yet they change the bytes of aux columns
// (a derived column is materialized like any real attribute), so they
// must be part of any structural signature.
void AppendDerivedFormulas(const GpsjViewDef& view, const std::string& table,
                           std::ostringstream& out) {
  for (const DerivedAttr& d : view.DerivedAttrsOf(table)) {
    out << "derived{" << d.ToString() << "}";
  }
}

void AppendAuxSignature(const Derivation& derivation, const std::string& table,
                        std::ostringstream& out) {
  const AuxViewDef& aux = derivation.aux_for(table);
  out << "aux{" << aux.ToSqlString() << ";schema=" << aux.schema.ToString()
      << ";";
  AppendDerivedFormulas(derivation.view(), table, out);
  // Recurse over semijoin-reduction dependencies: the aux contents of
  // `table` are filtered by its dependencies' key sets, so a plan that
  // reduces against a differently-shaped neighbour is a different plan
  // even if this table's own definition matches.
  for (const AuxDependency& dep : aux.dependencies) {
    out << "dep[" << dep.from_attr << "->";
    AppendAuxSignature(derivation, dep.to_table, out);
    out << "]";
  }
  out << "}";
}

}  // namespace

std::string AuxStructuralSignature(const Derivation& derivation,
                                   const std::string& table) {
  std::ostringstream out;
  AppendAuxSignature(derivation, table, out);
  return out.str();
}

std::string DeltaJoinSignature(const Derivation& derivation,
                               const std::string& changed_table,
                               const std::set<std::string>& required) {
  const ExtendedJoinGraph& graph = derivation.graph();
  std::ostringstream out;
  out << "delta-join{changed=" << changed_table
      << ";insert_only=" << (derivation.insert_only() ? 1 : 0) << ";tables=[";
  // Required tables in topological order (root first, parents before
  // children) with their canonical join edge from the parent. The topo
  // order normalizes away `required`'s set order and mirrors the order
  // JoinAuxAlongGraph actually joins in.
  for (const std::string& table : graph.TopologicalOrder()) {
    if (required.count(table) == 0) continue;
    const JoinGraphVertex& vertex = graph.vertex(table);
    out << table;
    if (vertex.parent) {
      out << "<-(" << *vertex.parent << "." << vertex.parent_attr << ")";
    }
    out << "@";
    AppendAuxSignature(derivation, table, out);
    out << ";";
  }
  out << "];outputs=[";
  // The projected columns: every output item plus the resolved
  // duplicate-accounting source it reads from the joined table. Two
  // views with the same join tree but different aggregates (or the
  // same aggregate resolved against a compressed vs. plain column)
  // compute different contribution tables.
  for (const OutputItem& item : derivation.view().outputs()) {
    out << item.ToString();
    if (item.kind == OutputItem::Kind::kAggregate && !item.agg.distinct) {
      const AggFn fn = item.agg.fn;
      if (fn == AggFn::kSum || fn == AggFn::kAvg) {
        const SumSource src = ResolveSumSource(derivation, item.agg.input);
        out << ";src=" << src.column << (src.needs_scaling ? "*cnt0" : "");
      } else if (fn == AggFn::kMin || fn == AggFn::kMax) {
        out << ";src=" << ResolveMinMaxSource(derivation, item.agg.input, fn);
      }
    }
    out << "|";
  }
  out << "];cnt=" << RootCountColumn(derivation) << "}";
  return out.str();
}

std::string ViewStructuralSignature(const GpsjViewDef& def) {
  std::string sql = def.ToSqlString();
  // The view name appears only in the "CREATE VIEW <name> AS\n" prefix;
  // strip through the first "AS\n" so identically-defined siblings
  // produce equal signatures.
  static constexpr char kAsMarker[] = "AS\n";
  const size_t as = sql.find(kAsMarker);
  if (as != std::string::npos) {
    sql.erase(0, as + sizeof(kAsMarker) - 1);
  }
  std::ostringstream out;
  out << "view{" << sql << ";";
  for (const std::string& table : def.tables()) {
    out << table << ":";
    AppendDerivedFormulas(def, table, out);
    out << ";";
  }
  out << "}";
  return out.str();
}

}  // namespace mindetail
