// Algorithm 3.2: derivation of the minimal set of auxiliary views that
// makes a GPSJ view self-maintainable.
//
// For each base table Rᵢ the algorithm either eliminates the auxiliary
// view (Sec. 3.3) or produces
//
//   X_Rᵢ = (Π_{A_Rᵢ} σ_S Rᵢ) ⋉ X_Rⱼ₁ ⋉ … ⋉ X_Rⱼₙ
//
// where A_Rᵢ results from local reduction plus smart duplicate
// compression, S is Rᵢ's local condition, and the semijoins are with the
// auxiliary views of the tables Rᵢ depends on (join reduction).

#ifndef MINDETAIL_CORE_DERIVE_H_
#define MINDETAIL_CORE_DERIVE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/compression.h"
#include "core/eliminate.h"
#include "core/join_graph.h"
#include "core/need.h"
#include "core/reduction.h"

namespace mindetail {

// A semijoin reduction applied to an auxiliary view: this view's
// `from_attr` column must match the key of `to_table`'s auxiliary view.
struct AuxDependency {
  std::string to_table;
  std::string from_attr;
};

// The definition of one auxiliary view X_Rᵢ.
struct AuxViewDef {
  std::string name;        // "<base_table>DTL", e.g. "saleDTL".
  std::string base_table;  // Rᵢ.
  // True when Sec. 3.3 elimination applies; the view is then not
  // materialized and the remaining fields describe what it *would* be.
  bool eliminated = false;
  std::string elimination_reason;  // Why it was NOT eliminated, if so.
  LocalReduction reduction;
  std::vector<AuxDependency> dependencies;
  CompressionPlan plan;
  Schema schema;  // Resolved column names and types.
  // The base table's primary-key attribute. When this auxiliary view is
  // a join target, the key survives local reduction as a plain column
  // under this name.
  std::string key_attr;

  // A readable CREATE VIEW rendering in the paper's SQL style.
  std::string ToSqlString() const;
};

struct DeriveOptions {
  // When false, Sec. 3.3 elimination is skipped and every auxiliary
  // view is materialized (ablation support; the result is still
  // self-maintainable, just larger).
  bool allow_elimination = true;
};

// The full result of running Algorithm 3.2 on a view.
class Derivation {
 public:
  // Runs Algorithm 3.2. Fails when the view's join graph is not a
  // single-rooted tree (paper Sec. 3.3 assumption).
  static Result<Derivation> Derive(const GpsjViewDef& def,
                                   const Catalog& catalog,
                                   DeriveOptions options = DeriveOptions{});

  const GpsjViewDef& view() const { return view_; }
  const ExtendedJoinGraph& graph() const { return graph_; }
  const std::map<std::string, std::set<std::string>>& need_sets() const {
    return need_sets_;
  }
  // Aux view definitions in topological order (root first); includes
  // eliminated ones, flagged.
  const std::vector<AuxViewDef>& aux_views() const { return aux_views_; }
  const AuxViewDef& aux_for(const std::string& table) const;
  bool IsEliminated(const std::string& table) const {
    return aux_for(table).eliminated;
  }
  const std::string& root() const { return graph_.root(); }

  // True when every referenced table was append-only at derivation
  // time — the insert-only relaxation (paper Sec. 4) is in effect:
  // MIN/MAX are compressed into the auxiliary views and maintained
  // incrementally.
  bool insert_only() const { return insert_only_; }

  // Human-readable derivation report: graph, Need sets, per-table
  // reductions, compression and elimination decisions.
  std::string ToString() const;

 private:
  GpsjViewDef view_;
  ExtendedJoinGraph graph_;
  std::map<std::string, std::set<std::string>> need_sets_;
  std::vector<AuxViewDef> aux_views_;
  std::map<std::string, size_t> aux_index_;
  bool insert_only_ = false;
};

// Materializes all (non-eliminated) auxiliary views from the base
// tables in `catalog`, leaves-first so semijoin reductions see their
// dependencies. Returns base-table name → materialized auxiliary view.
Result<std::map<std::string, Table>> MaterializeAuxViews(
    const Catalog& catalog, const Derivation& derivation);

// Materializes a single auxiliary view given its (already materialized)
// dependencies. `deps` maps base-table name → that table's auxiliary
// view contents.
Result<Table> MaterializeAuxView(const Catalog& catalog,
                                 const Derivation& derivation,
                                 const std::string& table,
                                 const std::map<std::string, Table>& deps);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_DERIVE_H_
