// Local reductions (paper Sec. 2.2).
//
// Local reduction pushes projections and local selection conditions into
// each base table's auxiliary view: only attributes preserved in V or
// involved in join conditions are stored, and only tuples satisfying the
// table's local conditions. (Unlike PSJ views, keys are *not* implicitly
// required — the generalized projection handles duplicates.)

#ifndef MINDETAIL_CORE_REDUCTION_H_
#define MINDETAIL_CORE_REDUCTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"

namespace mindetail {

// The outcome of local reduction on one base table.
struct LocalReduction {
  std::string table;
  // Attributes retained (preserved-in-V first, then join attributes),
  // deduplicated, in a stable order.
  std::vector<std::string> attrs;
  // The local selection conjunction pushed into the auxiliary view.
  Conjunction conditions;
};

// Computes the local reduction of `table` under `def`.
Result<LocalReduction> ComputeLocalReduction(const GpsjViewDef& def,
                                             const Catalog& catalog,
                                             const std::string& table);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_REDUCTION_H_
