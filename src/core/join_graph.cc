#include "core/join_graph.h"

#include <deque>

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

const char* VertexAnnotationName(VertexAnnotation annotation) {
  switch (annotation) {
    case VertexAnnotation::kNone:
      return "";
    case VertexAnnotation::kGroupBy:
      return "g";
    case VertexAnnotation::kKeyGroupBy:
      return "k";
  }
  return "?";
}

Result<ExtendedJoinGraph> ExtendedJoinGraph::Build(const GpsjViewDef& def,
                                                   const Catalog& catalog) {
  ExtendedJoinGraph graph;
  for (const std::string& table : def.tables()) {
    JoinGraphVertex vertex;
    vertex.table = table;
    if (def.TableKeyInGroupBy(table, catalog)) {
      vertex.annotation = VertexAnnotation::kKeyGroupBy;
    } else if (def.TableHasGroupByAttr(table)) {
      vertex.annotation = VertexAnnotation::kGroupBy;
    }
    graph.vertices_.emplace(table, std::move(vertex));
  }

  for (const JoinEdge& edge : def.joins()) {
    if (edge.from_table == edge.to_table) {
      return FailedPreconditionError(
          StrCat("self-join on '", edge.from_table,
                 "' is outside the supported GPSJ class"));
    }
    JoinGraphVertex& to = graph.vertices_.at(edge.to_table);
    if (to.parent.has_value()) {
      return FailedPreconditionError(StrCat(
          "join graph of '", def.name(), "' is not a tree: '",
          edge.to_table, "' has two incoming edges (from '", *to.parent,
          "' and '", edge.from_table, "')"));
    }
    to.parent = edge.from_table;
    to.parent_attr = edge.from_attr;
    graph.vertices_.at(edge.from_table).children.push_back(edge.to_table);
  }

  // Exactly one root.
  std::vector<std::string> roots;
  for (const std::string& table : def.tables()) {
    if (!graph.vertices_.at(table).parent.has_value()) {
      roots.push_back(table);
    }
  }
  if (roots.size() != 1) {
    return FailedPreconditionError(
        StrCat("join graph of '", def.name(), "' has ", roots.size(),
               " roots; a single-rooted tree is required"));
  }
  graph.root_ = roots.front();

  // Breadth-first order; also detects disconnection (a cycle among
  // non-root vertices would leave them unreached, since every vertex has
  // at most one incoming edge).
  std::deque<std::string> frontier = {graph.root_};
  while (!frontier.empty()) {
    std::string table = frontier.front();
    frontier.pop_front();
    graph.topological_.push_back(table);
    for (const std::string& child : graph.vertices_.at(table).children) {
      frontier.push_back(child);
    }
  }
  if (graph.topological_.size() != graph.vertices_.size()) {
    return FailedPreconditionError(
        StrCat("join graph of '", def.name(),
               "' is disconnected or cyclic (", graph.topological_.size(),
               " of ", graph.vertices_.size(), " tables reachable)"));
  }
  return graph;
}

const JoinGraphVertex& ExtendedJoinGraph::vertex(
    const std::string& table) const {
  auto it = vertices_.find(table);
  MD_CHECK(it != vertices_.end());
  return it->second;
}

std::vector<std::string> ExtendedJoinGraph::Subtree(
    const std::string& table) const {
  std::vector<std::string> out;
  std::deque<std::string> frontier = {table};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    out.push_back(current);
    for (const std::string& child : vertex(current).children) {
      frontier.push_back(child);
    }
  }
  return out;
}

bool ExtendedJoinGraph::DependsOn(const std::string& table_i,
                                  const std::string& table_j,
                                  const Catalog& catalog) const {
  const JoinGraphVertex& vj = vertex(table_j);
  if (!vj.parent.has_value() || *vj.parent != table_i) return false;
  if (!catalog.HasForeignKey(table_i, vj.parent_attr, table_j)) return false;
  return !catalog.HasExposedUpdates(table_j);
}

std::vector<ExtendedJoinGraph::Dependency>
ExtendedJoinGraph::DirectDependencies(const std::string& table,
                                      const Catalog& catalog) const {
  std::vector<Dependency> out;
  for (const std::string& child : vertex(table).children) {
    if (DependsOn(table, child, catalog)) {
      out.push_back(Dependency{child, vertex(child).parent_attr});
    }
  }
  return out;
}

bool ExtendedJoinGraph::TransitivelyDependsOnAll(
    const std::string& table, const Catalog& catalog) const {
  std::set<std::string> reached = {table};
  std::deque<std::string> frontier = {table};
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    for (const Dependency& dep : DirectDependencies(current, catalog)) {
      if (reached.insert(dep.to_table).second) {
        frontier.push_back(dep.to_table);
      }
    }
  }
  return reached.size() == vertices_.size();
}

namespace {

void RenderSubtree(const ExtendedJoinGraph& graph, const std::string& table,
                   const std::string& prefix, std::string* out) {
  const JoinGraphVertex& v = graph.vertex(table);
  const std::vector<std::string>& children = v.children;
  for (size_t i = 0; i < children.size(); ++i) {
    const bool last = i + 1 == children.size();
    const JoinGraphVertex& child = graph.vertex(children[i]);
    const char* annotation = VertexAnnotationName(child.annotation);
    *out += StrCat(prefix, last ? "└── " : "├── ", children[i],
                   annotation[0] == '\0' ? "" : StrCat(" [", annotation, "]"),
                   "\n");
    RenderSubtree(graph, children[i], StrCat(prefix, last ? "    " : "│   "),
                  out);
  }
}

}  // namespace

std::string ExtendedJoinGraph::ToString() const {
  const JoinGraphVertex& r = vertex(root_);
  const char* annotation = VertexAnnotationName(r.annotation);
  std::string out =
      StrCat(root_,
             annotation[0] == '\0' ? "" : StrCat(" [", annotation, "]"),
             "\n");
  RenderSubtree(*this, root_, "", &out);
  return out;
}

}  // namespace mindetail
