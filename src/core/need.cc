#include "core/need.h"

namespace mindetail {

std::set<std::string> Need0(const ExtendedJoinGraph& graph,
                            const std::string& table) {
  std::set<std::string> out;
  const JoinGraphVertex& v = graph.vertex(table);
  // A vertex annotated k stops the traversal: grouping on its key
  // functionally determines all attributes of its subtree, so group-bys
  // below it cannot refine the combined key (paper Sec. 3.3).
  if (v.annotation == VertexAnnotation::kKeyGroupBy) return out;
  for (const std::string& child : v.children) {
    // Enter the child's subtree only if it contains an annotated vertex.
    bool has_annotated = false;
    for (const std::string& t : graph.Subtree(child)) {
      if (graph.vertex(t).annotation != VertexAnnotation::kNone) {
        has_annotated = true;
        break;
      }
    }
    if (!has_annotated) continue;
    out.insert(child);
    std::set<std::string> rest = Need0(graph, child);
    out.insert(rest.begin(), rest.end());
  }
  return out;
}

std::set<std::string> Need(const ExtendedJoinGraph& graph,
                           const std::string& table) {
  const JoinGraphVertex& v = graph.vertex(table);
  if (v.annotation == VertexAnnotation::kKeyGroupBy) return {};
  if (v.parent.has_value()) {
    std::set<std::string> out = Need(graph, *v.parent);
    out.insert(*v.parent);
    return out;
  }
  return Need0(graph, table);  // The root.
}

std::map<std::string, std::set<std::string>> AllNeedSets(
    const ExtendedJoinGraph& graph) {
  std::map<std::string, std::set<std::string>> out;
  for (const std::string& table : graph.TopologicalOrder()) {
    out.emplace(table, Need(graph, table));
  }
  return out;
}

bool IsInAnyOtherNeedSet(
    const std::map<std::string, std::set<std::string>>& need_sets,
    const std::string& table) {
  for (const auto& [other, need] : need_sets) {
    if (other == table) continue;
    if (need.count(table) > 0) return true;
  }
  return false;
}

}  // namespace mindetail
