#include "core/derive.h"

#include <algorithm>

#include "common/strings.h"
#include "relational/ops.h"

namespace mindetail {

std::string AuxViewDef::ToSqlString() const {
  std::vector<std::string> select_items;
  std::vector<std::string> group_items;
  for (const AuxColumn& col : plan.columns) {
    select_items.push_back(col.ToString());
    if (col.kind == AuxColumn::Kind::kPlain && plan.compressed) {
      group_items.push_back(col.output_name);
    }
  }

  std::vector<std::string> where_items;
  for (const Condition& c : reduction.conditions.conditions()) {
    where_items.push_back(c.ToString());
  }
  for (const AuxDependency& dep : dependencies) {
    where_items.push_back(StrCat(dep.from_attr, " IN (SELECT <key> FROM ",
                                 dep.to_table, "DTL)"));
  }

  std::string sql = StrCat("CREATE VIEW ", name, " AS\nSELECT ",
                           Join(select_items, ", "), "\nFROM ", base_table);
  if (!where_items.empty()) {
    sql += StrCat("\nWHERE ", Join(where_items, "\n  AND "));
  }
  if (plan.compressed && !group_items.empty()) {
    sql += StrCat("\nGROUP BY ", Join(group_items, ", "));
  }
  if (eliminated) sql += "\n-- ELIMINATED: not materialized (Sec. 3.3)";
  return sql;
}

Result<Derivation> Derivation::Derive(const GpsjViewDef& def,
                                      const Catalog& catalog,
                                      DeriveOptions options) {
  Derivation out;
  out.view_ = def;
  out.insert_only_ = def.IsInsertOnly(catalog);

  // Step 1: construct the extended join graph.
  MD_ASSIGN_OR_RETURN(out.graph_, ExtendedJoinGraph::Build(def, catalog));

  // Step 2 (per table): compute Need sets, test elimination, otherwise
  // derive X_Rᵢ = (Π σ Rᵢ) ⋉ deps with local reduction and compression.
  out.need_sets_ = AllNeedSets(out.graph_);

  for (const std::string& table : out.graph_.TopologicalOrder()) {
    AuxViewDef aux;
    aux.name = StrCat(table, "DTL");
    aux.base_table = table;

    MD_ASSIGN_OR_RETURN(aux.key_attr, catalog.KeyAttr(table));
    MD_ASSIGN_OR_RETURN(aux.reduction,
                        ComputeLocalReduction(def, catalog, table));
    for (const ExtendedJoinGraph::Dependency& dep :
         out.graph_.DirectDependencies(table, catalog)) {
      aux.dependencies.push_back(AuxDependency{dep.to_table, dep.from_attr});
    }
    MD_ASSIGN_OR_RETURN(
        aux.plan, ComputeCompressionPlan(def, catalog, table, aux.reduction));

    // Resolve the auxiliary schema's types (derived attributes resolve
    // through the view definition).
    std::vector<Attribute> attrs;
    for (const AuxColumn& col : aux.plan.columns) {
      switch (col.kind) {
        case AuxColumn::Kind::kPlain:
        case AuxColumn::Kind::kSum:
        case AuxColumn::Kind::kMin:
        case AuxColumn::Kind::kMax: {
          MD_ASSIGN_OR_RETURN(
              ValueType type,
              def.AttrType(catalog, AttributeRef{table, col.source_attr}));
          attrs.push_back(Attribute{col.output_name, type});
          break;
        }
        case AuxColumn::Kind::kCountStar:
          attrs.push_back(Attribute{col.output_name, ValueType::kInt64});
          break;
      }
    }
    aux.schema = Schema(std::move(attrs));

    EliminationDecision decision = CanEliminateAuxView(
        def, catalog, out.graph_, out.need_sets_, table);
    aux.eliminated = options.allow_elimination && decision.eliminable;
    aux.elimination_reason = decision.reason;

    out.aux_index_.emplace(table, out.aux_views_.size());
    out.aux_views_.push_back(std::move(aux));
  }
  return out;
}

const AuxViewDef& Derivation::aux_for(const std::string& table) const {
  auto it = aux_index_.find(table);
  MD_CHECK(it != aux_index_.end());
  return aux_views_[it->second];
}

std::string Derivation::ToString() const {
  std::string out = StrCat("=== Derivation for view '", view_.name(),
                           "' ===\n\n", view_.ToSqlString(),
                           "\n\nExtended join graph (root = ", root(),
                           "):\n", graph_.ToString(), "\nNeed sets:\n");
  for (const auto& [table, need] : need_sets_) {
    std::vector<std::string> names(need.begin(), need.end());
    out += StrCat("  Need(", table, ") = {", Join(names, ", "), "}\n");
  }
  out += "\nAuxiliary views:\n";
  for (const AuxViewDef& aux : aux_views_) {
    out += StrCat("\n-- ", aux.name, aux.eliminated ? " (ELIMINATED)" : "",
                  "\n", aux.ToSqlString(), "\n");
    if (!aux.eliminated && !aux.elimination_reason.empty()) {
      out += StrCat("-- kept because ", aux.elimination_reason, "\n");
    }
  }
  return out;
}

Result<Table> MaterializeAuxView(const Catalog& catalog,
                                 const Derivation& derivation,
                                 const std::string& table,
                                 const std::map<std::string, Table>& deps) {
  const AuxViewDef& aux = derivation.aux_for(table);
  MD_ASSIGN_OR_RETURN(const Table* base, catalog.GetTable(table));

  // Local reduction: σ, then derived columns, then π (bag projection;
  // duplicates survive until compression).
  MD_ASSIGN_OR_RETURN(Table current, Select(*base, aux.reduction.conditions));
  MD_ASSIGN_OR_RETURN(current, derivation.view().AppendDerivedColumns(
                                   table, std::move(current)));
  MD_ASSIGN_OR_RETURN(current,
                      Project(current, aux.reduction.attrs, false));

  // Join reductions: semijoin with each dependency's auxiliary view.
  for (const AuxDependency& dep : aux.dependencies) {
    auto it = deps.find(dep.to_table);
    if (it == deps.end()) {
      return InvalidArgumentError(
          StrCat("dependency '", dep.to_table,
                 "' not materialized before '", table, "'"));
    }
    MD_ASSIGN_OR_RETURN(std::string dep_key, catalog.KeyAttr(dep.to_table));
    MD_ASSIGN_OR_RETURN(
        current, SemiJoin(current, it->second, dep.from_attr, dep_key));
  }

  // Smart duplicate compression.
  if (aux.plan.compressed) {
    MD_ASSIGN_OR_RETURN(current,
                        GroupAggregate(current, aux.plan.PlainAttrs(),
                                       aux.plan.Aggregates(), aux.name));
    // Scalar aggregation over an empty input produces a cnt0 = 0 row;
    // an auxiliary view stores no such group.
    const int cnt_idx = aux.plan.CountColumnIndex();
    MD_CHECK_GE(cnt_idx, 0);
    Table filtered(aux.name, current.schema());
    filtered.set_allow_null(true);
    for (const Tuple& row : current.rows()) {
      if (row[cnt_idx].AsInt64() > 0) {
        MD_RETURN_IF_ERROR(filtered.Insert(row));
      }
    }
    return filtered;
  }
  Table named(aux.name, current.schema());
  named.set_allow_null(true);
  for (const Tuple& row : current.rows()) {
    MD_RETURN_IF_ERROR(named.Insert(row));
  }
  return named;
}

Result<std::map<std::string, Table>> MaterializeAuxViews(
    const Catalog& catalog, const Derivation& derivation) {
  std::map<std::string, Table> out;
  // Leaves first: reverse topological order guarantees every semijoin
  // dependency is materialized before its dependent.
  std::vector<std::string> order = derivation.graph().TopologicalOrder();
  std::reverse(order.begin(), order.end());
  for (const std::string& table : order) {
    if (derivation.IsEliminated(table)) continue;
    MD_ASSIGN_OR_RETURN(Table aux,
                        MaterializeAuxView(catalog, derivation, table, out));
    out.emplace(table, std::move(aux));
  }
  return out;
}

}  // namespace mindetail
