// Smart duplicate compression (paper Algorithm 3.1).
//
// After local reduction, an auxiliary view is a duplicate-eliminating
// generalized projection. To keep it self-maintainable a COUNT(*) is
// added (unless superfluous, i.e. the base table's key survives the
// projection, in which case the view degenerates to a PSJ view), and
// every attribute used only in CSMAS aggregates is replaced by its
// distributive replacement set (Table 2) — collapsing the potentially
// huge fact detail into one row per group.

#ifndef MINDETAIL_CORE_COMPRESSION_H_
#define MINDETAIL_CORE_COMPRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/reduction.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"
#include "relational/ops.h"

namespace mindetail {

// One column of a compressed auxiliary view.
struct AuxColumn {
  enum class Kind {
    kPlain,      // A base attribute kept verbatim (grouping column).
    kSum,        // SUM(source_attr) over the compressed group.
    kMin,        // MIN(source_attr) — insert-only relaxation (Sec. 4).
    kMax,        // MAX(source_attr) — insert-only relaxation (Sec. 4).
    kCountStar,  // The COUNT(*) duplicate counter (paper's cnt0).
  };

  Kind kind = Kind::kPlain;
  std::string source_attr;  // Base attribute; empty for kCountStar.
  std::string output_name;

  std::string ToString() const;
};

// The compression decision for one auxiliary view.
struct CompressionPlan {
  // True when Algorithm 3.1 applied: plain attributes become grouping
  // columns, CSMAS attributes collapse into SUM columns, and a COUNT(*)
  // is appended. False when the base key survives local reduction and
  // the view degenerates to a plain PSJ projection.
  bool compressed = false;
  std::vector<AuxColumn> columns;

  // The grouping (kPlain) source attributes, in column order.
  std::vector<std::string> PlainAttrs() const;
  // The aggregate columns as physical aggregates over the local-reduced
  // input (kSum and kCountStar columns).
  std::vector<PhysicalAggregate> Aggregates() const;
  // Index of the COUNT(*) column, or -1 when uncompressed.
  int CountColumnIndex() const;
  // Index of the SUM column for `source_attr`, or -1.
  int SumColumnIndex(const std::string& source_attr) const;
  // Index of the MIN/MAX column for `source_attr`, or -1.
  int MinColumnIndex(const std::string& source_attr) const;
  int MaxColumnIndex(const std::string& source_attr) const;
  // Index of the plain column for `source_attr`, or -1.
  int PlainColumnIndex(const std::string& source_attr) const;

  std::string ToString() const;
};

// Runs Algorithm 3.1 for `table` given its local reduction. When the
// view is insert-only (all tables append-only, paper Sec. 4), the
// relaxed classification applies: attributes used only in non-DISTINCT
// MIN/MAX (besides CSMAS) aggregates are compressed into per-group
// MIN/MAX columns instead of staying plain.
Result<CompressionPlan> ComputeCompressionPlan(
    const GpsjViewDef& def, const Catalog& catalog, const std::string& table,
    const LocalReduction& reduction);

// Canonical MIN/MAX replacement column names.
std::string MinColumnName(const std::string& attr_name);
std::string MaxColumnName(const std::string& attr_name);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_COMPRESSION_H_
