// The Need and Need₀ functions (paper Definitions 3 and 4).
//
// Need(Rᵢ, G(V)) is the minimal set of base tables Rᵢ must join with so
// that the unique set of V-tuples associated with any given Rᵢ tuple can
// be identified — required to propagate deletions and protected updates
// of Rᵢ. A table that appears in some other table's Need set cannot have
// its auxiliary view eliminated (paper Sec. 3.3).

#ifndef MINDETAIL_CORE_NEED_H_
#define MINDETAIL_CORE_NEED_H_

#include <map>
#include <set>
#include <string>

#include "core/join_graph.h"

namespace mindetail {

// Definition 3:
//   Need(Rᵢ) = ∅                      if Rᵢ is annotated k,
//   Need(Rᵢ) = {Rⱼ} ∪ Need(Rⱼ)        if Rᵢ is not annotated k and has a
//                                     parent Rⱼ (edge e(Rⱼ, Rᵢ)), i ≠ 0,
//   Need(Rᵢ) = Need₀(R₀)              otherwise (the root, not annotated k).
std::set<std::string> Need(const ExtendedJoinGraph& graph,
                           const std::string& table);

// Definition 4: depth-first traversal collecting the minimal set of
// tables whose group-by attributes form a combined key to V. A child's
// subtree is entered only if it contains a vertex annotated k or g, and
// the traversal stops below any vertex annotated k (grouping on a key
// functionally determines every attribute in that vertex's subtree).
std::set<std::string> Need0(const ExtendedJoinGraph& graph,
                            const std::string& table);

// Need sets of every table in the graph.
std::map<std::string, std::set<std::string>> AllNeedSets(
    const ExtendedJoinGraph& graph);

// True iff `table` appears in the Need set of some *other* table
// (second elimination condition, paper Sec. 3.3).
bool IsInAnyOtherNeedSet(
    const std::map<std::string, std::set<std::string>>& need_sets,
    const std::string& table);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_NEED_H_
