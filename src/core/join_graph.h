// The extended join graph G(V) of a GPSJ view (paper Definition 2).
//
// Vertices are the base tables referenced in V; there is a directed edge
// e(Rᵢ, Rⱼ) when V contains a join condition Rᵢ.b = Rⱼ.a with `a` the key
// of Rⱼ. A vertex is annotated `g` if it contributes group-by attributes
// and `k` if one of those is its own key. The paper (Sec. 3.3) assumes
// the graph is a tree with no self-joins; Build() validates this. The
// table at the root of the tree is the *root table* R₀ (the fact table
// of a star schema).

#ifndef MINDETAIL_CORE_JOIN_GRAPH_H_
#define MINDETAIL_CORE_JOIN_GRAPH_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"

namespace mindetail {

// Vertex annotation per Definition 2. `k` subsumes `g` (a key-annotated
// vertex also has group-by attributes).
enum class VertexAnnotation {
  kNone,
  kGroupBy,     // g
  kKeyGroupBy,  // k
};

const char* VertexAnnotationName(VertexAnnotation annotation);

struct JoinGraphVertex {
  std::string table;
  VertexAnnotation annotation = VertexAnnotation::kNone;
  // The unique incoming edge (absent for the root): parent.parent_attr
  // joins to this vertex's key.
  std::optional<std::string> parent;
  std::string parent_attr;
  // Outgoing edges, in view-definition order.
  std::vector<std::string> children;
};

class ExtendedJoinGraph {
 public:
  // Validates tree shape (single root, at most one incoming edge per
  // vertex, connected, acyclic, no self-joins) and computes annotations.
  static Result<ExtendedJoinGraph> Build(const GpsjViewDef& def,
                                         const Catalog& catalog);

  const std::string& root() const { return root_; }
  const JoinGraphVertex& vertex(const std::string& table) const;
  bool HasVertex(const std::string& table) const {
    return vertices_.count(table) > 0;
  }
  size_t NumVertices() const { return vertices_.size(); }

  // All tables, root first, parents before children.
  const std::vector<std::string>& TopologicalOrder() const {
    return topological_;
  }

  // The subtree rooted at `table`, including `table` itself.
  std::vector<std::string> Subtree(const std::string& table) const;

  // Direct dependence per paper Sec. 2.2: Rᵢ depends on Rⱼ iff V joins
  // Rᵢ.b = Rⱼ.a (a key of Rⱼ), referential integrity is declared from
  // Rᵢ.b to Rⱼ, and Rⱼ has no exposed updates.
  bool DependsOn(const std::string& table_i, const std::string& table_j,
                 const Catalog& catalog) const;

  // The children of `table` it directly depends on, with the joining
  // attribute (Rᵢ.b).
  struct Dependency {
    std::string to_table;
    std::string from_attr;
  };
  std::vector<Dependency> DirectDependencies(const std::string& table,
                                             const Catalog& catalog) const;

  // True iff `table` transitively depends on every other base table in
  // the view (first elimination condition, paper Sec. 3.3).
  bool TransitivelyDependsOnAll(const std::string& table,
                                const Catalog& catalog) const;

  // ASCII rendering of the graph with annotations, e.g.
  //   sale
  //   ├── time [g]
  //   └── product
  std::string ToString() const;

 private:
  std::string root_;
  std::map<std::string, JoinGraphVertex> vertices_;
  std::vector<std::string> topological_;
};

}  // namespace mindetail

#endif  // MINDETAIL_CORE_JOIN_GRAPH_H_
