// Canonical signatures for delta-join subexpressions (multi-query
// optimization for view maintenance, after Mistry/Roy/Ramamritham/
// Sudarshan: factor common maintenance subexpressions so a batch pays
// each join once).
//
// Two sibling engines maintained over the same fact table repeat the
// same per-batch work when — and only when — their delta-join
// subexpressions are *structurally* identical: same changed table,
// same canonical set of join edges from the root, same auxiliary-view
// plans along the path, and same projected columns. These helpers
// serialize exactly that structure into a string key, deliberately
// excluding anything that does not affect the bytes of the computed
// join:
//
//   - the view *name* (identically-defined siblings must share), and
//   - `num_threads` (the engine guarantees bit-identical results at
//     every thread count, so parallelism is not part of the plan).
//
// Options that change the join's shape (`prune_delta_joins` narrows
// the required set; `allow_elimination` changes which aux views are
// materialized) flow in through the derivation / `required` set and so
// are part of the signature by construction.
//
// Equal signatures mean equal join *plans*; whether two engines also
// hold equal aux *contents* (the other half of result equality) is the
// warehouse's lineage check — see SharedJoinCache.

#ifndef MINDETAIL_CORE_PLAN_SIGNATURE_H_
#define MINDETAIL_CORE_PLAN_SIGNATURE_H_

#include <set>
#include <string>

#include "core/derive.h"

namespace mindetail {

// Structural signature of one auxiliary view and (recursively) of
// every auxiliary view it depends on: the aux view's SQL form, its
// materialized schema, the derived-attribute formulas of its base
// table, and its dependencies' signatures. Two tables with equal
// signatures hold byte-identical aux contents whenever they have seen
// the same base-table history.
std::string AuxStructuralSignature(const Derivation& derivation,
                                   const std::string& table);

// Canonical signature of the delta join "fragment of `changed_table`
// ⋈ aux views of `required`": the changed table, the join edges of
// every required table from the root (in topological order), each
// table's structural signature, the view's output list, and the
// resolved duplicate-accounting sources (SUM/MIN-MAX columns, root
// cnt0). `required` must already include `changed_table` and be
// upward-closed (as produced by the engine's apply path).
std::string DeltaJoinSignature(const Derivation& derivation,
                               const std::string& changed_table,
                               const std::set<std::string>& required);

// Structural signature of a whole view definition, excluding its name:
// the SQL text with the "CREATE VIEW <name> AS" prefix stripped, plus
// the per-table derived-attribute formulas (which ToSqlString does not
// render). Identically-defined views get equal signatures regardless
// of what they are called.
std::string ViewStructuralSignature(const GpsjViewDef& def);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_PLAN_SIGNATURE_H_
