#include "core/eliminate.h"

#include "common/strings.h"

namespace mindetail {

EliminationDecision CanEliminateAuxView(
    const GpsjViewDef& def, const Catalog& catalog,
    const ExtendedJoinGraph& graph,
    const std::map<std::string, std::set<std::string>>& need_sets,
    const std::string& table) {
  EliminationDecision decision;

  if (!graph.TransitivelyDependsOnAll(table, catalog)) {
    decision.reason = StrCat(
        "'", table, "' does not transitively depend on all other base "
        "tables (a dependence needs a key join, referential integrity, "
        "and no exposed updates)");
    return decision;
  }

  for (const auto& [other, need] : need_sets) {
    if (other == table) continue;
    if (need.count(table) > 0) {
      decision.reason =
          StrCat("'", table, "' is in the Need set of '", other,
                 "', so it is required to propagate deletions and "
                 "protected updates of '", other, "'");
      return decision;
    }
  }

  // Under the insert-only relaxation (paper Sec. 4) MIN/MAX do not
  // block elimination: they are self-maintainable when deletions are
  // impossible.
  if (def.TableHasEffectiveNonCsmasAttr(table, catalog)) {
    decision.reason = StrCat(
        "attributes of '", table, "' are involved in non-CSMAS "
        "aggregates (MIN/MAX or DISTINCT), which may require "
        "recomputation from the auxiliary view");
    return decision;
  }

  decision.eliminable = true;
  return decision;
}

}  // namespace mindetail
