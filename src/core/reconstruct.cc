#include "core/reconstruct.h"

#include <algorithm>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "relational/ops.h"

namespace mindetail {

std::string ContribSumColumn(const std::string& output_name) {
  return StrCat("__sum_", output_name);
}

std::string ContribMinMaxColumn(const std::string& output_name) {
  return StrCat("__mm_", output_name);
}

// Closes `required` upward: every required table's ancestors up to the
// root are required too (the join tree must stay connected).
std::set<std::string> CloseUpward(const ExtendedJoinGraph& graph,
                                  std::set<std::string> required) {
  required.insert(graph.root());
  std::vector<std::string> worklist(required.begin(), required.end());
  while (!worklist.empty()) {
    std::string table = worklist.back();
    worklist.pop_back();
    const JoinGraphVertex& v = graph.vertex(table);
    if (v.parent.has_value() && required.insert(*v.parent).second) {
      worklist.push_back(*v.parent);
    }
  }
  return required;
}

namespace {

// Appends a computed column `name` = row[src] * row[cnt] to `input`.
Result<Table> AppendScaledColumn(const Table& input, const std::string& src,
                                 const std::string& cnt,
                                 const std::string& name) {
  std::optional<size_t> src_idx = input.schema().IndexOf(src);
  std::optional<size_t> cnt_idx = input.schema().IndexOf(cnt);
  if (!src_idx.has_value() || !cnt_idx.has_value()) {
    return InternalError(
        StrCat("scaled column inputs '", src, "'/'", cnt, "' missing"));
  }
  std::vector<Attribute> attrs = input.schema().attributes();
  attrs.push_back(Attribute{name, input.schema().attribute(*src_idx).type});
  Table out(input.name(), Schema(std::move(attrs)));
  out.set_allow_null(true);
  for (const Tuple& row : input.rows()) {
    Tuple extended = row;
    extended.push_back(ScaleValue(row[*src_idx], row[*cnt_idx].AsInt64()));
    MD_RETURN_IF_ERROR(out.Insert(std::move(extended)));
  }
  return out;
}

}  // namespace

// How SUM-like mass for attribute `T.a` is obtained from the joined
// auxiliary table (SumSource declared in the header — the serving
// roll-up path shares the resolution rules).
SumSource ResolveSumSource(const Derivation& derivation,
                           const AttributeRef& input) {
  const AuxViewDef& root_aux = derivation.aux_for(derivation.root());
  const bool root_compressed = root_aux.plan.compressed;
  if (input.table == derivation.root() &&
      root_aux.plan.SumColumnIndex(input.attr) >= 0) {
    // The attribute was compressed into a per-group SUM column.
    return SumSource{StrCat(input.table, ".", SumColumnName(input.attr)),
                     false};
  }
  // The attribute survived as a plain column (on a dimension, or kept
  // plain on the root because of other uses). With a compressed root,
  // each joined row stands for cnt0 duplicates: f(a · cnt0), Sec. 3.2.
  return SumSource{StrCat(input.table, ".", input.attr), root_compressed};
}

// The name of the root's qualified cnt0 column, or empty when the root
// auxiliary view is uncompressed (every row stands for one tuple).
std::string RootCountColumn(const Derivation& derivation) {
  const AuxViewDef& root_aux = derivation.aux_for(derivation.root());
  if (!root_aux.plan.compressed) return "";
  return StrCat(derivation.root(), ".", kCountStarColumn);
}

// Source column for a MIN/MAX aggregate over `input`: the compressed
// per-group MIN/MAX column when the insert-only relaxation produced
// one, otherwise the plain (qualified) attribute. MIN and MAX are
// idempotent over duplicates, so no cnt0 scaling applies either way.
std::string ResolveMinMaxSource(const Derivation& derivation,
                                const AttributeRef& input, AggFn fn) {
  if (input.table == derivation.root()) {
    const CompressionPlan& plan =
        derivation.aux_for(derivation.root()).plan;
    const int idx = fn == AggFn::kMin ? plan.MinColumnIndex(input.attr)
                                      : plan.MaxColumnIndex(input.attr);
    if (idx >= 0) {
      return StrCat(input.table, ".",
                    fn == AggFn::kMin ? MinColumnName(input.attr)
                                      : MaxColumnName(input.attr));
    }
  }
  return input.ToString();
}

std::set<std::string> OutputSupplierTables(const Derivation& derivation,
                                           bool csmas_only) {
  std::set<std::string> out;
  for (const OutputItem& item : derivation.view().outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      out.insert(item.attr.table);
      continue;
    }
    if (item.agg.fn == AggFn::kCountStar) continue;
    if (csmas_only) {
      const bool incremental = derivation.insert_only()
                                   ? IsCsmasUnderInsertOnly(item.agg)
                                   : IsCsmas(item.agg);
      if (!incremental) continue;
    }
    out.insert(item.agg.input.table);
  }
  return out;
}

namespace {

// Joins `root_rows` (already qualified) down the tree in topological
// order against the qualified non-root tables, probing the prebuilt
// `indexes` (one per required non-root table, positions valid for the
// qualified copies).
Result<Table> JoinChainFromRoot(
    const Derivation& derivation, Table root_rows,
    const std::map<std::string, Table>& qualified,
    const std::set<std::string>& closed,
    const std::map<std::string, const TableIndex*>& indexes) {
  const ExtendedJoinGraph& graph = derivation.graph();
  Table current = std::move(root_rows);
  // Parents precede children in topological order, so one pass attaches
  // every required child to the partial join.
  for (const std::string& table : graph.TopologicalOrder()) {
    if (table == graph.root() || closed.count(table) == 0) continue;
    const JoinGraphVertex& v = graph.vertex(table);
    MD_ASSIGN_OR_RETURN(
        current, HashJoinIndexed(current, qualified.at(table),
                                 StrCat(*v.parent, ".", v.parent_attr),
                                 *indexes.at(table)));
  }
  return current;
}

// Rows below which chunked parallelism is pure overhead (the hash
// indexes are shared, but chunk setup and re-concatenation are not
// free). The threshold only affects scheduling, never results (the
// chunked join is bit-identical to the serial one).
constexpr size_t kMinRowsPerJoinChunk = 64;

}  // namespace

Result<DimensionIndex> DimensionIndex::Build(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& exclude) {
  DimensionIndex dims;
  const ExtendedJoinGraph& graph = derivation.graph();
  for (const std::string& table : graph.TopologicalOrder()) {
    if (table == graph.root() || exclude.count(table) > 0 ||
        derivation.IsEliminated(table)) {
      continue;
    }
    auto it = tables.find(table);
    if (it == tables.end() || it->second == nullptr) continue;
    MD_ASSIGN_OR_RETURN(
        TableIndex index,
        TableIndex::Build(*it->second, derivation.aux_for(table).key_attr));
    dims.indexes_.emplace(table, std::move(index));
  }
  return dims;
}

const TableIndex* DimensionIndex::Find(const std::string& table) const {
  auto it = indexes_.find(table);
  return it == indexes_.end() ? nullptr : &it->second;
}

Result<Table> JoinAuxAlongGraph(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool,
    const DimensionIndex* dims) {
  const ExtendedJoinGraph& graph = derivation.graph();
  const std::set<std::string> closed = CloseUpward(graph, required);

  // Qualify each participating table's columns with its base-table name.
  std::map<std::string, Table> qualified;
  for (const std::string& table : closed) {
    auto it = tables.find(table);
    if (it == tables.end() || it->second == nullptr) {
      return InvalidArgumentError(
          StrCat("auxiliary contents for '", table, "' not provided"));
    }
    qualified.emplace(table, QualifyColumns(*it->second, table));
  }

  // One hash index per non-root table: prebuilt when `dims` covers it,
  // otherwise built here, once — shared by every chunk either way.
  // Indexes are built over the unqualified contents; qualification
  // preserves row order, so the positions probe the qualified copies.
  std::map<std::string, TableIndex> local;
  std::map<std::string, const TableIndex*> indexes;
  for (const std::string& table : closed) {
    if (table == graph.root()) continue;
    const TableIndex* index = dims == nullptr ? nullptr : dims->Find(table);
    if (index == nullptr) {
      MD_ASSIGN_OR_RETURN(
          TableIndex built,
          TableIndex::Build(*tables.at(table),
                            derivation.aux_for(table).key_attr));
      index = &local.emplace(table, std::move(built)).first->second;
    }
    indexes.emplace(table, index);
  }

  Table root_rows = std::move(qualified.at(graph.root()));
  const size_t num_chunks =
      pool == nullptr
          ? 1
          : std::min(static_cast<size_t>(pool->num_threads()),
                     root_rows.NumRows() / kMinRowsPerJoinChunk);
  if (num_chunks <= 1) {
    return JoinChainFromRoot(derivation, std::move(root_rows), qualified,
                             closed, indexes);
  }

  // Contiguous root chunks, joined concurrently, re-concatenated in
  // chunk order: identical rows in identical order to the serial chain,
  // since the join streams its left input in order.
  const size_t total = root_rows.NumRows();
  std::vector<Result<Table>> chunk_results(
      num_chunks, Result<Table>(InternalError("join chunk not run")));
  pool->ParallelFor(num_chunks, [&](size_t c) {
    const size_t begin = total * c / num_chunks;
    const size_t end = total * (c + 1) / num_chunks;
    Table chunk(root_rows.name(), root_rows.schema());
    chunk.set_allow_null(true);
    for (size_t i = begin; i < end; ++i) {
      const Status status = chunk.Insert(root_rows.row(i));
      if (!status.ok()) {
        chunk_results[c] = status;
        return;
      }
    }
    chunk_results[c] = JoinChainFromRoot(derivation, std::move(chunk),
                                         qualified, closed, indexes);
  });

  Result<Table>& first = chunk_results.front();
  MD_RETURN_IF_ERROR(first.status());
  Table joined = std::move(*first);
  for (size_t c = 1; c < num_chunks; ++c) {
    MD_RETURN_IF_ERROR(chunk_results[c].status());
    MD_RETURN_IF_ERROR(joined.AppendRowsFrom(std::move(*chunk_results[c])));
  }
  return joined;
}

namespace {

// The pieces needed to render one view output from the grouped result.
struct OutputPlan {
  enum class Kind {
    kGroupColumn,  // A group-by column of the grouped table.
    kDirect,       // One physical aggregate, used as-is.
    kRatio,        // numerator / denominator (AVG).
  };
  Kind kind = Kind::kGroupColumn;
  std::string column;       // kGroupColumn / kDirect.
  std::string numerator;    // kRatio.
  std::string denominator;  // kRatio.
};

// Builds the physical aggregation over the joined auxiliary table that
// yields every view output, plus per-output rendering plans.
struct AggregationPlan {
  std::vector<std::string> group_columns;        // Qualified group-by refs.
  std::vector<std::string> scaled_sources;       // Columns needing a*cnt0.
  std::vector<PhysicalAggregate> physical;
  std::vector<OutputPlan> outputs;               // One per view output.
};

Result<AggregationPlan> BuildAggregationPlan(const Derivation& derivation) {
  AggregationPlan plan;
  const std::string cnt_col = RootCountColumn(derivation);

  for (const AttributeRef& ref : derivation.view().GroupByAttrs()) {
    plan.group_columns.push_back(ref.ToString());
  }

  // Shared duplicate-count aggregate: SUM(cnt0) or COUNT(*).
  bool need_count = false;
  auto add_physical = [&plan](PhysicalAggregate agg) -> std::string {
    for (const PhysicalAggregate& existing : plan.physical) {
      if (existing.output_name == agg.output_name) return agg.output_name;
    }
    plan.physical.push_back(std::move(agg));
    return plan.physical.back().output_name;
  };
  auto count_column = [&]() -> std::string {
    need_count = true;
    if (cnt_col.empty()) {
      return add_physical(
          PhysicalAggregate{AggFn::kCountStar, "", false, "__dupcnt"});
    }
    return add_physical(
        PhysicalAggregate{AggFn::kSum, cnt_col, false, "__dupcnt"});
  };
  (void)need_count;

  auto sum_column = [&](const AttributeRef& input,
                        const std::string& out_name) -> std::string {
    SumSource source = ResolveSumSource(derivation, input);
    std::string src = source.column;
    if (source.needs_scaling) {
      src = StrCat("__scaled_", source.column);
      if (std::find(plan.scaled_sources.begin(), plan.scaled_sources.end(),
                    source.column) == plan.scaled_sources.end()) {
        plan.scaled_sources.push_back(source.column);
      }
    }
    return add_physical(PhysicalAggregate{AggFn::kSum, src, false, out_name});
  };

  size_t group_idx = 0;
  for (const OutputItem& item : derivation.view().outputs()) {
    OutputPlan out;
    if (item.kind == OutputItem::Kind::kGroupBy) {
      out.kind = OutputPlan::Kind::kGroupColumn;
      out.column = plan.group_columns[group_idx++];
      plan.outputs.push_back(std::move(out));
      continue;
    }
    const AggregateSpec& agg = item.agg;
    const std::string qualified_input =
        agg.fn == AggFn::kCountStar ? "" : agg.input.ToString();
    if (IsCsmas(agg)) {
      switch (agg.fn) {
        case AggFn::kCountStar:
        case AggFn::kCount:
          // NULL-free inputs: COUNT(a) ≡ COUNT(*) ≡ total duplicates.
          out.kind = OutputPlan::Kind::kDirect;
          out.column = count_column();
          break;
        case AggFn::kSum:
          out.kind = OutputPlan::Kind::kDirect;
          out.column =
              sum_column(agg.input, StrCat("__sum_v_", item.output_name));
          break;
        case AggFn::kAvg:
          out.kind = OutputPlan::Kind::kRatio;
          out.numerator =
              sum_column(agg.input, StrCat("__sum_v_", item.output_name));
          out.denominator = count_column();
          break;
        default:
          return InternalError("unexpected CSMAS aggregate");
      }
    } else if (agg.distinct &&
               (agg.fn == AggFn::kAvg || agg.fn == AggFn::kSum ||
                agg.fn == AggFn::kCount)) {
      // DISTINCT ignores duplicates — recompute directly from the plain
      // column (paper Sec. 3.2, final remark).
      if (agg.fn == AggFn::kAvg) {
        out.kind = OutputPlan::Kind::kRatio;
        out.numerator = add_physical(
            PhysicalAggregate{AggFn::kSum, qualified_input, true,
                              StrCat("__sumd_", item.output_name)});
        out.denominator = add_physical(
            PhysicalAggregate{AggFn::kCount, qualified_input, true,
                              StrCat("__cntd_", item.output_name)});
      } else {
        out.kind = OutputPlan::Kind::kDirect;
        out.column = add_physical(
            PhysicalAggregate{agg.fn, qualified_input, true,
                              StrCat("__d_", item.output_name)});
      }
    } else {
      // MIN / MAX: duplicates are irrelevant; recompute directly, from
      // the compressed per-group MIN/MAX column when one exists
      // (insert-only relaxation).
      out.kind = OutputPlan::Kind::kDirect;
      const std::string source =
          agg.distinct ? qualified_input
                       : ResolveMinMaxSource(derivation, agg.input, agg.fn);
      out.column = add_physical(
          PhysicalAggregate{agg.fn, source, agg.distinct,
                            StrCat("__m_", item.output_name)});
    }
    plan.outputs.push_back(std::move(out));
  }
  return plan;
}

// Runs the aggregation plan over the joined auxiliary table and shapes
// the final view output.
Result<Table> AggregateJoined(const Derivation& derivation, Table joined) {
  MD_ASSIGN_OR_RETURN(AggregationPlan plan,
                      BuildAggregationPlan(derivation));

  const std::string cnt_col = RootCountColumn(derivation);
  for (const std::string& src : plan.scaled_sources) {
    MD_ASSIGN_OR_RETURN(
        joined,
        AppendScaledColumn(joined, src, cnt_col, StrCat("__scaled_", src)));
  }

  MD_ASSIGN_OR_RETURN(
      Table grouped,
      GroupAggregate(joined, plan.group_columns, plan.physical));

  // Drop the phantom row scalar-aggregate semantics produce over an
  // empty joined input when the view has group-bys... (GroupAggregate
  // already returns no rows for grouped empty input; the phantom row
  // only appears for scalar views, where it is correct SQL semantics.)

  std::vector<Attribute> attrs;
  std::vector<OutputPlan>& outs = plan.outputs;
  const std::vector<OutputItem>& items = derivation.view().outputs();
  MD_CHECK_EQ(outs.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ValueType type;
    if (outs[i].kind == OutputPlan::Kind::kRatio) {
      type = ValueType::kDouble;
    } else {
      std::optional<size_t> idx = grouped.schema().IndexOf(outs[i].column);
      if (!idx.has_value()) {
        return InternalError(
            StrCat("aggregation lost column '", outs[i].column, "'"));
      }
      type = grouped.schema().attribute(*idx).type;
    }
    attrs.push_back(Attribute{items[i].output_name, type});
  }

  Table result(derivation.view().name(), Schema(std::move(attrs)));
  result.set_allow_null(true);
  for (const Tuple& row : grouped.rows()) {
    Tuple shaped;
    shaped.reserve(outs.size());
    for (const OutputPlan& out : outs) {
      switch (out.kind) {
        case OutputPlan::Kind::kGroupColumn:
        case OutputPlan::Kind::kDirect: {
          shaped.push_back(row[*grouped.schema().IndexOf(out.column)]);
          break;
        }
        case OutputPlan::Kind::kRatio: {
          const Value& num = row[*grouped.schema().IndexOf(out.numerator)];
          const Value& den =
              row[*grouped.schema().IndexOf(out.denominator)];
          if (num.is_null() || den.is_null() || den.AsInt64() == 0) {
            shaped.push_back(Value());
          } else {
            shaped.push_back(Value(num.NumericAsDouble() /
                                   static_cast<double>(den.AsInt64())));
          }
          break;
        }
      }
    }
    MD_RETURN_IF_ERROR(result.Insert(std::move(shaped)));
  }
  SortRows(&result);
  return result;
}

}  // namespace

Result<Table> ReconstructView(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables) {
  if (derivation.IsEliminated(derivation.root())) {
    return FailedPreconditionError(StrCat(
        "the root auxiliary view of '", derivation.view().name(),
        "' was eliminated; the materialized view itself is the only copy "
        "of its data"));
  }
  MD_ASSIGN_OR_RETURN(
      Table joined,
      JoinAuxAlongGraph(derivation, aux_tables,
                        OutputSupplierTables(derivation, false)));
  MD_ASSIGN_OR_RETURN(Table result,
                      AggregateJoined(derivation, std::move(joined)));
  // HAVING applies to the view's *contents*; group-restricted
  // recomputation (ReconstructGroups) deliberately skips it, because
  // maintenance needs the state of every affected group.
  const GpsjViewDef& def = derivation.view();
  if (def.having().empty()) return result;
  Table filtered(def.name(), result.schema());
  filtered.set_allow_null(true);
  for (const Tuple& row : result.rows()) {
    if (def.PassesHaving(row)) {
      MD_RETURN_IF_ERROR(filtered.Insert(row));
    }
  }
  return filtered;
}

Result<Table> ReconstructGroups(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables,
    const GroupKeySet& groups, ThreadPool* pool,
    const DimensionIndex* dims) {
  if (derivation.IsEliminated(derivation.root())) {
    return FailedPreconditionError(
        "cannot recompute groups: the root auxiliary view was eliminated");
  }
  MD_ASSIGN_OR_RETURN(
      Table joined,
      JoinAuxAlongGraph(derivation, aux_tables,
                        OutputSupplierTables(derivation, false), pool,
                        dims));

  std::vector<size_t> group_idx;
  for (const AttributeRef& ref : derivation.view().GroupByAttrs()) {
    std::optional<size_t> idx = joined.schema().IndexOf(ref.ToString());
    if (!idx.has_value()) {
      return InternalError(
          StrCat("joined table lost group column '", ref.ToString(), "'"));
    }
    group_idx.push_back(*idx);
  }

  // Scalar views (no group-by) have a single global "group" that cannot
  // be partitioned; small inputs are not worth the shard setup.
  const size_t num_shards =
      pool == nullptr || group_idx.empty()
          ? 1
          : std::min(static_cast<size_t>(pool->num_threads()),
                     joined.NumRows() / kMinRowsPerJoinChunk);
  if (num_shards <= 1) {
    // Keep only rows belonging to an affected group.
    Table filtered(joined.name(), joined.schema());
    filtered.set_allow_null(true);
    for (const Tuple& row : joined.rows()) {
      Tuple key;
      key.reserve(group_idx.size());
      for (size_t idx : group_idx) key.push_back(row[idx]);
      if (groups.count(key) > 0) {
        MD_RETURN_IF_ERROR(filtered.Insert(row));
      }
    }
    return AggregateJoined(derivation, std::move(filtered));
  }

  // Shard the affected-group recomputation by group key: each group's
  // joined rows land in exactly one shard, in joined-row order, so the
  // per-group filter + aggregation matches the serial pass exactly.
  // Shard outputs hold disjoint groups, so concatenating them and
  // re-sorting reconstructs the serial output (AggregateJoined sorts).
  TupleHash hasher;
  std::vector<Result<Table>> shard_results(
      num_shards, Result<Table>(InternalError("recompute shard not run")));
  pool->ParallelFor(num_shards, [&](size_t s) {
    Table filtered(joined.name(), joined.schema());
    filtered.set_allow_null(true);
    for (const Tuple& row : joined.rows()) {
      Tuple key;
      key.reserve(group_idx.size());
      for (size_t idx : group_idx) key.push_back(row[idx]);
      if (hasher(key) % num_shards != s || groups.count(key) == 0) continue;
      const Status status = filtered.Insert(row);
      if (!status.ok()) {
        shard_results[s] = status;
        return;
      }
    }
    shard_results[s] = AggregateJoined(derivation, std::move(filtered));
  });

  Result<Table>& first = shard_results.front();
  MD_RETURN_IF_ERROR(first.status());
  Table result = std::move(*first);
  for (size_t s = 1; s < num_shards; ++s) {
    MD_RETURN_IF_ERROR(shard_results[s].status());
    MD_RETURN_IF_ERROR(result.AppendRowsFrom(std::move(*shard_results[s])));
  }
  SortRows(&result);
  return result;
}

Result<Table> ComputeContributions(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool,
    const DimensionIndex* dims) {
  MD_ASSIGN_OR_RETURN(
      Table joined,
      JoinAuxAlongGraph(derivation, tables, required, pool, dims));

  const std::string cnt_col = RootCountColumn(derivation);
  std::vector<std::string> group_columns;
  for (const AttributeRef& ref : derivation.view().GroupByAttrs()) {
    group_columns.push_back(ref.ToString());
  }

  std::vector<PhysicalAggregate> physical;
  if (cnt_col.empty()) {
    physical.push_back(
        PhysicalAggregate{AggFn::kCountStar, "", false, kContribCountColumn});
  } else {
    physical.push_back(
        PhysicalAggregate{AggFn::kSum, cnt_col, false, kContribCountColumn});
  }
  for (const OutputItem& item : derivation.view().outputs()) {
    if (item.kind != OutputItem::Kind::kAggregate) continue;
    const AggregateSpec& agg = item.agg;
    if (IsCsmas(agg) && (agg.fn == AggFn::kSum || agg.fn == AggFn::kAvg)) {
      SumSource source = ResolveSumSource(derivation, agg.input);
      std::string src = source.column;
      if (source.needs_scaling) {
        src = StrCat("__scaled_", source.column);
        if (!joined.schema().Contains(src)) {
          MD_ASSIGN_OR_RETURN(
              joined,
              AppendScaledColumn(joined, source.column, cnt_col, src));
        }
      }
      physical.push_back(PhysicalAggregate{
          AggFn::kSum, src, false, ContribSumColumn(item.output_name)});
      continue;
    }
    // Insert-only relaxation: MIN/MAX contributions merge into the
    // summary incrementally.
    if (derivation.insert_only() && !agg.distinct &&
        (agg.fn == AggFn::kMin || agg.fn == AggFn::kMax)) {
      physical.push_back(PhysicalAggregate{
          agg.fn, ResolveMinMaxSource(derivation, agg.input, agg.fn),
          false, ContribMinMaxColumn(item.output_name)});
    }
  }

  MD_ASSIGN_OR_RETURN(Table contributions,
                      GroupAggregate(joined, group_columns, physical,
                                     "contributions"));
  // Scalar views: drop the phantom zero-contribution row.
  if (group_columns.empty()) {
    std::optional<size_t> cnt_idx =
        contributions.schema().IndexOf(kContribCountColumn);
    MD_CHECK(cnt_idx.has_value());
    if (contributions.NumRows() == 1) {
      const Value& cnt = contributions.row(0)[*cnt_idx];
      if (cnt.is_null() ||
          (cnt.type() == ValueType::kInt64 && cnt.AsInt64() == 0)) {
        Table empty("contributions", contributions.schema());
        empty.set_allow_null(true);
        return empty;
      }
    }
  }
  return contributions;
}

}  // namespace mindetail
