// Reconstructing a GPSJ view from its auxiliary views alone
// (paper Sec. 1.1 example and Sec. 3.2 maintenance rules).
//
// The view is recomputed by joining the auxiliary views along the join
// graph and re-aggregating, with duplicate accounting: a compressed root
// row carries cnt0 = COUNT(*) duplicates, so
//   COUNT(*)  in V  =  SUM(cnt0),
//   SUM(a)    in V  =  SUM(sum_a)            if a was compressed into sum_a,
//                   =  SUM(a · cnt0)         if a survived as a plain column,
//   AVG(a)    in V  =  SUM(…) / SUM(cnt0),
// and MIN/MAX/DISTINCT aggregates — which ignore duplicates — are
// recomputed directly from the plain columns.

#ifndef MINDETAIL_CORE_RECONSTRUCT_H_
#define MINDETAIL_CORE_RECONSTRUCT_H_

#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "core/derive.h"
#include "relational/ops.h"

namespace mindetail {

class ThreadPool;

// A set of view group-by keys.
using GroupKeySet = std::unordered_set<Tuple, TupleHash, TupleEqual>;

// Read-only prebuilt hash indexes over the dimension auxiliary views,
// each keyed by its aux key attribute. The engine builds one per change
// batch and shares it across every root-delta chunk and the delta join,
// instead of rebuilding the join's hash build side per use. Index
// positions stay valid for QualifyColumns copies of the same contents
// (qualification preserves row order), which is how the join below uses
// them.
class DimensionIndex {
 public:
  DimensionIndex() = default;

  // Indexes every non-root, non-eliminated auxiliary view of
  // `derivation` that is present in `tables`, except those named in
  // `exclude` (the table whose own delta is being applied: its contents
  // change mid-batch, so a prebuilt index would go stale).
  static Result<DimensionIndex> Build(
      const Derivation& derivation,
      const std::map<std::string, const Table*>& tables,
      const std::set<std::string>& exclude = {});

  // The prebuilt index for `table`, or nullptr when the table was not
  // indexed. The index is only valid against the exact contents it was
  // built over (or an order-preserving qualified copy of them).
  const TableIndex* Find(const std::string& table) const;

 private:
  std::map<std::string, TableIndex> indexes_;
};

// Joins auxiliary views along the join graph with qualified column
// names ("sale.cnt0", "time.month"). `tables` maps base-table name →
// current auxiliary contents (a delta table may stand in for one of
// them). Only tables in `required` — closed upward to the root — are
// joined. Rows that fail to join (e.g. unreduced root rows referencing
// filtered-out dimensions) drop out, matching V's semantics.
//
// With a non-null `pool`, the root table's rows are split into
// contiguous chunks that are joined concurrently and re-concatenated in
// chunk order. Because the join streams its left input in order, the
// result is identical — same rows, same row order, bit for bit — to
// the serial join; parallelism is purely a latency optimization.
//
// `dims` optionally supplies prebuilt hash indexes for the non-root
// tables (they must have been built over the same contents `tables`
// maps to); any table it does not cover gets a local index, built once
// per call and shared by all chunks.
Result<Table> JoinAuxAlongGraph(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool = nullptr,
    const DimensionIndex* dims = nullptr);

// Tables that supply view outputs: group-by attributes always, plus
// aggregate inputs (all of them, or only non-CSMAS ones when
// `csmas_only` is true — the incremental path recomputes only CSMAS
// contributions).
std::set<std::string> OutputSupplierTables(const Derivation& derivation,
                                           bool csmas_only);

// Duplicate-accounting resolution over a JoinAuxAlongGraph output,
// shared by view reconstruction and the serving layer's roll-up
// answering (which evaluates ad-hoc aggregates over the same joined
// auxiliary table).
//
// How SUM-like mass for attribute `T.a` is obtained from the joined
// auxiliary table: either a compressed per-group SUM column (already
// duplicate-weighted) or a plain column that must be scaled by the
// root's cnt0 — the paper's f(a · cnt0) rule, Sec. 3.2.
struct SumSource {
  std::string column;          // Column of the joined table to SUM.
  bool needs_scaling = false;  // Multiply by the root's cnt0 first.
};
SumSource ResolveSumSource(const Derivation& derivation,
                           const AttributeRef& input);

// The qualified name of the root's cnt0 column ("<root>.cnt0"), or
// empty when the root auxiliary view is uncompressed (every joined row
// then stands for exactly one base tuple).
std::string RootCountColumn(const Derivation& derivation);

// Source column for a MIN/MAX aggregate over `input`: the compressed
// per-group MIN/MAX column when the insert-only relaxation produced
// one, otherwise the plain (qualified) attribute. MIN and MAX are
// idempotent over duplicates, so no cnt0 scaling applies either way.
std::string ResolveMinMaxSource(const Derivation& derivation,
                                const AttributeRef& input, AggFn fn);

// Closes `required` upward along the join tree: every required table's
// ancestors up to the root are required too (the join must stay
// connected). Exposed so the serving planner can pre-check that no
// table on a query's join path has an eliminated auxiliary view.
std::set<std::string> CloseUpward(const ExtendedJoinGraph& graph,
                                  std::set<std::string> required);

// Computes the complete view contents from the auxiliary views, no base
// access. Fails if the root's auxiliary view was eliminated (V itself
// is then the only copy of its data). Output matches EvaluateGpsj:
// view-output columns, sorted rows.
Result<Table> ReconstructView(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables);

// As ReconstructView, but only for the groups whose group-by key tuple
// is in `groups` (affected-group recomputation for non-CSMAS outputs).
//
// With a non-null `pool`, the underlying join is chunked (see
// JoinAuxAlongGraph) and the affected groups are re-aggregated in
// shards, hash-partitioned by group key: a group's joined rows land in
// one shard in joined-row order, so per-group accumulation order — and
// with it the result — is bit-identical to the serial recomputation at
// every thread count. Scalar views always recompute serially. `dims`
// is forwarded to the join.
Result<Table> ReconstructGroups(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables,
    const GroupKeySet& groups, ThreadPool* pool = nullptr,
    const DimensionIndex* dims = nullptr);

// Internal contribution table for incremental CSMAS maintenance.
// Columns: the view's group-by outputs, then "__cnt" (total duplicate
// count, i.e. the group's COUNT(*) contribution), then one
// "__sum_<output>" column per non-distinct SUM/AVG view output.
// `tables` must cover `required` (closed upward); a delta table may
// stand in for the changed table. A non-null `pool` parallelizes the
// underlying delta join (see JoinAuxAlongGraph); the contribution
// aggregation itself stays single-threaded in joined-row order so the
// per-group floating-point accumulation order — and therefore the
// result — is bit-identical to the serial computation. `dims` is
// forwarded to the join.
Result<Table> ComputeContributions(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool = nullptr,
    const DimensionIndex* dims = nullptr);

// Column-name constants of the contribution table.
inline constexpr char kContribCountColumn[] = "__cnt";
std::string ContribSumColumn(const std::string& output_name);
// Present only for insert-only derivations: one MIN/MAX contribution
// column per non-distinct MIN/MAX view output.
std::string ContribMinMaxColumn(const std::string& output_name);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_RECONSTRUCT_H_
