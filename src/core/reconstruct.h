// Reconstructing a GPSJ view from its auxiliary views alone
// (paper Sec. 1.1 example and Sec. 3.2 maintenance rules).
//
// The view is recomputed by joining the auxiliary views along the join
// graph and re-aggregating, with duplicate accounting: a compressed root
// row carries cnt0 = COUNT(*) duplicates, so
//   COUNT(*)  in V  =  SUM(cnt0),
//   SUM(a)    in V  =  SUM(sum_a)            if a was compressed into sum_a,
//                   =  SUM(a · cnt0)         if a survived as a plain column,
//   AVG(a)    in V  =  SUM(…) / SUM(cnt0),
// and MIN/MAX/DISTINCT aggregates — which ignore duplicates — are
// recomputed directly from the plain columns.

#ifndef MINDETAIL_CORE_RECONSTRUCT_H_
#define MINDETAIL_CORE_RECONSTRUCT_H_

#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "core/derive.h"

namespace mindetail {

class ThreadPool;

// A set of view group-by keys.
using GroupKeySet = std::unordered_set<Tuple, TupleHash, TupleEqual>;

// Joins auxiliary views along the join graph with qualified column
// names ("sale.cnt0", "time.month"). `tables` maps base-table name →
// current auxiliary contents (a delta table may stand in for one of
// them). Only tables in `required` — closed upward to the root — are
// joined. Rows that fail to join (e.g. unreduced root rows referencing
// filtered-out dimensions) drop out, matching V's semantics.
//
// With a non-null `pool`, the root table's rows are split into
// contiguous chunks that are joined concurrently and re-concatenated in
// chunk order. Because HashJoin streams its left input in order, the
// result is identical — same rows, same row order, bit for bit — to
// the serial join; parallelism is purely a latency optimization.
Result<Table> JoinAuxAlongGraph(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool = nullptr);

// Tables that supply view outputs: group-by attributes always, plus
// aggregate inputs (all of them, or only non-CSMAS ones when
// `csmas_only` is true — the incremental path recomputes only CSMAS
// contributions).
std::set<std::string> OutputSupplierTables(const Derivation& derivation,
                                           bool csmas_only);

// Computes the complete view contents from the auxiliary views, no base
// access. Fails if the root's auxiliary view was eliminated (V itself
// is then the only copy of its data). Output matches EvaluateGpsj:
// view-output columns, sorted rows.
Result<Table> ReconstructView(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables);

// As ReconstructView, but only for the groups whose group-by key tuple
// is in `groups` (affected-group recomputation for non-CSMAS outputs).
Result<Table> ReconstructGroups(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& aux_tables,
    const GroupKeySet& groups);

// Internal contribution table for incremental CSMAS maintenance.
// Columns: the view's group-by outputs, then "__cnt" (total duplicate
// count, i.e. the group's COUNT(*) contribution), then one
// "__sum_<output>" column per non-distinct SUM/AVG view output.
// `tables` must cover `required` (closed upward); a delta table may
// stand in for the changed table. A non-null `pool` parallelizes the
// underlying delta join (see JoinAuxAlongGraph); the contribution
// aggregation itself stays single-threaded in joined-row order so the
// per-group floating-point accumulation order — and therefore the
// result — is bit-identical to the serial computation.
Result<Table> ComputeContributions(
    const Derivation& derivation,
    const std::map<std::string, const Table*>& tables,
    const std::set<std::string>& required, ThreadPool* pool = nullptr);

// Column-name constants of the contribution table.
inline constexpr char kContribCountColumn[] = "__cnt";
std::string ContribSumColumn(const std::string& output_name);
// Present only for insert-only derivations: one MIN/MAX contribution
// column per non-distinct MIN/MAX view output.
std::string ContribMinMaxColumn(const std::string& output_name);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_RECONSTRUCT_H_
