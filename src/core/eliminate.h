// Auxiliary-view elimination (paper Sec. 3.3).
//
// The auxiliary view of a base table Rᵢ — typically the huge fact
// table — can be omitted entirely when (1) Rᵢ transitively depends on
// all other base tables in the view, (2) Rᵢ is not in the Need set of
// any other base table, and (3) no attribute of Rᵢ is involved in a
// non-CSMAS aggregate.

#ifndef MINDETAIL_CORE_ELIMINATE_H_
#define MINDETAIL_CORE_ELIMINATE_H_

#include <map>
#include <set>
#include <string>

#include "core/join_graph.h"
#include "core/need.h"

namespace mindetail {

// The elimination decision for one table, with the reason when negative
// (surfaced in derivation reports and examples).
struct EliminationDecision {
  bool eliminable = false;
  std::string reason;  // Why not, when eliminable == false; else empty.
};

EliminationDecision CanEliminateAuxView(
    const GpsjViewDef& def, const Catalog& catalog,
    const ExtendedJoinGraph& graph,
    const std::map<std::string, std::set<std::string>>& need_sets,
    const std::string& table);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_ELIMINATE_H_
