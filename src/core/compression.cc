#include "core/compression.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "gpsj/aggregate.h"

namespace mindetail {

std::string AuxColumn::ToString() const {
  switch (kind) {
    case Kind::kPlain:
      return output_name;
    case Kind::kSum:
      return StrCat("SUM(", source_attr, ") AS ", output_name);
    case Kind::kMin:
      return StrCat("MIN(", source_attr, ") AS ", output_name);
    case Kind::kMax:
      return StrCat("MAX(", source_attr, ") AS ", output_name);
    case Kind::kCountStar:
      return StrCat("COUNT(*) AS ", output_name);
  }
  return "?";
}

std::string MinColumnName(const std::string& attr_name) {
  return StrCat("min_", attr_name);
}

std::string MaxColumnName(const std::string& attr_name) {
  return StrCat("max_", attr_name);
}

std::vector<std::string> CompressionPlan::PlainAttrs() const {
  std::vector<std::string> out;
  for (const AuxColumn& col : columns) {
    if (col.kind == AuxColumn::Kind::kPlain) out.push_back(col.source_attr);
  }
  return out;
}

std::vector<PhysicalAggregate> CompressionPlan::Aggregates() const {
  std::vector<PhysicalAggregate> out;
  for (const AuxColumn& col : columns) {
    switch (col.kind) {
      case AuxColumn::Kind::kPlain:
        break;
      case AuxColumn::Kind::kSum:
        out.push_back(PhysicalAggregate{AggFn::kSum, col.source_attr, false,
                                        col.output_name});
        break;
      case AuxColumn::Kind::kMin:
        out.push_back(PhysicalAggregate{AggFn::kMin, col.source_attr, false,
                                        col.output_name});
        break;
      case AuxColumn::Kind::kMax:
        out.push_back(PhysicalAggregate{AggFn::kMax, col.source_attr, false,
                                        col.output_name});
        break;
      case AuxColumn::Kind::kCountStar:
        out.push_back(
            PhysicalAggregate{AggFn::kCountStar, "", false, col.output_name});
        break;
    }
  }
  return out;
}

int CompressionPlan::CountColumnIndex() const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].kind == AuxColumn::Kind::kCountStar) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CompressionPlan::SumColumnIndex(const std::string& source_attr) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].kind == AuxColumn::Kind::kSum &&
        columns[i].source_attr == source_attr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CompressionPlan::MinColumnIndex(const std::string& source_attr) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].kind == AuxColumn::Kind::kMin &&
        columns[i].source_attr == source_attr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CompressionPlan::MaxColumnIndex(const std::string& source_attr) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].kind == AuxColumn::Kind::kMax &&
        columns[i].source_attr == source_attr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CompressionPlan::PlainColumnIndex(const std::string& source_attr) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].kind == AuxColumn::Kind::kPlain &&
        columns[i].source_attr == source_attr) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string CompressionPlan::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns.size());
  for (const AuxColumn& col : columns) parts.push_back(col.ToString());
  return StrCat(compressed ? "compressed" : "plain", ": [",
                Join(parts, ", "), "]");
}

Result<CompressionPlan> ComputeCompressionPlan(
    const GpsjViewDef& def, const Catalog& catalog, const std::string& table,
    const LocalReduction& reduction) {
  MD_ASSIGN_OR_RETURN(std::string key, catalog.KeyAttr(table));

  CompressionPlan plan;

  // Step 1 precondition: the COUNT(*) would be superfluous when the
  // projected attributes include the base table's key — every group is a
  // single tuple and the auxiliary view degenerates into a PSJ view.
  const bool key_retained =
      std::find(reduction.attrs.begin(), reduction.attrs.end(), key) !=
      reduction.attrs.end();
  if (key_retained) {
    plan.compressed = false;
    for (const std::string& attr : reduction.attrs) {
      plan.columns.push_back(
          AuxColumn{AuxColumn::Kind::kPlain, attr, attr});
    }
    return plan;
  }

  plan.compressed = true;

  // Classify each attribute's uses within this table.
  std::set<std::string> join_attrs;
  for (const std::string& attr : def.JoinAttrs(table, catalog)) {
    join_attrs.insert(attr);
  }
  std::set<std::string> group_by_attrs;
  for (const AttributeRef& ref : def.GroupByAttrs()) {
    if (ref.table == table) group_by_attrs.insert(ref.attr);
  }
  // Under the insert-only relaxation (paper Sec. 4), MIN/MAX join the
  // compressible class — each gets a per-group MIN/MAX column.
  const bool insert_only = def.IsInsertOnly(catalog);
  std::set<std::string> non_csmas_attrs;
  std::map<std::string, std::vector<AggregateSpec>> compressible_by_attr;
  for (const AggregateSpec& agg : def.Aggregates()) {
    if (agg.fn == AggFn::kCountStar || agg.input.table != table) continue;
    const bool compressible =
        insert_only ? IsCsmasUnderInsertOnly(agg) : IsCsmas(agg);
    if (compressible) {
      compressible_by_attr[agg.input.attr].push_back(agg);
    } else {
      non_csmas_attrs.insert(agg.input.attr);
    }
  }

  // Step 2: an attribute stays plain if it is used in non-CSMASs, join
  // conditions, or group-by clauses; otherwise its CSMASs are replaced
  // by the distributive set of Table 2 (the attribute itself vanishes).
  std::vector<AuxColumn> aggregated;
  for (const std::string& attr : reduction.attrs) {
    const bool must_stay_plain = join_attrs.count(attr) > 0 ||
                                 group_by_attrs.count(attr) > 0 ||
                                 non_csmas_attrs.count(attr) > 0;
    if (must_stay_plain) {
      plan.columns.push_back(AuxColumn{AuxColumn::Kind::kPlain, attr, attr});
      continue;
    }
    // Only compressible uses: COUNT collapses into the shared COUNT(*);
    // SUM and AVG need a SUM column; insert-only MIN/MAX their own.
    auto it = compressible_by_attr.find(attr);
    MD_CHECK(it != compressible_by_attr.end());  // Reduction kept it.
    bool needs_sum = false;
    bool needs_min = false;
    bool needs_max = false;
    for (const AggregateSpec& agg : it->second) {
      if (agg.fn == AggFn::kSum || agg.fn == AggFn::kAvg) needs_sum = true;
      if (agg.fn == AggFn::kMin) needs_min = true;
      if (agg.fn == AggFn::kMax) needs_max = true;
    }
    if (needs_sum) {
      aggregated.push_back(
          AuxColumn{AuxColumn::Kind::kSum, attr, SumColumnName(attr)});
    }
    if (needs_min) {
      aggregated.push_back(
          AuxColumn{AuxColumn::Kind::kMin, attr, MinColumnName(attr)});
    }
    if (needs_max) {
      aggregated.push_back(
          AuxColumn{AuxColumn::Kind::kMax, attr, MaxColumnName(attr)});
    }
  }
  plan.columns.insert(plan.columns.end(), aggregated.begin(),
                      aggregated.end());

  // Step 1: include the COUNT(*) (never superfluous here — the key was
  // projected away, so duplicates are possible).
  plan.columns.push_back(
      AuxColumn{AuxColumn::Kind::kCountStar, "", kCountStarColumn});
  return plan;
}

}  // namespace mindetail
