// Auxiliary-view size estimation from table statistics.
//
// The paper's Sec. 1.1 sizing argument is an instance of a general
// estimate: after local reduction and smart duplicate compression, the
// fact auxiliary view holds ≈ min(retained rows, ∏ distinct(gᵢ)) rows,
// where gᵢ are its grouping columns. This module computes that estimate
// from per-table statistics (row and per-column distinct counts) using
// textbook selectivity rules, so a warehouse designer can predict the
// detail footprint of a candidate view *before* materializing anything.

#ifndef MINDETAIL_CORE_ESTIMATE_H_
#define MINDETAIL_CORE_ESTIMATE_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/derive.h"

namespace mindetail {

// Per-table statistics: total rows and per-attribute distinct counts.
struct TableStats {
  uint64_t rows = 0;
  std::map<std::string, uint64_t> distinct;
};

// Scans `table` once and counts rows plus exact per-column distinct
// values.
TableStats ComputeTableStats(const Table& table);

// Statistics for every table referenced by `derivation`, computed from
// the catalog's current contents.
Result<std::map<std::string, TableStats>> ComputeAllStats(
    const Catalog& catalog, const Derivation& derivation);

// The estimate for one auxiliary view.
struct AuxSizeEstimate {
  bool eliminated = false;
  double retained_rows = 0;   // After local + join reductions.
  double rows = 0;            // After duplicate compression.
  uint64_t paper_bytes = 0;   // rows × columns × 4 bytes.
};

// Estimates the auxiliary view of `table` under `derivation`:
//  * local conditions scale rows by textbook selectivities
//    (= → 1/distinct, ≠ → 1−1/distinct, range → 1/3),
//  * join reductions scale by the retained fraction of each dependency,
//  * compression caps rows at the product of the grouping columns'
//    distinct counts (attribute-independence assumption).
Result<AuxSizeEstimate> EstimateAuxSize(
    const Derivation& derivation, const std::string& table,
    const std::map<std::string, TableStats>& stats);

// Sum of paper-model bytes across all non-eliminated auxiliary views.
Result<uint64_t> EstimateTotalDetailBytes(
    const Derivation& derivation,
    const std::map<std::string, TableStats>& stats);

}  // namespace mindetail

#endif  // MINDETAIL_CORE_ESTIMATE_H_
