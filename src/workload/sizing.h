// The analytic storage model of paper Sec. 1.1.
//
// The paper sizes the grocery chain's fact table and the derived
// auxiliary view with Kimball's real-life case-study parameters:
//
//   fact tuples = days × stores × products-sold-per-store-day ×
//                 transactions-per-product
//               = 730 × 300 × 3000 × 20 = 13,140,000,000
//   fact bytes  = tuples × 5 fields × 4 bytes ≈ 245 GB
//
//   aux tuples  = (days × year-fraction) × distinct-products-per-day
//               = 365 × 30,000 = 10,950,000
//   aux bytes   = tuples × 4 fields × 4 bytes ≈ 167 MB
//
// This module reproduces that arithmetic exactly and generalizes it to
// the compression sweep of experiment E6.

#ifndef MINDETAIL_WORKLOAD_SIZING_H_
#define MINDETAIL_WORKLOAD_SIZING_H_

#include <cstdint>
#include <string>

namespace mindetail {

struct StorageModel {
  // The paper's parameters (Kimball case studies, [12] pp. 46-47, 62).
  int64_t days = 730;
  int64_t stores = 300;
  int64_t products = 30000;
  int64_t products_sold_per_store_day = 3000;
  int64_t transactions_per_product = 20;

  int64_t fact_fields = 5;  // sale(id, timeid, productid, storeid, price).
  int64_t aux_fields = 4;   // saleDTL(timeid, productid, sum, cnt).
  int64_t bytes_per_field = 4;

  // Fact-table size (the full current detail a naive warehouse stores).
  int64_t FactTuples() const {
    return days * stores * products_sold_per_store_day *
           transactions_per_product;
  }
  uint64_t FactBytes() const {
    return static_cast<uint64_t>(FactTuples()) * fact_fields *
           bytes_per_field;
  }

  // Auxiliary-view size after local reduction (year filter keeps
  // `year_fraction` of the days) and smart duplicate compression
  // (`distinct_products_per_day` groups per retained day).
  int64_t AuxTuples(double year_fraction,
                    int64_t distinct_products_per_day) const {
    return static_cast<int64_t>(static_cast<double>(days) * year_fraction) *
           distinct_products_per_day;
  }
  uint64_t AuxBytes(double year_fraction,
                    int64_t distinct_products_per_day) const {
    return static_cast<uint64_t>(
               AuxTuples(year_fraction, distinct_products_per_day)) *
           aux_fields * bytes_per_field;
  }

  // PSJ-style detail size: local reduction only (year filter), one row
  // per fact tuple, key retained → 4 stored fields
  // (id, timeid, productid, price).
  int64_t PsjTuples(double year_fraction) const {
    return static_cast<int64_t>(static_cast<double>(FactTuples()) *
                                year_fraction);
  }
  uint64_t PsjBytes(double year_fraction, int64_t psj_fields = 4) const {
    return static_cast<uint64_t>(PsjTuples(year_fraction)) * psj_fields *
           bytes_per_field;
  }

  // fact bytes / aux bytes.
  double CompressionFactor(double year_fraction,
                           int64_t distinct_products_per_day) const {
    return static_cast<double>(FactBytes()) /
           static_cast<double>(AuxBytes(year_fraction,
                                        distinct_products_per_day));
  }

  // A formatted report of the Sec. 1.1 numbers (used by bench E5).
  std::string Report() const;
};

}  // namespace mindetail

#endif  // MINDETAIL_WORKLOAD_SIZING_H_
