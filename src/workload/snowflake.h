// Parameterized snowflake-schema generator: a fact table whose
// dimension tree has configurable depth and fan-out. Used by the
// property tests (random GPSJ views over random snowflakes) and by the
// derivation-scaling bench (E9).

#ifndef MINDETAIL_WORKLOAD_SNOWFLAKE_H_
#define MINDETAIL_WORKLOAD_SNOWFLAKE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"

namespace mindetail {

struct SnowflakeParams {
  int depth = 2;    // Levels of dimension tables below the fact table.
  int fanout = 2;   // Children per table at every level.
  int64_t fact_rows = 500;
  int64_t dim_rows = 40;  // Rows per dimension table.
  uint64_t seed = 7;
};

struct SnowflakeWarehouse {
  Catalog catalog;
  std::string fact = "fact";
  // All dimension table names, breadth-first from the fact table.
  std::vector<std::string> dims;
  // Dimension → its parent table in the tree (fact or another dim).
  std::map<std::string, std::string> parent;
  // Dimension → the attribute of its parent that references it.
  std::map<std::string, std::string> link_attr;
};

// Table schemas:
//   fact(id, <link attrs…>, m1 INT64, m2 DOUBLE)
//   dim_*(id, <link attrs…>, a INT64, b DOUBLE, s STRING)
// `a` is a small categorical (good group-by target), `b` a measure,
// `s` a low-cardinality string. All link attributes carry declared
// referential integrity.
Result<SnowflakeWarehouse> GenerateSnowflake(const SnowflakeParams& params);

}  // namespace mindetail

#endif  // MINDETAIL_WORKLOAD_SNOWFLAKE_H_
