// Skewed workload generation: Zipfian item sampling and a bursty
// query/update stream built on it. Hot-key skew is what makes the
// adaptive roll-up lattice (serve/lattice.h) promote anything, so the
// differential tests and benches both draw their workloads from here —
// seeded and fully deterministic via common/rng.h.

#ifndef MINDETAIL_WORKLOAD_ZIPF_H_
#define MINDETAIL_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mindetail {

// Samples item ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^exponent — rank 0
// is the hottest item. The CDF is precomputed once; Sample is a binary
// search, deterministic given the Rng's state.
class ZipfSampler {
 public:
  // n ≥ 1; exponent ≥ 0 (0 = uniform, ~1 = classic Zipf, larger =
  // sharper skew).
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // Normalized, ascending, back() == 1.0.
};

// A two-phase stream of item picks: calm phases draw Zipf-distributed
// items; burst phases hammer one hot item (re-drawn per burst from the
// Zipf head) for `burst_len` consecutive picks. Models the flash-crowd
// pattern that should drive lattice promotions — a grouping that is
// merely warm stays a candidate, a bursted grouping crosses the
// promotion threshold quickly.
struct BurstyZipfParams {
  size_t num_items = 8;
  double exponent = 1.2;
  size_t calm_len = 12;   // Picks per calm phase.
  size_t burst_len = 6;   // Picks per burst phase.
  uint64_t seed = 7;
};

class BurstyZipfStream {
 public:
  explicit BurstyZipfStream(const BurstyZipfParams& params);

  // The next item index in [0, num_items).
  size_t Next();

  bool in_burst() const { return phase_left_ > 0 && bursting_; }

 private:
  ZipfSampler sampler_;
  BurstyZipfParams params_;
  Rng rng_;
  bool bursting_ = false;
  size_t phase_left_ = 0;
  size_t burst_item_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_WORKLOAD_ZIPF_H_
