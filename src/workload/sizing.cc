#include "workload/sizing.h"

#include "common/bytes.h"
#include "common/strings.h"

namespace mindetail {

std::string StorageModel::Report() const {
  const double year_fraction = 0.5;
  const int64_t worst_case_distinct = products;  // All products sell daily.
  std::string out;
  out += "Section 1.1 storage analysis (paper parameters)\n";
  out += StrCat("  time dimension:      ", days, " days (2 years)\n");
  out += StrCat("  store dimension:     ", stores, " stores\n");
  out += StrCat("  product dimension:   ", FormatWithCommas(products),
                " products, ",
                FormatWithCommas(products_sold_per_store_day),
                " sell per store-day\n");
  out += StrCat("  transactions/product: ", transactions_per_product, "\n");
  out += StrCat("  fact tuples:         ", FormatWithCommas(FactTuples()),
                "\n");
  out += StrCat("  fact size:           ", FormatBytes(FactBytes()), " (",
                fact_fields, " fields x ", bytes_per_field, " bytes)\n");
  out += StrCat("  aux tuples (worst):  ",
                FormatWithCommas(AuxTuples(year_fraction,
                                           worst_case_distinct)),
                "\n");
  out += StrCat("  aux size (worst):    ",
                FormatBytes(AuxBytes(year_fraction, worst_case_distinct)),
                " (", aux_fields, " fields x ", bytes_per_field,
                " bytes)\n");
  out += StrCat("  reduction factor:    ",
                FormatDouble(CompressionFactor(year_fraction,
                                               worst_case_distinct),
                             1),
                "x\n");
  return out;
}

}  // namespace mindetail
