// Referential-integrity-consistent delta streams against the retail
// star schema (and generic helpers for arbitrary keyed tables). The
// generator reads the *current* source catalog to pick valid foreign
// keys and existing rows, so the produced deltas can be applied both to
// the source (ground truth) and to any maintainer under test.

#ifndef MINDETAIL_WORKLOAD_DELTAS_H_
#define MINDETAIL_WORKLOAD_DELTAS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "relational/catalog.h"
#include "relational/delta.h"

namespace mindetail {

// Deterministic generator of retail change batches. Sales inserted by
// this generator get fresh ids above any existing id.
class RetailDeltaGenerator {
 public:
  explicit RetailDeltaGenerator(uint64_t seed) : rng_(seed) {}

  // `n` new sales referencing randomly chosen existing dimension rows.
  Result<Delta> SaleInsertions(const Catalog& source, size_t n);

  // `n` randomly chosen existing sales, as full before-images.
  Result<Delta> SaleDeletions(const Catalog& source, size_t n);

  // `n` price changes on randomly chosen existing sales.
  Result<Delta> SalePriceUpdates(const Catalog& source, size_t n);

  // A mixed fact batch.
  Result<Delta> MixedSaleBatch(const Catalog& source, size_t inserts,
                               size_t deletes, size_t updates);

  // `n` brand-new products (no sales reference them yet).
  Result<Delta> ProductInsertions(const Catalog& source, size_t n);

  // `n` brand changes on randomly chosen existing products (a protected
  // update: brand is preserved in views but never a condition).
  Result<Delta> ProductBrandUpdates(const Catalog& source, size_t n);

 private:
  // Picks `n` distinct random rows of `table` (fewer if the table is
  // smaller).
  std::vector<Tuple> PickRows(const Table& table, size_t n);

  Rng rng_;
};

// The largest int64 value in `column` of `table`, or 0 if empty.
int64_t MaxInt64In(const Table& table, const std::string& column);

}  // namespace mindetail

#endif  // MINDETAIL_WORKLOAD_DELTAS_H_
