#include "workload/deltas.h"

#include <set>

#include "common/strings.h"

namespace mindetail {

int64_t MaxInt64In(const Table& table, const std::string& column) {
  std::optional<size_t> idx = table.schema().IndexOf(column);
  MD_CHECK(idx.has_value());
  int64_t max_value = 0;
  for (const Tuple& row : table.rows()) {
    max_value = std::max(max_value, row[*idx].AsInt64());
  }
  return max_value;
}

std::vector<Tuple> RetailDeltaGenerator::PickRows(const Table& table,
                                                  size_t n) {
  std::vector<Tuple> out;
  if (table.NumRows() == 0) return out;
  n = std::min(n, table.NumRows());
  std::set<size_t> chosen;
  while (chosen.size() < n) {
    chosen.insert(static_cast<size_t>(rng_.NextBelow(table.NumRows())));
  }
  out.reserve(chosen.size());
  for (size_t idx : chosen) out.push_back(table.row(idx));
  return out;
}

Result<Delta> RetailDeltaGenerator::SaleInsertions(const Catalog& source,
                                                   size_t n) {
  MD_ASSIGN_OR_RETURN(const Table* sale, source.GetTable("sale"));
  MD_ASSIGN_OR_RETURN(const Table* time, source.GetTable("time"));
  MD_ASSIGN_OR_RETURN(const Table* product, source.GetTable("product"));
  MD_ASSIGN_OR_RETURN(const Table* store, source.GetTable("store"));
  if (time->Empty() || product->Empty() || store->Empty()) {
    return FailedPreconditionError("dimensions are empty");
  }
  Delta delta;
  int64_t next_id = MaxInt64In(*sale, "id") + 1;
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = time->row(rng_.NextBelow(time->NumRows()));
    const Tuple& p = product->row(rng_.NextBelow(product->NumRows()));
    const Tuple& s = store->row(rng_.NextBelow(store->NumRows()));
    const double price = static_cast<double>(rng_.NextInt(2, 400)) / 2.0;
    delta.inserts.push_back(
        {Value(next_id++), t[0], p[0], s[0], Value(price)});
  }
  return delta;
}

Result<Delta> RetailDeltaGenerator::SaleDeletions(const Catalog& source,
                                                  size_t n) {
  MD_ASSIGN_OR_RETURN(const Table* sale, source.GetTable("sale"));
  Delta delta;
  delta.deletes = PickRows(*sale, n);
  return delta;
}

Result<Delta> RetailDeltaGenerator::SalePriceUpdates(const Catalog& source,
                                                     size_t n) {
  MD_ASSIGN_OR_RETURN(const Table* sale, source.GetTable("sale"));
  const size_t price_idx = *sale->schema().IndexOf("price");
  Delta delta;
  for (Tuple& before : PickRows(*sale, n)) {
    Tuple after = before;
    after[price_idx] =
        Value(static_cast<double>(rng_.NextInt(2, 400)) / 2.0);
    delta.updates.push_back(Update{std::move(before), std::move(after)});
  }
  return delta;
}

Result<Delta> RetailDeltaGenerator::MixedSaleBatch(const Catalog& source,
                                                   size_t inserts,
                                                   size_t deletes,
                                                   size_t updates) {
  Delta out;
  MD_ASSIGN_OR_RETURN(Delta del, SaleDeletions(source, deletes));
  // Updates must not collide with deleted rows; pick them against the
  // rows that survive. Simplest deterministic approach: pick updates
  // first from rows not already chosen for deletion.
  std::set<int64_t> deleted_ids;
  for (const Tuple& row : del.deletes) deleted_ids.insert(row[0].AsInt64());
  MD_ASSIGN_OR_RETURN(const Table* sale, source.GetTable("sale"));
  const size_t price_idx = *sale->schema().IndexOf("price");
  size_t produced = 0;
  for (const Tuple& row : PickRows(*sale, updates + deletes)) {
    if (produced >= updates) break;
    if (deleted_ids.count(row[0].AsInt64()) > 0) continue;
    Tuple after = row;
    after[price_idx] =
        Value(static_cast<double>(rng_.NextInt(2, 400)) / 2.0);
    out.updates.push_back(Update{row, std::move(after)});
    ++produced;
  }
  out.deletes = std::move(del.deletes);
  MD_ASSIGN_OR_RETURN(Delta ins, SaleInsertions(source, inserts));
  out.inserts = std::move(ins.inserts);
  return out;
}

Result<Delta> RetailDeltaGenerator::ProductInsertions(const Catalog& source,
                                                      size_t n) {
  MD_ASSIGN_OR_RETURN(const Table* product, source.GetTable("product"));
  Delta delta;
  int64_t next_id = MaxInt64In(*product, "id") + 1;
  for (size_t i = 0; i < n; ++i) {
    const int64_t id = next_id++;
    delta.inserts.push_back({Value(id),
                             Value(StrCat("brand", rng_.NextInt(0, 19))),
                             Value(StrCat("cat", rng_.NextInt(0, 7)))});
  }
  return delta;
}

Result<Delta> RetailDeltaGenerator::ProductBrandUpdates(
    const Catalog& source, size_t n) {
  MD_ASSIGN_OR_RETURN(const Table* product, source.GetTable("product"));
  const size_t brand_idx = *product->schema().IndexOf("brand");
  Delta delta;
  for (Tuple& before : PickRows(*product, n)) {
    Tuple after = before;
    after[brand_idx] = Value(StrCat("brand", rng_.NextInt(0, 19)));
    delta.updates.push_back(Update{std::move(before), std::move(after)});
  }
  return delta;
}

}  // namespace mindetail
