#include "workload/snowflake.h"

#include <deque>

#include "common/rng.h"
#include "common/strings.h"

namespace mindetail {

namespace {

struct PendingTable {
  std::string name;
  int level;  // 0 = fact.
};

}  // namespace

Result<SnowflakeWarehouse> GenerateSnowflake(const SnowflakeParams& params) {
  if (params.depth < 0 || params.fanout < 0 || params.fact_rows <= 0 ||
      params.dim_rows <= 0) {
    return InvalidArgumentError("snowflake parameters out of range");
  }
  SnowflakeWarehouse warehouse;
  Catalog& catalog = warehouse.catalog;
  Rng rng(params.seed);

  // Lay out the tree breadth-first, assigning each table its children.
  std::map<std::string, std::vector<std::string>> children;
  std::deque<PendingTable> frontier = {{warehouse.fact, 0}};
  int dim_counter = 0;
  while (!frontier.empty()) {
    PendingTable current = frontier.front();
    frontier.pop_front();
    if (current.level >= params.depth) continue;
    for (int c = 0; c < params.fanout; ++c) {
      const std::string child = StrCat("dim", dim_counter++);
      children[current.name].push_back(child);
      warehouse.dims.push_back(child);
      warehouse.parent.emplace(child, current.name);
      warehouse.link_attr.emplace(child, StrCat("fk_", child));
      frontier.push_back({child, current.level + 1});
    }
  }

  // Create dimension tables bottom-up is unnecessary for schema
  // creation; create all tables first, then add foreign keys.
  auto make_schema = [&](const std::string& table,
                         bool is_fact) -> Schema {
    std::vector<Attribute> attrs = {{"id", ValueType::kInt64}};
    auto it = children.find(table);
    if (it != children.end()) {
      for (const std::string& child : it->second) {
        attrs.push_back({StrCat("fk_", child), ValueType::kInt64});
      }
    }
    if (is_fact) {
      attrs.push_back({"m1", ValueType::kInt64});
      attrs.push_back({"m2", ValueType::kDouble});
    } else {
      attrs.push_back({"a", ValueType::kInt64});
      attrs.push_back({"b", ValueType::kDouble});
      attrs.push_back({"s", ValueType::kString});
    }
    return Schema(std::move(attrs));
  };

  MD_RETURN_IF_ERROR(catalog.CreateTable(
      warehouse.fact, make_schema(warehouse.fact, true), "id"));
  for (const std::string& dim : warehouse.dims) {
    MD_RETURN_IF_ERROR(
        catalog.CreateTable(dim, make_schema(dim, false), "id"));
  }
  for (const std::string& dim : warehouse.dims) {
    MD_RETURN_IF_ERROR(catalog.AddForeignKey(
        warehouse.parent.at(dim), warehouse.link_attr.at(dim), dim));
  }

  // Populate dimensions, then the fact table (respecting referential
  // integrity — every foreign key points at an existing row).
  auto fill_rows = [&](const std::string& table, int64_t rows,
                       bool is_fact) -> Status {
    MD_ASSIGN_OR_RETURN(Table* t, catalog.MutableTable(table));
    const std::vector<std::string>& kids =
        children.count(table) > 0 ? children.at(table)
                                  : std::vector<std::string>{};
    for (int64_t i = 1; i <= rows; ++i) {
      Tuple row = {Value(i)};
      for (const std::string& kid : kids) {
        (void)kid;
        row.push_back(Value(rng.NextInt(1, params.dim_rows)));
      }
      if (is_fact) {
        row.push_back(Value(rng.NextInt(0, 9)));
        row.push_back(Value(static_cast<double>(rng.NextInt(2, 100)) / 2.0));
      } else {
        row.push_back(Value(rng.NextInt(0, 4)));
        row.push_back(Value(static_cast<double>(rng.NextInt(2, 40)) / 2.0));
        row.push_back(Value(StrCat("v", rng.NextInt(0, 6))));
      }
      MD_RETURN_IF_ERROR(t->Insert(std::move(row)));
    }
    return Status::Ok();
  };

  for (const std::string& dim : warehouse.dims) {
    MD_RETURN_IF_ERROR(fill_rows(dim, params.dim_rows, false));
  }
  MD_RETURN_IF_ERROR(fill_rows(warehouse.fact, params.fact_rows, true));
  return warehouse;
}

}  // namespace mindetail
