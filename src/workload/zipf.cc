#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace mindetail {

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  if (n == 0) n = 1;
  cdf_.reserve(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding shortfall.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::distance(cdf_.begin(), it));
}

BurstyZipfStream::BurstyZipfStream(const BurstyZipfParams& params)
    : sampler_(params.num_items, params.exponent),
      params_(params),
      rng_(params.seed) {
  phase_left_ = params_.calm_len;
}

size_t BurstyZipfStream::Next() {
  if (phase_left_ == 0) {
    bursting_ = !bursting_;
    if (bursting_) {
      phase_left_ = params_.burst_len;
      burst_item_ = sampler_.Sample(rng_);
    } else {
      phase_left_ = params_.calm_len;
    }
  }
  --phase_left_;
  return bursting_ ? burst_item_ : sampler_.Sample(rng_);
}

}  // namespace mindetail
