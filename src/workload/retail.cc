#include "workload/retail.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace mindetail {

Result<RetailWarehouse> GenerateRetail(const RetailParams& params) {
  if (params.days <= 0 || params.stores <= 0 || params.products <= 0 ||
      params.products_sold_per_store_day <= 0 ||
      params.transactions_per_product <= 0) {
    return InvalidArgumentError("retail parameters must be positive");
  }
  RetailWarehouse warehouse;
  warehouse.params = params;
  Catalog& catalog = warehouse.catalog;
  Rng rng(params.seed);

  MD_RETURN_IF_ERROR(catalog.CreateTable(
      "time",
      Schema({{"id", ValueType::kInt64},
              {"day", ValueType::kInt64},
              {"month", ValueType::kInt64},
              {"year", ValueType::kInt64}}),
      "id"));
  MD_RETURN_IF_ERROR(catalog.CreateTable(
      "product",
      Schema({{"id", ValueType::kInt64},
              {"brand", ValueType::kString},
              {"category", ValueType::kString}}),
      "id"));
  MD_RETURN_IF_ERROR(catalog.CreateTable(
      "store",
      Schema({{"id", ValueType::kInt64},
              {"street_address", ValueType::kString},
              {"city", ValueType::kString},
              {"country", ValueType::kString},
              {"manager", ValueType::kString}}),
      "id"));
  MD_RETURN_IF_ERROR(catalog.CreateTable(
      "sale",
      Schema({{"id", ValueType::kInt64},
              {"timeid", ValueType::kInt64},
              {"productid", ValueType::kInt64},
              {"storeid", ValueType::kInt64},
              {"price", ValueType::kDouble}}),
      "id"));
  MD_RETURN_IF_ERROR(catalog.AddForeignKey("sale", "timeid", "time"));
  MD_RETURN_IF_ERROR(catalog.AddForeignKey("sale", "productid", "product"));
  MD_RETURN_IF_ERROR(catalog.AddForeignKey("sale", "storeid", "store"));

  // Time: days split evenly across 1996 and 1997.
  {
    MD_ASSIGN_OR_RETURN(Table* time, catalog.MutableTable("time"));
    for (int64_t i = 1; i <= params.days; ++i) {
      const int64_t year = (i - 1) < params.days / 2 ? 1996 : 1997;
      const int64_t month = ((i - 1) / 30) % 12 + 1;
      MD_RETURN_IF_ERROR(
          time->Insert({Value(i), Value(i), Value(month), Value(year)}));
    }
  }
  // Products: brands and categories are coarser groupings of the id.
  {
    MD_ASSIGN_OR_RETURN(Table* product, catalog.MutableTable("product"));
    const int64_t brands = std::max<int64_t>(1, params.products / 10);
    const int64_t categories = std::max<int64_t>(1, params.products / 25);
    for (int64_t i = 1; i <= params.products; ++i) {
      MD_RETURN_IF_ERROR(product->Insert(
          {Value(i), Value(StrCat("brand", i % brands)),
           Value(StrCat("cat", i % categories))}));
    }
  }
  {
    MD_ASSIGN_OR_RETURN(Table* store, catalog.MutableTable("store"));
    for (int64_t i = 1; i <= params.stores; ++i) {
      MD_RETURN_IF_ERROR(store->Insert(
          {Value(i), Value(StrCat(i, " Main Street")),
           Value(StrCat("city", i % 13)), Value("DK"),
           Value(StrCat("manager", i % 7))}));
    }
  }

  // Sales: per day, a rotating pool of distinct products sells
  // chain-wide; each store sells `products_sold_per_store_day` of them
  // in `transactions_per_product` transactions. Prices are multiples of
  // 0.5, keeping double sums exact.
  {
    MD_ASSIGN_OR_RETURN(Table* sale, catalog.MutableTable("sale"));
    const int64_t pool_size = std::clamp<int64_t>(
        static_cast<int64_t>(params.daily_distinct_fraction *
                             static_cast<double>(params.products)),
        1, params.products);
    int64_t sale_id = 1;
    for (int64_t d = 1; d <= params.days; ++d) {
      const int64_t pool_base = (d * 131) % params.products;
      for (int64_t s = 1; s <= params.stores; ++s) {
        for (int64_t k = 0; k < params.products_sold_per_store_day; ++k) {
          const int64_t pool_slot = (s * 7 + k) % pool_size;
          const int64_t product =
              (pool_base + pool_slot) % params.products + 1;
          for (int64_t t = 0; t < params.transactions_per_product; ++t) {
            const double price =
                static_cast<double>(rng.NextInt(2, 400)) / 2.0;
            MD_RETURN_IF_ERROR(sale->Insert({Value(sale_id++), Value(d),
                                             Value(product), Value(s),
                                             Value(price)}));
          }
        }
      }
    }
  }
  return warehouse;
}

Result<GpsjViewDef> ProductSalesView(const Catalog& catalog) {
  GpsjViewBuilder builder("product_sales");
  builder.From("sale")
      .From("time")
      .From("product")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .Join("sale", "productid", "product")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .CountDistinct("product", "brand", "DifferentBrands");
  return builder.Build(catalog);
}

Result<GpsjViewDef> ProductSalesCsmasView(const Catalog& catalog) {
  GpsjViewBuilder builder("product_sales_csmas");
  builder.From("sale")
      .From("time")
      .Where("time", "year", CompareOp::kEq, Value(int64_t{1997}))
      .Join("sale", "timeid", "time")
      .GroupBy("time", "month")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount")
      .Avg("sale", "price", "AvgPrice");
  return builder.Build(catalog);
}

Result<GpsjViewDef> ProductSalesMaxView(const Catalog& catalog) {
  GpsjViewBuilder builder("product_sales_max");
  builder.From("sale")
      .GroupBy("sale", "productid")
      .Max("sale", "price", "MaxPrice")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount");
  return builder.Build(catalog);
}

Result<GpsjViewDef> SalesByProductKeyView(const Catalog& catalog) {
  GpsjViewBuilder builder("sales_by_product");
  builder.From("sale")
      .From("product")
      .Join("sale", "productid", "product")
      .GroupBy("product", "id", "ProductId")
      .GroupBy("product", "brand", "Brand")
      .Sum("sale", "price", "TotalPrice")
      .CountStar("TotalCount");
  return builder.Build(catalog);
}

}  // namespace mindetail
