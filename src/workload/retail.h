// The Kimball-style grocery-chain retail star schema of paper Sec. 1.1:
//
//   sale(id, timeid, productid, storeid, price)     — fact
//   time(id, day, month, year)                      — dimension
//   product(id, brand, category)                    — dimension
//   store(id, street_address, city, country, manager) — dimension
//
// with referential integrity from sale.{timeid,productid,storeid} to the
// dimension keys. The generator follows the paper's cardinality model
// (days × stores × products-sold-per-store-day × transactions-per-
// product) at a configurable scale, and controls the number of distinct
// products selling per day — the knob that drives smart duplicate
// compression between its worst and best cases.

#ifndef MINDETAIL_WORKLOAD_RETAIL_H_
#define MINDETAIL_WORKLOAD_RETAIL_H_

#include <cstdint>

#include "common/result.h"
#include "gpsj/builder.h"
#include "relational/catalog.h"

namespace mindetail {

struct RetailParams {
  // Dimension cardinalities. Days are split evenly across two years
  // (1996 and 1997) as in the paper.
  int64_t days = 30;
  int64_t stores = 4;
  int64_t products = 200;

  // Fact cardinality model (paper Sec. 1.1): per store and day,
  // `products_sold_per_store_day` distinct products sell, each in
  // `transactions_per_product` transactions.
  int64_t products_sold_per_store_day = 20;
  int64_t transactions_per_product = 3;

  // How many distinct products sell chain-wide on any given day, as a
  // fraction of the catalog. 1.0 is the paper's compression worst case.
  double daily_distinct_fraction = 0.5;

  uint64_t seed = 42;

  int64_t FactRows() const {
    return days * stores * products_sold_per_store_day *
           transactions_per_product;
  }
};

struct RetailWarehouse {
  Catalog catalog;
  RetailParams params;
};

// Generates the populated star schema. Prices are multiples of 0.5 so
// that floating-point sums stay exact.
Result<RetailWarehouse> GenerateRetail(const RetailParams& params);

// The paper's `product_sales` view (Sec. 1.1): per month of 1997, total
// price, transaction count, and number of distinct brands sold.
Result<GpsjViewDef> ProductSalesView(const Catalog& catalog);

// The same view without the DISTINCT aggregate — all CSMAS, used by
// throughput benches that isolate the incremental path.
Result<GpsjViewDef> ProductSalesCsmasView(const Catalog& catalog);

// The paper's `product_sales_max` view (Sec. 3.2): per product, MAX and
// SUM of price plus a count — exercises plain-column compression and
// the f(a · cnt0) rule.
Result<GpsjViewDef> ProductSalesMaxView(const Catalog& catalog);

// A view grouped on the product key — its extended join graph carries a
// `k` annotation and the fact auxiliary view is eliminable (Sec. 3.3).
Result<GpsjViewDef> SalesByProductKeyView(const Catalog& catalog);

}  // namespace mindetail

#endif  // MINDETAIL_WORKLOAD_RETAIL_H_
