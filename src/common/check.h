// Assertion macros for programmer errors.
//
// `MD_CHECK` family macros abort the process with a diagnostic when their
// condition fails. They are for invariants that indicate a bug in the
// caller or in the library itself — recoverable failures (bad user input,
// malformed view definitions, constraint violations in deltas) are
// reported through `Status`/`Result` instead (see status.h).

#ifndef MINDETAIL_COMMON_CHECK_H_
#define MINDETAIL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mindetail {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "MD_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace mindetail

// Aborts if `cond` is false. Always evaluated (also in release builds):
// the library's invariants are cheap and violating them silently would
// corrupt maintained views.
#define MD_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mindetail::internal_check::CheckFailed(__FILE__, __LINE__,    \
                                               #cond);                \
    }                                                                 \
  } while (0)

#define MD_CHECK_EQ(a, b) MD_CHECK((a) == (b))
#define MD_CHECK_NE(a, b) MD_CHECK((a) != (b))
#define MD_CHECK_LT(a, b) MD_CHECK((a) < (b))
#define MD_CHECK_LE(a, b) MD_CHECK((a) <= (b))
#define MD_CHECK_GT(a, b) MD_CHECK((a) > (b))
#define MD_CHECK_GE(a, b) MD_CHECK((a) >= (b))

#endif  // MINDETAIL_COMMON_CHECK_H_
