// Result<T>: a value or a Status. Mirrors absl::StatusOr.

#ifndef MINDETAIL_COMMON_RESULT_H_
#define MINDETAIL_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace mindetail {

// Holds either a `T` or a non-OK `Status` describing why no value was
// produced. Accessing the value of a non-OK Result is a programmer error
// and aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit, so functions can `return value;` and
  // `return SomeError(...);` symmetrically (matches absl::StatusOr).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    MD_CHECK(!status_.ok());  // An OK status must carry a value.
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    MD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    MD_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace mindetail

// Assigns the value of a Result expression to `lhs`, or returns its
// error Status from the enclosing function.
#define MD_ASSIGN_OR_RETURN(lhs, expr)                       \
  MD_ASSIGN_OR_RETURN_IMPL_(                                 \
      MD_RESULT_CONCAT_(md_result__, __LINE__), lhs, expr)

#define MD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define MD_RESULT_CONCAT_(a, b) MD_RESULT_CONCAT_IMPL_(a, b)
#define MD_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // MINDETAIL_COMMON_RESULT_H_
