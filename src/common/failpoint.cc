#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/strings.h"

namespace mindetail {

namespace failpoint_internal {
std::atomic<bool> g_enabled{false};
}  // namespace failpoint_internal

namespace {

// The full site registry. Keep in sync with the MD_FAILPOINT call
// sites; Arm() rejects names not listed here, and the crash-recovery
// harness iterates this list.
constexpr const char* kKnownSites[] = {
    "wal.append.before_write",
    "wal.append.before_sync",
    "wal.append.after_sync",
    "warehouse.apply.after_log",
    "warehouse.apply.before_ack",
    "engine.apply.commit",
    "engine.root.after_aux_merge",
    "engine.dim.after_aux_merge",
    "checkpoint.after_temp",
    "checkpoint.after_rename",
    "checkpoint.after_current",
    "warehouse.replica.after_log",
    "replication.transfer.after_copy",
    "replication.transfer.after_current",
    "warehouse.cancel.before_wal_abort",
    "warehouse.cancel.after_wal_abort",
};

struct ArmedSite {
  Failpoints::Action action = Failpoints::Action::kError;
  int trigger_on_hit = 1;
  int hits_while_armed = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, ArmedSite> armed;
  std::map<std::string, uint64_t> hit_counts;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

bool IsKnownSite(const std::string& site) {
  for (const char* known : kKnownSites) {
    if (site == known) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> Failpoints::KnownSites() {
  return std::vector<std::string>(std::begin(kKnownSites),
                                  std::end(kKnownSites));
}

std::vector<Failpoints::SiteInfo> Failpoints::ListSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<SiteInfo> sites;
  sites.reserve(std::size(kKnownSites));
  for (const char* known : kKnownSites) {
    SiteInfo info;
    info.site = known;
    if (auto it = registry.armed.find(info.site);
        it != registry.armed.end()) {
      info.armed = true;
      info.action = it->second.action;
      info.trigger_on_hit = it->second.trigger_on_hit;
    }
    if (auto it = registry.hit_counts.find(info.site);
        it != registry.hit_counts.end()) {
      info.hits = it->second;
    }
    sites.push_back(std::move(info));
  }
  return sites;
}

Status Failpoints::Arm(const std::string& site, Action action,
                       int trigger_on_hit) {
  if (!IsKnownSite(site)) {
    return InvalidArgumentError(
        StrCat("unknown failpoint site '", site, "'"));
  }
  if (trigger_on_hit < 1) {
    return InvalidArgumentError(
        StrCat("failpoint trigger_on_hit must be >= 1, got ",
               trigger_on_hit));
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed[site] = ArmedSite{action, trigger_on_hit, 0};
  failpoint_internal::g_enabled.store(true, std::memory_order_release);
  return Status::Ok();
}

void Failpoints::Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.erase(site);
  if (registry.armed.empty()) {
    failpoint_internal::g_enabled.store(false, std::memory_order_release);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.clear();
  registry.hit_counts.clear();
  failpoint_internal::g_enabled.store(false, std::memory_order_release);
}

Status Failpoints::ArmFromEnv() {
  const char* env = std::getenv("MINDETAIL_FAILPOINT");
  if (env == nullptr || *env == '\0') return Status::Ok();
  const std::vector<std::string> parts = Split(env, ':');
  if (parts.size() < 2 || parts.size() > 3) {
    return InvalidArgumentError(StrCat(
        "MINDETAIL_FAILPOINT must be 'site:crash|error[:trigger]', got '",
        env, "'"));
  }
  Action action;
  if (parts[1] == "crash") {
    action = Action::kCrash;
  } else if (parts[1] == "error") {
    action = Action::kError;
  } else {
    return InvalidArgumentError(
        StrCat("unknown failpoint action '", parts[1], "'"));
  }
  int trigger = 1;
  if (parts.size() == 3) trigger = std::atoi(parts[2].c_str());
  return Arm(parts[0], action, trigger);
}

uint64_t Failpoints::HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.hit_counts.find(site);
  return it == registry.hit_counts.end() ? 0 : it->second;
}

Status Failpoints::Hit(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ++registry.hit_counts[site];
  auto it = registry.armed.find(site);
  if (it == registry.armed.end()) return Status::Ok();
  ArmedSite& armed = it->second;
  if (++armed.hits_while_armed < armed.trigger_on_hit) return Status::Ok();
  const Action action = armed.action;
  registry.armed.erase(it);  // One-shot: disarm on firing.
  if (registry.armed.empty()) {
    failpoint_internal::g_enabled.store(false, std::memory_order_release);
  }
  if (action == Action::kCrash) {
    // Simulate a hard crash: no stream flushing, no destructors, no
    // atexit handlers. stderr is unbuffered, so the marker still lands.
    std::fprintf(stderr, "failpoint '%s' crashing process\n", site);
    std::_Exit(kCrashExitCode);
  }
  return InternalError(StrCat("failpoint '", site, "' injected error"));
}

}  // namespace mindetail
