#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/check.h"

namespace mindetail {

namespace {

// True while this thread is executing ParallelFor iterations. A nested
// ParallelFor issued from inside fn runs inline on the issuing thread
// instead of enqueueing (enqueue-and-wait from a worker could deadlock
// once every worker is a waiter).
thread_local bool tls_inside_parallel_for = false;

}  // namespace

// Shared control block of one ParallelFor: workers and the caller claim
// indexes from `next` until exhausted; `active` counts claimants still
// inside fn so the caller can wait for full completion.
struct ThreadPool::ForState {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<int> active{0};
  std::mutex mu;
  std::condition_variable done_cv;

  void RunLoop() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      (*fn)(i);
    }
  }

  void Finish() {
    std::lock_guard<std::mutex> lock(mu);
    if (--active == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MD_CHECK(!stopping_);
    queue_.emplace_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tls_inside_parallel_for) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  // One claim-loop task per worker that could usefully participate,
  // plus the caller. Workers busy in an earlier (nested) ParallelFor
  // simply never pick their task up; the caller's own loop guarantees
  // progress regardless.
  const size_t helpers =
      workers_.size() < n - 1 ? workers_.size() : n - 1;
  state->active = static_cast<int>(helpers) + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MD_CHECK(!stopping_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] {
        tls_inside_parallel_for = true;
        state->RunLoop();
        tls_inside_parallel_for = false;
        state->Finish();
      });
    }
  }
  work_cv_.notify_all();

  tls_inside_parallel_for = true;
  state->RunLoop();
  tls_inside_parallel_for = false;
  state->Finish();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->active == 0; });
}

}  // namespace mindetail
