// A small reusable worker pool for sharded maintenance work.
//
// ThreadPool(n) provides a total concurrency of n: n-1 background
// workers plus the calling thread, which participates in every
// ParallelFor. ThreadPool(1) therefore spawns no threads at all and
// runs everything inline on the caller — byte-identical to not having
// a pool.
//
// The pool exposes fork-join parallelism (ParallelFor) for maintenance
// shards — which are independent by construction, so no futures, task
// graphs, or work stealing are needed — plus standalone one-shot tasks
// (Submit) for long-lived work such as the network front end's
// connection handlers. Nested ParallelFor calls are legal: the inner
// call runs inline on whichever thread issued it (workers never
// re-enter the queue), which cannot deadlock. That property is what
// lets maintenance nest two levels of pools — the warehouse's view
// pool fans a change batch out across engines, and each engine's own
// pool shards work within a view.

#ifndef MINDETAIL_COMMON_THREAD_POOL_H_
#define MINDETAIL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mindetail {

class ThreadPool {
 public:
  // Total concurrency (callers + workers) of `num_threads`, clamped to
  // at least 1. Spawns num_threads - 1 background workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency: workers + the participating caller.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0) … fn(n-1), each exactly once, distributing indexes over
  // the workers and the calling thread; returns when all have finished.
  // fn must not throw. Iterations run in an unspecified order and
  // concurrently — callers are responsible for making the work
  // independent per index.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Enqueues a standalone task for a background worker and returns
  // immediately. With no workers (num_threads == 1) the task runs
  // inline on the caller instead. Tasks already enqueued when the pool
  // is destroyed still run to completion before the workers join; a
  // task must therefore terminate on its own (long-lived tasks, e.g.
  // connection handlers, watch an external stop flag).
  void Submit(std::function<void()> task);

 private:
  struct ForState;

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_THREAD_POOL_H_
