// Exception-free error reporting.
//
// All fallible library operations return `Status` (or `Result<T>`, see
// result.h). A `Status` is either OK or carries an error code plus a
// human-readable message. The design mirrors absl::Status but is
// self-contained.

#ifndef MINDETAIL_COMMON_STATUS_H_
#define MINDETAIL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mindetail {

// Error taxonomy used across the library.
enum class StatusCode {
  kOk = 0,
  // The caller supplied a malformed argument (e.g. a view definition
  // referencing an unknown attribute).
  kInvalidArgument,
  // A named entity (table, attribute, view) does not exist.
  kNotFound,
  // An entity with the given name already exists.
  kAlreadyExists,
  // A constraint (key, referential integrity, tree-shaped join graph)
  // would be violated by the operation.
  kFailedPrecondition,
  // The requested combination of features is valid per the paper but not
  // implemented (none currently; reserved).
  kUnimplemented,
  // Internal invariant failure surfaced as a recoverable error.
  kInternal,
  // Durable state is missing or unrecoverable (e.g. the CURRENT
  // pointer names a checkpoint that no longer exists, or a shipped
  // WAL frame fails its CRC).
  kDataLoss,
  // The operation's deadline expired before it finished. The operation
  // rolled back; retrying with a larger deadline is safe.
  kDeadlineExceeded,
  // The caller cancelled the operation via a CancellationToken. The
  // operation rolled back; retrying is safe.
  kCancelled,
  // A memory budget would be exceeded; the operation was refused
  // before materializing. Retry with a smaller query or larger budget.
  kResourceExhausted,
  // The service is overloaded and shed this request. Transient —
  // retry after the hinted backoff.
  kUnavailable,
};

// Returns the canonical name of `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// Value-type result of a fallible operation; cheap to copy when OK.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors matching the taxonomy above.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

}  // namespace mindetail

// Propagates a non-OK Status to the caller.
#define MD_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::mindetail::Status md_status__ = (expr); \
    if (!md_status__.ok()) return md_status__; \
  } while (0)

#endif  // MINDETAIL_COMMON_STATUS_H_
