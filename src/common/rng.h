// Deterministic pseudo-random number generation for workloads and tests.
//
// Uses SplitMix64 seeding into xoshiro256**. Deterministic across
// platforms so that tests and benchmark workloads are reproducible.

#ifndef MINDETAIL_COMMON_RNG_H_
#define MINDETAIL_COMMON_RNG_H_

#include <cstdint>

namespace mindetail {

// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
// Copyable; a copy continues the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling
  // to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_RNG_H_
