#include "common/status.h"

namespace mindetail {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace mindetail
