// Fault-injection points for crash and error testing.
//
// Production code marks interesting spots with MD_FAILPOINT("site").
// When nothing is armed the macro costs one relaxed atomic load; tests
// (or the environment, see ArmFromEnv) arm a site to either return an
// injected error Status from that spot or terminate the process
// immediately (simulating a crash, exit code Failpoints::kCrashExitCode
// with no cleanup — buffers are not flushed, destructors do not run).
//
// Sites are declared in the static registry in failpoint.cc so harnesses
// can enumerate every crash point (Failpoints::KnownSites) and drive a
// kill-at-every-site loop.

#ifndef MINDETAIL_COMMON_FAILPOINT_H_
#define MINDETAIL_COMMON_FAILPOINT_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"

namespace mindetail {

namespace failpoint_internal {
// True iff at least one site is armed; gates all bookkeeping.
extern std::atomic<bool> g_enabled;
}  // namespace failpoint_internal

class Failpoints {
 public:
  enum class Action {
    kError,  // The site returns an injected InternalError.
    kCrash,  // The process exits immediately (no cleanup).
  };

  // Exit code of a kCrash action, distinguishable from real aborts.
  static constexpr int kCrashExitCode = 37;

  // Every site compiled into the library, for kill-at-every-site loops.
  static std::vector<std::string> KnownSites();

  // One registry row for ListSites(): the site name plus its current
  // armed state (if any) and lifetime hit count.
  struct SiteInfo {
    std::string site;
    bool armed = false;
    Action action = Action::kError;  // Meaningful only when armed.
    int trigger_on_hit = 0;          // Meaningful only when armed.
    uint64_t hits = 0;  // Counted only while any site is armed.
  };

  // Every known site with its armed state, in registry order — the
  // CLI's `failpoints` subcommand renders this.
  static std::vector<SiteInfo> ListSites();

  // Arms `site` to fire once, on its `trigger_on_hit`-th hit (1 = the
  // next hit), then disarm itself. Unknown sites are rejected.
  static Status Arm(const std::string& site, Action action,
                    int trigger_on_hit = 1);
  static void Disarm(const std::string& site);
  static void DisarmAll();

  // Arms from MINDETAIL_FAILPOINT="site:crash|error[:trigger_on_hit]".
  // No-op (Ok) when the variable is unset or empty.
  static Status ArmFromEnv();

  // Total hits of `site` (counted only while any site is armed).
  static uint64_t HitCount(const std::string& site);

  // Called by MD_FAILPOINT / FailpointCheck; exposed for call sites that
  // need the Status without an early return.
  static Status Hit(const char* site);
};

// Status-returning check usable in expressions; Ok when disabled.
inline Status FailpointCheck(const char* site) {
  if (!failpoint_internal::g_enabled.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  return Failpoints::Hit(site);
}

// Early-returns the injected error when `site` fires in error mode;
// never returns when it fires in crash mode.
#define MD_FAILPOINT(site)                                        \
  do {                                                            \
    ::mindetail::Status md_failpoint_status__ =                   \
        ::mindetail::FailpointCheck(site);                        \
    if (!md_failpoint_status__.ok()) return md_failpoint_status__; \
  } while (0)

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_FAILPOINT_H_
