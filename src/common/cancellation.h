// Cooperative cancellation and deadlines.
//
// Long-running operations (query execution, delta maintenance,
// replication catch-up) accept a `CancellationToken` and poll
// `token.Check()` at loop boundaries. A non-OK check means the caller
// asked the work to stop: either explicitly (`kCancelled`, via the
// owning `CancellationSource`) or because a `Deadline` expired
// (`kDeadlineExceeded`). Checks are cheap — one relaxed atomic load
// plus, when a deadline is set, one monotonic clock read — so they can
// sit inside per-fragment and per-row-chunk loops.
//
// The clock is injectable so tests can trip deadlines deterministically
// mid-operation without sleeping.

#ifndef MINDETAIL_COMMON_CANCELLATION_H_
#define MINDETAIL_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/status.h"

namespace mindetail {

// Returns nanoseconds from a monotonic (never-decreasing) clock.
using MonotonicClock = std::function<int64_t()>;

// The process steady clock, in nanoseconds.
int64_t MonotonicNowNanos();

// A point on the monotonic clock after which work should stop. A
// default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  // A deadline `ms` milliseconds from now on `clock` (the process
  // steady clock if omitted). Non-positive `ms` yields an unlimited
  // deadline, matching `WarehouseOptions::default_query_deadline_ms`'s
  // "0 = off" convention.
  static Deadline After(int64_t ms, MonotonicClock clock = nullptr);

  bool unlimited() const { return deadline_nanos_ == kNever; }
  bool Expired() const;
  // Milliseconds until expiry; negative once expired, INT64_MAX when
  // unlimited.
  int64_t remaining_ms() const;

  // The earlier-expiring of the two (an unlimited deadline never wins
  // over a set one). Both sides are assumed to read the same clock.
  static Deadline Earlier(Deadline a, Deadline b) {
    return a.deadline_nanos_ <= b.deadline_nanos_ ? std::move(a)
                                                  : std::move(b);
  }

 private:
  static constexpr int64_t kNever = INT64_MAX;

  Deadline(int64_t deadline_nanos, MonotonicClock clock)
      : deadline_nanos_(deadline_nanos), clock_(std::move(clock)) {}

  int64_t NowNanos() const;

  int64_t deadline_nanos_ = kNever;
  MonotonicClock clock_;  // null → MonotonicNowNanos
};

// A poll-only view of a cancellation flag plus an optional deadline.
// Default-constructed tokens never cancel, so APIs can take a token by
// value (or a defaulted `const CancellationToken*`) without forcing
// callers to care. Copies observe the same flag.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(Deadline deadline)
      : deadline_(std::move(deadline)) {}

  // OK while the work may continue; CancelledError once the source
  // tripped; DeadlineExceededError once the deadline passed. Cancel
  // wins over deadline when both hold (the caller asked first).
  Status Check() const;

  bool can_cancel() const { return flag_ != nullptr; }
  const Deadline& deadline() const { return deadline_; }

  // A copy of this token whose deadline is the earlier of its own and
  // `deadline` — how a configured default deadline composes with a
  // caller-supplied token (the stricter limit applies).
  CancellationToken MergedWith(Deadline deadline) const {
    return CancellationToken(
        flag_, Deadline::Earlier(deadline_, std::move(deadline)));
  }

 private:
  friend class CancellationSource;
  CancellationToken(std::shared_ptr<const std::atomic<bool>> flag,
                    Deadline deadline)
      : flag_(std::move(flag)), deadline_(std::move(deadline)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;  // null → never cancelled
  Deadline deadline_;
};

// Owns the flag behind a family of tokens. Thread-safe: Cancel() may
// race with Check() on any thread.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancellationToken token() const { return CancellationToken(flag_, {}); }
  CancellationToken TokenWithDeadline(Deadline deadline) const {
    return CancellationToken(flag_, std::move(deadline));
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_CANCELLATION_H_
