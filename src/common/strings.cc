#include "common/strings.h"

#include <cstdio>

namespace mindetail {

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatWithCommas(long long v) {
  const bool negative = v < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(v)
               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace mindetail
