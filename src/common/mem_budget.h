// Reservation-style hierarchical memory accounting.
//
// A `MemoryBudget` tracks bytes an operation intends to materialize
// (table rows, join intermediates, cached results) against a soft
// limit. There is no allocator hook: call sites charge the budget
// *before* materializing and release when the object dies, so a
// too-large query is refused with `kResourceExhausted` instead of
// OOMing the process. Budgets form a tree — a per-query budget charges
// its parent (the warehouse-wide budget) transitively, so the sum of
// concurrent queries is bounded too. All counters are atomics; charge
// and release are thread-safe and lock-free.

#ifndef MINDETAIL_COMMON_MEM_BUDGET_H_
#define MINDETAIL_COMMON_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mindetail {

class MemoryBudget {
 public:
  // `limit_bytes` 0 means unlimited (accounting only). `parent` must
  // outlive this budget; charges propagate to it.
  explicit MemoryBudget(std::string name, uint64_t limit_bytes = 0,
                        MemoryBudget* parent = nullptr)
      : name_(std::move(name)), limit_bytes_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Reserves `bytes` against this budget and every ancestor. On
  // refusal (any level would exceed its limit) nothing is charged
  // anywhere and `kResourceExhausted` names the refusing budget.
  Status TryCharge(uint64_t bytes);

  // Returns a previously charged reservation, up the same chain.
  void Release(uint64_t bytes);

  const std::string& name() const { return name_; }
  uint64_t limit_bytes() const { return limit_bytes_; }
  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  uint64_t refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }

 private:
  // Charges this level only; false if the limit would be exceeded.
  bool ChargeLocal(uint64_t bytes);
  void ReleaseLocal(uint64_t bytes);

  const std::string name_;
  const uint64_t limit_bytes_;
  MemoryBudget* const parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> refusals_{0};
};

// RAII reservation: releases what it holds on destruction. Movable.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryBudget* budget, uint64_t bytes)
      : budget_(budget), bytes_(bytes) {}
  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation() { Reset(); }

  void Reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_MEM_BUDGET_H_
