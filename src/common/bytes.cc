#include "common/bytes.h"

#include "common/strings.h"

namespace mindetail {

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kGiB) {
    return StrCat(FormatDouble(static_cast<double>(bytes) / kGiB, 1), " GB");
  }
  if (bytes >= kMiB) {
    return StrCat(FormatDouble(static_cast<double>(bytes) / kMiB, 1), " MB");
  }
  if (bytes >= kKiB) {
    return StrCat(FormatDouble(static_cast<double>(bytes) / kKiB, 1), " KB");
  }
  return StrCat(bytes, " B");
}

}  // namespace mindetail
