#include "common/rng.h"

#include "common/check.h"

namespace mindetail {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  MD_CHECK_GT(bound, 0u);
  // Rejection sampling: discard values in the biased tail.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MD_CHECK_LE(lo, hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace mindetail
