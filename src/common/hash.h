// Hashing helpers: FNV-1a and hash combining for composite keys.

#ifndef MINDETAIL_COMMON_HASH_H_
#define MINDETAIL_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mindetail {

// 64-bit FNV-1a over a byte range.
inline uint64_t Fnv1a(const void* data, size_t size,
                      uint64_t seed = 14695981039346656037ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

inline uint64_t Fnv1a(std::string_view text,
                      uint64_t seed = 14695981039346656037ULL) {
  return Fnv1a(text.data(), text.size(), seed);
}

// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_HASH_H_
