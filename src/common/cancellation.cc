#include "common/cancellation.h"

#include <chrono>

namespace mindetail {

int64_t MonotonicNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Deadline Deadline::After(int64_t ms, MonotonicClock clock) {
  if (ms <= 0) return Deadline();
  const int64_t now =
      clock ? clock() : MonotonicNowNanos();
  return Deadline(now + ms * 1'000'000, std::move(clock));
}

int64_t Deadline::NowNanos() const {
  return clock_ ? clock_() : MonotonicNowNanos();
}

bool Deadline::Expired() const {
  if (deadline_nanos_ == kNever) return false;
  return NowNanos() >= deadline_nanos_;
}

int64_t Deadline::remaining_ms() const {
  if (deadline_nanos_ == kNever) return INT64_MAX;
  return (deadline_nanos_ - NowNanos()) / 1'000'000;
}

Status CancellationToken::Check() const {
  if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
    return CancelledError("operation cancelled by caller");
  }
  if (deadline_.Expired()) {
    return DeadlineExceededError("operation deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace mindetail
