// Small string utilities used across the library.

#ifndef MINDETAIL_COMMON_STRINGS_H_
#define MINDETAIL_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mindetail {

namespace internal_strings {

inline void AppendPieces(std::ostringstream&) {}

template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& head,
                  const Rest&... rest) {
  os << head;
  AppendPieces(os, rest...);
}

}  // namespace internal_strings

// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_strings::AppendPieces(os, args...);
  return os.str();
}

// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// Splits `text` at every occurrence of `delimiter`; empty pieces kept.
std::vector<std::string> Split(std::string_view text, char delimiter);

// True iff `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Renders `v` with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

// Renders an integer with thousands separators, e.g. 13,140,000,000.
std::string FormatWithCommas(long long v);

// Left-/right-pads `text` with spaces to at least `width` characters.
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_STRINGS_H_
