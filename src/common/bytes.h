// Byte-count formatting for storage reports.

#ifndef MINDETAIL_COMMON_BYTES_H_
#define MINDETAIL_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace mindetail {

// Renders a byte count in the most natural binary unit, e.g.
// "245.0 GB" or "167.1 MB". Uses 1024-based units to match the paper's
// arithmetic (245 GBytes = 13.14e9 * 20 / 2^30).
std::string FormatBytes(uint64_t bytes);

// Unit constants (binary, matching the paper's "GBytes").
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

}  // namespace mindetail

#endif  // MINDETAIL_COMMON_BYTES_H_
