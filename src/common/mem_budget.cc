#include "common/mem_budget.h"

#include "common/strings.h"

namespace mindetail {

bool MemoryBudget::ChargeLocal(uint64_t bytes) {
  uint64_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (limit_bytes_ > 0 && used + bytes > limit_bytes_) {
      refusals_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const uint64_t now = used + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::ReleaseLocal(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status MemoryBudget::TryCharge(uint64_t bytes) {
  if (bytes == 0) return Status::Ok();
  if (!ChargeLocal(bytes)) {
    return ResourceExhaustedError(StrCat(
        "memory budget '", name_, "' exhausted: ", bytes,
        " bytes requested, ", used_bytes(), " of ", limit_bytes_,
        " in use"));
  }
  if (parent_ != nullptr) {
    Status up = parent_->TryCharge(bytes);
    if (!up.ok()) {
      ReleaseLocal(bytes);
      return up;
    }
  }
  return Status::Ok();
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  ReleaseLocal(bytes);
  if (parent_ != nullptr) parent_->Release(bytes);
}

}  // namespace mindetail
