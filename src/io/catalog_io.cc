#include "io/catalog_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "io/csv.h"

namespace mindetail {
namespace {

Result<ValueType> ParseValueType(const std::string& name, size_t line) {
  if (name == "INT64") return ValueType::kInt64;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "STRING") return ValueType::kString;
  return InvalidArgumentError(
      StrCat("manifest line ", line, ": unknown type '", name, "'"));
}

}  // namespace

Status WriteManifest(const Catalog& catalog, std::ostream& out) {
  out << "# mindetail catalog manifest\n";
  for (const std::string& table : catalog.TableNames()) {
    Result<const Table*> t = catalog.GetTable(table);
    MD_RETURN_IF_ERROR(t.status());
    Result<std::string> key = catalog.KeyAttr(table);
    MD_RETURN_IF_ERROR(key.status());
    out << "TABLE " << table << " KEY " << *key << "\n";
    for (const Attribute& attr : (*t)->schema().attributes()) {
      out << "COL " << table << " " << attr.name << " "
          << ValueTypeName(attr.type) << "\n";
    }
  }
  for (const ForeignKey& fk : catalog.foreign_keys()) {
    out << "FK " << fk.from_table << " " << fk.from_attr << " "
        << fk.to_table << "\n";
  }
  for (const std::string& table : catalog.TableNames()) {
    if (catalog.HasExposedUpdates(table)) out << "EXPOSED " << table << "\n";
    if (catalog.IsAppendOnly(table)) out << "APPEND_ONLY " << table << "\n";
  }
  if (!out.good()) return InternalError("manifest write failed");
  return Status::Ok();
}

Result<Catalog> ReadManifest(std::istream& in) {
  // Collected first; tables are created once all their COLs are seen.
  struct PendingTable {
    std::string key;
    std::vector<Attribute> columns;
  };
  std::map<std::string, PendingTable> pending;
  std::vector<std::string> order;
  std::vector<ForeignKey> fks;
  std::vector<std::string> exposed;
  std::vector<std::string> append_only;

  std::string line_text;
  size_t line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    if (line_text.empty() || line_text[0] == '#') continue;
    std::istringstream fields(line_text);
    std::string directive;
    fields >> directive;
    if (directive == "TABLE") {
      std::string table, kw, key;
      fields >> table >> kw >> key;
      if (table.empty() || kw != "KEY" || key.empty()) {
        return InvalidArgumentError(
            StrCat("manifest line ", line, ": malformed TABLE directive"));
      }
      if (pending.count(table) > 0) {
        return InvalidArgumentError(
            StrCat("manifest line ", line, ": duplicate table '", table,
                   "'"));
      }
      pending[table].key = key;
      order.push_back(table);
    } else if (directive == "COL") {
      std::string table, attr, type_name;
      fields >> table >> attr >> type_name;
      if (table.empty() || attr.empty() || type_name.empty()) {
        return InvalidArgumentError(StrCat(
            "manifest line ", line,
            ": truncated COL directive (expected COL <table> <attr> "
            "<type>)"));
      }
      auto it = pending.find(table);
      if (it == pending.end()) {
        return InvalidArgumentError(
            StrCat("manifest line ", line, ": COL before TABLE for '",
                   table, "'"));
      }
      MD_ASSIGN_OR_RETURN(ValueType type, ParseValueType(type_name, line));
      it->second.columns.push_back(Attribute{attr, type});
    } else if (directive == "FK") {
      ForeignKey fk;
      fields >> fk.from_table >> fk.from_attr >> fk.to_table;
      if (fk.from_table.empty() || fk.from_attr.empty() ||
          fk.to_table.empty()) {
        return InvalidArgumentError(StrCat(
            "manifest line ", line,
            ": truncated FK directive (expected FK <table> <attr> "
            "<target>)"));
      }
      fks.push_back(std::move(fk));
    } else if (directive == "EXPOSED") {
      std::string table;
      fields >> table;
      if (table.empty()) {
        return InvalidArgumentError(StrCat(
            "manifest line ", line, ": EXPOSED directive names no table"));
      }
      exposed.push_back(table);
    } else if (directive == "APPEND_ONLY") {
      std::string table;
      fields >> table;
      if (table.empty()) {
        return InvalidArgumentError(
            StrCat("manifest line ", line,
                   ": APPEND_ONLY directive names no table"));
      }
      append_only.push_back(table);
    } else {
      return InvalidArgumentError(StrCat("manifest line ", line,
                                         ": unknown directive '",
                                         directive, "'"));
    }
  }

  Catalog catalog;
  for (const std::string& table : order) {
    const PendingTable& spec = pending.at(table);
    if (spec.columns.empty()) {
      return InvalidArgumentError(
          StrCat("table '", table, "' has no columns in the manifest"));
    }
    MD_RETURN_IF_ERROR(
        catalog.CreateTable(table, Schema(spec.columns), spec.key));
  }
  for (const ForeignKey& fk : fks) {
    MD_RETURN_IF_ERROR(
        catalog.AddForeignKey(fk.from_table, fk.from_attr, fk.to_table));
  }
  for (const std::string& table : exposed) {
    MD_RETURN_IF_ERROR(catalog.SetExposedUpdates(table, true));
  }
  for (const std::string& table : append_only) {
    MD_RETURN_IF_ERROR(catalog.SetAppendOnly(table, true));
  }
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& dir) {
  {
    std::ofstream out(StrCat(dir, "/", kCatalogManifest),
                      std::ios::binary);
    if (!out.is_open()) {
      return NotFoundError(
          StrCat("cannot write manifest in '", dir, "'"));
    }
    MD_RETURN_IF_ERROR(WriteManifest(catalog, out));
  }
  for (const std::string& table : catalog.TableNames()) {
    MD_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(table));
    MD_RETURN_IF_ERROR(
        WriteTableCsvFile(*t, StrCat(dir, "/", table, ".csv")));
  }
  return Status::Ok();
}

Result<Catalog> LoadCatalog(const std::string& dir) {
  Catalog catalog;
  {
    std::ifstream in(StrCat(dir, "/", kCatalogManifest), std::ios::binary);
    if (!in.is_open()) {
      return NotFoundError(StrCat("no catalog manifest in '", dir, "'"));
    }
    MD_ASSIGN_OR_RETURN(catalog, ReadManifest(in));
  }
  for (const std::string& table : catalog.TableNames()) {
    MD_ASSIGN_OR_RETURN(Table* t, catalog.MutableTable(table));
    MD_ASSIGN_OR_RETURN(
        Table loaded,
        ReadTableCsvFile(StrCat(dir, "/", table, ".csv"), table,
                         t->schema(), t->key_attr()));
    *t = std::move(loaded);
  }
  return catalog;
}

}  // namespace mindetail
