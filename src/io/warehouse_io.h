// Warehouse checkpoint persistence.
//
// A warehouse directory holds
//
//   CURRENT              — name of the live checkpoint directory
//   wal.log              — write-ahead log (maintenance/wal.h)
//   checkpoint-<epoch>/  — one complete checkpoint:
//     checkpoint.manifest  EPOCH/SEQ, the embedded schema catalog
//                          (catalog_io manifest, rowless), and per view
//                          its engine options and CSV schemas
//     <view>.def           builder-replay view definition (text)
//     <view>.summary.csv   augmented summary (SummaryStore state)
//     <view>.aux.<t>.csv   each non-eliminated auxiliary view
//
// Checkpoints are written to a temp directory, fsync'd, renamed into
// place, and only then referenced from CURRENT (itself updated by
// write-temp + rename) — a crash at any point leaves either the old or
// the new checkpoint fully intact.

#ifndef MINDETAIL_IO_WAREHOUSE_IO_H_
#define MINDETAIL_IO_WAREHOUSE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"

namespace mindetail {

inline constexpr char kCurrentFile[] = "CURRENT";
inline constexpr char kWalFile[] = "wal.log";
inline constexpr char kCheckpointManifest[] = "checkpoint.manifest";
inline constexpr char kIngestStateFile[] = "ingest.bin";
inline constexpr char kLatticeStateFile[] = "lattice.bin";

// Engine options as persisted (mirrors maintenance/EngineOptions; io
// cannot depend on the maintenance layer).
struct EngineOptionsData {
  int num_threads = 1;
  bool trust_referential_integrity = true;
  bool prune_delta_joins = true;
  bool allow_elimination = true;
};

struct ViewCheckpoint {
  std::string name;
  GpsjViewDef def;
  EngineOptionsData options;
  // Shared-plan lineage token (maintenance/shared_plan.h). 0 = unknown
  // (pre-sharing checkpoint); restored engines with 0 never share.
  uint64_t lineage = 0;
  std::map<std::string, Table> aux;  // Base table → auxiliary contents.
  Table summary;                     // Augmented summary rows.
};

struct WarehouseCheckpoint {
  uint64_t epoch = 0;     // Monotonic checkpoint counter.
  uint64_t sequence = 0;  // Last WAL sequence folded in.
  // Monotonic replication leader epoch (0 when the warehouse has never
  // replicated). Promotion bumps it and checkpoints, so the fence
  // against a deposed leader survives restarts.
  uint64_t leader_epoch = 0;
  Catalog schema_catalog;  // Schemas/keys/metadata only; no rows.
  std::vector<ViewCheckpoint> views;
  // Opaque ingestion state (key ledger + idempotency window; the
  // maintenance layer owns the encoding). Persisted as a CRC-framed
  // sidecar file (kIngestStateFile); empty means absent — checkpoints
  // written before ingestion hardening load with an empty state.
  std::string ingest_state;
  // Opaque roll-up lattice state (promoted-node directory + candidate
  // heat; serve/lattice.h owns the encoding). Same sidecar treatment
  // (kLatticeStateFile); empty means absent. Node *tables* are never
  // checkpointed — recovery rebuilds them from the recovered summaries.
  std::string lattice_state;
};

// Writes a complete checkpoint under `dir` and atomically repoints
// CURRENT at it. Every summary and auxiliary CSV's content hash is
// recorded in the manifest and re-verified by LoadWarehouseCheckpoint,
// so at-rest corruption of view state is detected at recovery instead
// of silently skewing every later batch. Returns the checkpoint
// directory name ("checkpoint-<epoch>").
Result<std::string> SaveWarehouseCheckpoint(const WarehouseCheckpoint& cp,
                                            const std::string& dir);

// Loads the checkpoint CURRENT points at. NotFound when the directory
// has no CURRENT file (a fresh warehouse); DataLoss when CURRENT names
// a checkpoint directory that is missing or incomplete (no manifest,
// missing view-state files).
Result<WarehouseCheckpoint> LoadWarehouseCheckpoint(const std::string& dir);

// Loads the named checkpoint directory of `dir`, ignoring CURRENT.
// Used for fallback recovery when CURRENT points at lost state.
Result<WarehouseCheckpoint> LoadCheckpointByName(const std::string& dir,
                                                 const std::string& name);

// Names of complete-looking checkpoint directories under `dir`
// ("checkpoint-<epoch>", skipping abandoned temp dirs), newest epoch
// first. Lists only; contents are verified on load.
std::vector<std::string> ListCheckpointNames(const std::string& dir);

// Durably repoints CURRENT of `dir` at checkpoint `name`.
Status SetCurrentCheckpoint(const std::string& dir, const std::string& name);

// Installs checkpoint `name` of `src_dir` into `dst_dir` (file copy
// into a temp directory, fsync, atomic rename, then CURRENT repoint) —
// the bootstrap path that ships a leader checkpoint to a new or lagging
// follower. A crash at any point leaves the follower's previous
// checkpoint (or its absence) fully intact.
Status TransferCheckpoint(const std::string& src_dir,
                          const std::string& name,
                          const std::string& dst_dir);

// Best-effort removal of checkpoint directories other than `keep`
// (including abandoned temp directories).
void RemoveStaleCheckpoints(const std::string& dir, const std::string& keep);

Status EnsureDirectory(const std::string& path);

// View-definition text round trip (exposed for tests). The format
// replays the builder calls, so every GpsjViewDef feature — derived
// attributes, HAVING, aggregates — survives, not just what ToSqlString
// can express.
Status WriteViewDef(const GpsjViewDef& def, std::ostream& out);
Result<GpsjViewDef> ReadViewDef(std::istream& in, const Catalog& catalog);

}  // namespace mindetail

#endif  // MINDETAIL_IO_WAREHOUSE_IO_H_
