// Catalog persistence: a text manifest (schemas, keys, integrity
// metadata) plus one CSV file per table.
//
// Manifest format (one directive per line, '#' comments):
//
//   TABLE sale KEY id
//   COL sale id INT64
//   COL sale price DOUBLE
//   FK sale timeid time
//   EXPOSED time
//   APPEND_ONLY archive
//
// Directives may appear in any order except that COL/FK/EXPOSED/
// APPEND_ONLY must follow the TABLE lines they reference.

#ifndef MINDETAIL_IO_CATALOG_IO_H_
#define MINDETAIL_IO_CATALOG_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace mindetail {

// File name of the manifest inside a catalog directory.
inline constexpr char kCatalogManifest[] = "catalog.manifest";

// Writes `<dir>/catalog.manifest` and `<dir>/<table>.csv` for every
// table. The directory must exist.
Status SaveCatalog(const Catalog& catalog, const std::string& dir);

// Rebuilds a catalog from a directory written by SaveCatalog.
Result<Catalog> LoadCatalog(const std::string& dir);

// Manifest-only variants (streams), exposed for testing.
Status WriteManifest(const Catalog& catalog, std::ostream& out);
Result<Catalog> ReadManifest(std::istream& in);

}  // namespace mindetail

#endif  // MINDETAIL_IO_CATALOG_IO_H_
