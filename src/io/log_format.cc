#include "io/log_format.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/hash.h"
#include "common/strings.h"

namespace mindetail {
namespace logfmt {

uint32_t Crc32(const char* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      PutU8(out, 0);
      break;
    case ValueType::kInt64: {
      PutU8(out, 1);
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    }
    case ValueType::kDouble: {
      PutU8(out, 2);
      uint64_t bits;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      break;
    }
    case ValueType::kString:
      PutU8(out, 3);
      PutString(out, v.AsString());
      break;
  }
}

void PutTuple(std::string* out, const Tuple& tuple) {
  PutU32(out, static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple) PutValue(out, v);
}

void PutDelta(std::string* out, const Delta& delta) {
  PutU32(out, static_cast<uint32_t>(delta.inserts.size()));
  PutU32(out, static_cast<uint32_t>(delta.deletes.size()));
  PutU32(out, static_cast<uint32_t>(delta.updates.size()));
  for (const Tuple& t : delta.inserts) PutTuple(out, t);
  for (const Tuple& t : delta.deletes) PutTuple(out, t);
  for (const Update& u : delta.updates) {
    PutTuple(out, u.before);
    PutTuple(out, u.after);
  }
}

void PutChanges(std::string* out,
                const std::map<std::string, Delta>& changes) {
  PutU32(out, static_cast<uint32_t>(changes.size()));
  for (const auto& [table, delta] : changes) {
    PutString(out, table);
    PutDelta(out, delta);
  }
}

bool PayloadReader::ReadU8(uint8_t* v) {
  if (pos_ + 1 > size_) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool PayloadReader::ReadU32(uint32_t* v) {
  if (pos_ + 4 > size_) return false;
  std::memcpy(v, data_ + pos_, 4);
  pos_ += 4;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* v) {
  if (pos_ + 8 > size_) return false;
  std::memcpy(v, data_ + pos_, 8);
  pos_ += 8;
  return true;
}

bool PayloadReader::ReadString(std::string* s) {
  uint32_t len;
  if (!ReadU32(&len) || pos_ + len > size_) return false;
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

bool PayloadReader::ReadValue(Value* v) {
  uint8_t tag;
  if (!ReadU8(&tag)) return false;
  switch (tag) {
    case 0:
      *v = Value();
      return true;
    case 1: {
      uint64_t raw;
      if (!ReadU64(&raw)) return false;
      *v = Value(static_cast<int64_t>(raw));
      return true;
    }
    case 2: {
      uint64_t bits;
      if (!ReadU64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *v = Value(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!ReadString(&s)) return false;
      *v = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

bool PayloadReader::ReadTuple(Tuple* tuple) {
  uint32_t arity;
  if (!ReadU32(&arity) || arity > size_ - pos_) return false;
  tuple->clear();
  tuple->reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    if (!ReadValue(&v)) return false;
    tuple->push_back(std::move(v));
  }
  return true;
}

bool PayloadReader::ReadDelta(Delta* delta) {
  uint32_t ins, del, upd;
  if (!ReadU32(&ins) || !ReadU32(&del) || !ReadU32(&upd)) return false;
  for (uint32_t i = 0; i < ins; ++i) {
    Tuple t;
    if (!ReadTuple(&t)) return false;
    delta->inserts.push_back(std::move(t));
  }
  for (uint32_t i = 0; i < del; ++i) {
    Tuple t;
    if (!ReadTuple(&t)) return false;
    delta->deletes.push_back(std::move(t));
  }
  for (uint32_t i = 0; i < upd; ++i) {
    Update u;
    if (!ReadTuple(&u.before) || !ReadTuple(&u.after)) return false;
    delta->updates.push_back(std::move(u));
  }
  return true;
}

bool PayloadReader::ReadChanges(std::map<std::string, Delta>* changes) {
  uint32_t num_tables;
  if (!ReadU32(&num_tables)) return false;
  for (uint32_t i = 0; i < num_tables; ++i) {
    std::string table;
    Delta delta;
    if (!ReadString(&table) || !ReadDelta(&delta)) return false;
    if (!changes->emplace(std::move(table), std::move(delta)).second) {
      return false;
    }
  }
  return true;
}

std::string FrameRecord(uint32_t magic, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, magic);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

size_t ScanFrames(const std::string& contents, uint32_t magic,
                  const std::function<bool(const std::string&)>& on_payload) {
  return ScanFramesDetail(contents, magic, on_payload).good_end;
}

FrameScan ScanFramesDetail(
    const std::string& contents, uint32_t magic,
    const std::function<bool(const std::string&)>& on_payload) {
  FrameScan scan;
  size_t pos = 0;
  while (pos < contents.size()) {
    if (pos + kFrameHeaderSize > contents.size()) {
      scan.stop = FrameScanStop::kTornTail;
      return scan;
    }
    uint32_t frame_magic, length, crc;
    std::memcpy(&frame_magic, contents.data() + pos, 4);
    std::memcpy(&length, contents.data() + pos + 4, 4);
    std::memcpy(&crc, contents.data() + pos + 8, 4);
    if (frame_magic != magic || length > kMaxFramePayload) {
      scan.stop = FrameScanStop::kCorrupt;
      return scan;
    }
    if (pos + kFrameHeaderSize + length > contents.size()) {
      scan.stop = FrameScanStop::kTornTail;
      return scan;
    }
    const std::string payload =
        contents.substr(pos + kFrameHeaderSize, length);
    if (Crc32(payload.data(), payload.size()) != crc) {
      scan.stop = FrameScanStop::kCorrupt;
      return scan;
    }
    if (!on_payload(payload)) {
      scan.stop = FrameScanStop::kConsumerStop;
      return scan;
    }
    pos += kFrameHeaderSize + length;
    scan.good_end = pos;
  }
  scan.stop = FrameScanStop::kCleanEnd;
  return scan;
}

Result<std::string> ReadFileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError(StrCat("cannot open '", path, "'"));
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

std::string ContentHashKey(const std::map<std::string, Delta>& changes) {
  std::string encoded;
  PutChanges(&encoded, changes);
  const uint64_t hash = Fnv1a(encoded.data(), encoded.size());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a-%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace logfmt
}  // namespace mindetail
