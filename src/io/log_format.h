// Shared binary log framing and payload codec.
//
// Both durable logs of the warehouse — the write-ahead log (wal.log)
// and the quarantine dead-letter log (quarantine.log) — use the same
// frame layout (little-endian):
//
//   u32 magic | u32 payload length | u32 CRC32(payload) | payload
//
// and the same tagged-value payload encoding for relational data
// (values: 0 NULL, 1 int64, 2 double, 3 length-prefixed string; tuples
// as u32 arity + values; deltas as insert/delete/update counts + the
// tuples). This header holds the framing, the bounds-checked reader,
// and the Delta/change-set codec, so a new log kind never reinvents —
// or subtly diverges from — the WAL's wire format.
//
// The codec also supplies the canonical content hash of a change set,
// used as the idempotency-key fallback for exactly-once ingestion.

#ifndef MINDETAIL_IO_LOG_FORMAT_H_
#define MINDETAIL_IO_LOG_FORMAT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "relational/delta.h"

namespace mindetail {
namespace logfmt {

// Frame header: magic + payload length + CRC32.
inline constexpr size_t kFrameHeaderSize = 12;
// Frames larger than this are treated as corruption, not allocation
// requests.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
uint32_t Crc32(const char* data, size_t size);

// Little-endian primitive writers.
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, const std::string& s);
void PutValue(std::string* out, const Value& v);
void PutTuple(std::string* out, const Tuple& tuple);
void PutDelta(std::string* out, const Delta& delta);
// A change set: u32 table count, then per table a length-prefixed name
// and the serialized Delta. std::map iteration makes the bytes
// canonical for a given change set.
void PutChanges(std::string* out, const std::map<std::string, Delta>& changes);

// Bounds-checked little-endian reader over one payload.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* s);
  bool ReadValue(Value* v);
  bool ReadTuple(Tuple* tuple);
  bool ReadDelta(Delta* delta);
  bool ReadChanges(std::map<std::string, Delta>* changes);
  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Wraps `payload` in a frame under `magic`.
std::string FrameRecord(uint32_t magic, const std::string& payload);

// Scans `contents` for consecutive frames under `magic`, invoking
// `on_payload` for each complete CRC-valid payload. Scanning stops at
// the first torn or corrupt frame, or when `on_payload` returns false
// (that payload is then not counted). Returns the byte offset just past
// the last accepted frame — the truncation point for torn tails.
size_t ScanFrames(const std::string& contents, uint32_t magic,
                  const std::function<bool(const std::string&)>& on_payload);

// Why a frame scan stopped. A shipper tailing a live log must treat an
// incomplete tail (the writer is mid-append) differently from a frame
// that is fully present but fails its checks (the bytes are wrong and
// will never heal).
enum class FrameScanStop {
  // All bytes consumed as complete valid frames.
  kCleanEnd,
  // Trailing bytes form an incomplete frame (short header, or a header
  // whose declared payload extends past end-of-buffer). Retrying after
  // the writer appends more may complete it.
  kTornTail,
  // A complete frame is present but has a bad magic, an oversize
  // length, or a CRC mismatch — permanent corruption.
  kCorrupt,
  // `on_payload` returned false for an otherwise valid frame.
  kConsumerStop,
};

struct FrameScan {
  // Byte offset just past the last accepted frame.
  size_t good_end = 0;
  FrameScanStop stop = FrameScanStop::kCleanEnd;
};

// As ScanFrames, but reports why the scan stopped. A header with bad
// magic or an oversize length is classified as kCorrupt even when the
// buffer ends early: no amount of appended bytes can make it valid.
FrameScan ScanFramesDetail(
    const std::string& contents, uint32_t magic,
    const std::function<bool(const std::string&)>& on_payload);

// Whole-file read; NotFound when the file cannot be opened.
Result<std::string> ReadFileContents(const std::string& path);

// Canonical 64-bit FNV-1a content hash of a change set, rendered as a
// fixed-width hex key ("sha-less" but collision-safe at warehouse batch
// counts). Used as the idempotency key when the source supplies none.
std::string ContentHashKey(const std::map<std::string, Delta>& changes);

}  // namespace logfmt
}  // namespace mindetail

#endif  // MINDETAIL_IO_LOG_FORMAT_H_
