// CSV serialization for tables.
//
// Format: no header row (the schema travels in the catalog manifest or
// is supplied by the caller). Strings are always double-quoted with ""
// escaping; numbers are unquoted; NULL is the empty unquoted field.
// Doubles round-trip via max_digits10 formatting.

#ifndef MINDETAIL_IO_CSV_H_
#define MINDETAIL_IO_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace mindetail {

// Writes all rows of `table` as CSV.
Status WriteTableCsv(const Table& table, std::ostream& out);
Status WriteTableCsvFile(const Table& table, const std::string& path);

// Reads CSV rows into a table named `name` with the given schema (and
// optional single-attribute primary key). Fails with a line-numbered
// error on arity or type mismatches.
Result<Table> ReadTableCsv(std::istream& in, const std::string& name,
                           const Schema& schema,
                           const std::optional<std::string>& key_attr,
                           bool allow_null = false);
Result<Table> ReadTableCsvFile(const std::string& path,
                               const std::string& name,
                               const Schema& schema,
                               const std::optional<std::string>& key_attr,
                               bool allow_null = false);

}  // namespace mindetail

#endif  // MINDETAIL_IO_CSV_H_
