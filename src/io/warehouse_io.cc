#include "io/warehouse_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/strings.h"
#include "gpsj/builder.h"
#include "io/catalog_io.h"
#include "io/csv.h"
#include "io/log_format.h"

namespace mindetail {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Token maps
// ---------------------------------------------------------------------

const char* CompareOpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "EQ";
    case CompareOp::kNe: return "NE";
    case CompareOp::kLt: return "LT";
    case CompareOp::kLe: return "LE";
    case CompareOp::kGt: return "GT";
    case CompareOp::kGe: return "GE";
  }
  return "EQ";
}

Result<CompareOp> ParseCompareOpToken(const std::string& token) {
  if (token == "EQ") return CompareOp::kEq;
  if (token == "NE") return CompareOp::kNe;
  if (token == "LT") return CompareOp::kLt;
  if (token == "LE") return CompareOp::kLe;
  if (token == "GT") return CompareOp::kGt;
  if (token == "GE") return CompareOp::kGe;
  return InvalidArgumentError(
      StrCat("unknown comparison token '", token, "'"));
}

const char* DerivedOpToken(DerivedAttr::Op op) {
  switch (op) {
    case DerivedAttr::Op::kAdd: return "ADD";
    case DerivedAttr::Op::kSub: return "SUB";
    case DerivedAttr::Op::kMul: return "MUL";
  }
  return "MUL";
}

Result<DerivedAttr::Op> ParseDerivedOpToken(const std::string& token) {
  if (token == "ADD") return DerivedAttr::Op::kAdd;
  if (token == "SUB") return DerivedAttr::Op::kSub;
  if (token == "MUL") return DerivedAttr::Op::kMul;
  return InvalidArgumentError(
      StrCat("unknown derived-attribute operator '", token, "'"));
}

const char* AggFnToken(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar: return "COUNT_STAR";
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "COUNT_STAR";
}

Result<AggFn> ParseAggFnToken(const std::string& token) {
  if (token == "COUNT_STAR") return AggFn::kCountStar;
  if (token == "COUNT") return AggFn::kCount;
  if (token == "SUM") return AggFn::kSum;
  if (token == "AVG") return AggFn::kAvg;
  if (token == "MIN") return AggFn::kMin;
  if (token == "MAX") return AggFn::kMax;
  return InvalidArgumentError(
      StrCat("unknown aggregate token '", token, "'"));
}

// Typed value tokens, value last on the line: "I <int>", "D <double>",
// "S <rest of line, verbatim>", "N" (null).
std::string ValueTokens(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kInt64:
      return StrCat("I ", v.AsInt64());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return StrCat("D ", buf);
    }
    case ValueType::kString:
      return StrCat("S ", v.AsString());
  }
  return "N";
}

Result<Value> ParseValueTokens(std::istringstream& fields, size_t line) {
  std::string tag;
  fields >> tag;
  if (tag == "N") return Value();
  if (tag == "I") {
    std::string token;
    fields >> token;
    if (token.empty()) {
      return InvalidArgumentError(
          StrCat("def line ", line, ": missing integer value"));
    }
    return Value(static_cast<int64_t>(
        std::strtoll(token.c_str(), nullptr, 10)));
  }
  if (tag == "D") {
    std::string token;
    fields >> token;
    if (token.empty()) {
      return InvalidArgumentError(
          StrCat("def line ", line, ": missing double value"));
    }
    return Value(std::strtod(token.c_str(), nullptr));
  }
  if (tag == "S") {
    std::string rest;
    std::getline(fields, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    return Value(std::move(rest));
  }
  return InvalidArgumentError(
      StrCat("def line ", line, ": unknown value tag '", tag, "'"));
}

// ---------------------------------------------------------------------
// Durable file helpers
// ---------------------------------------------------------------------

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return InternalError(StrCat("cannot open '", path,
                                "' for fsync: ", std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return InternalError(
        StrCat("fsync of '", path, "' failed: ", std::strerror(errno)));
  }
  return Status::Ok();
}

Status WriteFileDurably(const std::string& path,
                        const std::string& contents) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return InternalError(StrCat("cannot write '", path, "'"));
    }
    out << contents;
    if (!out.good()) {
      return InternalError(StrCat("write to '", path, "' failed"));
    }
  }
  return FsyncPath(path);
}

// Atomic pointer-file update: write `<path>.tmp`, fsync, rename over
// `path`, fsync the containing directory.
Status ReplaceFileDurably(const std::string& path,
                          const std::string& contents,
                          const std::string& dir) {
  const std::string tmp = StrCat(path, ".tmp");
  MD_RETURN_IF_ERROR(WriteFileDurably(tmp, contents));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return InternalError(StrCat("rename of '", tmp, "' failed: ",
                                ec.message()));
  }
  return FsyncPath(dir);
}

}  // namespace

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return InternalError(
        StrCat("cannot create directory '", path, "': ", ec.message()));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// View definition text round trip
// ---------------------------------------------------------------------

Status WriteViewDef(const GpsjViewDef& def, std::ostream& out) {
  out << "VIEW " << def.name() << "\n";
  for (const std::string& table : def.tables()) {
    out << "FROM " << table << "\n";
  }
  for (const std::string& table : def.tables()) {
    for (const Condition& c : def.LocalConditions(table).conditions()) {
      out << "WHERE " << table << " " << c.attr << " "
          << CompareOpToken(c.op) << " " << ValueTokens(c.constant)
          << "\n";
    }
  }
  for (const JoinEdge& edge : def.joins()) {
    out << "JOIN " << edge.from_table << " " << edge.from_attr << " "
        << edge.to_table << "\n";
  }
  for (const std::string& table : def.tables()) {
    for (const DerivedAttr& d : def.DerivedAttrsOf(table)) {
      out << "DERIVE " << table << " " << d.name << " " << d.lhs << " "
          << DerivedOpToken(d.op) << " ";
      if (d.rhs_attr.empty()) {
        out << "C " << ValueTokens(d.rhs_constant) << "\n";
      } else {
        out << "A " << d.rhs_attr << "\n";
      }
    }
  }
  for (const OutputItem& item : def.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      out << "OUTPUT GROUPBY " << item.attr.table << " " << item.attr.attr
          << " " << item.output_name << "\n";
    } else {
      const AggregateSpec& agg = item.agg;
      out << "OUTPUT AGG " << AggFnToken(agg.fn) << " "
          << (agg.distinct ? 1 : 0) << " "
          << (agg.fn == AggFn::kCountStar ? "-" : agg.input.table.c_str())
          << " "
          << (agg.fn == AggFn::kCountStar ? "-" : agg.input.attr.c_str())
          << " " << item.output_name << "\n";
    }
  }
  for (const HavingCondition& h : def.having()) {
    out << "HAVING " << h.output_name << " " << CompareOpToken(h.op) << " "
        << ValueTokens(h.constant) << "\n";
  }
  out << "END\n";
  if (!out.good()) return InternalError("view def write failed");
  return Status::Ok();
}

Result<GpsjViewDef> ReadViewDef(std::istream& in, const Catalog& catalog) {
  std::string line_text;
  size_t line = 0;
  std::unique_ptr<GpsjViewBuilder> builder;
  bool ended = false;
  while (std::getline(in, line_text)) {
    ++line;
    if (line_text.empty() || line_text[0] == '#') continue;
    std::istringstream fields(line_text);
    std::string directive;
    fields >> directive;
    if (directive == "VIEW") {
      std::string name;
      fields >> name;
      if (name.empty() || builder != nullptr) {
        return InvalidArgumentError(
            StrCat("def line ", line, ": malformed VIEW directive"));
      }
      builder = std::make_unique<GpsjViewBuilder>(name);
      continue;
    }
    if (builder == nullptr) {
      return InvalidArgumentError(
          StrCat("def line ", line, ": '", directive, "' before VIEW"));
    }
    if (directive == "FROM") {
      std::string table;
      fields >> table;
      if (table.empty()) {
        return InvalidArgumentError(
            StrCat("def line ", line, ": FROM names no table"));
      }
      builder->From(table);
    } else if (directive == "WHERE") {
      std::string table, attr, op_token;
      fields >> table >> attr >> op_token;
      MD_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOpToken(op_token));
      MD_ASSIGN_OR_RETURN(Value constant, ParseValueTokens(fields, line));
      builder->Where(table, attr, op, std::move(constant));
    } else if (directive == "JOIN") {
      std::string from_table, from_attr, to_table;
      fields >> from_table >> from_attr >> to_table;
      if (to_table.empty()) {
        return InvalidArgumentError(
            StrCat("def line ", line, ": truncated JOIN directive"));
      }
      builder->Join(from_table, from_attr, to_table);
    } else if (directive == "DERIVE") {
      std::string table, name, lhs, op_token, rhs_kind;
      fields >> table >> name >> lhs >> op_token >> rhs_kind;
      MD_ASSIGN_OR_RETURN(DerivedAttr::Op op,
                          ParseDerivedOpToken(op_token));
      if (rhs_kind == "A") {
        std::string rhs_attr;
        fields >> rhs_attr;
        builder->Derive(table, name, lhs, op, rhs_attr);
      } else if (rhs_kind == "C") {
        MD_ASSIGN_OR_RETURN(Value constant,
                            ParseValueTokens(fields, line));
        builder->DeriveConst(table, name, lhs, op, std::move(constant));
      } else {
        return InvalidArgumentError(StrCat(
            "def line ", line, ": unknown DERIVE operand kind '",
            rhs_kind, "'"));
      }
    } else if (directive == "OUTPUT") {
      std::string kind;
      fields >> kind;
      if (kind == "GROUPBY") {
        std::string table, attr, output_name;
        fields >> table >> attr >> output_name;
        if (output_name.empty()) {
          return InvalidArgumentError(
              StrCat("def line ", line, ": truncated GROUPBY output"));
        }
        builder->GroupBy(table, attr, output_name);
      } else if (kind == "AGG") {
        std::string fn_token, distinct_token, table, attr, output_name;
        fields >> fn_token >> distinct_token >> table >> attr >>
            output_name;
        if (output_name.empty()) {
          return InvalidArgumentError(
              StrCat("def line ", line, ": truncated AGG output"));
        }
        AggregateSpec spec;
        MD_ASSIGN_OR_RETURN(spec.fn, ParseAggFnToken(fn_token));
        spec.distinct = distinct_token == "1";
        if (spec.fn != AggFn::kCountStar) {
          spec.input = AttributeRef{table, attr};
        }
        spec.output_name = output_name;
        builder->Aggregate(std::move(spec));
      } else {
        return InvalidArgumentError(StrCat(
            "def line ", line, ": unknown OUTPUT kind '", kind, "'"));
      }
    } else if (directive == "HAVING") {
      std::string output_name, op_token;
      fields >> output_name >> op_token;
      MD_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOpToken(op_token));
      MD_ASSIGN_OR_RETURN(Value constant, ParseValueTokens(fields, line));
      builder->Having(output_name, op, std::move(constant));
    } else if (directive == "END") {
      ended = true;
      break;
    } else {
      return InvalidArgumentError(StrCat(
          "def line ", line, ": unknown directive '", directive, "'"));
    }
  }
  if (builder == nullptr || !ended) {
    return InvalidArgumentError("view def is truncated (no END)");
  }
  return builder->Build(catalog);
}

// ---------------------------------------------------------------------
// Checkpoint save/load
// ---------------------------------------------------------------------

namespace {

std::string TypeToken(ValueType type) { return ValueTypeName(type); }

Result<ValueType> ParseTypeToken(const std::string& token, size_t line) {
  if (token == "INT64") return ValueType::kInt64;
  if (token == "DOUBLE") return ValueType::kDouble;
  if (token == "STRING") return ValueType::kString;
  return InvalidArgumentError(StrCat("checkpoint manifest line ", line,
                                     ": unknown type '", token, "'"));
}

std::string SummaryCsvName(const std::string& view) {
  return StrCat(view, ".summary.csv");
}

std::string AuxCsvName(const std::string& view, const std::string& table) {
  return StrCat(view, ".aux.", table, ".csv");
}

// Fixed-width hex FNV-1a of a serialized table file, recorded in the
// manifest and re-verified on load.
std::string ContentHashHex(const std::string& contents) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    Fnv1a(contents.data(), contents.size())));
  return buf;
}

// Framing magic of the ingest-state sidecar file.
constexpr uint32_t kIngestMagic = 0x4E49444D;  // "MDIN"
// Framing magic of the lattice-state sidecar file.
constexpr uint32_t kLatticeMagic = 0x544C444D;  // "MDLT"

// The serialized per-view files of a checkpoint, rendered up front so
// the manifest can embed their content hashes.
struct RenderedView {
  std::string def_text;
  std::string summary_csv;
  std::map<std::string, std::string> aux_csv;  // Base table → CSV bytes.
};

// The checkpoint manifest: everything needed to reload the CSVs and
// defs without consulting any other layer, including the content hash
// of every view-state file.
Result<std::string> RenderCheckpointManifest(
    const WarehouseCheckpoint& cp,
    const std::vector<RenderedView>& rendered) {
  std::ostringstream out;
  out << "# mindetail warehouse checkpoint\n";
  out << "EPOCH " << cp.epoch << "\n";
  out << "SEQ " << cp.sequence << "\n";
  // Written only once the warehouse has replicated, so pre-replication
  // manifests are byte-stable.
  if (cp.leader_epoch > 0) {
    out << "LEADER_EPOCH " << cp.leader_epoch << "\n";
  }
  out << "BEGIN_CATALOG\n";
  MD_RETURN_IF_ERROR(WriteManifest(cp.schema_catalog, out));
  out << "END_CATALOG\n";
  for (size_t i = 0; i < cp.views.size(); ++i) {
    const ViewCheckpoint& view = cp.views[i];
    const RenderedView& files = rendered[i];
    out << "VIEW " << view.name << "\n";
    out << "OPTIONS " << view.options.num_threads << " "
        << (view.options.trust_referential_integrity ? 1 : 0) << " "
        << (view.options.prune_delta_joins ? 1 : 0) << " "
        << (view.options.allow_elimination ? 1 : 0) << "\n";
    // Written only when known, so pre-sharing manifests stay byte-stable.
    if (view.lineage != 0) out << "LINEAGE " << view.lineage << "\n";
    for (const Attribute& attr : view.summary.schema().attributes()) {
      out << "SUMMARY_COL " << attr.name << " " << TypeToken(attr.type)
          << "\n";
    }
    out << "SUMMARY_HASH " << ContentHashHex(files.summary_csv) << "\n";
    for (const auto& [table, contents] : view.aux) {
      out << "AUX " << table << "\n";
      for (const Attribute& attr : contents.schema().attributes()) {
        out << "AUX_COL " << table << " " << attr.name << " "
            << TypeToken(attr.type) << "\n";
      }
      out << "AUX_HASH " << table << " "
          << ContentHashHex(files.aux_csv.at(table)) << "\n";
    }
    out << "END_VIEW\n";
  }
  return out.str();
}

// Parsed manifest shape before the CSVs/defs are read.
struct ManifestView {
  std::string name;
  EngineOptionsData options;
  uint64_t lineage = 0;
  std::vector<Attribute> summary_cols;
  std::vector<std::string> aux_order;
  std::map<std::string, std::vector<Attribute>> aux_cols;
  // Expected file content hashes; empty when the manifest predates
  // checkpoint checksums (then no verification happens).
  std::string summary_hash;
  std::map<std::string, std::string> aux_hashes;
};

struct ParsedManifest {
  uint64_t epoch = 0;
  uint64_t sequence = 0;
  uint64_t leader_epoch = 0;
  Catalog schema_catalog;
  std::vector<ManifestView> views;
};

Result<ParsedManifest> ParseCheckpointManifest(std::istream& in) {
  ParsedManifest parsed;
  std::string line_text;
  size_t line = 0;
  ManifestView* view = nullptr;
  bool saw_catalog = false;
  while (std::getline(in, line_text)) {
    ++line;
    if (line_text.empty() || line_text[0] == '#') continue;
    std::istringstream fields(line_text);
    std::string directive;
    fields >> directive;
    if (directive == "EPOCH") {
      fields >> parsed.epoch;
    } else if (directive == "SEQ") {
      fields >> parsed.sequence;
    } else if (directive == "LEADER_EPOCH") {
      fields >> parsed.leader_epoch;
    } else if (directive == "BEGIN_CATALOG") {
      std::ostringstream catalog_text;
      bool closed = false;
      while (std::getline(in, line_text)) {
        ++line;
        if (line_text == "END_CATALOG") {
          closed = true;
          break;
        }
        catalog_text << line_text << "\n";
      }
      if (!closed) {
        return InvalidArgumentError(
            "checkpoint manifest: unterminated BEGIN_CATALOG block");
      }
      std::istringstream catalog_in(catalog_text.str());
      MD_ASSIGN_OR_RETURN(parsed.schema_catalog,
                          ReadManifest(catalog_in));
      saw_catalog = true;
    } else if (directive == "VIEW") {
      parsed.views.emplace_back();
      view = &parsed.views.back();
      fields >> view->name;
      if (view->name.empty()) {
        return InvalidArgumentError(StrCat(
            "checkpoint manifest line ", line, ": VIEW names no view"));
      }
    } else if (view == nullptr) {
      return InvalidArgumentError(
          StrCat("checkpoint manifest line ", line, ": '", directive,
                 "' outside a VIEW block"));
    } else if (directive == "OPTIONS") {
      int trust = 1, prune = 1, elim = 1;
      fields >> view->options.num_threads >> trust >> prune >> elim;
      view->options.trust_referential_integrity = trust != 0;
      view->options.prune_delta_joins = prune != 0;
      view->options.allow_elimination = elim != 0;
    } else if (directive == "LINEAGE") {
      fields >> view->lineage;
    } else if (directive == "SUMMARY_COL") {
      std::string name, type_token;
      fields >> name >> type_token;
      MD_ASSIGN_OR_RETURN(ValueType type,
                          ParseTypeToken(type_token, line));
      view->summary_cols.push_back(Attribute{name, type});
    } else if (directive == "SUMMARY_HASH") {
      fields >> view->summary_hash;
    } else if (directive == "AUX_HASH") {
      std::string table, hash;
      fields >> table >> hash;
      view->aux_hashes[table] = hash;
    } else if (directive == "AUX") {
      std::string table;
      fields >> table;
      if (table.empty()) {
        return InvalidArgumentError(StrCat(
            "checkpoint manifest line ", line, ": AUX names no table"));
      }
      view->aux_order.push_back(table);
      view->aux_cols[table];
    } else if (directive == "AUX_COL") {
      std::string table, name, type_token;
      fields >> table >> name >> type_token;
      MD_ASSIGN_OR_RETURN(ValueType type,
                          ParseTypeToken(type_token, line));
      view->aux_cols[table].push_back(Attribute{name, type});
    } else if (directive == "END_VIEW") {
      view = nullptr;
    } else {
      return InvalidArgumentError(
          StrCat("checkpoint manifest line ", line,
                 ": unknown directive '", directive, "'"));
    }
  }
  if (!saw_catalog) {
    return InvalidArgumentError(
        "checkpoint manifest lacks a BEGIN_CATALOG block");
  }
  return parsed;
}

}  // namespace

Result<std::string> SaveWarehouseCheckpoint(const WarehouseCheckpoint& cp,
                                            const std::string& dir) {
  const std::string name = StrCat("checkpoint-", cp.epoch);
  const std::string tmp_path = StrCat(dir, "/", name, ".tmp");
  const std::string final_path = StrCat(dir, "/", name);
  std::error_code ec;
  fs::remove_all(tmp_path, ec);
  MD_RETURN_IF_ERROR(EnsureDirectory(tmp_path));

  // Render every view-state file first so the manifest can carry their
  // content hashes.
  std::vector<RenderedView> rendered;
  rendered.reserve(cp.views.size());
  for (const ViewCheckpoint& view : cp.views) {
    RenderedView files;
    std::ostringstream def_text;
    MD_RETURN_IF_ERROR(WriteViewDef(view.def, def_text));
    files.def_text = def_text.str();
    std::ostringstream summary_csv;
    MD_RETURN_IF_ERROR(WriteTableCsv(view.summary, summary_csv));
    files.summary_csv = summary_csv.str();
    for (const auto& [table, contents] : view.aux) {
      std::ostringstream aux_csv;
      MD_RETURN_IF_ERROR(WriteTableCsv(contents, aux_csv));
      files.aux_csv.emplace(table, aux_csv.str());
    }
    rendered.push_back(std::move(files));
  }

  MD_ASSIGN_OR_RETURN(std::string manifest,
                      RenderCheckpointManifest(cp, rendered));
  MD_RETURN_IF_ERROR(WriteFileDurably(
      StrCat(tmp_path, "/", kCheckpointManifest), manifest));
  for (size_t i = 0; i < cp.views.size(); ++i) {
    const ViewCheckpoint& view = cp.views[i];
    const RenderedView& files = rendered[i];
    MD_RETURN_IF_ERROR(WriteFileDurably(
        StrCat(tmp_path, "/", view.name, ".def"), files.def_text));
    MD_RETURN_IF_ERROR(WriteFileDurably(
        StrCat(tmp_path, "/", SummaryCsvName(view.name)),
        files.summary_csv));
    for (const auto& [table, csv] : files.aux_csv) {
      MD_RETURN_IF_ERROR(WriteFileDurably(
          StrCat(tmp_path, "/", AuxCsvName(view.name, table)), csv));
    }
  }
  if (!cp.ingest_state.empty()) {
    MD_RETURN_IF_ERROR(WriteFileDurably(
        StrCat(tmp_path, "/", kIngestStateFile),
        logfmt::FrameRecord(kIngestMagic, cp.ingest_state)));
  }
  if (!cp.lattice_state.empty()) {
    MD_RETURN_IF_ERROR(WriteFileDurably(
        StrCat(tmp_path, "/", kLatticeStateFile),
        logfmt::FrameRecord(kLatticeMagic, cp.lattice_state)));
  }
  MD_RETURN_IF_ERROR(FsyncPath(tmp_path));
  MD_FAILPOINT("checkpoint.after_temp");

  fs::remove_all(final_path, ec);
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return InternalError(StrCat("cannot rename checkpoint into place: ",
                                ec.message()));
  }
  MD_RETURN_IF_ERROR(FsyncPath(dir));
  MD_FAILPOINT("checkpoint.after_rename");

  MD_RETURN_IF_ERROR(ReplaceFileDurably(StrCat(dir, "/", kCurrentFile),
                                        StrCat(name, "\n"), dir));
  MD_FAILPOINT("checkpoint.after_current");
  return name;
}

Result<WarehouseCheckpoint> LoadWarehouseCheckpoint(
    const std::string& dir) {
  std::string current;
  {
    std::ifstream in(StrCat(dir, "/", kCurrentFile));
    if (!in.is_open()) {
      return NotFoundError(StrCat("no CURRENT file in '", dir, "'"));
    }
    std::getline(in, current);
  }
  if (current.empty()) {
    return InvalidArgumentError(
        StrCat("CURRENT file in '", dir, "' is empty"));
  }
  return LoadCheckpointByName(dir, current);
}

Result<WarehouseCheckpoint> LoadCheckpointByName(const std::string& dir,
                                                 const std::string& name) {
  const std::string cp_dir = StrCat(dir, "/", name);

  ParsedManifest parsed;
  {
    std::ifstream in(StrCat(cp_dir, "/", kCheckpointManifest));
    if (!in.is_open()) {
      // The durable pointer names state that is not there — either the
      // whole directory or its manifest is gone. That is data loss, not
      // a malformed argument: the caller may be able to fall back to an
      // older complete checkpoint.
      return DataLossError(StrCat(
          "checkpoint '", cp_dir, "' is missing or incomplete (no ",
          kCheckpointManifest, ")"));
    }
    MD_ASSIGN_OR_RETURN(parsed, ParseCheckpointManifest(in));
  }

  WarehouseCheckpoint cp;
  cp.epoch = parsed.epoch;
  cp.sequence = parsed.sequence;
  cp.leader_epoch = parsed.leader_epoch;
  cp.schema_catalog = std::move(parsed.schema_catalog);
  for (ManifestView& mview : parsed.views) {
    ViewCheckpoint view;
    view.name = mview.name;
    view.options = mview.options;
    view.lineage = mview.lineage;
    {
      std::ifstream in(StrCat(cp_dir, "/", mview.name, ".def"));
      if (!in.is_open()) {
        return DataLossError(
            StrCat("checkpoint lacks def for view '", mview.name, "'"));
      }
      MD_ASSIGN_OR_RETURN(view.def,
                          ReadViewDef(in, cp.schema_catalog));
    }
    // Re-verify the manifest's content hash before trusting any row:
    // view state is the warehouse's only memory, so silent at-rest
    // corruption here would poison every batch that follows.
    auto read_verified = [&](const std::string& path,
                             const std::string& expected_hash,
                             const std::string& what) -> Result<std::string> {
      Result<std::string> contents = logfmt::ReadFileContents(path);
      if (!contents.ok()) {
        return DataLossError(
            StrCat("checkpoint lacks ", what, " ('", path, "')"));
      }
      if (!expected_hash.empty() &&
          ContentHashHex(*contents) != expected_hash) {
        return InternalError(StrCat(
            "checkpoint integrity failure: ", what, " ('", path,
            "') does not match its manifest checksum ", expected_hash));
      }
      return contents;
    };

    MD_ASSIGN_OR_RETURN(
        std::string summary_bytes,
        read_verified(StrCat(cp_dir, "/", SummaryCsvName(mview.name)),
                      mview.summary_hash,
                      StrCat("summary of view '", mview.name, "'")));
    {
      std::istringstream in(summary_bytes);
      MD_ASSIGN_OR_RETURN(
          view.summary,
          ReadTableCsv(in, StrCat(mview.name, "__aug"),
                       Schema(mview.summary_cols), std::nullopt,
                       /*allow_null=*/true));
    }
    for (const std::string& table : mview.aux_order) {
      std::string expected;
      if (auto it = mview.aux_hashes.find(table);
          it != mview.aux_hashes.end()) {
        expected = it->second;
      }
      MD_ASSIGN_OR_RETURN(
          std::string aux_bytes,
          read_verified(StrCat(cp_dir, "/", AuxCsvName(mview.name, table)),
                        expected,
                        StrCat("auxiliary view of '", table, "' in '",
                               mview.name, "'")));
      std::istringstream in(aux_bytes);
      MD_ASSIGN_OR_RETURN(
          Table contents,
          ReadTableCsv(in, table, Schema(mview.aux_cols.at(table)),
                       std::nullopt, /*allow_null=*/true));
      view.aux.emplace(table, std::move(contents));
    }
    cp.views.push_back(std::move(view));
  }

  // Optional ingest-state sidecar (absent in checkpoints written before
  // ingestion hardening).
  if (Result<std::string> framed = logfmt::ReadFileContents(
          StrCat(cp_dir, "/", kIngestStateFile));
      framed.ok()) {
    std::string payload;
    const size_t good_end = logfmt::ScanFrames(
        *framed, kIngestMagic, [&](const std::string& p) {
          payload = p;
          return true;
        });
    if (good_end != framed->size() || payload.empty()) {
      return InternalError(StrCat("checkpoint integrity failure: '",
                                  cp_dir, "/", kIngestStateFile,
                                  "' is torn or corrupt"));
    }
    cp.ingest_state = std::move(payload);
  }

  // Optional lattice-state sidecar (absent when the lattice is off or
  // the checkpoint predates it).
  if (Result<std::string> framed = logfmt::ReadFileContents(
          StrCat(cp_dir, "/", kLatticeStateFile));
      framed.ok()) {
    std::string payload;
    const size_t good_end = logfmt::ScanFrames(
        *framed, kLatticeMagic, [&](const std::string& p) {
          payload = p;
          return true;
        });
    if (good_end != framed->size() || payload.empty()) {
      return InternalError(StrCat("checkpoint integrity failure: '",
                                  cp_dir, "/", kLatticeStateFile,
                                  "' is torn or corrupt"));
    }
    cp.lattice_state = std::move(payload);
  }
  return cp;
}

std::vector<std::string> ListCheckpointNames(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "checkpoint-") || EndsWith(name, ".tmp")) {
      continue;
    }
    names.push_back(name);
  }
  // Newest epoch first. The epoch is the numeric suffix; fall back to
  // lexicographic order for anything unparsable.
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              const uint64_t ea =
                  std::strtoull(a.c_str() + sizeof("checkpoint-") - 1,
                                nullptr, 10);
              const uint64_t eb =
                  std::strtoull(b.c_str() + sizeof("checkpoint-") - 1,
                                nullptr, 10);
              if (ea != eb) return ea > eb;
              return a > b;
            });
  return names;
}

Status SetCurrentCheckpoint(const std::string& dir,
                            const std::string& name) {
  return ReplaceFileDurably(StrCat(dir, "/", kCurrentFile),
                            StrCat(name, "\n"), dir);
}

Status TransferCheckpoint(const std::string& src_dir,
                          const std::string& name,
                          const std::string& dst_dir) {
  const std::string src = StrCat(src_dir, "/", name);
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return DataLossError(StrCat("checkpoint '", src,
                                "' is not there to transfer"));
  }
  MD_RETURN_IF_ERROR(EnsureDirectory(dst_dir));
  const std::string tmp = StrCat(dst_dir, "/", name, ".tmp");
  const std::string final_path = StrCat(dst_dir, "/", name);
  fs::remove_all(tmp, ec);
  MD_RETURN_IF_ERROR(EnsureDirectory(tmp));
  for (const fs::directory_entry& entry : fs::directory_iterator(src, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string file = entry.path().filename().string();
    MD_ASSIGN_OR_RETURN(std::string contents,
                        logfmt::ReadFileContents(entry.path().string()));
    MD_RETURN_IF_ERROR(WriteFileDurably(StrCat(tmp, "/", file), contents));
  }
  MD_RETURN_IF_ERROR(FsyncPath(tmp));
  MD_FAILPOINT("replication.transfer.after_copy");

  fs::remove_all(final_path, ec);
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return InternalError(StrCat(
        "cannot rename transferred checkpoint into place: ", ec.message()));
  }
  MD_RETURN_IF_ERROR(FsyncPath(dst_dir));
  MD_RETURN_IF_ERROR(SetCurrentCheckpoint(dst_dir, name));
  MD_FAILPOINT("replication.transfer.after_current");
  return Status::Ok();
}

void RemoveStaleCheckpoints(const std::string& dir,
                            const std::string& keep) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "checkpoint-") || name == keep) continue;
    std::error_code remove_ec;
    fs::remove_all(entry.path(), remove_ec);  // Best-effort.
  }
}

}  // namespace mindetail
