#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/strings.h"

namespace mindetail {
namespace {

void AppendField(const Value& value, std::string* out) {
  switch (value.type()) {
    case ValueType::kNull:
      break;  // Empty field.
    case ValueType::kInt64:
      out->append(std::to_string(value.AsInt64()));
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g",
                    std::numeric_limits<double>::max_digits10,
                    value.AsDouble());
      out->append(buf);
      break;
    }
    case ValueType::kString: {
      out->push_back('"');
      for (char c : value.AsString()) {
        if (c == '"') out->push_back('"');
        out->push_back(c);
      }
      out->push_back('"');
      break;
    }
  }
}

// Splits one logical CSV record into fields. Returns false on a quoting
// error. Quoted fields may contain commas, quotes (doubled) and
// newlines — the caller hands in a complete record.
bool SplitRecord(const std::string& record,
                 std::vector<std::pair<std::string, bool>>* fields) {
  fields->clear();
  std::string current;
  bool quoted_field = false;
  size_t i = 0;
  bool in_quotes = false;
  while (i <= record.size()) {
    if (i == record.size()) {
      if (in_quotes) return false;
      fields->emplace_back(std::move(current), quoted_field);
      break;
    }
    const char c = record[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty() && !quoted_field) {
      in_quotes = true;
      quoted_field = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->emplace_back(std::move(current), quoted_field);
      current.clear();
      quoted_field = false;
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  return true;
}

// Reads one logical record (handling newlines inside quotes). Returns
// false at end of input.
bool ReadRecord(std::istream& in, std::string* record) {
  record->clear();
  std::string line;
  bool got_any = false;
  while (std::getline(in, line)) {
    got_any = true;
    if (!record->empty()) record->push_back('\n');
    record->append(line);
    // Balanced quotes → the record is complete.
    size_t quotes = 0;
    for (char c : *record) {
      if (c == '"') ++quotes;
    }
    if (quotes % 2 == 0) return true;
  }
  return got_any;
}

Result<Value> ParseField(const std::string& text, bool quoted,
                         ValueType type, size_t line) {
  if (quoted) {
    if (type != ValueType::kString) {
      return InvalidArgumentError(StrCat(
          "line ", line, ": quoted value where ", ValueTypeName(type),
          " expected"));
    }
    return Value(text);
  }
  if (text.empty()) return Value();  // NULL.
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0') {
        return InvalidArgumentError(
            StrCat("line ", line, ": '", text, "' is not an integer"));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == nullptr || *end != '\0') {
        return InvalidArgumentError(
            StrCat("line ", line, ": '", text, "' is not a number"));
      }
      return Value(v);
    }
    case ValueType::kString:
      return InvalidArgumentError(
          StrCat("line ", line, ": unquoted value '", text,
                 "' where a string was expected"));
    case ValueType::kNull:
      break;
  }
  return InvalidArgumentError(StrCat("line ", line, ": bad field"));
}

}  // namespace

Status WriteTableCsv(const Table& table, std::ostream& out) {
  std::string buffer;
  for (const Tuple& row : table.rows()) {
    buffer.clear();
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) buffer.push_back(',');
      AppendField(row[i], &buffer);
    }
    buffer.push_back('\n');
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  }
  if (!out.good()) return InternalError("CSV write failed");
  return Status::Ok();
}

Status WriteTableCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return NotFoundError(StrCat("cannot open '", path, "' for writing"));
  }
  return WriteTableCsv(table, out);
}

Result<Table> ReadTableCsv(std::istream& in, const std::string& name,
                           const Schema& schema,
                           const std::optional<std::string>& key_attr,
                           bool allow_null) {
  Table table(name, schema);
  if (key_attr.has_value()) {
    MD_ASSIGN_OR_RETURN(table, Table::WithKey(name, schema, *key_attr));
  }
  table.set_allow_null(allow_null);

  std::string record;
  std::vector<std::pair<std::string, bool>> fields;
  size_t line = 0;
  while (ReadRecord(in, &record)) {
    ++line;
    if (record.empty()) continue;
    if (!SplitRecord(record, &fields)) {
      return InvalidArgumentError(
          StrCat("line ", line, ": unbalanced quotes"));
    }
    if (fields.size() != schema.size()) {
      return InvalidArgumentError(
          StrCat("line ", line, ": ", fields.size(), " fields, schema has ",
                 schema.size()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      MD_ASSIGN_OR_RETURN(
          Value value,
          ParseField(fields[i].first, fields[i].second,
                     schema.attribute(i).type, line));
      row.push_back(std::move(value));
    }
    MD_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return table;
}

Result<Table> ReadTableCsvFile(const std::string& path,
                               const std::string& name,
                               const Schema& schema,
                               const std::optional<std::string>& key_attr,
                               bool allow_null) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError(StrCat("cannot open '", path, "'"));
  }
  return ReadTableCsv(in, name, schema, key_attr, allow_null);
}

}  // namespace mindetail
