// Conjunctive selection predicates over single tables.
//
// GPSJ views restrict selections to conjunctions of simple comparisons
// (paper Sec. 2.1); conditions referencing a single table are *local
// conditions* and get pushed into auxiliary views by local reduction.

#ifndef MINDETAIL_RELATIONAL_PREDICATE_H_
#define MINDETAIL_RELATIONAL_PREDICATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace mindetail {

enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

// Returns the SQL spelling, e.g. "=", "<>".
const char* CompareOpName(CompareOp op);

// Applies `op` to the three-way comparison of `lhs` and `rhs`.
bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs);

// `attr op constant`, e.g. year = 1997.
struct Condition {
  std::string attr;
  CompareOp op = CompareOp::kEq;
  Value constant;

  std::string ToString() const;
};

// A conjunction of simple conditions over one schema. An empty
// conjunction is TRUE.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Condition> conditions)
      : conditions_(std::move(conditions)) {}

  void Add(Condition condition) {
    conditions_.push_back(std::move(condition));
  }

  bool empty() const { return conditions_.empty(); }
  const std::vector<Condition>& conditions() const { return conditions_; }

  // Checks every referenced attribute exists in `schema` and its type is
  // comparable with the constant.
  Status Validate(const Schema& schema) const;

  // Evaluates against a row of `schema`. The row must satisfy the schema.
  bool Eval(const Schema& schema, const Tuple& row) const;

  // e.g. "year = 1997 AND month <= 6"; "TRUE" when empty.
  std::string ToString() const;

 private:
  std::vector<Condition> conditions_;
};

// A pre-bound conjunction: attribute names resolved to column indexes
// once, for tight evaluation loops.
class BoundPredicate {
 public:
  static Result<BoundPredicate> Bind(const Conjunction& conjunction,
                                     const Schema& schema);

  bool Eval(const Tuple& row) const {
    for (const auto& [idx, op, constant] : bound_) {
      if (!EvalCompare(op, row[idx], constant)) return false;
    }
    return true;
  }

 private:
  struct BoundCondition {
    size_t idx;
    CompareOp op;
    Value constant;
  };
  std::vector<BoundCondition> bound_;
};

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_PREDICATE_H_
