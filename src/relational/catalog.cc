#include "relational/catalog.h"

#include <utility>

#include "common/strings.h"

namespace mindetail {

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            const std::string& key_attr) {
  if (tables_.count(name) > 0) {
    return AlreadyExistsError(StrCat("table '", name, "' already exists"));
  }
  MD_ASSIGN_OR_RETURN(Table table,
                      Table::WithKey(name, std::move(schema), key_attr));
  tables_.emplace(name, std::move(table));
  return Status::Ok();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError(StrCat("table '", name, "' not in catalog"));
  }
  return &it->second;
}

Result<Table*> Catalog::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError(StrCat("table '", name, "' not in catalog"));
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<std::string> Catalog::KeyAttr(const std::string& table) const {
  MD_ASSIGN_OR_RETURN(const Table* t, GetTable(table));
  std::optional<std::string> key = t->key_attr();
  if (!key.has_value()) {
    return FailedPreconditionError(StrCat("table '", table, "' has no key"));
  }
  return *key;
}

Status Catalog::AddForeignKey(const std::string& from_table,
                              const std::string& from_attr,
                              const std::string& to_table) {
  MD_ASSIGN_OR_RETURN(const Table* from, GetTable(from_table));
  MD_ASSIGN_OR_RETURN(const Table* to, GetTable(to_table));
  std::optional<size_t> from_idx = from->schema().IndexOf(from_attr);
  if (!from_idx.has_value()) {
    return NotFoundError(StrCat("attribute '", from_attr,
                                "' not in table '", from_table, "'"));
  }
  std::optional<size_t> to_key = to->key_index();
  if (!to_key.has_value()) {
    return FailedPreconditionError(
        StrCat("foreign-key target '", to_table, "' has no primary key"));
  }
  const ValueType from_type = from->schema().attribute(*from_idx).type;
  const ValueType to_type = to->schema().attribute(*to_key).type;
  if (from_type != to_type) {
    return InvalidArgumentError(StrCat(
        "foreign key type mismatch: ", from_table, ".", from_attr, " is ",
        ValueTypeName(from_type), " but key of ", to_table, " is ",
        ValueTypeName(to_type)));
  }
  foreign_keys_.insert(ForeignKey{from_table, from_attr, to_table});
  return Status::Ok();
}

bool Catalog::HasForeignKey(const std::string& from_table,
                            const std::string& from_attr,
                            const std::string& to_table) const {
  return foreign_keys_.count(ForeignKey{from_table, from_attr, to_table}) >
         0;
}

Status Catalog::SetExposedUpdates(const std::string& table, bool exposed) {
  if (!HasTable(table)) {
    return NotFoundError(StrCat("table '", table, "' not in catalog"));
  }
  if (exposed && append_only_.count(table) > 0) {
    return FailedPreconditionError(
        StrCat("table '", table, "' is append-only; it cannot have "
               "exposed updates"));
  }
  if (exposed) {
    exposed_updates_.insert(table);
  } else {
    exposed_updates_.erase(table);
  }
  return Status::Ok();
}

Status Catalog::SetAppendOnly(const std::string& table, bool append_only) {
  if (!HasTable(table)) {
    return NotFoundError(StrCat("table '", table, "' not in catalog"));
  }
  if (append_only && exposed_updates_.count(table) > 0) {
    return FailedPreconditionError(
        StrCat("table '", table, "' has exposed updates; it cannot be "
               "append-only"));
  }
  if (append_only) {
    append_only_.insert(table);
  } else {
    append_only_.erase(table);
  }
  return Status::Ok();
}

bool Catalog::IsAppendOnly(const std::string& table) const {
  return append_only_.count(table) > 0;
}

bool Catalog::HasExposedUpdates(const std::string& table) const {
  return exposed_updates_.count(table) > 0;
}

Status Catalog::CheckReferentialIntegrity() const {
  for (const ForeignKey& fk : foreign_keys_) {
    MD_ASSIGN_OR_RETURN(const Table* from, GetTable(fk.from_table));
    MD_ASSIGN_OR_RETURN(const Table* to, GetTable(fk.to_table));
    const size_t from_idx = *from->schema().IndexOf(fk.from_attr);
    for (const Tuple& row : from->rows()) {
      if (!to->ContainsKey(row[from_idx])) {
        return FailedPreconditionError(StrCat(
            "referential integrity violated: ", fk.ToString(), " — value ",
            row[from_idx].ToString(), " has no referent"));
      }
    }
  }
  return Status::Ok();
}

}  // namespace mindetail
