#include "relational/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
      return "COUNT(*)";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

std::string PhysicalAggregate::ToString() const {
  std::string expr;
  if (fn == AggFn::kCountStar) {
    expr = "COUNT(*)";
  } else {
    expr = StrCat(AggFnName(fn), "(", distinct ? "DISTINCT " : "",
                  input_attr, ")");
  }
  return StrCat(expr, " AS ", output_name);
}

Result<Table> Select(const Table& input, const Conjunction& predicate,
                     std::string result_name) {
  MD_ASSIGN_OR_RETURN(BoundPredicate bound,
                      BoundPredicate::Bind(predicate, input.schema()));
  Table out(result_name.empty() ? StrCat("select(", input.name(), ")")
                                : std::move(result_name),
            input.schema());
  out.set_allow_null(true);
  for (const Tuple& row : input.rows()) {
    if (bound.Eval(row)) MD_RETURN_IF_ERROR(out.Insert(row));
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& attrs, bool distinct,
                      std::string result_name) {
  std::vector<size_t> indexes;
  std::vector<Attribute> out_attrs;
  indexes.reserve(attrs.size());
  out_attrs.reserve(attrs.size());
  for (const std::string& name : attrs) {
    std::optional<size_t> idx = input.schema().IndexOf(name);
    if (!idx.has_value()) {
      return NotFoundError(StrCat("projection attribute '", name,
                                  "' not in '", input.name(), "'"));
    }
    indexes.push_back(*idx);
    out_attrs.push_back(input.schema().attribute(*idx));
  }
  Table out(result_name.empty() ? StrCat("project(", input.name(), ")")
                                : std::move(result_name),
            Schema(std::move(out_attrs)));
  out.set_allow_null(true);
  std::unordered_set<Tuple, TupleHash, TupleEqual> seen;
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(indexes.size());
    for (size_t idx : indexes) projected.push_back(row[idx]);
    if (distinct) {
      if (!seen.insert(projected).second) continue;
    }
    MD_RETURN_IF_ERROR(out.Insert(std::move(projected)));
  }
  return out;
}

namespace {

Result<Schema> ConcatSchemas(const Schema& left, const Schema& right) {
  std::vector<Attribute> attrs = left.attributes();
  for (const Attribute& a : right.attributes()) {
    if (left.Contains(a.name)) {
      return InvalidArgumentError(
          StrCat("join would duplicate attribute name '", a.name,
                 "'; qualify columns first"));
    }
    attrs.push_back(a);
  }
  return Schema(std::move(attrs));
}

}  // namespace

Result<TableIndex> TableIndex::Build(const Table& table,
                                     const std::string& attr) {
  std::optional<size_t> idx = table.schema().IndexOf(attr);
  if (!idx.has_value()) {
    return NotFoundError(
        StrCat("join attribute '", attr, "' not in '", table.name(), "'"));
  }
  TableIndex index;
  index.map_.reserve(table.NumRows());
  for (size_t i = 0; i < table.NumRows(); ++i) {
    index.map_[table.row(i)[*idx]].push_back(i);
  }
  return index;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name) {
  MD_ASSIGN_OR_RETURN(TableIndex index, TableIndex::Build(right, right_attr));
  return HashJoinIndexed(left, right, left_attr, index,
                         std::move(result_name));
}

Result<Table> HashJoinIndexed(const Table& left, const Table& right,
                              const std::string& left_attr,
                              const TableIndex& right_index,
                              std::string result_name) {
  std::optional<size_t> left_idx = left.schema().IndexOf(left_attr);
  if (!left_idx.has_value()) {
    return NotFoundError(StrCat("join attribute '", left_attr,
                                "' not in '", left.name(), "'"));
  }
  MD_ASSIGN_OR_RETURN(Schema out_schema,
                      ConcatSchemas(left.schema(), right.schema()));
  Table out(result_name.empty()
                ? StrCat("join(", left.name(), ",", right.name(), ")")
                : std::move(result_name),
            std::move(out_schema));
  out.set_allow_null(true);
  for (const Tuple& lrow : left.rows()) {
    const std::vector<size_t>* matches = right_index.Lookup(lrow[*left_idx]);
    if (matches == nullptr) continue;
    for (size_t ri : *matches) {
      Tuple combined = lrow;
      const Tuple& rrow = right.row(ri);
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      MD_RETURN_IF_ERROR(out.Insert(std::move(combined)));
    }
  }
  return out;
}

Result<Table> SemiJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name) {
  MD_ASSIGN_OR_RETURN(TableIndex index, TableIndex::Build(right, right_attr));
  if (result_name.empty()) {
    result_name = StrCat("semijoin(", left.name(), ",", right.name(), ")");
  }
  return SemiJoinIndexed(left, left_attr, index, std::move(result_name));
}

Result<Table> SemiJoinIndexed(const Table& left,
                              const std::string& left_attr,
                              const TableIndex& right_index,
                              std::string result_name) {
  std::optional<size_t> left_idx = left.schema().IndexOf(left_attr);
  if (!left_idx.has_value()) {
    return NotFoundError(StrCat("semijoin attribute '", left_attr,
                                "' not in '", left.name(), "'"));
  }
  Table out(result_name.empty() ? StrCat("semijoin(", left.name(), ")")
                                : std::move(result_name),
            left.schema());
  out.set_allow_null(true);
  for (const Tuple& lrow : left.rows()) {
    if (right_index.Contains(lrow[*left_idx])) {
      MD_RETURN_IF_ERROR(out.Insert(lrow));
    }
  }
  return out;
}

namespace {

// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  Value sum;  // NULL until first value.
  Value min;
  Value max;
  std::unordered_set<Value, ValueHash, ValueEqual> distinct_values;
};

Result<ValueType> AggOutputType(const PhysicalAggregate& agg,
                                const Schema& input) {
  switch (agg.fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return ValueType::kInt64;
    case AggFn::kAvg:
      return ValueType::kDouble;
    case AggFn::kSum:
    case AggFn::kMin:
    case AggFn::kMax: {
      std::optional<size_t> idx = input.IndexOf(agg.input_attr);
      if (!idx.has_value()) {
        return NotFoundError(StrCat("aggregate input '", agg.input_attr,
                                    "' not in schema"));
      }
      const ValueType t = input.attribute(*idx).type;
      if (agg.fn == AggFn::kSum && t == ValueType::kString) {
        return InvalidArgumentError(
            StrCat("SUM over string attribute '", agg.input_attr, "'"));
      }
      return t;
    }
  }
  return InternalError("unknown aggregate function");
}

Value FinalizeAggregate(const PhysicalAggregate& agg, const AggState& s) {
  switch (agg.fn) {
    case AggFn::kCountStar:
      return Value(s.count);
    case AggFn::kCount:
      return agg.distinct
                 ? Value(static_cast<int64_t>(s.distinct_values.size()))
                 : Value(s.count);
    case AggFn::kSum:
      if (agg.distinct) {
        Value total;
        for (const Value& v : s.distinct_values) total = AddValues(total, v);
        return total;
      }
      return s.sum;
    case AggFn::kAvg: {
      int64_t n = s.count;
      Value total = s.sum;
      if (agg.distinct) {
        n = static_cast<int64_t>(s.distinct_values.size());
        total = Value();
        for (const Value& v : s.distinct_values) total = AddValues(total, v);
      }
      if (n == 0 || total.is_null()) return Value();
      return Value(total.NumericAsDouble() / static_cast<double>(n));
    }
    case AggFn::kMin:
      return s.min;
    case AggFn::kMax:
      return s.max;
  }
  return Value();
}

}  // namespace

Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_attrs,
                             const std::vector<PhysicalAggregate>& aggregates,
                             std::string result_name) {
  // Resolve group columns.
  std::vector<size_t> group_idx;
  std::vector<Attribute> out_attrs;
  group_idx.reserve(group_attrs.size());
  for (const std::string& name : group_attrs) {
    std::optional<size_t> idx = input.schema().IndexOf(name);
    if (!idx.has_value()) {
      return NotFoundError(
          StrCat("group-by attribute '", name, "' not in schema"));
    }
    group_idx.push_back(*idx);
    out_attrs.push_back(input.schema().attribute(*idx));
  }
  // Resolve aggregate inputs and output types.
  std::vector<std::optional<size_t>> agg_input_idx;
  agg_input_idx.reserve(aggregates.size());
  for (const PhysicalAggregate& agg : aggregates) {
    MD_ASSIGN_OR_RETURN(ValueType out_type, AggOutputType(agg, input.schema()));
    if (agg.output_name.empty()) {
      return InvalidArgumentError(
          StrCat("aggregate ", AggFnName(agg.fn), " lacks an output name"));
    }
    out_attrs.push_back(Attribute{agg.output_name, out_type});
    if (agg.fn == AggFn::kCountStar) {
      agg_input_idx.push_back(std::nullopt);
    } else {
      agg_input_idx.push_back(input.schema().IndexOf(agg.input_attr));
    }
  }

  std::unordered_map<Tuple, std::vector<AggState>, TupleHash, TupleEqual>
      groups;
  for (const Tuple& row : input.rows()) {
    Tuple key;
    key.reserve(group_idx.size());
    for (size_t gi : group_idx) key.push_back(row[gi]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(aggregates.size());
    for (size_t a = 0; a < aggregates.size(); ++a) {
      AggState& state = it->second[a];
      state.count += 1;
      if (!agg_input_idx[a].has_value()) continue;
      const Value& v = row[*agg_input_idx[a]];
      const PhysicalAggregate& agg = aggregates[a];
      switch (agg.fn) {
        case AggFn::kCountStar:
          break;
        case AggFn::kCount:
          if (agg.distinct) state.distinct_values.insert(v);
          break;
        case AggFn::kSum:
        case AggFn::kAvg:
          if (agg.distinct) {
            state.distinct_values.insert(v);
          } else {
            state.sum = AddValues(state.sum, v);
          }
          break;
        case AggFn::kMin:
          if (state.min.is_null() || v.Compare(state.min) < 0) state.min = v;
          break;
        case AggFn::kMax:
          if (state.max.is_null() || v.Compare(state.max) > 0) state.max = v;
          break;
      }
    }
  }

  Table out(result_name.empty() ? StrCat("gamma(", input.name(), ")")
                                : std::move(result_name),
            Schema(std::move(out_attrs)));
  out.set_allow_null(true);

  if (group_attrs.empty() && groups.empty()) {
    // SQL scalar-aggregate semantics: one row over the empty input.
    Tuple row;
    AggState empty;
    for (const PhysicalAggregate& agg : aggregates) {
      row.push_back(FinalizeAggregate(agg, empty));
    }
    MD_RETURN_IF_ERROR(out.Insert(std::move(row)));
    return out;
  }

  for (const auto& [key, states] : groups) {
    Tuple row = key;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      row.push_back(FinalizeAggregate(aggregates[a], states[a]));
    }
    MD_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  SortRows(&out);
  return out;
}

Table QualifyColumns(const Table& input, const std::string& prefix) {
  std::vector<Attribute> attrs;
  attrs.reserve(input.schema().size());
  for (const Attribute& a : input.schema().attributes()) {
    attrs.push_back(Attribute{StrCat(prefix, ".", a.name), a.type});
  }
  Table out(input.name(), Schema(std::move(attrs)));
  out.set_allow_null(true);
  for (const Tuple& row : input.rows()) {
    MD_CHECK(out.Insert(row).ok());
  }
  return out;
}

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

void SortRows(Table* table) {
  MD_CHECK(table != nullptr);
  // Sorting invalidates the key map, so only key-less tables may be
  // sorted; operator outputs never carry keys.
  MD_CHECK(!table->key_index().has_value());
  Table sorted(table->name(), table->schema());
  sorted.set_allow_null(true);
  std::vector<Tuple> rows = table->rows();
  std::sort(rows.begin(), rows.end(), TupleLess);
  for (Tuple& row : rows) MD_CHECK(sorted.Insert(std::move(row)).ok());
  *table = std::move(sorted);
}

bool TablesEqualAsBags(const Table& a, const Table& b) {
  if (a.schema().size() != b.schema().size()) return false;
  if (a.NumRows() != b.NumRows()) return false;
  std::unordered_map<Tuple, int64_t, TupleHash, TupleEqual> counts;
  for (const Tuple& row : a.rows()) counts[row] += 1;
  for (const Tuple& row : b.rows()) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    it->second -= 1;
  }
  return true;
}

}  // namespace mindetail
