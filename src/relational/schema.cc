#include "relational/schema.h"

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    for (size_t j = i + 1; j < attributes_.size(); ++j) {
      MD_CHECK(attributes_[i].name != attributes_[j].name);
    }
  }
}

const Attribute& Schema::attribute(size_t i) const {
  MD_CHECK_LT(i, attributes_.size());
  return attributes_[i];
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::Append(Attribute attribute) {
  if (Contains(attribute.name)) {
    return AlreadyExistsError(
        StrCat("attribute '", attribute.name, "' already in schema"));
  }
  attributes_.push_back(std::move(attribute));
  return Status::Ok();
}

Status Schema::ValidateTuple(const Tuple& tuple, bool allow_null) const {
  if (tuple.size() != attributes_.size()) {
    return InvalidArgumentError(
        StrCat("tuple arity ", tuple.size(), " does not match schema arity ",
               attributes_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) {
      if (allow_null) continue;
      return InvalidArgumentError(
          StrCat("NULL in attribute '", attributes_[i].name,
                 "'; base tables are NULL-free"));
    }
    if (tuple[i].type() != attributes_[i].type) {
      // Permit int64 literals where a double column is declared; they
      // compare equal anyway and this keeps test fixtures readable.
      if (attributes_[i].type == ValueType::kDouble &&
          tuple[i].type() == ValueType::kInt64) {
        continue;
      }
      return InvalidArgumentError(StrCat(
          "attribute '", attributes_[i].name, "' expects ",
          ValueTypeName(attributes_[i].type), " but tuple holds ",
          ValueTypeName(tuple[i].type())));
    }
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const Attribute& a : attributes_) {
    parts.push_back(StrCat(a.name, " ", ValueTypeName(a.type)));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace mindetail
