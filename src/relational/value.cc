#include "relational/value.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const {
  MD_CHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  MD_CHECK(type() == ValueType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  MD_CHECK(type() == ValueType::kString);
  return std::get<std::string>(data_);
}

double Value::NumericAsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    default:
      MD_CHECK(false);  // Non-numeric value used in numeric context.
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;  // NULL sorts first.
  }
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      const int64_t a = std::get<int64_t>(data_);
      const int64_t b = std::get<int64_t>(other.data_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = NumericAsDouble();
    const double b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Only string-vs-string remains valid.
  MD_CHECK(type() == ValueType::kString &&
           other.type() == ValueType::kString);
  const std::string& a = std::get<std::string>(data_);
  const std::string& b = std::get<std::string>(other.data_);
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt64: {
      const int64_t v = std::get<int64_t>(data_);
      return HashCombine(0x11, static_cast<uint64_t>(v));
    }
    case ValueType::kDouble: {
      // Hash doubles holding integral values identically to the int64,
      // since Compare treats them as equal.
      const double d = std::get<double>(data_);
      if (std::nearbyint(d) == d && std::abs(d) < 9.2e18) {
        return HashCombine(0x11, static_cast<uint64_t>(
                                     static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(0x22, bits);
    }
    case ValueType::kString:
      return Fnv1a(std::get<std::string>(data_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      const double d = std::get<double>(data_);
      if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
        return FormatDouble(d, 1);
      }
      return FormatDouble(d, 4);
    }
    case ValueType::kString:
      return StrCat("'", std::get<std::string>(data_), "'");
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

Value AddValues(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Value(a.AsInt64() + b.AsInt64());
  }
  return Value(a.NumericAsDouble() + b.NumericAsDouble());
}

Value NegateValue(const Value& v) {
  if (v.is_null()) return v;
  if (v.type() == ValueType::kInt64) return Value(-v.AsInt64());
  return Value(-v.NumericAsDouble());
}

Value ScaleValue(const Value& v, int64_t count) {
  if (v.is_null()) return v;
  if (v.type() == ValueType::kInt64) return Value(v.AsInt64() * count);
  return Value(v.NumericAsDouble() * static_cast<double>(count));
}

std::string TupleToString(const Tuple& tuple) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (const Value& v : tuple) parts.push_back(v.ToString());
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace mindetail
