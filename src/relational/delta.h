// Change batches (deltas) against a base table.
//
// The paper assumes insertions, deletions, and updates of base tables
// (Sec. 2.1). Updates carry the before- and after-image; *exposed*
// updates — those changing attributes involved in selection or join
// conditions — are propagated as a deletion followed by an insertion.

#ifndef MINDETAIL_RELATIONAL_DELTA_H_
#define MINDETAIL_RELATIONAL_DELTA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace mindetail {

// An in-place modification of one row, identified by its before-image.
struct Update {
  Tuple before;
  Tuple after;
};

// A batch of changes against one base table.
struct Delta {
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
  std::vector<Update> updates;

  bool Empty() const {
    return inserts.empty() && deletes.empty() && updates.empty();
  }
  size_t Size() const {
    return inserts.size() + deletes.size() + updates.size();
  }
};

// Applies `delta` to `table`: deletions first (by full before-image),
// then updates (before-image replaced by after-image), then insertions.
// Fails without partial application checks if any before-image is
// missing or an insertion violates the key.
Status ApplyDelta(Table* table, const Delta& delta);

// Rewrites every update as a delete of the before-image plus an insert
// of the after-image (the paper's treatment of exposed updates).
Delta NormalizeUpdates(const Delta& delta);

// Splits `delta` by whether each update touches any attribute in
// `protected_attrs` (attributes involved in selection or join
// conditions). Touching updates become delete+insert pairs; others stay
// as updates. This implements the exposed-update propagation rule.
Delta NormalizeExposedUpdates(const Delta& delta, const Schema& schema,
                              const std::vector<std::string>& protected_attrs);

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_DELTA_H_
