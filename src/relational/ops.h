// Physical relational operators: selection, projection, hash join,
// semijoin, and grouped aggregation. These are the building blocks the
// GPSJ evaluator and the maintenance engine compose.

#ifndef MINDETAIL_RELATIONAL_OPS_H_
#define MINDETAIL_RELATIONAL_OPS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace mindetail {

// The physical aggregate functions. `kCountStar` is COUNT(*); the others
// take an input attribute. Distinctness is orthogonal (except COUNT(*),
// which never is).
enum class AggFn {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggFnName(AggFn fn);

// A single aggregate column computed by GroupAggregate.
struct PhysicalAggregate {
  AggFn fn = AggFn::kCountStar;
  std::string input_attr;  // Empty for kCountStar.
  bool distinct = false;
  std::string output_name;

  // e.g. "SUM(price) AS total" or "COUNT(DISTINCT brand) AS brands".
  std::string ToString() const;
};

// σ: rows of `input` satisfying `predicate`.
Result<Table> Select(const Table& input, const Conjunction& predicate,
                     std::string result_name = "");

// π: the named columns, optionally duplicate-eliminating.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& attrs, bool distinct,
                      std::string result_name = "");

// A prebuilt read-only hash index over one column of a table: join-key
// value → indexes of the rows carrying it. Build it once and share it
// across any number of HashJoinIndexed / SemiJoinIndexed calls (and
// across threads — lookups are const). The row indexes remain valid for
// any table with the same rows in the same order, in particular for
// QualifyColumns copies of the indexed table.
class TableIndex {
 public:
  TableIndex() = default;

  // Indexes `table` on column `attr` (resolved by name at build time).
  static Result<TableIndex> Build(const Table& table,
                                  const std::string& attr);

  // Row indexes carrying `value`, or nullptr when no row does.
  const std::vector<size_t>* Lookup(const Value& value) const {
    auto it = map_.find(value);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool Contains(const Value& value) const { return map_.count(value) > 0; }
  size_t num_keys() const { return map_.size(); }

 private:
  std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEqual>
      map_;
};

// ⋈: equi-join on left.left_attr = right.right_attr. Output schema is
// the concatenation of both inputs' schemas; colliding attribute names
// are an error (pre-qualify with QualifyColumns).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name = "");

// As HashJoin, but probes a prebuilt index of `right` instead of
// building one per call. `right` must have the same rows in the same
// order as the table the index was built from (a QualifyColumns copy
// qualifies). Bit-identical output to HashJoin: the left input streams
// in row order either way.
Result<Table> HashJoinIndexed(const Table& left, const Table& right,
                              const std::string& left_attr,
                              const TableIndex& right_index,
                              std::string result_name = "");

// ⋉: rows of `left` that join with at least one row of `right`.
Result<Table> SemiJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name = "");

// As SemiJoin, but tests membership against a prebuilt index of the
// right side. Bit-identical output to SemiJoin.
Result<Table> SemiJoinIndexed(const Table& left,
                              const std::string& left_attr,
                              const TableIndex& right_index,
                              std::string result_name = "");

// Generalized projection Π: group by `group_attrs` and compute
// `aggregates` per group. With empty `group_attrs`, SQL scalar-aggregate
// semantics apply (exactly one output row, even for empty input).
// Output rows are sorted lexicographically for determinism.
Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_attrs,
                             const std::vector<PhysicalAggregate>& aggregates,
                             std::string result_name = "");

// Returns a copy of `input` whose attribute names are prefixed with
// "<prefix>." — used before joins to keep names unambiguous.
Table QualifyColumns(const Table& input, const std::string& prefix);

// Sorts rows lexicographically in place (deterministic table rendering
// and comparison).
void SortRows(Table* table);

// True iff the two tables hold the same bag of tuples (schema arity must
// match; attribute names are ignored).
bool TablesEqualAsBags(const Table& a, const Table& b);

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_OPS_H_
