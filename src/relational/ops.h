// Physical relational operators: selection, projection, hash join,
// semijoin, and grouped aggregation. These are the building blocks the
// GPSJ evaluator and the maintenance engine compose.

#ifndef MINDETAIL_RELATIONAL_OPS_H_
#define MINDETAIL_RELATIONAL_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/predicate.h"
#include "relational/table.h"

namespace mindetail {

// The physical aggregate functions. `kCountStar` is COUNT(*); the others
// take an input attribute. Distinctness is orthogonal (except COUNT(*),
// which never is).
enum class AggFn {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggFnName(AggFn fn);

// A single aggregate column computed by GroupAggregate.
struct PhysicalAggregate {
  AggFn fn = AggFn::kCountStar;
  std::string input_attr;  // Empty for kCountStar.
  bool distinct = false;
  std::string output_name;

  // e.g. "SUM(price) AS total" or "COUNT(DISTINCT brand) AS brands".
  std::string ToString() const;
};

// σ: rows of `input` satisfying `predicate`.
Result<Table> Select(const Table& input, const Conjunction& predicate,
                     std::string result_name = "");

// π: the named columns, optionally duplicate-eliminating.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& attrs, bool distinct,
                      std::string result_name = "");

// ⋈: equi-join on left.left_attr = right.right_attr. Output schema is
// the concatenation of both inputs' schemas; colliding attribute names
// are an error (pre-qualify with QualifyColumns).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name = "");

// ⋉: rows of `left` that join with at least one row of `right`.
Result<Table> SemiJoin(const Table& left, const Table& right,
                       const std::string& left_attr,
                       const std::string& right_attr,
                       std::string result_name = "");

// Generalized projection Π: group by `group_attrs` and compute
// `aggregates` per group. With empty `group_attrs`, SQL scalar-aggregate
// semantics apply (exactly one output row, even for empty input).
// Output rows are sorted lexicographically for determinism.
Result<Table> GroupAggregate(const Table& input,
                             const std::vector<std::string>& group_attrs,
                             const std::vector<PhysicalAggregate>& aggregates,
                             std::string result_name = "");

// Returns a copy of `input` whose attribute names are prefixed with
// "<prefix>." — used before joins to keep names unambiguous.
Table QualifyColumns(const Table& input, const std::string& prefix);

// Sorts rows lexicographically in place (deterministic table rendering
// and comparison).
void SortRows(Table* table);

// True iff the two tables hold the same bag of tuples (schema arity must
// match; attribute names are ignored).
bool TablesEqualAsBags(const Table& a, const Table& b);

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_OPS_H_
