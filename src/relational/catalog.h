// The warehouse catalog: base tables plus the integrity metadata the
// derivation algorithm consumes — single-attribute primary keys,
// referential-integrity (foreign-key) constraints, and per-table
// exposed-update flags (paper Sec. 2.1-2.2).

#ifndef MINDETAIL_RELATIONAL_CATALOG_H_
#define MINDETAIL_RELATIONAL_CATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/table.h"

namespace mindetail {

// A referential-integrity constraint: every `from_table.from_attr`
// value appears as the primary key of some `to_table` row.
struct ForeignKey {
  std::string from_table;
  std::string from_attr;
  std::string to_table;

  std::string ToString() const {
    return from_table + "." + from_attr + " -> " + to_table;
  }

  friend bool operator==(const ForeignKey& a, const ForeignKey& b) {
    return a.from_table == b.from_table && a.from_attr == b.from_attr &&
           a.to_table == b.to_table;
  }
  friend bool operator<(const ForeignKey& a, const ForeignKey& b) {
    if (a.from_table != b.from_table) return a.from_table < b.from_table;
    if (a.from_attr != b.from_attr) return a.from_attr < b.from_attr;
    return a.to_table < b.to_table;
  }
};

class Catalog {
 public:
  Catalog() = default;

  // Catalogs own their tables; copying one copies all data (used by the
  // property tests to snapshot source state).
  Catalog(const Catalog&) = default;
  Catalog& operator=(const Catalog&) = default;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  // Creates a table with a single-attribute primary key.
  Status CreateTable(const std::string& name, Schema schema,
                     const std::string& key_attr);

  bool HasTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> MutableTable(const std::string& name);

  // Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  // Primary-key attribute of `table`.
  Result<std::string> KeyAttr(const std::string& table) const;

  // Declares referential integrity from `from_table.from_attr` to the
  // primary key of `to_table`. Both tables must exist and the column
  // types must match.
  Status AddForeignKey(const std::string& from_table,
                       const std::string& from_attr,
                       const std::string& to_table);

  bool HasForeignKey(const std::string& from_table,
                     const std::string& from_attr,
                     const std::string& to_table) const;

  const std::set<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  // Marks `table` as having exposed updates: updates may change values
  // of attributes involved in selection or join conditions. Such tables
  // are excluded from join reductions and dependence (paper Sec. 2.2).
  Status SetExposedUpdates(const std::string& table, bool exposed);
  bool HasExposedUpdates(const std::string& table) const;

  // Marks `table` as append-only: it only ever receives insertions
  // (the paper's "old detail data", Sec. 4). Views over exclusively
  // append-only tables get the relaxed CSMA treatment: MIN/MAX become
  // compressible and maintainable without recomputation. Mutually
  // exclusive with the exposed-updates flag.
  Status SetAppendOnly(const std::string& table, bool append_only);
  bool IsAppendOnly(const std::string& table) const;

  // Verifies every declared foreign key holds on the current data.
  Status CheckReferentialIntegrity() const;

 private:
  std::map<std::string, Table> tables_;
  std::set<ForeignKey> foreign_keys_;
  std::set<std::string> exposed_updates_;
  std::set<std::string> append_only_;
};

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_CATALOG_H_
