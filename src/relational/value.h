// Typed values, tuples, and their comparison/hash support.
//
// The engine supports the three scalar types the paper's examples need
// (64-bit integers, doubles, strings) plus NULL, which only arises in
// aggregate outputs — base tables are assumed NULL-free (paper Sec. 2.1).

#ifndef MINDETAIL_RELATIONAL_VALUE_H_
#define MINDETAIL_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace mindetail {

enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

// Returns e.g. "INT64".
const char* ValueTypeName(ValueType type);

// A dynamically-typed scalar. Cheap to copy for numerics; strings are
// copied by value (the engine is a reference row store, not a performance
// play on string interning).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int64_t v) : data_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int v) : data_(static_cast<int64_t>(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(double v) : data_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Accessors abort on type mismatch (programmer error; predicates and
  // view definitions are type-checked when built).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Numeric value as double regardless of int/double representation.
  // Aborts for strings and NULL.
  double NumericAsDouble() const;
  bool IsNumeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  // Three-way comparison: -1, 0, or +1. Numeric types compare by value
  // across int64/double. NULL compares equal to NULL and less than
  // everything else. Comparing a string with a numeric aborts.
  int Compare(const Value& other) const;

  uint64_t Hash() const;

  // Renders the value for display ("NULL", 42, 9.95, 'Alpha').
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

// Numeric addition for SUM maintenance: int64+int64 stays int64,
// anything involving a double becomes double. NULL propagates.
Value AddValues(const Value& a, const Value& b);
// Numeric negation (for SUM under deletion).
Value NegateValue(const Value& v);
// Multiplies a numeric value by an integer count — the `f(a · cnt0)`
// duplicate-accounting rule of paper Sec. 3.2.
Value ScaleValue(const Value& v, int64_t count);

// A row: one Value per schema attribute.
using Tuple = std::vector<Value>;

std::string TupleToString(const Tuple& tuple);

struct TupleHash {
  uint64_t operator()(const Tuple& t) const {
    uint64_t h = 0x51ab2ef1d4c8aa37ULL;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    return h;
  }
};

struct TupleEqual {
  bool operator()(const Tuple& a, const Tuple& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

struct ValueHash {
  uint64_t operator()(const Value& v) const { return v.Hash(); }
};

struct ValueEqual {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) == 0;
  }
};

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_VALUE_H_
