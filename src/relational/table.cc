#include "relational/table.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Result<Table> Table::WithKey(std::string name, Schema schema,
                             const std::string& key_attr) {
  std::optional<size_t> idx = schema.IndexOf(key_attr);
  if (!idx.has_value()) {
    return NotFoundError(StrCat("key attribute '", key_attr,
                                "' not in schema of table '", name, "'"));
  }
  Table table(std::move(name), std::move(schema));
  table.key_index_ = *idx;
  return table;
}

std::optional<std::string> Table::key_attr() const {
  if (!key_index_.has_value()) return std::nullopt;
  return schema_.attribute(*key_index_).name;
}

const Tuple& Table::row(size_t i) const {
  MD_CHECK_LT(i, rows_.size());
  return rows_[i];
}

Status Table::Insert(Tuple tuple) {
  MD_RETURN_IF_ERROR(schema_.ValidateTuple(tuple, allow_null_));
  if (key_index_.has_value()) {
    const Value& key = tuple[*key_index_];
    if (key_map_.count(key) > 0) {
      return AlreadyExistsError(StrCat("duplicate key ", key.ToString(),
                                       " in table '", name_, "'"));
    }
    key_map_.emplace(key, rows_.size());
  }
  rows_.push_back(std::move(tuple));
  return Status::Ok();
}

bool Table::ContainsKey(const Value& key) const {
  MD_CHECK(key_index_.has_value());
  return key_map_.count(key) > 0;
}

const Tuple* Table::FindByKey(const Value& key) const {
  MD_CHECK(key_index_.has_value());
  auto it = key_map_.find(key);
  if (it == key_map_.end()) return nullptr;
  return &rows_[it->second];
}

void Table::ReindexRow(size_t row_idx) {
  if (!key_index_.has_value()) return;
  key_map_[rows_[row_idx][*key_index_]] = row_idx;
}

Status Table::DeleteByKey(const Value& key) {
  MD_CHECK(key_index_.has_value());
  auto it = key_map_.find(key);
  if (it == key_map_.end()) {
    return NotFoundError(StrCat("key ", key.ToString(),
                                " not found in table '", name_, "'"));
  }
  const size_t idx = it->second;
  key_map_.erase(it);
  if (idx != rows_.size() - 1) {
    rows_[idx] = std::move(rows_.back());
    rows_.pop_back();
    ReindexRow(idx);
  } else {
    rows_.pop_back();
  }
  return Status::Ok();
}

Status Table::DeleteTuple(const Tuple& tuple) {
  if (key_index_.has_value()) {
    if (tuple.size() != schema_.size()) {
      return InvalidArgumentError("tuple arity mismatch in DeleteTuple");
    }
    const Value& key = tuple[*key_index_];
    const Tuple* existing = FindByKey(key);
    if (existing == nullptr || !TupleEqual()(*existing, tuple)) {
      return NotFoundError(StrCat("tuple ", TupleToString(tuple),
                                  " not found in table '", name_, "'"));
    }
    return DeleteByKey(key);
  }
  TupleEqual eq;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (eq(rows_[i], tuple)) {
      if (i != rows_.size() - 1) rows_[i] = std::move(rows_.back());
      rows_.pop_back();
      return Status::Ok();
    }
  }
  return NotFoundError(StrCat("tuple ", TupleToString(tuple),
                              " not found in table '", name_, "'"));
}

Status Table::AppendRowsFrom(Table&& other) {
  if (key_index_.has_value() || other.key_index_.has_value()) {
    return InvalidArgumentError(
        "AppendRowsFrom is only supported for key-less tables");
  }
  if (schema_.size() != other.schema_.size()) {
    return InvalidArgumentError(
        StrCat("AppendRowsFrom arity mismatch: ", schema_.size(), " vs ",
               other.schema_.size()));
  }
  rows_.reserve(rows_.size() + other.rows_.size());
  for (Tuple& row : other.rows_) rows_.push_back(std::move(row));
  other.rows_.clear();
  return Status::Ok();
}

Status Table::ReplaceRow(size_t i, Tuple row) {
  MD_CHECK_LT(i, rows_.size());
  MD_RETURN_IF_ERROR(schema_.ValidateTuple(row, allow_null_));
  if (key_index_.has_value()) {
    const Value& old_key = rows_[i][*key_index_];
    const Value& new_key = row[*key_index_];
    if (old_key.Compare(new_key) != 0) {
      if (key_map_.count(new_key) > 0) {
        return AlreadyExistsError(StrCat("duplicate key ",
                                         new_key.ToString(), " in table '",
                                         name_, "'"));
      }
      key_map_.erase(old_key);
      key_map_.emplace(new_key, i);
    }
  }
  rows_[i] = std::move(row);
  return Status::Ok();
}

void Table::DeleteRowAt(size_t i) {
  MD_CHECK_LT(i, rows_.size());
  if (key_index_.has_value()) {
    key_map_.erase(rows_[i][*key_index_]);
  }
  if (i != rows_.size() - 1) {
    rows_[i] = std::move(rows_.back());
    rows_.pop_back();
    ReindexRow(i);
  } else {
    rows_.pop_back();
  }
}

void Table::EraseRowsInOrder(const std::vector<size_t>& sorted_indexes) {
  MD_CHECK(!key_index_.has_value());
  if (sorted_indexes.empty()) return;
  size_t write = sorted_indexes.front();
  size_t next_victim = 0;
  for (size_t read = write; read < rows_.size(); ++read) {
    if (next_victim < sorted_indexes.size() &&
        sorted_indexes[next_victim] == read) {
      ++next_victim;
      continue;
    }
    rows_[write++] = std::move(rows_[read]);
  }
  MD_CHECK_EQ(next_victim, sorted_indexes.size());
  rows_.resize(write);
}

void Table::SortRowsBy(
    const std::function<bool(const Tuple&, const Tuple&)>& less) {
  MD_CHECK(!key_index_.has_value());
  std::sort(rows_.begin(), rows_.end(), less);
}

void Table::Clear() {
  rows_.clear();
  key_map_.clear();
}

uint64_t Table::ActualSizeBytes() const {
  uint64_t bytes = 0;
  for (const Tuple& row : rows_) {
    for (const Value& v : row) {
      bytes += v.type() == ValueType::kString ? v.AsString().size() : 8;
    }
  }
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::string> header;
  header.reserve(schema_.size());
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);

  std::vector<std::vector<std::string>> cells;
  const size_t shown = std::min(max_rows, rows_.size());
  cells.reserve(shown);
  for (size_t i = 0; i < shown; ++i) {
    std::vector<std::string> rendered;
    rendered.reserve(rows_[i].size());
    for (const Value& v : rows_[i]) rendered.push_back(v.ToString());
    cells.push_back(std::move(rendered));
  }

  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
    for (const auto& row : cells) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out = StrCat(name_, " [", rows_.size(), " rows]\n");
  for (size_t c = 0; c < header.size(); ++c) {
    out += PadRight(header[c], widths[c] + 2);
  }
  out += "\n";
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += PadRight(row[c], widths[c] + 2);
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrCat("... (", rows_.size() - shown, " more rows)\n");
  }
  return out;
}

}  // namespace mindetail
