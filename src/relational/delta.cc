#include "relational/delta.h"

#include "common/check.h"
#include "common/strings.h"

namespace mindetail {

Status ApplyDelta(Table* table, const Delta& delta) {
  MD_CHECK(table != nullptr);
  for (const Tuple& row : delta.deletes) {
    MD_RETURN_IF_ERROR(table->DeleteTuple(row));
  }
  for (const Update& u : delta.updates) {
    MD_RETURN_IF_ERROR(table->DeleteTuple(u.before));
    MD_RETURN_IF_ERROR(table->Insert(u.after));
  }
  for (const Tuple& row : delta.inserts) {
    MD_RETURN_IF_ERROR(table->Insert(row));
  }
  return Status::Ok();
}

Delta NormalizeUpdates(const Delta& delta) {
  Delta out;
  out.inserts = delta.inserts;
  out.deletes = delta.deletes;
  for (const Update& u : delta.updates) {
    out.deletes.push_back(u.before);
    out.inserts.push_back(u.after);
  }
  return out;
}

Delta NormalizeExposedUpdates(
    const Delta& delta, const Schema& schema,
    const std::vector<std::string>& protected_attrs) {
  std::vector<size_t> protected_idx;
  protected_idx.reserve(protected_attrs.size());
  for (const std::string& name : protected_attrs) {
    std::optional<size_t> idx = schema.IndexOf(name);
    MD_CHECK(idx.has_value());
    protected_idx.push_back(*idx);
  }

  Delta out;
  out.inserts = delta.inserts;
  out.deletes = delta.deletes;
  for (const Update& u : delta.updates) {
    bool exposed = false;
    for (size_t idx : protected_idx) {
      if (u.before[idx].Compare(u.after[idx]) != 0) {
        exposed = true;
        break;
      }
    }
    if (exposed) {
      out.deletes.push_back(u.before);
      out.inserts.push_back(u.after);
    } else {
      out.updates.push_back(u);
    }
  }
  return out;
}

}  // namespace mindetail
