// An in-memory row-store table with an optional single-attribute
// primary key (the paper assumes each base table has one, Sec. 2.1).

#ifndef MINDETAIL_RELATIONAL_TABLE_H_
#define MINDETAIL_RELATIONAL_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace mindetail {

class Table {
 public:
  Table() = default;
  // A key-less table (used for operator outputs and auxiliary views).
  Table(std::string name, Schema schema);

  // A table whose `key_attr` column is a primary key; fails if the
  // attribute is missing from the schema.
  static Result<Table> WithKey(std::string name, Schema schema,
                               const std::string& key_attr);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Column index of the primary key, if any.
  std::optional<size_t> key_index() const { return key_index_; }
  // Name of the primary key attribute, if any.
  std::optional<std::string> key_attr() const;

  size_t NumRows() const { return rows_.size(); }
  bool Empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const;
  const std::vector<Tuple>& rows() const { return rows_; }

  // Whether inserted tuples may contain NULLs (true for operator
  // outputs carrying aggregate results, false for base tables).
  void set_allow_null(bool allow_null) { allow_null_ = allow_null; }

  // Validates and appends `tuple`; enforces key uniqueness.
  Status Insert(Tuple tuple);

  // Key lookups (table must have a key).
  bool ContainsKey(const Value& key) const;
  // Pointer valid until the next mutation.
  const Tuple* FindByKey(const Value& key) const;
  Status DeleteByKey(const Value& key);

  // Deletes one row equal to `tuple`; NotFound if absent.
  Status DeleteTuple(const Tuple& tuple);

  // Moves every row of `other` to the end of this table, preserving
  // order. Both tables must be key-less with equal-arity schemas; rows
  // are NOT re-validated (they were validated when inserted into
  // `other`). Used to re-concatenate per-shard operator outputs.
  Status AppendRowsFrom(Table&& other);

  // Replaces row `i` in place (schema-validated; key map maintained).
  Status ReplaceRow(size_t i, Tuple row);

  // Deletes row `i` by swapping the last row into its place (the caller
  // must fix any external index accordingly).
  void DeleteRowAt(size_t i);

  // Key-less tables only: removes the rows at `sorted_indexes` (strictly
  // ascending), preserving the order of the remaining rows. The caller
  // fixes any external index.
  void EraseRowsInOrder(const std::vector<size_t>& sorted_indexes);

  // Key-less tables only: sorts rows in place by `less` (canonical row
  // orders for auxiliary stores). The caller fixes any external index.
  void SortRowsBy(const std::function<bool(const Tuple&, const Tuple&)>& less);

  void Clear();

  // Storage size under the paper's accounting model: every field is
  // 4 bytes (Sec. 1.1: "5 fields × 4 bytes").
  uint64_t PaperSizeBytes() const {
    return static_cast<uint64_t>(rows_.size()) * schema_.size() * 4;
  }

  // Honest in-memory size: 8 bytes per numeric field, string payload
  // bytes for strings.
  uint64_t ActualSizeBytes() const;

  // Multi-line rendering (header + rows), for examples and benches.
  // Rows are printed in insertion order; at most `max_rows` rows.
  std::string ToString(size_t max_rows = 50) const;

 private:
  void ReindexRow(size_t row_idx);

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::optional<size_t> key_index_;
  bool allow_null_ = false;
  // Maps key value -> index into rows_. Maintained with swap-and-pop
  // deletion, so row order is not stable across deletes.
  std::unordered_map<Value, size_t, ValueHash, ValueEqual> key_map_;
};

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_TABLE_H_
