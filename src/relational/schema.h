// Schemas and attribute references.

#ifndef MINDETAIL_RELATIONAL_SCHEMA_H_
#define MINDETAIL_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace mindetail {

// A named, typed column.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt64;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type;
  }
};

// Fully-qualified reference to a base-table attribute, e.g. sale.price.
struct AttributeRef {
  std::string table;
  std::string attr;

  std::string ToString() const { return table + "." + attr; }

  friend bool operator==(const AttributeRef& a, const AttributeRef& b) {
    return a.table == b.table && a.attr == b.attr;
  }
  friend bool operator<(const AttributeRef& a, const AttributeRef& b) {
    return a.table != b.table ? a.table < b.table : a.attr < b.attr;
  }
};

// An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& attribute(size_t i) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  // Appends an attribute; fails if the name is already taken.
  Status Append(Attribute attribute);

  // Validates that `tuple` matches this schema (arity and per-column
  // type; NULLs are rejected — base tables are NULL-free per the paper).
  Status ValidateTuple(const Tuple& tuple, bool allow_null = false) const;

  // e.g. "(id INT64, price DOUBLE)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace mindetail

#endif  // MINDETAIL_RELATIONAL_SCHEMA_H_
