#include "relational/predicate.h"

#include "common/strings.h"

namespace mindetail {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::string Condition::ToString() const {
  return StrCat(attr, " ", CompareOpName(op), " ", constant.ToString());
}

namespace {

bool TypesComparable(ValueType a, ValueType b) {
  const bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  const bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a_num && b_num) return true;
  return a == b;
}

}  // namespace

Status Conjunction::Validate(const Schema& schema) const {
  for (const Condition& c : conditions_) {
    std::optional<size_t> idx = schema.IndexOf(c.attr);
    if (!idx.has_value()) {
      return NotFoundError(
          StrCat("condition attribute '", c.attr, "' not in schema"));
    }
    if (c.constant.is_null()) {
      return InvalidArgumentError(
          StrCat("condition '", c.ToString(), "' compares against NULL"));
    }
    if (!TypesComparable(schema.attribute(*idx).type, c.constant.type())) {
      return InvalidArgumentError(StrCat(
          "condition '", c.ToString(), "' compares ",
          ValueTypeName(schema.attribute(*idx).type), " with ",
          ValueTypeName(c.constant.type())));
    }
  }
  return Status::Ok();
}

bool Conjunction::Eval(const Schema& schema, const Tuple& row) const {
  for (const Condition& c : conditions_) {
    std::optional<size_t> idx = schema.IndexOf(c.attr);
    MD_CHECK(idx.has_value());
    if (!EvalCompare(c.op, row[*idx], c.constant)) return false;
  }
  return true;
}

std::string Conjunction::ToString() const {
  if (conditions_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(conditions_.size());
  for (const Condition& c : conditions_) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

Result<BoundPredicate> BoundPredicate::Bind(const Conjunction& conjunction,
                                            const Schema& schema) {
  MD_RETURN_IF_ERROR(conjunction.Validate(schema));
  BoundPredicate bound;
  bound.bound_.reserve(conjunction.conditions().size());
  for (const Condition& c : conjunction.conditions()) {
    bound.bound_.push_back(
        BoundCondition{*schema.IndexOf(c.attr), c.op, c.constant});
  }
  return bound;
}

}  // namespace mindetail
