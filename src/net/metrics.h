// A minimal Prometheus text-format metrics registry.
//
// The front end exposes three metric kinds on GET /metrics:
//   * counter   — monotonically increasing doubles, optionally with one
//                 label set per time series (e.g. endpoint + code),
//   * gauge     — point-in-time values set at scrape or update time,
//   * histogram — cumulative le-bucketed observations with _sum/_count,
//                 the Prometheus classic-histogram convention.
// RenderText() emits the exposition format exactly as scrapers expect:
// one `# HELP`/`# TYPE` pair per family, series sorted by label string,
// histogram buckets cumulative and capped by le="+Inf" == _count.
//
// All update paths are thread-safe (one registry mutex; the server's
// handlers bump counters from many workers). Scrape-time gauges that
// derive from warehouse state are set by the server just before
// rendering, so a scrape always reads one consistent pass.

#ifndef MINDETAIL_NET_METRICS_H_
#define MINDETAIL_NET_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mindetail {

// One "name=value" label pair, rendered as name="value".
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  // Declares a family; re-declaring an existing name is a no-op (the
  // first help string wins). `type` is "counter"/"gauge"/"histogram".
  void Declare(const std::string& name, const std::string& type,
               const std::string& help);

  void CounterAdd(const std::string& name, const MetricLabels& labels,
                  double delta = 1.0);
  void GaugeSet(const std::string& name, const MetricLabels& labels,
                double value);
  // Observes into the family's buckets; the family must have been
  // declared with DeclareHistogram (which fixes the bounds).
  void DeclareHistogram(const std::string& name, const std::string& help,
                        std::vector<double> bucket_bounds);
  void Observe(const std::string& name, double value);

  // The full exposition-format page.
  std::string RenderText() const;

  // Test/introspection helper: current value of one series (0 when the
  // series does not exist).
  double CounterValue(const std::string& name,
                      const MetricLabels& labels) const;

 private:
  struct Histogram {
    std::vector<double> bounds;   // Ascending, +Inf implicit.
    std::vector<uint64_t> counts; // Per bound (non-cumulative).
    uint64_t count = 0;
    double sum = 0;
  };
  struct Family {
    std::string type;
    std::string help;
    std::map<std::string, double> series;  // Rendered label string → value.
    Histogram histogram;                   // Used when type=="histogram".
  };

  static std::string RenderLabels(const MetricLabels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace mindetail

#endif  // MINDETAIL_NET_METRICS_H_
