#include "net/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace mindetail {

RateLimiter::RateLimiter(RateLimiterOptions options)
    : options_(std::move(options)) {
  // A zero/negative refill with a non-zero capacity would divide by
  // zero in the retry hint; treat it as "one token a minute".
  if (options_.refill_per_sec <= 0) options_.refill_per_sec = 1.0 / 60.0;
}

int64_t RateLimiter::NowNanos() const {
  return options_.clock ? options_.clock() : MonotonicNowNanos();
}

RateDecision RateLimiter::Admit(const std::string& client_id) {
  if (!enabled()) return RateDecision{};
  const int64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    while (buckets_.size() >= std::max<size_t>(1, options_.max_clients)) {
      buckets_.erase(lru_.back());
      lru_.pop_back();
      ++evicted_;
    }
    lru_.push_front(client_id);
    Bucket fresh;
    fresh.tokens = options_.capacity;
    fresh.refilled_nanos = now;
    fresh.lru_it = lru_.begin();
    it = buckets_.emplace(client_id, fresh).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    Bucket& bucket = it->second;
    const double elapsed_sec =
        static_cast<double>(now - bucket.refilled_nanos) * 1e-9;
    if (elapsed_sec > 0) {
      bucket.tokens = std::min(
          options_.capacity,
          bucket.tokens + elapsed_sec * options_.refill_per_sec);
      bucket.refilled_nanos = now;
    }
  }
  Bucket& bucket = it->second;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    ++admitted_;
    return RateDecision{};
  }
  ++refused_;
  RateDecision refusal;
  refusal.admitted = false;
  const double missing = 1.0 - bucket.tokens;
  refusal.retry_after_ms = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(missing / options_.refill_per_sec * 1000.0)));
  return refusal;
}

RateLimiter::Stats RateLimiter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_;
  stats.refused = refused_;
  stats.evicted = evicted_;
  stats.clients = buckets_.size();
  return stats;
}

}  // namespace mindetail
