// Wire encodings for the network front end.
//
// Everything the HTTP server puts on (or accepts off) the wire that is
// not plain HTTP lives here, so tests can exercise encode/decode
// without a socket:
//
//   * canonical CSV rows — io/csv's dialect (strings always quoted
//     with "" escaping, doubles via max_digits10, NULL = empty field)
//     plus \n / \\ escapes inside strings so one row is always one
//     line. The rendering is injective per schema, so
//     the change feed can diff view contents by comparing rendered
//     rows and a subscriber can reconstruct each row exactly.
//   * query results — header line of column names, then CSV rows.
//   * the /ingest body — a line-oriented change-batch format:
//
//       table sale          # switches the target base table
//       + 7,2,1,3,9.95      # insert (CSV in schema order)
//       - 7,2,1,3,9.95      # delete (full before-image)
//       < 7,2,1,3,9.95      # update: before-image …
//       > 7,2,1,4,12.50     # … immediately followed by after-image
//
//     Blank lines and #-comments are ignored. Rows are parsed and
//     type-checked against the snapshot's schema catalog, so a
//     malformed batch is refused before the warehouse sees it.

#ifndef MINDETAIL_NET_WIRE_H_
#define MINDETAIL_NET_WIRE_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "relational/catalog.h"
#include "relational/delta.h"
#include "relational/table.h"

namespace mindetail {

// One CSV field in the io/csv dialect.
std::string RenderCsvField(const Value& value);

// One row as a canonical CSV line (no trailing newline).
std::string RenderCsvRow(const Tuple& row);

// Header line (column names, unquoted) + one CSV line per row, each
// newline-terminated — the /query and /report body format.
std::string RenderTableBody(const Table& table);

// Parses one CSV line into a tuple matching `schema` (types enforced;
// empty field = NULL only when `allow_null`).
Result<Tuple> ParseCsvRow(std::string_view line, const Schema& schema,
                          bool allow_null = false);

// Parses a complete /ingest body against `catalog` (see file comment).
Result<std::map<std::string, Delta>> ParseIngestBody(
    std::string_view body, const Catalog& catalog);

}  // namespace mindetail

#endif  // MINDETAIL_NET_WIRE_H_
