#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace mindetail {

namespace {

const std::string kEmpty;

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

// A header/method token: printable ASCII, no separators that would
// smuggle a second line.
bool IsSaneToken(std::string_view token) {
  if (token.empty()) return false;
  for (const char c : token) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 127) return false;
  }
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? kEmpty : it->second;
}

bool HttpRequest::KeepAlive() const {
  const std::string connection = ToLower(Header("connection"));
  if (connection.find("close") != std::string::npos) return false;
  if (version == "HTTP/1.0") {
    return connection.find("keep-alive") != std::string::npos;
  }
  return true;
}

HttpResponse HttpResponse::Text(int code, std::string body) {
  HttpResponse response;
  response.code = code;
  response.body = std::move(body);
  return response;
}

const char* HttpReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = StrCat("HTTP/1.1 ", response.code, " ",
                           HttpReasonPhrase(response.code), "\r\n");
  out += StrCat("Content-Type: ", response.content_type, "\r\n");
  out += StrCat("Content-Length: ", response.body.size(), "\r\n");
  out += StrCat("Connection: ", keep_alive ? "keep-alive" : "close", "\r\n");
  for (const auto& [name, value] : response.headers) {
    out += StrCat(name, ": ", value, "\r\n");
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

Status HttpRequestParser::Fail(int code, std::string message) {
  state_ = State::kError;
  error_code_ = code;
  status_ = InvalidArgumentError(std::move(message));
  return status_;
}

Status HttpRequestParser::Consume(std::string_view bytes) {
  if (state_ == State::kError) return status_;
  buffer_.append(bytes.data(), bytes.size());
  return Advance();
}

Status HttpRequestParser::Advance() {
  for (;;) {
    if (state_ == State::kDone || state_ == State::kError) return status_;
    if (state_ == State::kBody) {
      if (buffer_.size() < body_length_) return status_;  // Need more.
      request_.body = buffer_.substr(0, body_length_);
      buffer_.erase(0, body_length_);
      state_ = State::kDone;
      return status_;
    }
    // Request line and headers are both line-oriented; pull one line.
    const size_t eol = buffer_.find('\n');
    if (eol == std::string::npos) {
      // No full line yet: still enforce limits on the partial bytes so
      // an endless unterminated line cannot grow the buffer forever.
      const size_t cap = state_ == State::kRequestLine
                             ? limits_.max_request_line_bytes
                             : limits_.max_header_bytes - header_bytes_;
      if (buffer_.size() > cap) {
        return Fail(state_ == State::kRequestLine ? 400 : 431,
                    "header section exceeds limit");
      }
      return status_;
    }
    std::string_view line(buffer_.data(), eol);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (state_ == State::kRequestLine) {
      if (line.empty()) {  // Tolerate stray CRLF before the request.
        buffer_.erase(0, eol + 1);
        continue;
      }
      if (line.size() > limits_.max_request_line_bytes) {
        return Fail(400, "request line too long");
      }
      MD_RETURN_IF_ERROR(ParseRequestLine(line));
      buffer_.erase(0, eol + 1);
      state_ = State::kHeaders;
      continue;
    }
    // State::kHeaders.
    header_bytes_ += eol + 1;
    if (header_bytes_ > limits_.max_header_bytes) {
      return Fail(431, "header section exceeds limit");
    }
    if (line.empty()) {
      buffer_.erase(0, eol + 1);
      // Headers complete: resolve the body length.
      const std::string& te = request_.Header("transfer-encoding");
      if (!te.empty()) {
        return Fail(501, "transfer-encoding is not supported");
      }
      const std::string& cl = request_.Header("content-length");
      if (cl.empty()) {
        body_length_ = 0;
      } else {
        uint64_t length = 0;
        for (const char c : cl) {
          if (c < '0' || c > '9' || length > limits_.max_body_bytes) {
            return Fail(c < '0' || c > '9' ? 400 : 413,
                        "bad content-length");
          }
          length = length * 10 + static_cast<uint64_t>(c - '0');
        }
        if (length > limits_.max_body_bytes) {
          return Fail(413, "request body exceeds limit");
        }
        body_length_ = static_cast<size_t>(length);
      }
      state_ = State::kBody;
      continue;
    }
    MD_RETURN_IF_ERROR(ParseHeaderLine(line));
    buffer_.erase(0, eol + 1);
  }
}

Status HttpRequestParser::ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  if (!IsSaneToken(request_.method) || !IsSaneToken(request_.target)) {
    return Fail(400, "malformed request line");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return Fail(400, "unsupported HTTP version");
  }
  const Status target_ok = ParseRequestTarget(request_.target,
                                             &request_.path,
                                             &request_.query);
  if (!target_ok.ok()) return Fail(400, target_ok.message());
  return Status::Ok();
}

Status HttpRequestParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    return Fail(431, "too many headers");
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Fail(400, "malformed header line");
  }
  const std::string name = ToLower(Trim(line.substr(0, colon)));
  if (!IsSaneToken(name)) return Fail(400, "malformed header name");
  // Last occurrence wins; the server reads single-valued headers only.
  request_.headers[name] = std::string(Trim(line.substr(colon + 1)));
  return Status::Ok();
}

HttpRequest HttpRequestParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  return out;
}

void HttpRequestParser::Reset() {
  state_ = State::kRequestLine;
  status_ = Status::Ok();
  error_code_ = 0;
  request_ = HttpRequest{};
  header_bytes_ = 0;
  body_length_ = 0;
  // buffer_ keeps any bytes of the next pipelined request.
  (void)Advance();
}

Result<std::string> UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      if (i + 2 >= text.size()) {
        return InvalidArgumentError("truncated percent escape");
      }
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return InvalidArgumentError("malformed percent escape");
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Status ParseRequestTarget(std::string_view target, std::string* path,
                          std::map<std::string, std::string>* query) {
  path->clear();
  query->clear();
  const size_t qmark = target.find('?');
  *path = std::string(target.substr(0, qmark));
  if (path->empty() || (*path)[0] != '/') {
    return InvalidArgumentError("request target must be an absolute path");
  }
  if (path->find('%') != std::string::npos) {
    // Percent-decode the path; '+' stays literal (that rule is
    // query-string only), so only escaped paths take this pass.
    MD_ASSIGN_OR_RETURN(*path, UrlDecode(*path));
  }
  if (qmark == std::string_view::npos) return Status::Ok();
  for (const std::string& piece :
       Split(std::string(target.substr(qmark + 1)), '&')) {
    if (piece.empty()) continue;
    const size_t eq = piece.find('=');
    MD_ASSIGN_OR_RETURN(std::string key,
                        UrlDecode(std::string_view(piece).substr(0, eq)));
    std::string value;
    if (eq != std::string::npos) {
      MD_ASSIGN_OR_RETURN(
          value, UrlDecode(std::string_view(piece).substr(eq + 1)));
    }
    (*query)[std::move(key)] = std::move(value);
  }
  return Status::Ok();
}

}  // namespace mindetail
