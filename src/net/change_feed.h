// The change feed: per-view delta summaries for every committed
// snapshot, kept in a bounded ring and streamed to subscribers over
// SSE (GET /changes).
//
// The warehouse fires its CommitListener (on the writer thread,
// strictly after SnapshotManager::Publish) with the previous and the
// just-published snapshot; OnCommit diffs the two and appends one
// ChangeEvent per commit. Diffing is cheap in the common case: a view
// whose ServedView pointer is shared between the snapshots was
// untouched by the batch (copy-on-write publish) and is skipped
// without looking at a row. Touched views are diffed by canonical CSV
// row (wire.h) — added and removed rows both ways — so the streamed
// deltas are exactly the difference between the two committed
// boundaries, bit-identical to what a subscriber would compute by
// diffing the snapshots itself.
//
// Subscribers ask for `from` (the snapshot version they last saw):
// Replay() returns every retained event after `from`, and
// WaitBeyond() blocks (bounded) for the next commit past a version —
// the server loops the two to implement catch-up-then-tail. When
// `from` predates the retention ring the subscriber is told to resync
// (an SSE `reset` event) instead of being handed a gapped stream.
//
// Thread-safe: one writer (OnCommit), any number of waiting readers.

#ifndef MINDETAIL_NET_CHANGE_FEED_H_
#define MINDETAIL_NET_CHANGE_FEED_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/snapshot.h"

namespace mindetail {

// One view's delta within a commit.
struct ViewDelta {
  std::string view;
  uint64_t from_version = 0;  // The view's version before the commit.
  uint64_t to_version = 0;    // After (0 = view dropped by the commit).
  // Canonical CSV rows (wire.h), sorted.
  std::vector<std::string> added;
  std::vector<std::string> removed;
};

// Everything one committed snapshot changed.
struct ChangeEvent {
  uint64_t version = 0;        // The published snapshot's version.
  uint64_t prior_version = 0;  // The predecessor's.
  uint64_t epoch = 0;
  std::vector<ViewDelta> views;  // Views with a non-empty delta only.

  // The SSE rendering: `event: commit`, `id: <version>`, data lines,
  // blank-line terminator (see RenderSse in change_feed.cc).
  std::string ToSse() const;
};

// Diffs two committed snapshots into an event (exposed for the
// differential test, which recomputes feed output independently).
ChangeEvent DiffSnapshots(const WarehouseSnapshot& previous,
                          const WarehouseSnapshot& published);

class ChangeFeed {
 public:
  struct Stats {
    uint64_t commits = 0;   // Events appended since construction.
    uint64_t dropped = 0;   // Events evicted by the retention bound.
    size_t retained = 0;    // Currently in the ring.
    uint64_t oldest_version = 0;  // Smallest retained version (0=none).
    uint64_t newest_version = 0;
  };

  // Retains up to `retention` events (≥ 1).
  explicit ChangeFeed(size_t retention = 256);

  // The warehouse CommitListener target. Writer thread only.
  void OnCommit(const std::shared_ptr<const WarehouseSnapshot>& previous,
                const std::shared_ptr<const WarehouseSnapshot>& published);

  // Replay outcome: `ok` is false when `from` predates retention (the
  // subscriber must resync from `current_version`).
  struct Replay {
    bool ok = true;
    uint64_t current_version = 0;
    std::vector<std::shared_ptr<const ChangeEvent>> events;
  };

  // Every retained event with version > `from`. `from` at or past the
  // newest version returns an empty OK replay (tail position).
  Replay ReplayFrom(uint64_t from) const;

  // Blocks until an event with version > `from` exists, the timeout
  // elapses, or Close(). Returns true when new events are available.
  bool WaitBeyond(uint64_t from, int64_t timeout_ms) const;

  // Wakes every waiter permanently (server shutdown). After Close(),
  // WaitBeyond returns immediately.
  void Close();
  bool closed() const;

  Stats stats() const;

 private:
  const size_t retention_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<std::shared_ptr<const ChangeEvent>> ring_;
  uint64_t commits_ = 0;
  uint64_t dropped_ = 0;
  uint64_t newest_version_ = 0;
  bool closed_ = false;
};

}  // namespace mindetail

#endif  // MINDETAIL_NET_CHANGE_FEED_H_
