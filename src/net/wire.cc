#include "net/wire.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace mindetail {

namespace {

// Splits one CSV line into (text, was_quoted) fields, honoring the
// io/csv dialect (doubled quotes escape; commas allowed inside quotes).
// Newlines never appear — the wire formats are strictly line-oriented,
// and RenderCsvField never emits a raw newline either (see below).
Status SplitCsvLine(std::string_view line,
                    std::vector<std::pair<std::string, bool>>* fields) {
  fields->clear();
  std::string current;
  bool quoted_field = false;
  bool in_quotes = false;
  size_t i = 0;
  while (i <= line.size()) {
    if (i == line.size()) {
      if (in_quotes) return InvalidArgumentError("unterminated quote");
      fields->emplace_back(std::move(current), quoted_field);
      break;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && current.empty() && !quoted_field) {
      in_quotes = true;
      quoted_field = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->emplace_back(std::move(current), quoted_field);
      current.clear();
      quoted_field = false;
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  return Status::Ok();
}

Result<Value> ParseCsvField(const std::string& text, bool quoted,
                            ValueType type, bool allow_null) {
  if (quoted) {
    if (type != ValueType::kString) {
      return InvalidArgumentError(StrCat("quoted value where ",
                                         ValueTypeName(type), " expected"));
    }
    return Value(text);
  }
  if (text.empty()) {
    if (!allow_null) return InvalidArgumentError("NULL in a NULL-free row");
    return Value();
  }
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0') {
        return InvalidArgumentError(StrCat("'", text, "' is not an integer"));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == nullptr || *end != '\0') {
        return InvalidArgumentError(StrCat("'", text, "' is not a number"));
      }
      return Value(v);
    }
    case ValueType::kString:
      return InvalidArgumentError(
          StrCat("unquoted value '", text, "' where a string was expected"));
    case ValueType::kNull:
      break;
  }
  return InvalidArgumentError("bad field");
}

}  // namespace

std::string RenderCsvField(const Value& value) {
  std::string out;
  switch (value.type()) {
    case ValueType::kNull:
      break;  // Empty field.
    case ValueType::kInt64:
      out = std::to_string(value.AsInt64());
      break;
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g",
                    std::numeric_limits<double>::max_digits10,
                    value.AsDouble());
      out = buf;
      break;
    }
    case ValueType::kString: {
      out.push_back('"');
      for (const char c : value.AsString()) {
        if (c == '"') out.push_back('"');
        // A raw newline would break the line-oriented wire formats
        // (and SSE data framing); escape it as \n, and a literal
        // backslash as \\ so the escaping stays injective.
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        if (c == '\\') {
          out += "\\\\";
          continue;
        }
        out.push_back(c);
      }
      out.push_back('"');
      break;
    }
  }
  return out;
}

std::string RenderCsvRow(const Tuple& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += RenderCsvField(row[i]);
  }
  return out;
}

std::string RenderTableBody(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += schema.attribute(i).name;
  }
  out.push_back('\n');
  for (const Tuple& row : table.rows()) {
    out += RenderCsvRow(row);
    out.push_back('\n');
  }
  return out;
}

Result<Tuple> ParseCsvRow(std::string_view line, const Schema& schema,
                          bool allow_null) {
  std::vector<std::pair<std::string, bool>> fields;
  MD_RETURN_IF_ERROR(SplitCsvLine(line, &fields));
  if (fields.size() != schema.size()) {
    return InvalidArgumentError(StrCat("row has ", fields.size(),
                                       " fields, schema has ",
                                       schema.size()));
  }
  Tuple row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    auto value = ParseCsvField(fields[i].first, fields[i].second,
                               schema.attribute(i).type, allow_null);
    if (!value.ok()) {
      return InvalidArgumentError(StrCat("column '",
                                         schema.attribute(i).name, "': ",
                                         value.status().message()));
    }
    // Un-escape RenderCsvField's \n and \\ pairs.
    if (value->type() == ValueType::kString) {
      const std::string& text = value->AsString();
      std::string unescaped;
      unescaped.reserve(text.size());
      for (size_t j = 0; j < text.size(); ++j) {
        if (text[j] == '\\' && j + 1 < text.size()) {
          if (text[j + 1] == 'n') {
            unescaped.push_back('\n');
            ++j;
            continue;
          }
          if (text[j + 1] == '\\') {
            unescaped.push_back('\\');
            ++j;
            continue;
          }
        }
        unescaped.push_back(text[j]);
      }
      row.emplace_back(std::move(unescaped));
      continue;
    }
    row.push_back(*std::move(value));
  }
  return row;
}

Result<std::map<std::string, Delta>> ParseIngestBody(
    std::string_view body, const Catalog& catalog) {
  std::map<std::string, Delta> changes;
  const Schema* schema = nullptr;
  Delta* delta = nullptr;
  // A pending `<` before-image waiting for its `>` after-image.
  std::optional<Tuple> pending_before;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= body.size()) {
    size_t eol = body.find('\n', start);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(start, eol - start);
    start = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](std::string_view what) {
      return InvalidArgumentError(StrCat("ingest line ", line_no, ": ",
                                         what));
    };
    if (line.rfind("table ", 0) == 0) {
      if (pending_before.has_value()) {
        return fail("update before-image without an after-image");
      }
      const std::string name(line.substr(6));
      const auto table = catalog.GetTable(name);
      if (!table.ok()) return fail(StrCat("unknown table '", name, "'"));
      schema = &(*table)->schema();
      delta = &changes[name];
      continue;
    }
    if (line.size() < 2 || line[1] != ' ' ||
        (line[0] != '+' && line[0] != '-' && line[0] != '<' &&
         line[0] != '>')) {
      return fail("expected 'table <name>' or '+/-/</> <csv>'");
    }
    if (schema == nullptr) return fail("row before any 'table' line");
    auto row = ParseCsvRow(line.substr(2), *schema);
    if (!row.ok()) return fail(row.status().message());
    if (pending_before.has_value() && line[0] != '>') {
      return fail("update before-image without an after-image");
    }
    switch (line[0]) {
      case '+':
        delta->inserts.push_back(*std::move(row));
        break;
      case '-':
        delta->deletes.push_back(*std::move(row));
        break;
      case '<':
        pending_before = *std::move(row);
        break;
      case '>':
        if (!pending_before.has_value()) {
          return fail("update after-image without a before-image");
        }
        delta->updates.push_back(
            Update{*std::move(pending_before), *std::move(row)});
        pending_before.reset();
        break;
    }
  }
  if (pending_before.has_value()) {
    return InvalidArgumentError(
        "ingest body ends with an unpaired update before-image");
  }
  for (auto it = changes.begin(); it != changes.end();) {
    it = it->second.Empty() ? changes.erase(it) : ++it;
  }
  if (changes.empty()) {
    return InvalidArgumentError("ingest body contains no changes");
  }
  return changes;
}

}  // namespace mindetail
