#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/strings.h"
#include "io/log_format.h"
#include "net/wire.h"

namespace mindetail {

namespace {

// Retry-After is specified in whole seconds; round a millisecond hint
// up so a compliant client never retries early.
std::string RetryAfterSeconds(int64_t ms) {
  return StrCat((std::max<int64_t>(1, ms) + 999) / 1000);
}

// The HTTP rendering of a non-OK warehouse status.
int HttpCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 413;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    default:
      return 500;
  }
}

Result<uint64_t> ParseU64(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty number");
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
      return InvalidArgumentError(StrCat("'", text, "' is not a number"));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Histogram bounds for ingest latency, in seconds.
std::vector<double> LatencyBuckets() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
          0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
}

}  // namespace

HttpServer::HttpServer(Warehouse* warehouse, HttpServerOptions options)
    : warehouse_(warehouse),
      options_(std::move(options)),
      rate_limiter_(options_.rate_limit),
      admission_(options_.admission),
      feed_(std::make_shared<ChangeFeed>(options_.change_feed_retention)) {
  DeclareMetrics();
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::DeclareMetrics() {
  metrics_.Declare("mindetail_http_requests_total", "counter",
                   "Requests handled, by endpoint and HTTP code.");
  metrics_.DeclareHistogram("mindetail_ingest_latency_seconds",
                            "End-to-end /ingest latency.",
                            LatencyBuckets());
  metrics_.Declare("mindetail_snapshot_version", "gauge",
                   "Version of the currently served snapshot.");
  metrics_.Declare("mindetail_snapshot_age_seconds", "gauge",
                   "Seconds since the served snapshot was published.");
  metrics_.Declare("mindetail_cache_hit_rate", "gauge",
                   "Result-cache hit rate over the warehouse lifetime.");
  metrics_.Declare("mindetail_cache_resident_bytes", "gauge",
                   "Result-cache resident bytes.");
  metrics_.Declare("mindetail_overload_admitted_total", "gauge",
                   "Batches admitted, by layer.");
  metrics_.Declare("mindetail_overload_shed_total", "gauge",
                   "Requests shed with 503/kUnavailable, by layer.");
  metrics_.Declare("mindetail_cancelled_total", "gauge",
                   "Cancelled work, by kind.");
  metrics_.Declare("mindetail_ingest_batches_total", "gauge",
                   "Warehouse ingestion outcomes, by result.");
  metrics_.Declare("mindetail_rate_limited_total", "gauge",
                   "Requests refused by the per-client rate limiter.");
  metrics_.Declare("mindetail_rate_limiter_clients", "gauge",
                   "Client buckets currently tracked.");
  metrics_.Declare("mindetail_connections_active", "gauge",
                   "Open connections.");
  metrics_.Declare("mindetail_connections_total", "gauge",
                   "Connections since start, by outcome.");
  metrics_.Declare("mindetail_change_feed_commits_total", "gauge",
                   "Commits recorded by the change feed.");
  metrics_.Declare("mindetail_change_feed_dropped_total", "gauge",
                   "Feed events evicted by the retention bound.");
  metrics_.Declare("mindetail_last_sequence", "gauge",
                   "Last committed warehouse batch sequence.");
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("server already running");
  }
  stopping_.store(false, std::memory_order_release);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return UnavailableError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return InvalidArgumentError(
        StrCat("bad bind address '", options_.bind_address, "'"));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(StrCat("cannot listen on ",
                                   options_.bind_address, ":", options_.port,
                                   ": ", std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  // Workers + the pool's inline caller slot; Submit always lands on a
  // background worker when num_workers ≥ 1.
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.num_workers) + 1);
  // Feed the change feed from the warehouse's commit hook. The
  // listener holds the feed by shared_ptr, so a commit racing server
  // destruction still lands on a live (if closed) feed. Registered
  // before traffic starts, from the thread that owns the writer side.
  std::shared_ptr<ChangeFeed> feed = feed_;
  warehouse_->SetCommitListener(
      [feed](const std::shared_ptr<const WarehouseSnapshot>& previous,
             const std::shared_ptr<const WarehouseSnapshot>& published) {
        feed->OnCommit(previous, published);
      });
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake SSE tails, then unblock every connection's recv so handlers
  // observe stopping_ and exit.
  feed_->Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Joins the workers after the in-flight handlers drain.
  pool_.reset();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &len);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // Listener gone.
    }
    char ip[INET_ADDRSTRLEN] = "unknown";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.size() < options_.max_connections) {
        connections_.insert(fd);
        ++accepted_;
        admit = true;
      } else {
        ++refused_;
      }
    }
    if (!admit) {
      // Refuse without occupying a worker.
      HttpResponse full = HttpResponse::Text(503, "connection table full\n");
      full.headers["Retry-After"] = "1";
      SendAll(fd, SerializeHttpResponse(full, /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    timeval timeout{};
    timeout.tv_sec = options_.idle_timeout_ms / 1000;
    timeout.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const std::string client(ip);
    pool_->Submit([this, fd, client] { ServeConnection(fd, client); });
  }
}

bool HttpServer::SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::ServeConnection(int fd, const std::string& peer) {
  HttpRequestParser parser(options_.parser_limits);
  bool keep = true;
  while (keep && !stopping_.load(std::memory_order_acquire)) {
    // Accumulate one request.
    bool closed = false;
    while (!parser.done() && parser.status().ok()) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        (void)parser.Consume(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF, timeout, or reset: a close at a message boundary is a
      // normal keep-alive hangup; mid-request there is no one sane to
      // answer, so just drop the connection either way.
      closed = true;
      break;
    }
    if (closed) break;
    if (!parser.status().ok()) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      metrics_.CounterAdd(
          "mindetail_http_requests_total",
          {{"endpoint", "malformed"},
           {"code", StrCat(parser.error_code())}});
      HttpResponse reject = HttpResponse::Text(
          parser.error_code(), StrCat(parser.status().message(), "\n"));
      SendAll(fd, SerializeHttpResponse(reject, /*keep_alive=*/false));
      break;
    }
    const HttpRequest request = parser.TakeRequest();
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (request.method == "GET" && request.path == "/changes" &&
        request.query.count("poll") == 0) {
      StreamChanges(fd, request);
      break;  // SSE monopolizes the connection; never keep-alive.
    }
    const HttpResponse response = Handle(request, peer);
    keep = request.KeepAlive();
    if (!SendAll(fd, SerializeHttpResponse(response, keep))) break;
    if (!keep) break;
    parser.Reset();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.erase(fd);
  }
  ::close(fd);
}

HttpResponse HttpServer::Handle(const HttpRequest& request,
                                const std::string& client_id) {
  HttpResponse response;
  if (request.path == "/metrics") {
    // Never rate limited: a scraper must see the server even when it
    // is busy refusing everyone else.
    response = request.method == "GET"
                   ? HandleMetrics()
                   : HttpResponse::Text(405, "use GET\n");
  } else {
    const std::string& header_id = request.Header("x-client-id");
    const RateDecision decision =
        rate_limiter_.Admit(header_id.empty() ? client_id : header_id);
    if (!decision.admitted) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      response = HttpResponse::Text(429, "rate limited\n");
      response.headers["Retry-After"] =
          RetryAfterSeconds(decision.retry_after_ms);
      response.headers["Retry-After-Ms"] = StrCat(decision.retry_after_ms);
    } else if (request.path == "/ingest") {
      response = request.method == "POST"
                     ? HandleIngest(request)
                     : HttpResponse::Text(405, "use POST\n");
    } else if (request.path == "/query") {
      response = request.method == "POST"
                     ? HandleQuery(request)
                     : HttpResponse::Text(405, "use POST\n");
    } else if (request.path == "/explain") {
      response = request.method == "POST"
                     ? HandleExplain(request)
                     : HttpResponse::Text(405, "use POST\n");
    } else if (request.path == "/report") {
      response = request.method == "GET"
                     ? HandleReport(request)
                     : HttpResponse::Text(405, "use GET\n");
    } else if (request.path == "/changes") {
      response = request.method == "GET"
                     ? HandlePollChanges(request)
                     : HttpResponse::Text(405, "use GET\n");
    } else {
      response = HttpResponse::Text(
          404, StrCat("no such endpoint: ", request.path, "\n"));
    }
  }
  metrics_.CounterAdd("mindetail_http_requests_total",
                      {{"endpoint", request.path},
                       {"code", StrCat(response.code)}});
  return response;
}

// The deadline header, as a token. Absent → a never-cancelling token.
static Result<CancellationToken> TokenForRequest(const HttpRequest& request) {
  const std::string& header = request.Header("x-deadline-ms");
  if (header.empty()) return CancellationToken{};
  MD_ASSIGN_OR_RETURN(const uint64_t ms, ParseU64(header));
  if (ms == 0) return CancellationToken{};
  return CancellationToken(Deadline::After(static_cast<int64_t>(ms)));
}

// Renders a refused/failed warehouse status, attaching Retry-After on
// 503 from `retry_after_ms`.
static HttpResponse ErrorResponse(const Status& status,
                                  int64_t retry_after_ms) {
  HttpResponse response =
      HttpResponse::Text(HttpCodeForStatus(status),
                         StrCat(status.message(), "\n"));
  if (response.code == 503) {
    response.headers["Retry-After"] = RetryAfterSeconds(retry_after_ms);
    response.headers["Retry-After-Ms"] =
        StrCat(std::max<int64_t>(1, retry_after_ms));
  }
  return response;
}

HttpResponse HttpServer::HandleIngest(const HttpRequest& request) {
  const int64_t start_nanos = MonotonicNowNanos();
  // The deadline clock starts when the request arrives, before any
  // queueing: time spent waiting for admission counts against it.
  auto token = TokenForRequest(request);
  if (!token.ok()) {
    return HttpResponse::Text(400, StrCat(token.status().message(), "\n"));
  }
  const std::shared_ptr<const WarehouseSnapshot> snapshot =
      warehouse_->CurrentSnapshot();
  if (snapshot == nullptr || snapshot->schema_catalog == nullptr) {
    return HttpResponse::Text(503, "serving is disabled\n");
  }
  auto changes = ParseIngestBody(request.body, *snapshot->schema_catalog);
  if (!changes.ok()) {
    return HttpResponse::Text(400, StrCat(changes.status().message(), "\n"));
  }
  uint64_t rows = 0;
  for (const auto& [table, delta] : *changes) rows += delta.Size();
  auto permit = admission_.Admit(rows);
  if (!permit.ok()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(permit.status(), admission_.last_retry_after_ms());
  }
  if (options_.post_admission_hook) options_.post_admission_hook(request);
  const std::string& key = request.Header("idempotency-key");
  uint64_t sequence = 0;
  bool duplicate = false;
  {
    // One writer at a time: last_sequence() before vs. after the apply
    // is the duplicate signal, so the pair must be atomic.
    std::lock_guard<std::mutex> lock(ingest_mu_);
    const uint64_t before = warehouse_->last_sequence();
    const Status applied =
        warehouse_->ApplyTransaction(*changes, key, *token);
    if (!applied.ok()) {
      return ErrorResponse(applied, warehouse_->retry_after_hint_ms());
    }
    duplicate = warehouse_->last_sequence() == before;
    // A duplicate acks with the *original* batch's sequence, which the
    // warehouse remembers per idempotency key (hash key when none was
    // sent) — across restarts too, via checkpoint + WAL replay.
    const std::string& effective =
        key.empty() ? logfmt::ContentHashKey(*changes) : key;
    sequence = warehouse_->SequenceForKey(effective)
                   .value_or(warehouse_->last_sequence());
  }
  metrics_.Observe(
      "mindetail_ingest_latency_seconds",
      static_cast<double>(MonotonicNowNanos() - start_nanos) * 1e-9);
  HttpResponse response = HttpResponse::Text(
      200, StrCat("sequence ", sequence,
                  duplicate ? " duplicate" : " applied", "\n"));
  response.headers["X-Sequence"] = StrCat(sequence);
  response.headers["X-Duplicate"] = duplicate ? "true" : "false";
  return response;
}

HttpResponse HttpServer::HandleQuery(const HttpRequest& request) {
  // Deadline clock starts at arrival (see HandleIngest).
  auto token = TokenForRequest(request);
  if (!token.ok()) {
    return HttpResponse::Text(400, StrCat(token.status().message(), "\n"));
  }
  auto permit = admission_.Admit(1);
  if (!permit.ok()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(permit.status(), admission_.last_retry_after_ms());
  }
  if (options_.post_admission_hook) options_.post_admission_hook(request);
  auto result = warehouse_->Query(request.body, *token);
  if (!result.ok()) {
    return ErrorResponse(result.status(), warehouse_->retry_after_hint_ms());
  }
  HttpResponse response = HttpResponse::Text(200, RenderTableBody(*result));
  response.content_type = "text/csv; charset=utf-8";
  return response;
}

HttpResponse HttpServer::HandleExplain(const HttpRequest& request) {
  auto token = TokenForRequest(request);
  if (!token.ok()) {
    return HttpResponse::Text(400, StrCat(token.status().message(), "\n"));
  }
  auto explanation = warehouse_->ExplainQuery(request.body, *token);
  if (!explanation.ok()) {
    return ErrorResponse(explanation.status(),
                         warehouse_->retry_after_hint_ms());
  }
  return HttpResponse::Text(200, explanation->ToString());
}

HttpResponse HttpServer::HandleReport(const HttpRequest&) {
  // Report() reads the writer-side stats the ingest path mutates, and
  // the warehouse keeps no locks of its own ("serialized writer side"
  // contract) — so the scrape joins the writer queue.
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return HttpResponse::Text(200, warehouse_->Report().ToString());
}

HttpResponse HttpServer::HandleMetrics() {
  UpdateScrapeGauges();
  HttpResponse response = HttpResponse::Text(200, metrics_.RenderText());
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return response;
}

HttpResponse HttpServer::HandlePollChanges(const HttpRequest& request) {
  uint64_t from = feed_->stats().newest_version;
  const auto it = request.query.find("from");
  if (it != request.query.end()) {
    auto parsed = ParseU64(it->second);
    if (!parsed.ok()) {
      return HttpResponse::Text(400, "bad 'from' version\n");
    }
    from = *parsed;
  }
  const ChangeFeed::Replay replay = feed_->ReplayFrom(from);
  std::string body = StrCat("current ", replay.current_version, "\n");
  if (!replay.ok) {
    body += "reset\n";
  } else {
    for (const auto& event : replay.events) body += event->ToSse();
  }
  return HttpResponse::Text(200, body);
}

void HttpServer::StreamChanges(int fd, const HttpRequest& request) {
  uint64_t cursor = feed_->stats().newest_version;
  const auto from_it = request.query.find("from");
  if (from_it != request.query.end()) {
    auto parsed = ParseU64(from_it->second);
    if (!parsed.ok()) {
      SendAll(fd, SerializeHttpResponse(
                      HttpResponse::Text(400, "bad 'from' version\n"),
                      /*keep_alive=*/false));
      return;
    }
    cursor = *parsed;
  }
  // Optional event budget: close after streaming this many commits
  // (tests and benches end deterministically; 0 = unbounded tail).
  uint64_t limit = 0;
  const auto limit_it = request.query.find("limit");
  if (limit_it != request.query.end()) {
    auto parsed = ParseU64(limit_it->second);
    if (parsed.ok()) limit = *parsed;
  }
  if (!SendAll(fd,
               "HTTP/1.1 200 OK\r\n"
               "Content-Type: text/event-stream\r\n"
               "Cache-Control: no-cache\r\n"
               "Connection: close\r\n\r\n")) {
    return;
  }
  uint64_t streamed = 0;
  for (;;) {
    ChangeFeed::Replay replay = feed_->ReplayFrom(cursor);
    if (!replay.ok) {
      // The cursor predates retention (stale `from`, or the tail fell
      // behind a burst): tell the subscriber to resync its base state,
      // then continue from the current boundary.
      if (!SendAll(fd, StrCat("event: reset\nid: ", replay.current_version,
                              "\ndata: current ", replay.current_version,
                              "\n\n"))) {
        return;
      }
      cursor = replay.current_version;
      continue;
    }
    for (const auto& event : replay.events) {
      if (!SendAll(fd, event->ToSse())) return;
      cursor = std::max(cursor, event->version);
      ++streamed;
      if (limit > 0 && streamed >= limit) return;
    }
    if (stopping_.load(std::memory_order_acquire) || feed_->closed()) return;
    if (!feed_->WaitBeyond(cursor, options_.heartbeat_ms)) {
      if (stopping_.load(std::memory_order_acquire) || feed_->closed()) {
        return;
      }
      // Idle: a comment keeps intermediaries open and detects a dead
      // peer (the send fails once the client is gone).
      if (!SendAll(fd, ": keepalive\n\n")) return;
    }
  }
}

void HttpServer::UpdateScrapeGauges() {
  // Same writer-queue rule as HandleReport: the warehouse's stats are
  // only safe to read with the ingest path quiesced.
  const WarehouseReport report = [this] {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    return warehouse_->Report();
  }();
  metrics_.GaugeSet("mindetail_last_sequence", {},
                    static_cast<double>(report.last_sequence));
  const std::shared_ptr<const WarehouseSnapshot> snapshot =
      warehouse_->CurrentSnapshot();
  if (snapshot != nullptr) {
    metrics_.GaugeSet("mindetail_snapshot_version", {},
                      static_cast<double>(snapshot->version));
    const double age =
        snapshot->publish_nanos > 0
            ? static_cast<double>(MonotonicNowNanos() -
                                  snapshot->publish_nanos) *
                  1e-9
            : 0.0;
    metrics_.GaugeSet("mindetail_snapshot_age_seconds", {}, age);
  }
  const uint64_t lookups = report.cache.hits + report.cache.misses;
  metrics_.GaugeSet("mindetail_cache_hit_rate", {},
                    lookups == 0 ? 0.0
                                 : static_cast<double>(report.cache.hits) /
                                       static_cast<double>(lookups));
  metrics_.GaugeSet("mindetail_cache_resident_bytes", {},
                    static_cast<double>(report.cache.bytes_used));
  // Overload counters, both layers: the warehouse's own admission and
  // this transport's controller.
  const OverloadStats transport = admission_.Snapshot();
  metrics_.GaugeSet("mindetail_overload_admitted_total",
                    {{"layer", "warehouse"}},
                    static_cast<double>(report.overload.admitted));
  metrics_.GaugeSet("mindetail_overload_admitted_total",
                    {{"layer", "transport"}},
                    static_cast<double>(transport.admitted));
  metrics_.GaugeSet("mindetail_overload_shed_total", {{"layer", "warehouse"}},
                    static_cast<double>(report.overload.shed));
  metrics_.GaugeSet("mindetail_overload_shed_total", {{"layer", "transport"}},
                    static_cast<double>(transport.shed));
  metrics_.GaugeSet("mindetail_cancelled_total", {{"kind", "batches"}},
                    static_cast<double>(report.overload.cancelled_batches));
  metrics_.GaugeSet("mindetail_cancelled_total", {{"kind", "queries"}},
                    static_cast<double>(report.overload.cancelled_queries));
  metrics_.GaugeSet("mindetail_cancelled_total", {{"kind", "deadline"}},
                    static_cast<double>(report.overload.deadline_queries));
  metrics_.GaugeSet("mindetail_ingest_batches_total", {{"result", "accepted"}},
                    static_cast<double>(report.ingest.accepted));
  metrics_.GaugeSet("mindetail_ingest_batches_total",
                    {{"result", "duplicate"}},
                    static_cast<double>(report.ingest.duplicates));
  metrics_.GaugeSet("mindetail_ingest_batches_total", {{"result", "rejected"}},
                    static_cast<double>(report.ingest.rejected));
  metrics_.GaugeSet("mindetail_ingest_batches_total", {{"result", "failed"}},
                    static_cast<double>(report.ingest.failed));
  const RateLimiter::Stats limiter = rate_limiter_.stats();
  metrics_.GaugeSet("mindetail_rate_limited_total", {},
                    static_cast<double>(limiter.refused));
  metrics_.GaugeSet("mindetail_rate_limiter_clients", {},
                    static_cast<double>(limiter.clients));
  const ChangeFeed::Stats feed = feed_->stats();
  metrics_.GaugeSet("mindetail_change_feed_commits_total", {},
                    static_cast<double>(feed.commits));
  metrics_.GaugeSet("mindetail_change_feed_dropped_total", {},
                    static_cast<double>(feed.dropped));
  const Stats server = stats();
  metrics_.GaugeSet("mindetail_connections_active", {},
                    static_cast<double>(server.active));
  metrics_.GaugeSet("mindetail_connections_total", {{"outcome", "accepted"}},
                    static_cast<double>(server.accepted));
  metrics_.GaugeSet("mindetail_connections_total", {{"outcome", "refused"}},
                    static_cast<double>(server.refused));
}

HttpServer::Stats HttpServer::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    stats.accepted = accepted_;
    stats.refused = refused_;
    stats.active = connections_.size();
  }
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mindetail
