// A small blocking HTTP/1.1 client for loopback use — the integration
// tests, bench_server, and the CLI's `serve selftest` talk to the
// front end through this instead of shelling out to curl.
//
// One-shot requests open a fresh connection; HttpConnection reuses one
// (keep-alive) across sequential requests, and SseClient holds a
// /changes stream open and hands back parsed events one at a time.

#ifndef MINDETAIL_NET_HTTP_CLIENT_H_
#define MINDETAIL_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace mindetail {

struct ClientResponse {
  int code = 0;
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::string body;

  const std::string& Header(const std::string& name) const;
};

// A reusable keep-alive connection to one server.
class HttpConnection {
 public:
  HttpConnection() = default;
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one request and reads the complete response. The connection
  // stays open unless the server answered Connection: close.
  Result<ClientResponse> Request(
      const std::string& method, const std::string& target,
      const std::map<std::string, std::string>& headers = {},
      const std::string& body = "");

 private:
  friend class SseClient;
  int fd_ = -1;
  std::string buffer_;  // Bytes past the previous response.
};

// One-shot convenience: connect, request, close.
Result<ClientResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& target,
    const std::map<std::string, std::string>& headers = {},
    const std::string& body = "");

// A parsed SSE event from GET /changes.
struct SseEvent {
  std::string event;              // "commit", "reset"; "" for comments.
  std::string id;
  std::vector<std::string> data;  // One entry per `data:` line.
  bool comment = false;           // A `: keepalive` heartbeat.
};

class SseClient {
 public:
  SseClient() = default;
  ~SseClient();
  SseClient(const SseClient&) = delete;
  SseClient& operator=(const SseClient&) = delete;

  // Connects and issues GET `target` (e.g. "/changes?from=0"); checks
  // the stream answered 200 with an event-stream content type.
  Status Open(const std::string& host, int port, const std::string& target,
              const std::map<std::string, std::string>& headers = {});

  // Blocks for the next event (comments included). kUnavailable when
  // the server closed the stream.
  Result<SseEvent> Next();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mindetail

#endif  // MINDETAIL_NET_HTTP_CLIENT_H_
