// Dependency-free HTTP/1.1 message layer for the network front end.
//
// The server speaks a deliberately small slice of HTTP/1.1: GET and
// POST, Content-Length bodies (no chunked transfer coding, no
// multipart), case-insensitive headers, and query strings with
// percent-decoding. `HttpRequestParser` is incremental — feed it bytes
// as they arrive from the socket and it accumulates until a full
// request is available — and defensive: every limit (request-line
// length, header count and size, body size) is enforced before the
// offending bytes are buffered, so a malicious or fuzzed peer can make
// the parser fail but never make it allocate unboundedly or crash.

#ifndef MINDETAIL_NET_HTTP_H_
#define MINDETAIL_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mindetail {

// A parsed request. Header names are stored lower-cased; query
// parameters are percent-decoded.
struct HttpRequest {
  std::string method;   // "GET" / "POST" (upper-case as sent).
  std::string target;   // Raw request target ("/changes?from=3").
  std::string path;     // Target up to '?' ("/changes").
  std::string version;  // "HTTP/1.1" or "HTTP/1.0".
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::map<std::string, std::string> query;    // Decoded key → value.
  std::string body;

  // The header's value, or "" when absent (name given lower-cased).
  const std::string& Header(const std::string& name) const;
  bool HasHeader(const std::string& name) const {
    return headers.count(name) > 0;
  }
  // True when the client asked to keep the connection open (HTTP/1.1
  // default; HTTP/1.0 needs an explicit keep-alive).
  bool KeepAlive() const;
};

struct HttpResponse {
  int code = 200;
  std::map<std::string, std::string> headers;
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";

  static HttpResponse Text(int code, std::string body);
};

// The canonical reason phrase for `code` ("OK", "Too Many Requests",
// …); "Unknown" for codes the server never emits.
const char* HttpReasonPhrase(int code);

// Serializes status line + headers + body. Content-Length and
// Content-Type are always emitted; `keep_alive` picks the Connection
// header.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

// Hard ceilings the parser enforces (see class comment).
struct HttpParserLimits {
  size_t max_request_line_bytes = 8 * 1024;
  size_t max_header_bytes = 16 * 1024;  // All header lines together.
  size_t max_headers = 64;
  size_t max_body_bytes = 8 * 1024 * 1024;
};

// Incremental request parser. Usage:
//
//   HttpRequestParser parser(limits);
//   while (!parser.done()) {
//     parser.Consume(bytes_from_socket);      // any chunking
//     if (!parser.status().ok()) ...          // malformed → reject
//   }
//   HttpRequest request = parser.TakeRequest();
//
// After a completed request, Reset() rearms the parser for the next
// pipelined/keep-alive request; bytes past the first request's body
// stay buffered and carry over.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = HttpParserLimits{});

  // Feeds bytes. Returns the parser status: OK while incomplete or
  // complete, an error once the input is irrecoverably malformed.
  Status Consume(std::string_view bytes);

  // True once a full request (headers + body) is buffered.
  bool done() const { return state_ == State::kDone; }
  // Non-OK once the stream is malformed; the connection should be
  // answered with `error_code()` and closed.
  const Status& status() const { return status_; }
  // The HTTP status code to reject with (400, 413, 431, 501); 0 while
  // the stream is healthy.
  int error_code() const { return error_code_; }
  // True when no byte of the next request has arrived yet — an EOF
  // here is a clean connection close, not a truncated request.
  bool at_message_boundary() const {
    return state_ == State::kRequestLine && buffer_.empty();
  }

  // Moves the completed request out (valid only when done()).
  HttpRequest TakeRequest();

  // Rearms for the next request on the same connection, keeping any
  // already-buffered bytes of it.
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kDone, kError };

  Status Fail(int code, std::string message);
  Status ParseRequestLine(std::string_view line);
  Status ParseHeaderLine(std::string_view line);
  // Runs the state machine over the buffer.
  Status Advance();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  Status status_;
  int error_code_ = 0;
  std::string buffer_;  // Unconsumed bytes.
  HttpRequest request_;
  size_t header_bytes_ = 0;
  size_t body_length_ = 0;
};

// Percent-decodes `text` ('+' becomes space). Malformed escapes fail.
Result<std::string> UrlDecode(std::string_view text);

// Splits a raw request target into path + decoded query parameters.
Status ParseRequestTarget(std::string_view target, std::string* path,
                          std::map<std::string, std::string>* query);

}  // namespace mindetail

#endif  // MINDETAIL_NET_HTTP_H_
