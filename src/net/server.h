// The network front end: a dependency-free HTTP/1.1 server over one
// Warehouse.
//
// Endpoints:
//   POST /ingest    — a change batch (wire.h body format). Honors the
//                     Idempotency-Key header end-to-end: a resend is
//                     acknowledged as a no-op carrying the *original*
//                     batch sequence (X-Sequence, X-Duplicate: true),
//                     including across a server/warehouse restart.
//   POST /query     — an ad-hoc GPSJ query (body = SQL); the answer as
//                     a header line + CSV rows.
//   POST /explain   — the structured planning report, rendered.
//   GET  /report    — WarehouseReport::ToString().
//   GET  /metrics   — Prometheus text exposition (metrics.h).
//   GET  /changes   — SSE change feed (change_feed.h): replay from
//                     ?from=<version>, then tail; ?poll=1 returns the
//                     replay as a plain bounded response instead.
//
// Layering (the transport never reaches into maintenance internals):
//
//   connection bound → per-client rate limit → transport admission
//       (own OverloadController) → warehouse (its own admission,
//       deadlines, budgets)
//
// The connection table is bounded (excess connections get an immediate
// 503 and are closed); the per-client token bucket (rate_limiter.h)
// refuses with 429 + Retry-After; the transport OverloadController
// sheds with 503 + Retry-After from its own hint. A deadline arrives
// as X-Deadline-Ms and propagates into the warehouse as a
// CancellationToken — a request that times out or is cancelled returns
// 504/499 and, by the warehouse's rollback guarantees, never publishes
// a snapshot or pollutes the result cache.
//
// Status → HTTP: kInvalidArgument 400, kNotFound 404, kAlreadyExists /
// kFailedPrecondition 409, kResourceExhausted 413, kUnavailable 503
// (+ Retry-After), kDeadlineExceeded 504, kCancelled 499, rest 500.

#ifndef MINDETAIL_NET_SERVER_H_
#define MINDETAIL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "maintenance/admission.h"
#include "maintenance/warehouse.h"
#include "net/change_feed.h"
#include "net/http.h"
#include "net/metrics.h"
#include "net/rate_limiter.h"

namespace mindetail {

struct HttpServerOptions {
  // Loopback by default; the front end has no authentication story, so
  // binding wider is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (read the outcome from port()).
  // Connection-handler pool size (ThreadPool workers). Each in-flight
  // connection occupies one worker for its lifetime, so this also
  // bounds request concurrency.
  int num_workers = 8;
  // Connection-table bound: accepts past this are answered 503 and
  // closed immediately without occupying a worker.
  size_t max_connections = 64;
  HttpParserLimits parser_limits;
  // Per-client token bucket (capacity 0 = disabled).
  RateLimiterOptions rate_limit;
  // Transport-level admission window applied to /ingest and /query
  // (max_inflight_batches 0 = disabled). Separate instance from the
  // warehouse's own controller: this one sheds by wire concurrency,
  // the warehouse's by apply cost.
  OverloadController::Options admission;
  // Change-feed retention ring (events).
  size_t change_feed_retention = 256;
  // Socket read timeout; an idle keep-alive connection is closed after
  // this long at a message boundary.
  int idle_timeout_ms = 30'000;
  // SSE keepalive comment interval (also the WaitBeyond granularity).
  int heartbeat_ms = 1'000;
  // Test hook: runs after rate limiting and transport admission both
  // passed (for /ingest and /query, while the admission permit is
  // held), before the warehouse sees the request. Lets tests hold one
  // request in-flight to make a concurrent shed deterministic.
  std::function<void(const HttpRequest&)> post_admission_hook;
};

class HttpServer {
 public:
  struct Stats {
    uint64_t accepted = 0;          // Connections accepted.
    uint64_t refused = 0;           // Closed by the connection bound.
    size_t active = 0;              // Currently open.
    uint64_t requests = 0;          // Requests fully handled.
    uint64_t rate_limited = 0;      // 429s.
    uint64_t shed = 0;              // Transport-admission 503s.
    uint64_t malformed = 0;         // Parser rejections.
  };

  // The warehouse must outlive the server. The server registers itself
  // as the warehouse's commit listener (change feed); it does not take
  // ownership.
  HttpServer(Warehouse* warehouse, HttpServerOptions options);
  ~HttpServer();  // Calls Stop().

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the accept loop. Fails (kUnavailable)
  // when the address cannot be bound.
  Status Start();

  // Stops accepting, closes every open connection, wakes SSE waiters,
  // and joins all threads. Idempotent.
  void Stop();

  // The bound port (resolved when port 0 was requested); 0 before
  // Start().
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  MetricsRegistry& metrics() { return metrics_; }
  ChangeFeed& change_feed() { return *feed_; }
  RateLimiter& rate_limiter() { return rate_limiter_; }
  Stats stats() const;

  // Routes one parsed request exactly as the socket path does —
  // exposed so unit tests can exercise handlers and the error-mapping
  // matrix without a connection. `client_id` stands in for the peer
  // identity when the request has no X-Client-Id header.
  HttpResponse Handle(const HttpRequest& request,
                      const std::string& client_id);

 private:
  void AcceptLoop();
  void ServeConnection(int fd, const std::string& peer);
  // Streams GET /changes on `fd` (headers already decided); returns
  // when the client disconnects, the feed closes, or the server stops.
  void StreamChanges(int fd, const HttpRequest& request);

  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleExplain(const HttpRequest& request);
  HttpResponse HandleReport(const HttpRequest& request);
  HttpResponse HandleMetrics();
  // GET /changes?poll=1 (bounded response; the SSE path streams).
  HttpResponse HandlePollChanges(const HttpRequest& request);

  // Refreshes scrape-time gauges from the warehouse report, snapshot,
  // limiter, feed, and connection table.
  void UpdateScrapeGauges();
  void DeclareMetrics();

  // Sends all of `bytes`; false on a closed/failed peer.
  bool SendAll(int fd, std::string_view bytes);

  Warehouse* const warehouse_;
  HttpServerOptions options_;
  MetricsRegistry metrics_;
  RateLimiter rate_limiter_;
  OverloadController admission_;
  // Shared so the warehouse's commit listener (which may fire from the
  // writer thread after this server is destroyed) stays valid.
  std::shared_ptr<ChangeFeed> feed_;
  std::unique_ptr<ThreadPool> pool_;

  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Atomic: Stop() closes and clears it while AcceptLoop blocks in
  // accept() on it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  // Serializes /ingest so duplicate detection (last_sequence before /
  // after the apply) observes a consistent writer state.
  std::mutex ingest_mu_;

  mutable std::mutex conn_mu_;
  std::set<int> connections_;  // Open sockets, for Stop() to unblock.
  uint64_t accepted_ = 0;
  uint64_t refused_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rate_limited_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> malformed_{0};
};

}  // namespace mindetail

#endif  // MINDETAIL_NET_SERVER_H_
