#include "net/change_feed.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/strings.h"
#include "net/wire.h"

namespace mindetail {

namespace {

// A view's contents as sorted canonical CSV rows.
std::vector<std::string> RenderRows(const Table& table) {
  std::vector<std::string> rows;
  rows.reserve(table.NumRows());
  for (const Tuple& row : table.rows()) {
    rows.push_back(RenderCsvRow(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

ChangeEvent DiffSnapshots(const WarehouseSnapshot& previous,
                          const WarehouseSnapshot& published) {
  ChangeEvent event;
  event.version = published.version;
  event.prior_version = previous.version;
  event.epoch = published.epoch;
  // Union of view names, in the published snapshot's registration
  // order; views only the previous snapshot carries (dropped by this
  // commit) follow in their old order.
  std::vector<std::string> names = published.order;
  for (const std::string& name : previous.order) {
    if (!published.HasView(name)) names.push_back(name);
  }
  for (const std::string& name : names) {
    const auto prev_it = previous.views.find(name);
    const auto next_it = published.views.find(name);
    const std::shared_ptr<const ServedView> prev =
        prev_it == previous.views.end() ? nullptr : prev_it->second;
    const std::shared_ptr<const ServedView> next =
        next_it == published.views.end() ? nullptr : next_it->second;
    // Copy-on-write publish shares untouched views; pointer equality
    // means no row can differ.
    if (prev == next) continue;
    ViewDelta delta;
    delta.view = name;
    delta.from_version = prev ? prev->version : 0;
    delta.to_version = next ? next->version : 0;
    std::vector<std::string> before =
        prev && prev->contents ? RenderRows(*prev->contents)
                               : std::vector<std::string>{};
    std::vector<std::string> after =
        next && next->contents ? RenderRows(*next->contents)
                               : std::vector<std::string>{};
    std::set_difference(after.begin(), after.end(), before.begin(),
                        before.end(), std::back_inserter(delta.added));
    std::set_difference(before.begin(), before.end(), after.begin(),
                        after.end(), std::back_inserter(delta.removed));
    // A re-rendered but row-identical view (e.g. an engine repair)
    // produces no visible delta; omit it.
    if (delta.added.empty() && delta.removed.empty() &&
        delta.from_version == delta.to_version) {
      continue;
    }
    event.views.push_back(std::move(delta));
  }
  return event;
}

std::string ChangeEvent::ToSse() const {
  std::string out = StrCat("event: commit\nid: ", version, "\n");
  out += StrCat("data: commit ", version, " prior ", prior_version,
                " epoch ", epoch, "\n");
  for (const ViewDelta& delta : views) {
    out += StrCat("data: view ", delta.view, " from ", delta.from_version,
                  " to ", delta.to_version, " added ", delta.added.size(),
                  " removed ", delta.removed.size(), "\n");
    for (const std::string& row : delta.added) {
      out += StrCat("data: + ", row, "\n");
    }
    for (const std::string& row : delta.removed) {
      out += StrCat("data: - ", row, "\n");
    }
  }
  out += "data: end\n\n";
  return out;
}

ChangeFeed::ChangeFeed(size_t retention)
    : retention_(std::max<size_t>(1, retention)) {}

void ChangeFeed::OnCommit(
    const std::shared_ptr<const WarehouseSnapshot>& previous,
    const std::shared_ptr<const WarehouseSnapshot>& published) {
  if (previous == nullptr || published == nullptr) return;
  auto event = std::make_shared<const ChangeEvent>(
      DiffSnapshots(*previous, *published));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++commits_;
    newest_version_ = event->version;
    ring_.push_back(std::move(event));
    while (ring_.size() > retention_) {
      ring_.pop_front();
      ++dropped_;
    }
  }
  cv_.notify_all();
}

ChangeFeed::Replay ChangeFeed::ReplayFrom(uint64_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  Replay replay;
  replay.current_version = newest_version_;
  if (ring_.empty()) {
    // Nothing retained: any `from` below the newest version has a gap.
    replay.ok = from >= newest_version_;
    return replay;
  }
  // `from` must cover everything already evicted: the oldest retained
  // event carries the delta prior→prior+1, so a subscriber at `from`
  // can only resume gap-free when from >= oldest.prior_version.
  if (from < ring_.front()->prior_version) {
    replay.ok = false;
    return replay;
  }
  for (const auto& event : ring_) {
    if (event->version > from) replay.events.push_back(event);
  }
  return replay;
}

bool ChangeFeed::WaitBeyond(uint64_t from, int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(std::max<int64_t>(
                         0, timeout_ms)),
               [&] { return closed_ || newest_version_ > from; });
  return !closed_ && newest_version_ > from;
}

void ChangeFeed::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ChangeFeed::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

ChangeFeed::Stats ChangeFeed::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.commits = commits_;
  stats.dropped = dropped_;
  stats.retained = ring_.size();
  stats.newest_version = newest_version_;
  stats.oldest_version = ring_.empty() ? 0 : ring_.front()->version;
  return stats;
}

}  // namespace mindetail
