// Per-client token-bucket rate limiting for the network front end.
//
// Each client (keyed by the X-Client-Id header, falling back to the
// peer address) owns a bucket of `capacity` tokens refilled at
// `refill_per_sec`; a request spends one token. Refusals carry a
// deterministic retry-after hint — how long until the bucket holds a
// whole token again — so a well-behaved client backs off exactly as
// long as needed and no longer.
//
// This layer sits *in front of* the warehouse's OverloadController:
// the limiter throttles individually noisy clients by identity, the
// controller sheds aggregate pressure by cost. A request must pass
// both. The client table is bounded: least-recently-seen buckets are
// evicted past `max_clients`, so an attacker cycling client ids can
// reset their own bucket but never grow server memory.
//
// Thread-safe; the clock is injectable so tests refill deterministically.

#ifndef MINDETAIL_NET_RATE_LIMITER_H_
#define MINDETAIL_NET_RATE_LIMITER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/cancellation.h"

namespace mindetail {

struct RateLimiterOptions {
  // Bucket capacity (burst allowance), in requests. 0 disables the
  // limiter: every request is admitted.
  double capacity = 0;
  // Sustained refill rate, tokens per second.
  double refill_per_sec = 10.0;
  // Bounded client table; least-recently-seen evicted past this.
  size_t max_clients = 1024;
  // Injectable monotonic clock (tests); null = process steady clock.
  MonotonicClock clock;
};

// One admission decision.
struct RateDecision {
  bool admitted = true;
  // When refused: milliseconds until the bucket next holds a whole
  // token (≥ 1), the wire Retry-After hint.
  int64_t retry_after_ms = 0;
};

class RateLimiter {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t refused = 0;
    uint64_t evicted = 0;  // Buckets dropped by the LRU bound.
    size_t clients = 0;    // Currently tracked.
  };

  explicit RateLimiter(RateLimiterOptions options);

  // Spends one token from `client_id`'s bucket, creating the bucket
  // (full) on first sight.
  RateDecision Admit(const std::string& client_id);

  Stats stats() const;

  bool enabled() const { return options_.capacity > 0; }
  const RateLimiterOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0;
    int64_t refilled_nanos = 0;
    std::list<std::string>::iterator lru_it;  // Position in lru_.
  };

  int64_t NowNanos() const;

  RateLimiterOptions options_;  // Fixed after construction.
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;
  // Most-recently-seen client ids at the front.
  std::list<std::string> lru_;
  uint64_t admitted_ = 0;
  uint64_t refused_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace mindetail

#endif  // MINDETAIL_NET_RATE_LIMITER_H_
