#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace mindetail {

namespace {

const std::string kEmpty;

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Appends more bytes from the socket into `buffer`; false on EOF/error.
bool ReadMore(int fd, std::string* buffer) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer->append(buf, static_cast<size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

// Pops one \n-terminated line from the front of `buffer` (CR stripped),
// reading as needed. False on EOF before a full line.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t eol = buffer->find('\n');
    if (eol != std::string::npos) {
      *line = buffer->substr(0, eol);
      buffer->erase(0, eol + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (!ReadMore(fd, buffer)) return false;
  }
}

Result<int> OpenSocket(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return UnavailableError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError(StrCat("bad host '", host, "'"));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(StrCat("connect to ", host, ":", port,
                                   " failed: ", std::strerror(err)));
  }
  return fd;
}

std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::map<std::string, std::string>& headers,
                             const std::string& body) {
  std::string out = StrCat(method, " ", target, " HTTP/1.1\r\n");
  out += "Host: localhost\r\n";
  for (const auto& [name, value] : headers) {
    out += StrCat(name, ": ", value, "\r\n");
  }
  out += StrCat("Content-Length: ", body.size(), "\r\n\r\n");
  out += body;
  return out;
}

// Reads status line + headers + Content-Length body from `fd`.
Result<ClientResponse> ReadResponse(int fd, std::string* buffer) {
  ClientResponse response;
  std::string line;
  if (!ReadLine(fd, buffer, &line)) {
    return UnavailableError("connection closed before a response");
  }
  // "HTTP/1.1 200 OK"
  const size_t sp1 = line.find(' ');
  if (line.rfind("HTTP/", 0) != 0 || sp1 == std::string::npos) {
    return InternalError(StrCat("malformed status line: ", line));
  }
  response.code = std::atoi(line.c_str() + sp1 + 1);
  for (;;) {
    if (!ReadLine(fd, buffer, &line)) {
      return UnavailableError("connection closed inside headers");
    }
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    response.headers[ToLower(line.substr(0, colon))] = std::move(value);
  }
  const auto cl = response.headers.find("content-length");
  const size_t length =
      cl == response.headers.end()
          ? 0
          : static_cast<size_t>(std::strtoull(cl->second.c_str(), nullptr,
                                              10));
  while (buffer->size() < length) {
    if (!ReadMore(fd, buffer)) {
      return UnavailableError("connection closed inside the body");
    }
  }
  response.body = buffer->substr(0, length);
  buffer->erase(0, length);
  return response;
}

}  // namespace

const std::string& ClientResponse::Header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? kEmpty : it->second;
}

HttpConnection::~HttpConnection() { Close(); }

Status HttpConnection::Connect(const std::string& host, int port) {
  Close();
  MD_ASSIGN_OR_RETURN(fd_, OpenSocket(host, port));
  buffer_.clear();
  return Status::Ok();
}

void HttpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<ClientResponse> HttpConnection::Request(
    const std::string& method, const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string& body) {
  if (fd_ < 0) return FailedPreconditionError("not connected");
  if (!SendAll(fd_, SerializeRequest(method, target, headers, body))) {
    Close();
    return UnavailableError("send failed");
  }
  auto response = ReadResponse(fd_, &buffer_);
  if (!response.ok()) {
    Close();
    return response;
  }
  if (ToLower(response->Header("connection")).find("close") !=
      std::string::npos) {
    Close();
  }
  return response;
}

Result<ClientResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& target,
    const std::map<std::string, std::string>& headers,
    const std::string& body) {
  HttpConnection connection;
  MD_RETURN_IF_ERROR(connection.Connect(host, port));
  return connection.Request(method, target, headers, body);
}

SseClient::~SseClient() { Close(); }

void SseClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status SseClient::Open(const std::string& host, int port,
                       const std::string& target,
                       const std::map<std::string, std::string>& headers) {
  Close();
  MD_ASSIGN_OR_RETURN(fd_, OpenSocket(host, port));
  if (!SendAll(fd_, SerializeRequest("GET", target, headers, ""))) {
    Close();
    return UnavailableError("send failed");
  }
  // Status line + headers; the body is the unbounded event stream.
  std::string line;
  if (!ReadLine(fd_, &buffer_, &line)) {
    Close();
    return UnavailableError("connection closed before a response");
  }
  const size_t sp1 = line.find(' ');
  const int code =
      sp1 == std::string::npos ? 0 : std::atoi(line.c_str() + sp1 + 1);
  std::string content_type;
  for (;;) {
    if (!ReadLine(fd_, &buffer_, &line)) {
      Close();
      return UnavailableError("connection closed inside headers");
    }
    if (line.empty()) break;
    const std::string lower = ToLower(line);
    if (lower.rfind("content-type:", 0) == 0) content_type = lower;
  }
  if (code != 200) {
    Close();
    return UnavailableError(StrCat("stream refused with HTTP ", code));
  }
  if (content_type.find("text/event-stream") == std::string::npos) {
    Close();
    return InternalError("response is not an event stream");
  }
  return Status::Ok();
}

Result<SseEvent> SseClient::Next() {
  if (fd_ < 0) return FailedPreconditionError("stream not open");
  SseEvent event;
  bool any = false;
  std::string line;
  for (;;) {
    if (!ReadLine(fd_, &buffer_, &line)) {
      Close();
      return UnavailableError("stream closed");
    }
    if (line.empty()) {
      if (any) return event;
      continue;  // Stray blank line between events.
    }
    any = true;
    if (line[0] == ':') {
      event.comment = true;
      continue;
    }
    if (line.rfind("event: ", 0) == 0) {
      event.event = line.substr(7);
    } else if (line.rfind("id: ", 0) == 0) {
      event.id = line.substr(4);
    } else if (line.rfind("data: ", 0) == 0) {
      event.data.push_back(line.substr(6));
    }
  }
}

}  // namespace mindetail
