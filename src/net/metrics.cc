#include "net/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace mindetail {

namespace {

// Prometheus renders values as decimal floats; integers must not grow
// a trailing ".000000", so format minimally.
std::string RenderValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return StrCat(static_cast<int64_t>(value));
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += StrCat(name, "=\"", EscapeLabelValue(value), "\"");
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::Declare(const std::string& name, const std::string& type,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (!inserted) return;
  it->second.type = type;
  it->second.help = help;
}

void MetricsRegistry::CounterAdd(const std::string& name,
                                 const MetricLabels& labels, double delta) {
  const std::string series = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) it->second.type = "counter";
  it->second.series[series] += delta;
}

void MetricsRegistry::GaugeSet(const std::string& name,
                               const MetricLabels& labels, double value) {
  const std::string series = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) it->second.type = "gauge";
  it->second.series[series] = value;
}

void MetricsRegistry::DeclareHistogram(const std::string& name,
                                       const std::string& help,
                                       std::vector<double> bucket_bounds) {
  std::sort(bucket_bounds.begin(), bucket_bounds.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  if (!inserted) return;
  it->second.type = "histogram";
  it->second.help = help;
  it->second.histogram.counts.assign(bucket_bounds.size(), 0);
  it->second.histogram.bounds = std::move(bucket_bounds);
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.type != "histogram") return;
  Histogram& h = it->second.histogram;
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    if (value <= h.bounds[i]) {
      ++h.counts[i];
      break;
    }
  }
  ++h.count;
  h.sum += value;
}

double MetricsRegistry::CounterValue(const std::string& name,
                                     const MetricLabels& labels) const {
  const std::string series = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(name);
  if (it == families_.end()) return 0;
  const auto series_it = it->second.series.find(series);
  return series_it == it->second.series.end() ? 0 : series_it->second;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += StrCat("# HELP ", name, " ", family.help, "\n");
    }
    out += StrCat("# TYPE ", name, " ",
                  family.type.empty() ? "untyped" : family.type, "\n");
    if (family.type == "histogram") {
      const Histogram& h = family.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds.size(); ++i) {
        cumulative += h.counts[i];
        out += StrCat(name, "_bucket{le=\"", RenderValue(h.bounds[i]),
                      "\"} ", cumulative, "\n");
      }
      out += StrCat(name, "_bucket{le=\"+Inf\"} ", h.count, "\n");
      out += StrCat(name, "_sum ", RenderValue(h.sum), "\n");
      out += StrCat(name, "_count ", h.count, "\n");
      continue;
    }
    if (family.series.empty()) {
      // A declared-but-never-touched family still renders one zero
      // series so dashboards do not show gaps before first use.
      out += StrCat(name, " 0\n");
      continue;
    }
    for (const auto& [labels, value] : family.series) {
      out += StrCat(name, labels, " ", RenderValue(value), "\n");
    }
  }
  return out;
}

}  // namespace mindetail
