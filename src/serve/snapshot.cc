#include "serve/snapshot.h"

#include <utility>

#include "common/strings.h"

namespace mindetail {

const ServedView* WarehouseSnapshot::Find(const std::string& name) const {
  auto it = views.find(name);
  return it == views.end() ? nullptr : it->second.get();
}

const LatticeNodeSnapshot* WarehouseSnapshot::FindLatticeNode(
    const std::string& key) const {
  auto it = lattice.find(key);
  return it == lattice.end() ? nullptr : it->second.get();
}

std::optional<uint64_t> WarehouseSnapshot::SourceVersion(
    const std::string& name) const {
  if (const ServedView* view = Find(name)) return view->version;
  if (const LatticeNodeSnapshot* node = FindLatticeNode(name)) {
    return node->version;
  }
  return std::nullopt;
}

Result<std::shared_ptr<const Table>> WarehouseSnapshot::View(
    const std::string& name) const {
  const ServedView* view = Find(name);
  if (view == nullptr) {
    return NotFoundError(StrCat("view '", name, "' is not registered"));
  }
  return view->contents;
}

SnapshotManager::SnapshotManager() {
  auto empty = std::make_shared<WarehouseSnapshot>();
  empty->schema_catalog = std::make_shared<const Catalog>();
  current_ = std::move(empty);
}

std::shared_ptr<const WarehouseSnapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void SnapshotManager::Publish(
    std::shared_ptr<const WarehouseSnapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

}  // namespace mindetail
