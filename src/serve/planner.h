// GPSJ query answering by rewriting over materialized views.
//
// An ad-hoc GPSJ query is answered without touching base tables by
// rolling up a materialized summary — the read-side dual of the paper's
// smart duplicate compression: the augmented summary carries COUNT(*)
// (__shadow) and running sums precisely so coarser aggregates can be
// re-derived from it. Per the CSMAS rules, a query Q is derivable from
// a view V's summary when
//   * Q references the same tables and join conditions as V,
//   * V's local selections are a subset of Q's, and every extra
//     selection of Q is on an attribute V retains as a group-by output,
//   * Q's group-by attributes are a subset of V's, and
//   * every aggregate of Q is distributive over V's groups (COUNT via
//     Σ __shadow, SUM via Σ __sum_*, AVG as their ratio, MIN/MAX over a
//     matching MIN/MAX output) — or Q groups exactly like V, in which
//     case any aggregate V materializes (DISTINCT included) is copied.
// When the summary alone is insufficient (finer grouping, an aggregate
// over an attribute V only retains in its auxiliary views), the planner
// falls back to evaluating Q over the auxiliary views {V} ∪ X: join
// them along the join graph and aggregate with duplicate accounting —
// f(a · cnt0), paper Sec. 3.2.
//
// Everything here runs over an immutable WarehouseSnapshot; planning
// and execution never block maintenance.

#ifndef MINDETAIL_SERVE_PLANNER_H_
#define MINDETAIL_SERVE_PLANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "gpsj/parser.h"
#include "serve/lattice.h"
#include "serve/rollup.h"
#include "serve/snapshot.h"

namespace mindetail {

// A candidate view the planner examined and could not use.
struct RejectedCandidate {
  std::string view;
  std::string reason;
};

// An executable decision: which view answers the query and how.
struct QueryPlan {
  enum class Strategy { kSummaryRollup, kAuxJoin, kLatticeRollup };

  std::string view;
  Strategy strategy = Strategy::kSummaryRollup;
  // kSummaryRollup and kLatticeRollup both execute `summary` — over the
  // view's augmented summary or over the lattice node's mini summary
  // (the node is itself a coarser augmented summary, so one executor
  // serves both). kAuxJoin executes `aux`.
  SummaryRollupPlan summary;
  AuxJoinPlan aux;
  // kLatticeRollup: the winning node's key (snapshot lattice map).
  std::string lattice_node;
  // Candidates examined (in registration order) before `view` won.
  std::vector<RejectedCandidate> rejected;
  // Lattice nodes examined and unusable (`view` holds the node key) —
  // kept even when another strategy wins, so ExplainQuery can say why
  // the lattice did not serve.
  std::vector<RejectedCandidate> lattice_rejected;

  const char* StrategyName() const {
    switch (strategy) {
      case Strategy::kSummaryRollup:
        return "summary roll-up";
      case Strategy::kAuxJoin:
        return "auxiliary-view join";
      case Strategy::kLatticeRollup:
        return "lattice roll-up";
    }
    return "unknown";
  }
};

// A structured planning report: everything ExplainQuery knows, as
// data. The CLI (and anything else that wants text) renders it with
// ToString(); programmatic callers read the fields directly instead of
// parsing free text.
struct QueryExplanation {
  // The normalized query (GpsjViewDef::ToSqlString of the parse).
  std::string query_sql;

  // Planning outcome. When answerable, `view`/`strategy` (and for
  // lattice answers `lattice_node`/`lattice_node_rows`) say who won;
  // otherwise `unanswerable_reason` carries the kNotFound message with
  // every candidate's rejection folded in.
  bool answerable = false;
  std::string view;
  QueryPlan::Strategy strategy = QueryPlan::Strategy::kSummaryRollup;
  std::string lattice_node;
  uint64_t lattice_node_rows = 0;
  std::vector<RejectedCandidate> rejected;
  std::vector<RejectedCandidate> lattice_rejected;
  std::string unanswerable_reason;

  // Result-cache footer (filled by Warehouse::ExplainQuery when a
  // cache exists): whether the cache currently holds this answer.
  bool has_cache = false;
  bool cache_hit = false;
  size_t cache_entries = 0;
  size_t cache_capacity = 0;

  // Lattice footer (filled by Warehouse::ExplainQuery when the lattice
  // is enabled). budget == SIZE_MAX renders as "unbounded".
  bool has_lattice = false;
  LatticeStats lattice;
  size_t lattice_budget_bytes = 0;

  // Overload-governor footer (filled by Warehouse::ExplainQuery when a
  // default query deadline or per-query memory budget is configured).
  bool has_governor = false;
  int64_t deadline_ms = 0;           // 0 = no deadline.
  uint64_t memory_budget_bytes = 0;  // 0 = no budget.
  // Why the governor rejects this plan outright (e.g. the deadline
  // expired during planning); empty when the plan may execute.
  std::string governor_rejection;

  const char* StrategyName() const;
  // The classic ExplainQuery text, byte-for-byte.
  std::string ToString() const;
};

// Plans and executes ad-hoc GPSJ queries against one snapshot. The
// planner borrows the snapshot; keep the shared_ptr alive for the
// planner's lifetime.
class QueryPlanner {
 public:
  explicit QueryPlanner(const WarehouseSnapshot* snapshot)
      : snapshot_(snapshot) {}

  // Tries every registered view in registration order — the summary
  // roll-up first, then the auxiliary-view fallback — and returns the
  // first executable plan. Fails (kNotFound) with every candidate's
  // rejection reason when no view can answer the query.
  Result<QueryPlan> Plan(const GpsjViewDef& query) const;

  // Executes a plan produced by Plan() for the same query. The result
  // matches direct GPSJ evaluation of `query` over the base tables:
  // output columns in query output order, HAVING applied, rows sorted.
  // `ctx` carries the execution's resource governors (cancellation
  // token, memory budget); the default imposes no limits.
  Result<Table> Execute(const QueryPlan& plan, const GpsjViewDef& query,
                        const ExecContext& ctx = ExecContext{}) const;

  // The structured planning report: the chosen view and strategy (or
  // why the query is unanswerable), plus every rejected candidate.
  // Cache/lattice footers are left unset — the warehouse owns those.
  QueryExplanation Explain(const GpsjViewDef& query) const;

 private:
  const WarehouseSnapshot* snapshot_;
};

// Parses an ad-hoc query against a (rowless) schema catalog. Accepts
// either a bare SELECT (wrapped as CREATE VIEW __query AS …) or a full
// CREATE VIEW statement. The parsed definition doubles as the
// normalized cache key via GpsjViewDef::ToSqlString().
Result<GpsjViewDef> ParseServeQuery(const Catalog& catalog,
                                    std::string_view sql);

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_PLANNER_H_
