// Roll-up execution plans and their executors.
//
// The planner (planner.h) compiles an ad-hoc GPSJ query into one of two
// physical shapes, both evaluated purely over a ServedView's immutable
// snapshot state:
//
//  * SummaryRollupPlan — a single pass over the view's *augmented
//    summary*: filter on retained group-by outputs, re-group on a
//    subset of the view's group-bys, and re-derive each query aggregate
//    distributively (COUNT via Σ __shadow, SUM via Σ __sum_*, AVG as
//    their ratio, MIN/MAX by folding the view's MIN/MAX outputs). This
//    is the read-side dual of smart duplicate compression: the hidden
//    columns exist precisely so coarser aggregates stay derivable.
//
//  * AuxJoinPlan — join the auxiliary views {V} ∪ X along the join
//    graph and aggregate with duplicate accounting (f(a · cnt0), paper
//    Sec. 3.2): every joined row stands for `cnt0` base tuples when the
//    root is compressed, for exactly one otherwise.
//
// Both executors reproduce GroupAggregate's aggregation semantics
// exactly (NULL-on-empty SUM/AVG/MIN/MAX, scalar queries yielding one
// row over empty input, sorted output), so a roll-up answer matches
// direct GPSJ evaluation of the query over the base tables.

#ifndef MINDETAIL_SERVE_ROLLUP_H_
#define MINDETAIL_SERVE_ROLLUP_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/mem_budget.h"
#include "common/result.h"
#include "gpsj/view_def.h"
#include "relational/ops.h"
#include "relational/predicate.h"
#include "serve/snapshot.h"

namespace mindetail {

// Per-execution resource governors, threaded from Warehouse::Query
// through the planner into the executors. Default-constructed = no
// limits. `cancel` is polled between scan chunks (kCancelled /
// kDeadlineExceeded abort the execution); `budget` is charged before
// join intermediates materialize (kResourceExhausted refuses the query
// instead of OOMing).
struct ExecContext {
  const CancellationToken* cancel = nullptr;
  MemoryBudget* budget = nullptr;
};

// --- Summary roll-up ------------------------------------------------------

// An extra query selection, pre-bound to a column of the augmented
// summary (one of the view's retained group-by outputs).
struct SummaryFilter {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

// One query output derived from the augmented summary.
struct SummaryOutput {
  enum class Kind {
    kGroup,   // Copy the group-by value from `source`.
    kCount,   // Σ __shadow — COUNT(*) and non-DISTINCT COUNT(a).
    kSum,     // Σ over `source` (a __sum_* running-sum column).
    kAvg,     // Σ `source` / Σ __shadow.
    kMin,     // Fold MIN over `source` (a view MIN output), NULLs skipped.
    kMax,     // Fold MAX over `source` (a view MAX output), NULLs skipped.
    kCopy,    // Copy the view's own aggregate output `source` verbatim
              // (query groups exactly like the view: one row per group).
  };

  Kind kind = Kind::kGroup;
  size_t source = 0;       // Column index in the augmented summary
                           // (unused for kCount).
  // The query aggregate this output answers — needed by kCopy to
  // finalize over empty input (COUNT family → 0, everything else NULL,
  // matching scalar-aggregate semantics).
  AggFn fn = AggFn::kCountStar;
  ValueType type = ValueType::kNull;  // Output column type.
};

// Executed over ServedView::augmented. `group_columns` lists the
// augmented-summary columns forming the query's group key, in the same
// order the plan's kGroup outputs appear.
struct SummaryRollupPlan {
  size_t shadow_column = 0;  // __shadow's index in the augmented schema.
  std::vector<size_t> group_columns;
  std::vector<SummaryFilter> filters;
  std::vector<SummaryOutput> outputs;  // In query output order.
};

Result<Table> ExecuteSummaryRollup(const ServedView& view,
                                   const GpsjViewDef& query,
                                   const SummaryRollupPlan& plan,
                                   const ExecContext& ctx = ExecContext{});

// --- Auxiliary-view join --------------------------------------------------

// An extra query selection over the joined auxiliary table, by
// qualified column name ("time.month").
struct AuxFilter {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

// One query output computed from the joined auxiliary table.
struct AuxOutput {
  enum class Kind {
    kGroup,     // Copy the group-by value from `column`.
    kCount,     // Σ weight — COUNT(*) and non-DISTINCT COUNT(a).
    kSum,       // Σ `column`, scaled by the weight when `scale`.
    kAvg,       // kSum mass divided by Σ weight.
    kMinMax,    // Fold MIN/MAX (per `fn`) over `column`, NULLs skipped;
                // idempotent over duplicates, never scaled.
    kDistinct,  // Collect `column`'s distinct values, finalize per `fn`
                // (COUNT → set size, SUM → Σ set, AVG → their ratio).
  };

  Kind kind = Kind::kGroup;
  std::string column;  // Qualified source column (empty for kCount).
  bool scale = false;  // kSum/kAvg: multiply by the weight first — the
                       // source is a plain column, not a per-group sum.
  AggFn fn = AggFn::kCountStar;        // kMinMax / kDistinct finalizer.
  ValueType type = ValueType::kNull;   // Output column type.
};

// Executed by joining ServedView::aux along the derivation's join
// graph. `group_columns` is ordered like the plan's kGroup outputs.
struct AuxJoinPlan {
  // Tables to join, closed upward to the root (all non-eliminated).
  std::set<std::string> required;
  // The root's qualified cnt0 column, or empty when the root auxiliary
  // view is uncompressed (every joined row then weighs 1).
  std::string weight_column;
  std::vector<std::string> group_columns;
  std::vector<AuxFilter> filters;
  std::vector<AuxOutput> outputs;  // In query output order.
};

Result<Table> ExecuteAuxJoin(const ServedView& view,
                             const GpsjViewDef& query,
                             const AuxJoinPlan& plan,
                             const ExecContext& ctx = ExecContext{});

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_ROLLUP_H_
