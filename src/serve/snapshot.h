// Serving-layer snapshots: immutable, refcounted, batch-consistent
// images of a warehouse's materialized state.
//
// The warehouse is a single-writer / many-readers system. The writer
// (the maintenance commit path) publishes a new WarehouseSnapshot after
// every committed batch; readers grab the current snapshot once and
// then work entirely on immutable data — no locks are held while a
// query runs, and maintenance is never blocked by readers.
//
// Publishing is copy-on-write at batch boundaries: a new snapshot
// re-renders only the views the batch actually touched and shares every
// other view's tables (shared_ptr) with its predecessor. Readers
// therefore pay zero copies, and a snapshot stays valid (and
// internally consistent — all views at the same batch boundary) for as
// long as anyone holds it.

#ifndef MINDETAIL_SERVE_SNAPSHOT_H_
#define MINDETAIL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/derive.h"
#include "gpsj/view_def.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace mindetail {

// One view's complete serving state as of a snapshot. Everything is
// immutable and shared: snapshots that did not touch the view alias the
// same ServedView instance.
struct ServedView {
  // Warehouse sequence of the last committed batch that modified this
  // view (its registration sequence if never modified). The result
  // cache keys validity on this: a view untouched by a batch keeps its
  // version, so its cached query results stay valid across the batch.
  uint64_t version = 0;
  // The view definition and its Algorithm 3.2 derivation (copied at
  // publish time — engines can be swapped by RepairView, so snapshots
  // must own their metadata).
  std::shared_ptr<const GpsjViewDef> def;
  std::shared_ptr<const Derivation> derivation;
  // Rendered view contents: output columns, HAVING applied, sorted.
  std::shared_ptr<const Table> contents;
  // The augmented summary (HAVING ignored; __shadow and __sum_*
  // columns appended) — the roll-up rewriter's input.
  std::shared_ptr<const Table> augmented;
  // Non-eliminated auxiliary views, keyed by base table — the
  // fallback input when the summary alone cannot answer a query.
  std::map<std::string, std::shared_ptr<const Table>> aux;
};

// One promoted roll-up lattice node as of a snapshot: a coarser
// grouping of a parent view's augmented summary, materialized as its
// own mini summary table and maintained incrementally (serve/lattice.h).
// Immutable and shared exactly like ServedView.
struct LatticeNodeSnapshot {
  // Canonical node key: "<view>@<g1,g2,…>" over the parent's group-by
  // output names (sorted by output position; "<view>@" for the fully
  // aggregated node).
  std::string key;
  // The parent view this node rolls up from.
  std::string view;
  // Parent output positions forming the node's grouping, ascending.
  std::vector<size_t> grouping;
  // Parent version the node's contents correspond to. Bumped whenever
  // a committed batch touches the parent, so result-cache entries
  // answered from this node invalidate exactly like view-backed ones.
  uint64_t version = 0;
  // The mini summary: one column per grouping output (parent names and
  // types), then __shadow (Σ of the parent groups' shadow counts), then
  // one running-sum column per distinct non-DISTINCT SUM/AVG input of
  // the parent (named like the parent's __sum_* columns). Rows sorted.
  std::shared_ptr<const Table> table;
  // Per running-sum column (in table order, after __shadow): the
  // aggregate input attribute it sums — what the planner matches query
  // SUM/AVG aggregates against.
  std::vector<AttributeRef> sum_inputs;

  // Column index of __shadow in `table` (== grouping.size()).
  size_t ShadowColumn() const { return grouping.size(); }
};

// A consistent image of every registered view at one batch boundary.
struct WarehouseSnapshot {
  // Sequence of the last batch folded into this snapshot (0 = empty
  // warehouse / registration only). A follower publishes under the
  // leader's sequence, so the same version means the same data on every
  // replica — result-cache entries keyed on it are shareable.
  uint64_t version = 0;
  // Leader epoch the publishing warehouse was fenced at (0 before any
  // promotion). Readers can tell a deposed leader's final snapshots
  // from the new leader's by comparing epochs.
  uint64_t epoch = 0;
  // Monotonic-clock nanoseconds (common/cancellation.h) at which this
  // snapshot was published. Lets observers report snapshot lag — how
  // stale the serving cut is — without touching the writer (e.g. the
  // network front end's Prometheus `snapshot_age` gauge).
  int64_t publish_nanos = 0;
  // Rowless schema catalog of every referenced base table — what
  // ad-hoc queries are parsed and type-checked against.
  std::shared_ptr<const Catalog> schema_catalog;
  // View names in registration order.
  std::vector<std::string> order;
  std::map<std::string, std::shared_ptr<const ServedView>> views;
  // Promoted roll-up lattice nodes, by node key. Maintained alongside
  // the views at each publish (serve/lattice.h); empty when the lattice
  // is disabled.
  std::map<std::string, std::shared_ptr<const LatticeNodeSnapshot>> lattice;

  bool HasView(const std::string& name) const {
    return views.count(name) > 0;
  }
  // The view's serving state, or nullptr when not registered.
  const ServedView* Find(const std::string& name) const;
  // The lattice node's serving state, or nullptr when not promoted.
  const LatticeNodeSnapshot* FindLatticeNode(const std::string& key) const;
  // The version of a query-answer source — a view name or a lattice
  // node key — or nullopt when this snapshot no longer carries it. The
  // result cache validates entries through this, so answers computed
  // from a since-demoted or refreshed node are never served.
  std::optional<uint64_t> SourceVersion(const std::string& name) const;
  // The view's rendered contents — a shared handle, no copy.
  Result<std::shared_ptr<const Table>> View(const std::string& name) const;
};

// Hands out the current snapshot and accepts newly published ones.
// Current() is safe from any number of threads concurrently with one
// publisher; the mutex only guards the pointer swap, never a render or
// a query.
class SnapshotManager {
 public:
  SnapshotManager();

  // Never null: an empty warehouse serves an empty snapshot.
  std::shared_ptr<const WarehouseSnapshot> Current() const;

  void Publish(std::shared_ptr<const WarehouseSnapshot> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const WarehouseSnapshot> current_;
};

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_SNAPSHOT_H_
