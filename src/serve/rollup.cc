#include "serve/rollup.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/status.h"
#include "common/strings.h"
#include "core/reconstruct.h"
#include "relational/value.h"

namespace mindetail {

namespace {

// Output table shaped as the query's outputs: same column names, types
// as planned, NULLs allowed (aggregates over empty groups).
Table MakeResultTable(const GpsjViewDef& query,
                      const std::vector<ValueType>& types) {
  std::vector<Attribute> attrs;
  attrs.reserve(query.outputs().size());
  for (size_t i = 0; i < query.outputs().size(); ++i) {
    attrs.push_back(Attribute{query.outputs()[i].output_name, types[i]});
  }
  Table out(query.name(), Schema(std::move(attrs)));
  out.set_allow_null(true);
  return out;
}

// Skip-NULL MIN/MAX fold, mirroring GroupAggregate's AggState update.
void FoldExtreme(Value* current, const Value& v, bool is_min) {
  if (v.is_null()) return;
  if (current->is_null() ||
      (is_min ? v.Compare(*current) < 0 : v.Compare(*current) > 0)) {
    *current = v;
  }
}

using DistinctSet = std::unordered_set<Value, ValueHash, ValueEqual>;

// Scan-loop cancellation granularity: poll the token before the scan
// and every this-many rows, keeping the common (untripped) cost to one
// relaxed atomic load per chunk.
constexpr size_t kCancelCheckRows = 256;

// Finalizes a DISTINCT aggregate from its value set, mirroring
// FinalizeAggregate: COUNT = |set|, SUM = Σ set (NULL when empty),
// AVG = Σ set / |set| (NULL when empty).
Value FinalizeDistinct(AggFn fn, const DistinctSet& set) {
  if (fn == AggFn::kCount) {
    return Value(static_cast<int64_t>(set.size()));
  }
  Value total;
  for (const Value& v : set) total = AddValues(total, v);
  if (fn == AggFn::kSum) return total;
  // AVG.
  if (set.empty() || total.is_null()) return Value::Null();
  return Value(total.NumericAsDouble() / static_cast<double>(set.size()));
}

}  // namespace

// --- Summary roll-up ------------------------------------------------------

namespace {

struct SummaryGroup {
  int64_t shadow = 0;        // Σ __shadow — the group's base-row count.
  std::vector<Value> acc;    // Per output; meaning depends on its kind.
};

}  // namespace

Result<Table> ExecuteSummaryRollup(const ServedView& view,
                                   const GpsjViewDef& query,
                                   const SummaryRollupPlan& plan,
                                   const ExecContext& ctx) {
  if (view.augmented == nullptr) {
    return InternalError("served view has no augmented summary");
  }
  const Table& aug = *view.augmented;
  if (ctx.cancel != nullptr) MD_RETURN_IF_ERROR(ctx.cancel->Check());

  std::unordered_map<Tuple, SummaryGroup, TupleHash, TupleEqual> groups;
  size_t scanned = 0;
  for (const Tuple& row : aug.rows()) {
    if (ctx.cancel != nullptr && ++scanned % kCancelCheckRows == 0) {
      MD_RETURN_IF_ERROR(ctx.cancel->Check());
    }
    bool pass = true;
    for (const SummaryFilter& f : plan.filters) {
      if (!EvalCompare(f.op, row[f.column], f.constant)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    Tuple key;
    key.reserve(plan.group_columns.size());
    for (size_t c : plan.group_columns) key.push_back(row[c]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    SummaryGroup& g = it->second;
    if (inserted) g.acc.resize(plan.outputs.size());

    g.shadow += row[plan.shadow_column].AsInt64();
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
      const SummaryOutput& out = plan.outputs[i];
      switch (out.kind) {
        case SummaryOutput::Kind::kGroup:
        case SummaryOutput::Kind::kCount:
          break;  // Key slot / Σ shadow — nothing per-output to fold.
        case SummaryOutput::Kind::kSum:
        case SummaryOutput::Kind::kAvg:
          g.acc[i] = AddValues(g.acc[i], row[out.source]);
          break;
        case SummaryOutput::Kind::kMin:
          FoldExtreme(&g.acc[i], row[out.source], /*is_min=*/true);
          break;
        case SummaryOutput::Kind::kMax:
          FoldExtreme(&g.acc[i], row[out.source], /*is_min=*/false);
          break;
        case SummaryOutput::Kind::kCopy:
          // Query groups exactly like the view: one summary row per
          // group, so the value carries over verbatim.
          g.acc[i] = row[out.source];
          break;
      }
    }
  }

  std::vector<ValueType> types;
  types.reserve(plan.outputs.size());
  for (const SummaryOutput& out : plan.outputs) types.push_back(out.type);
  Table result = MakeResultTable(query, types);

  auto emit = [&](const Tuple& key, const SummaryGroup& g) -> Status {
    Tuple row;
    row.reserve(plan.outputs.size());
    size_t key_slot = 0;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
      const SummaryOutput& out = plan.outputs[i];
      switch (out.kind) {
        case SummaryOutput::Kind::kGroup:
          row.push_back(key[key_slot++]);
          break;
        case SummaryOutput::Kind::kCount:
          row.push_back(Value(g.shadow));
          break;
        case SummaryOutput::Kind::kAvg:
          if (g.shadow > 0 && !g.acc[i].is_null()) {
            row.push_back(Value(g.acc[i].NumericAsDouble() /
                                static_cast<double>(g.shadow)));
          } else {
            row.push_back(Value::Null());
          }
          break;
        case SummaryOutput::Kind::kCopy:
          // Over empty input (the scalar phantom row) a copied COUNT
          // must be 0, like the empty AggState it stands in for.
          if (g.shadow == 0 && g.acc[i].is_null() &&
              (out.fn == AggFn::kCount || out.fn == AggFn::kCountStar)) {
            row.push_back(Value(static_cast<int64_t>(0)));
            break;
          }
          row.push_back(g.acc[i]);
          break;
        case SummaryOutput::Kind::kSum:
        case SummaryOutput::Kind::kMin:
        case SummaryOutput::Kind::kMax:
          row.push_back(g.acc[i]);
          break;
      }
    }
    if (!query.PassesHaving(row)) return Status::Ok();
    return result.Insert(std::move(row));
  };

  for (const auto& [key, g] : groups) {
    MD_RETURN_IF_ERROR(emit(key, g));
  }
  if (plan.group_columns.empty() && groups.empty()) {
    // SQL scalar-aggregate semantics: one row of empty-input aggregates
    // (COUNT = 0, everything else NULL).
    SummaryGroup empty;
    empty.acc.resize(plan.outputs.size());
    MD_RETURN_IF_ERROR(emit(Tuple{}, empty));
  }
  SortRows(&result);
  return result;
}

// --- Auxiliary-view join --------------------------------------------------

namespace {

struct AuxGroup {
  int64_t weight = 0;        // Σ weight — the group's base-row count.
  std::vector<Value> acc;    // Per output; meaning depends on its kind.
  std::vector<DistinctSet> sets;  // Per output; kDistinct only.
};

}  // namespace

Result<Table> ExecuteAuxJoin(const ServedView& view,
                             const GpsjViewDef& query,
                             const AuxJoinPlan& plan,
                             const ExecContext& ctx) {
  if (view.derivation == nullptr) {
    return InternalError("served view has no derivation");
  }
  std::map<std::string, const Table*> tables;
  uint64_t input_bytes = 0;
  for (const std::string& name : plan.required) {
    auto it = view.aux.find(name);
    if (it == view.aux.end()) {
      return InternalError(
          StrCat("auxiliary view for '", name, "' not in snapshot"));
    }
    tables[name] = it->second.get();
    input_bytes += it->second->ActualSizeBytes();
  }
  if (ctx.cancel != nullptr) MD_RETURN_IF_ERROR(ctx.cancel->Check());
  // Pre-flight refusal: the join materializes at least on the order of
  // its inputs, so reserve that much before computing anything, then
  // top the reservation up to the intermediate's real footprint once
  // it exists. Either charge failing refuses the query un-OOMed.
  MemoryReservation preflight;
  if (ctx.budget != nullptr) {
    MD_RETURN_IF_ERROR(ctx.budget->TryCharge(input_bytes));
    preflight = MemoryReservation(ctx.budget, input_bytes);
  }
  MD_ASSIGN_OR_RETURN(
      Table joined,
      JoinAuxAlongGraph(*view.derivation, tables, plan.required));
  MemoryReservation intermediate;
  if (ctx.budget != nullptr) {
    const uint64_t joined_bytes = joined.ActualSizeBytes();
    const uint64_t extra =
        joined_bytes > input_bytes ? joined_bytes - input_bytes : 0;
    MD_RETURN_IF_ERROR(ctx.budget->TryCharge(extra));
    intermediate = MemoryReservation(ctx.budget, extra);
  }
  const Schema& schema = joined.schema();

  // Resolve every plan column once against the joined schema.
  auto resolve = [&](const std::string& column) -> Result<size_t> {
    std::optional<size_t> idx = schema.IndexOf(column);
    if (!idx.has_value()) {
      return InternalError(
          StrCat("column '", column, "' missing from joined auxiliaries"));
    }
    return *idx;
  };
  std::vector<std::pair<size_t, const AuxFilter*>> filters;
  for (const AuxFilter& f : plan.filters) {
    MD_ASSIGN_OR_RETURN(size_t idx, resolve(f.column));
    filters.emplace_back(idx, &f);
  }
  std::vector<size_t> group_idx;
  for (const std::string& column : plan.group_columns) {
    MD_ASSIGN_OR_RETURN(size_t idx, resolve(column));
    group_idx.push_back(idx);
  }
  std::vector<size_t> source_idx(plan.outputs.size(), 0);
  for (size_t i = 0; i < plan.outputs.size(); ++i) {
    const AuxOutput& out = plan.outputs[i];
    if (out.kind == AuxOutput::Kind::kGroup ||
        out.kind == AuxOutput::Kind::kSum ||
        out.kind == AuxOutput::Kind::kAvg ||
        out.kind == AuxOutput::Kind::kMinMax ||
        out.kind == AuxOutput::Kind::kDistinct) {
      MD_ASSIGN_OR_RETURN(source_idx[i], resolve(out.column));
    }
  }
  std::optional<size_t> weight_idx;
  if (!plan.weight_column.empty()) {
    MD_ASSIGN_OR_RETURN(size_t idx, resolve(plan.weight_column));
    weight_idx = idx;
  }

  std::unordered_map<Tuple, AuxGroup, TupleHash, TupleEqual> groups;
  size_t scanned = 0;
  for (const Tuple& row : joined.rows()) {
    if (ctx.cancel != nullptr && ++scanned % kCancelCheckRows == 0) {
      MD_RETURN_IF_ERROR(ctx.cancel->Check());
    }
    bool pass = true;
    for (const auto& [idx, f] : filters) {
      if (!EvalCompare(f->op, row[idx], f->constant)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    // Duplicate accounting: a compressed root row stands for cnt0 base
    // tuples (paper Sec. 3.2); an uncompressed one for exactly 1.
    const int64_t w =
        weight_idx.has_value() ? row[*weight_idx].AsInt64() : 1;

    Tuple key;
    key.reserve(group_idx.size());
    for (size_t c : group_idx) key.push_back(row[c]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    AuxGroup& g = it->second;
    if (inserted) {
      g.acc.resize(plan.outputs.size());
      g.sets.resize(plan.outputs.size());
    }

    g.weight += w;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
      const AuxOutput& out = plan.outputs[i];
      switch (out.kind) {
        case AuxOutput::Kind::kGroup:
        case AuxOutput::Kind::kCount:
          break;  // Key slot / Σ weight — nothing per-output to fold.
        case AuxOutput::Kind::kSum:
        case AuxOutput::Kind::kAvg: {
          const Value& v = row[source_idx[i]];
          g.acc[i] =
              AddValues(g.acc[i], out.scale ? ScaleValue(v, w) : v);
          break;
        }
        case AuxOutput::Kind::kMinMax:
          // Idempotent over duplicates — no weighting either way.
          FoldExtreme(&g.acc[i], row[source_idx[i]],
                      out.fn == AggFn::kMin);
          break;
        case AuxOutput::Kind::kDistinct:
          g.sets[i].insert(row[source_idx[i]]);
          break;
      }
    }
  }

  std::vector<ValueType> types;
  types.reserve(plan.outputs.size());
  for (const AuxOutput& out : plan.outputs) types.push_back(out.type);
  Table result = MakeResultTable(query, types);

  auto emit = [&](const Tuple& key, const AuxGroup& g) -> Status {
    Tuple row;
    row.reserve(plan.outputs.size());
    size_t key_slot = 0;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
      const AuxOutput& out = plan.outputs[i];
      switch (out.kind) {
        case AuxOutput::Kind::kGroup:
          row.push_back(key[key_slot++]);
          break;
        case AuxOutput::Kind::kCount:
          row.push_back(Value(g.weight));
          break;
        case AuxOutput::Kind::kAvg:
          if (g.weight > 0 && !g.acc[i].is_null()) {
            row.push_back(Value(g.acc[i].NumericAsDouble() /
                                static_cast<double>(g.weight)));
          } else {
            row.push_back(Value::Null());
          }
          break;
        case AuxOutput::Kind::kSum:
        case AuxOutput::Kind::kMinMax:
          row.push_back(g.acc[i]);
          break;
        case AuxOutput::Kind::kDistinct:
          row.push_back(FinalizeDistinct(out.fn, g.sets[i]));
          break;
      }
    }
    if (!query.PassesHaving(row)) return Status::Ok();
    return result.Insert(std::move(row));
  };

  for (const auto& [key, g] : groups) {
    MD_RETURN_IF_ERROR(emit(key, g));
  }
  if (group_idx.empty() && groups.empty()) {
    AuxGroup empty;
    empty.acc.resize(plan.outputs.size());
    empty.sets.resize(plan.outputs.size());
    MD_RETURN_IF_ERROR(emit(Tuple{}, empty));
  }
  SortRows(&result);
  return result;
}

}  // namespace mindetail
