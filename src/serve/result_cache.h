// An invalidation-aware LRU cache of query results.
//
// Entries are keyed by the normalized query text (parse → canonical SQL
// rendering, so whitespace/case/alias variants share an entry) and
// guarded by the version of the view the result was computed from: a
// lookup only hits when the current snapshot still carries that view at
// that version. The maintenance commit path calls InvalidateViews with
// the views a batch actually touched, so queries answered from views a
// batch did not touch stay cached across the batch.
//
// Internally synchronized — any number of reader threads may hit the
// cache while the single writer invalidates.

#ifndef MINDETAIL_SERVE_RESULT_CACHE_H_
#define MINDETAIL_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "relational/table.h"
#include "serve/snapshot.h"

namespace mindetail {

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  // Entries dropped by InvalidateViews
                                 // or a stale-version lookup.
    uint64_t evictions = 0;       // Entries dropped by entry-count LRU
                                  // pressure.
    uint64_t byte_evictions = 0;  // Entries dropped by the byte cap —
                                  // counted separately from LRU-entry
                                  // evictions.
    uint64_t bytes_used = 0;      // Current resident result bytes.
    uint64_t bytes_evicted = 0;   // Lifetime bytes dropped by the byte
                                  // cap.
  };

  // capacity 0 disables the cache (every lookup misses, inserts drop).
  // A non-zero `capacity_bytes` additionally bounds the total resident
  // result bytes (Table::ActualSizeBytes): inserting past it evicts
  // from the LRU tail until the new entry fits. A single result larger
  // than the whole byte cap is not cached at all.
  explicit ResultCache(size_t capacity, uint64_t capacity_bytes = 0)
      : capacity_(capacity), capacity_bytes_(capacity_bytes) {}

  // The cached result for `key`, valid against `snapshot` — or null.
  // A hit refreshes the entry's LRU position; an entry whose source
  // view changed (or vanished) since insertion is dropped on sight.
  std::shared_ptr<const Table> Lookup(const std::string& key,
                                      const WarehouseSnapshot& snapshot);

  // True iff Lookup would hit, without touching LRU order or stats
  // (Explain support).
  bool Contains(const std::string& key,
                const WarehouseSnapshot& snapshot) const;

  // Remembers `result` for `key`, answered from `source_view` — a view
  // name or a lattice node key — at `view_version`. Evicts the
  // least-recently-used entry on overflow.
  void Insert(const std::string& key, const std::string& source_view,
              uint64_t view_version, std::shared_ptr<const Table> result);

  // Drops every entry answered from one of `views` — view names and/or
  // lattice node keys (the commit path's invalidation hook).
  void InvalidateViews(const std::set<std::string>& views);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string view;
    uint64_t view_version = 0;
    std::shared_ptr<const Table> result;
    uint64_t bytes = 0;  // result->ActualSizeBytes() at insertion.
  };

  // True when `entry` is still valid against `snapshot`.
  static bool Valid(const Entry& entry, const WarehouseSnapshot& snapshot);

  // Unlinks the entry at `it` and returns its bytes to the accounting.
  // Caller holds mu_ and bumps the appropriate drop counter.
  void EraseLocked(std::list<Entry>::iterator it);

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t capacity_bytes_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_RESULT_CACHE_H_
