// An invalidation-aware LRU cache of query results.
//
// Entries are keyed by the normalized query text (parse → canonical SQL
// rendering, so whitespace/case/alias variants share an entry) and
// guarded by the version of the view the result was computed from: a
// lookup only hits when the current snapshot still carries that view at
// that version. The maintenance commit path calls InvalidateViews with
// the views a batch actually touched, so queries answered from views a
// batch did not touch stay cached across the batch.
//
// Internally synchronized — any number of reader threads may hit the
// cache while the single writer invalidates.

#ifndef MINDETAIL_SERVE_RESULT_CACHE_H_
#define MINDETAIL_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "relational/table.h"
#include "serve/snapshot.h"

namespace mindetail {

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  // Entries dropped by InvalidateViews
                                 // or a stale-version lookup.
    uint64_t evictions = 0;      // Entries dropped by LRU pressure.
  };

  // capacity 0 disables the cache (every lookup misses, inserts drop).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  // The cached result for `key`, valid against `snapshot` — or null.
  // A hit refreshes the entry's LRU position; an entry whose source
  // view changed (or vanished) since insertion is dropped on sight.
  std::shared_ptr<const Table> Lookup(const std::string& key,
                                      const WarehouseSnapshot& snapshot);

  // True iff Lookup would hit, without touching LRU order or stats
  // (Explain support).
  bool Contains(const std::string& key,
                const WarehouseSnapshot& snapshot) const;

  // Remembers `result` for `key`, answered from `source_view` — a view
  // name or a lattice node key — at `view_version`. Evicts the
  // least-recently-used entry on overflow.
  void Insert(const std::string& key, const std::string& source_view,
              uint64_t view_version, std::shared_ptr<const Table> result);

  // Drops every entry answered from one of `views` — view names and/or
  // lattice node keys (the commit path's invalidation hook).
  void InvalidateViews(const std::set<std::string>& views);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string view;
    uint64_t view_version = 0;
    std::shared_ptr<const Table> result;
  };

  // True when `entry` is still valid against `snapshot`.
  static bool Valid(const Entry& entry, const WarehouseSnapshot& snapshot);

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_RESULT_CACHE_H_
