#include "serve/lattice.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "gpsj/aggregate.h"
#include "io/log_format.h"
#include "relational/ops.h"
#include "relational/value.h"

namespace mindetail {

namespace {

// Observed-grouping heat is bounded: the coldest candidates fall off
// once the table outgrows this, so an adversarial query stream cannot
// grow lattice bookkeeping without bound.
constexpr size_t kMaxCandidates = 256;

constexpr uint32_t kLatticeStateVersion = 1;

// How a node's mini summary maps onto its parent's augmented summary.
struct NodeSpec {
  std::vector<size_t> grouping;   // Parent output positions, ascending.
  std::vector<std::string> names;  // Their output names, same order.
  size_t shadow_col = 0;           // __shadow in the parent augmented.
  std::vector<size_t> sum_cols;    // Parent running-sum columns.
  std::vector<AttributeRef> sum_inputs;
  Schema node_schema{std::vector<Attribute>{}};
};

// Resolves a grouping (by parent group-by output name) against the
// parent view: canonical positions, the parent columns to fold, and the
// node table's schema. Rejects groupings that are not strictly coarser
// than the parent's own.
Result<NodeSpec> ResolveNodeSpec(
    const ServedView& parent,
    const std::vector<std::string>& group_outputs) {
  if (parent.def == nullptr || parent.augmented == nullptr) {
    return InternalError("parent view has no served summary");
  }
  const GpsjViewDef& view = *parent.def;
  const Schema& aug = parent.augmented->schema();

  NodeSpec spec;
  size_t parent_groups = 0;
  for (size_t i = 0; i < view.outputs().size(); ++i) {
    const OutputItem& item = view.outputs()[i];
    if (item.kind != OutputItem::Kind::kGroupBy) continue;
    ++parent_groups;
    if (std::find(group_outputs.begin(), group_outputs.end(),
                  item.output_name) != group_outputs.end()) {
      spec.grouping.push_back(i);  // Ascending: outputs are in order.
      spec.names.push_back(item.output_name);
    }
  }
  if (spec.names.size() != group_outputs.size()) {
    return InvalidArgumentError(
        StrCat("grouping names a column that is not a group-by output "
               "of view '", view.name(), "'"));
  }
  if (spec.grouping.size() >= parent_groups) {
    return InvalidArgumentError(
        StrCat("grouping is not strictly coarser than view '",
               view.name(), "'"));
  }

  std::optional<size_t> shadow = aug.IndexOf(kShadowColumn);
  if (!shadow.has_value()) {
    return InternalError("augmented summary lacks __shadow");
  }
  spec.shadow_col = *shadow;

  std::vector<Attribute> attrs;
  for (size_t i : spec.grouping) {
    attrs.push_back(Attribute{view.outputs()[i].output_name,
                              aug.attribute(i).type});
  }
  attrs.push_back(Attribute{kShadowColumn, ValueType::kInt64});
  // One running sum per distinct non-DISTINCT SUM/AVG input.
  for (const OutputItem& item : view.outputs()) {
    if (item.kind != OutputItem::Kind::kAggregate) continue;
    const AggregateSpec& agg = item.agg;
    if (agg.distinct || (agg.fn != AggFn::kSum && agg.fn != AggFn::kAvg)) {
      continue;
    }
    if (std::find(spec.sum_inputs.begin(), spec.sum_inputs.end(),
                  agg.input) != spec.sum_inputs.end()) {
      continue;
    }
    const std::string column = ShadowSumColumn(item.output_name);
    std::optional<size_t> src = aug.IndexOf(column);
    if (!src.has_value()) {
      return InternalError(
          StrCat("augmented summary lacks ", column));
    }
    spec.sum_inputs.push_back(agg.input);
    spec.sum_cols.push_back(*src);
    attrs.push_back(Attribute{column, aug.attribute(*src).type});
  }
  spec.node_schema = Schema(std::move(attrs));
  return spec;
}

// Mutable node contents during a build or fold: coarse key → __shadow
// and the running sums.
struct NodeAccumulator {
  int64_t shadow = 0;
  std::vector<Value> sums;
};
using NodeMap =
    std::unordered_map<Tuple, NodeAccumulator, TupleHash, TupleEqual>;

void FoldRow(NodeMap* acc, const NodeSpec& spec, const Tuple& row,
             bool negate) {
  Tuple key;
  key.reserve(spec.grouping.size());
  for (size_t c : spec.grouping) key.push_back(row[c]);
  auto [it, inserted] = acc->try_emplace(std::move(key));
  NodeAccumulator& group = it->second;
  if (inserted) group.sums.resize(spec.sum_cols.size());
  const int64_t shadow = row[spec.shadow_col].AsInt64();
  group.shadow += negate ? -shadow : shadow;
  for (size_t j = 0; j < spec.sum_cols.size(); ++j) {
    const Value& v = row[spec.sum_cols[j]];
    group.sums[j] = AddValues(group.sums[j], negate ? NegateValue(v) : v);
  }
  // The shadow count is exact integer arithmetic: 0 means the coarse
  // group has no base rows left, so it leaves the node (any double
  // residue in its sums is the usual incremental rounding, not data).
  if (group.shadow == 0) acc->erase(it);
}

Result<LatticeNodeSnapshot> RenderNode(const std::string& view,
                                       const NodeSpec& spec,
                                       NodeMap&& acc) {
  LatticeNodeSnapshot node;
  node.key = LatticeNodeKey(view, spec.names);
  node.view = view;
  node.grouping = spec.grouping;
  node.sum_inputs = spec.sum_inputs;
  Table table(node.key, spec.node_schema);
  table.set_allow_null(true);
  for (auto& [key, group] : acc) {
    Tuple row = key;
    row.push_back(Value(group.shadow));
    for (Value& v : group.sums) row.push_back(std::move(v));
    MD_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  SortRows(&table);
  node.table = std::make_shared<const Table>(std::move(table));
  return node;
}

NodeMap LoadNodeMap(const LatticeNodeSnapshot& node) {
  NodeMap acc;
  const size_t shadow_col = node.ShadowColumn();
  const size_t num_sums = node.table->schema().size() - shadow_col - 1;
  for (const Tuple& row : node.table->rows()) {
    Tuple key(row.begin(), row.begin() + shadow_col);
    NodeAccumulator group;
    group.shadow = row[shadow_col].AsInt64();
    group.sums.assign(row.begin() + shadow_col + 1,
                      row.begin() + shadow_col + 1 + num_sums);
    acc.emplace(std::move(key), std::move(group));
  }
  return acc;
}

// Whole-row ordering identical to SortRows' (relational/ops.cc). The
// engine renders every augmented summary sorted under it, so two
// renders of the same view can be set-differenced with one linear
// merge walk instead of a hash join on the group key.
int CompareRows(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

// The augmented rows only in `before` (to fold out) and only in
// `after` (to fold in). Group keys are unique within each summary, so
// a changed group appears as one removed row plus one added row, and
// the two deltas compose at any coarser key — no group pairing needed.
// Computed once per touched view and shared by all of its nodes.
struct SummaryDiff {
  std::vector<const Tuple*> removed;
  std::vector<const Tuple*> added;
};

SummaryDiff DiffAugmented(const Table& before, const Table& after) {
  SummaryDiff diff;
  const std::vector<Tuple>& old_rows = before.rows();
  const std::vector<Tuple>& new_rows = after.rows();
  size_t i = 0;
  size_t j = 0;
  while (i < old_rows.size() && j < new_rows.size()) {
    const int c = CompareRows(old_rows[i], new_rows[j]);
    if (c == 0) {
      ++i;
      ++j;
    } else if (c < 0) {
      diff.removed.push_back(&old_rows[i++]);
    } else {
      diff.added.push_back(&new_rows[j++]);
    }
  }
  for (; i < old_rows.size(); ++i) diff.removed.push_back(&old_rows[i]);
  for (; j < new_rows.size(); ++j) diff.added.push_back(&new_rows[j]);
  return diff;
}

// The batch's effect on the parent summary, folded upward: each
// changed augmented row lands on the node's coarse key — removed rows
// negate, added rows add.
Result<LatticeNodeSnapshot> FoldLatticeNode(const LatticeNodeSnapshot& node,
                                            const ServedView& next_parent,
                                            const SummaryDiff& diff) {
  MD_ASSIGN_OR_RETURN(NodeSpec spec,
                      ResolveNodeSpec(next_parent, [&] {
                        std::vector<std::string> names;
                        for (size_t i : node.grouping) {
                          names.push_back(
                              next_parent.def->outputs()[i].output_name);
                        }
                        return names;
                      }()));

  NodeMap acc = LoadNodeMap(node);
  for (const Tuple* row : diff.removed) {
    FoldRow(&acc, spec, *row, /*negate=*/true);
  }
  for (const Tuple* row : diff.added) {
    FoldRow(&acc, spec, *row, /*negate=*/false);
  }
  return RenderNode(node.view, spec, std::move(acc));
}

}  // namespace

std::string LatticeNodeKey(const std::string& view,
                           const std::vector<std::string>& group_outputs) {
  std::string key = StrCat(view, "@");
  for (size_t i = 0; i < group_outputs.size(); ++i) {
    if (i > 0) key += ",";
    key += group_outputs[i];
  }
  return key;
}

std::optional<std::vector<std::string>> LatticeCandidateGrouping(
    const ServedView& served, const SummaryRollupPlan& plan) {
  if (served.def == nullptr) return std::nullopt;
  // Only pure COUNT/SUM/AVG roll-ups benefit: kCopy (query groups like
  // the view) is not coarser, and kMin/kMax need per-group state a node
  // folds away.
  std::set<size_t> positions;
  for (const SummaryOutput& out : plan.outputs) {
    switch (out.kind) {
      case SummaryOutput::Kind::kGroup:
        positions.insert(out.source);
        break;
      case SummaryOutput::Kind::kCount:
      case SummaryOutput::Kind::kSum:
      case SummaryOutput::Kind::kAvg:
        break;
      default:
        return std::nullopt;
    }
  }
  for (const SummaryFilter& f : plan.filters) positions.insert(f.column);
  size_t parent_groups = 0;
  for (const OutputItem& item : served.def->outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) ++parent_groups;
  }
  if (positions.size() >= parent_groups) return std::nullopt;
  std::vector<std::string> names;
  for (size_t pos : positions) {  // std::set: ascending == canonical.
    names.push_back(served.def->outputs()[pos].output_name);
  }
  return names;
}

Result<LatticeNodeSnapshot> BuildLatticeNode(
    const ServedView& parent, const std::string& view,
    const std::vector<std::string>& group_outputs) {
  MD_ASSIGN_OR_RETURN(NodeSpec spec,
                      ResolveNodeSpec(parent, group_outputs));
  NodeMap acc;
  for (const Tuple& row : parent.augmented->rows()) {
    FoldRow(&acc, spec, row, /*negate=*/false);
  }
  MD_ASSIGN_OR_RETURN(LatticeNodeSnapshot node,
                      RenderNode(view, spec, std::move(acc)));
  node.version = parent.version;
  return node;
}

RollupLattice::RollupLattice(LatticeOptions options)
    : options_(std::move(options)) {}

void RollupLattice::RecordUse(const std::string& view,
                              const std::vector<std::string>& group_outputs) {
  const std::string key = LatticeNodeKey(view, group_outputs);
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(key) > 0) return;  // Already promoted.
  auto [it, inserted] = candidates_.try_emplace(key);
  Candidate& candidate = it->second;
  if (inserted) {
    candidate.view = view;
    candidate.group_outputs = group_outputs;
  }
  ++candidate.hits;
  candidate.last_used = ++tick_;
  if (candidates_.size() > kMaxCandidates) {
    auto coldest = candidates_.begin();
    for (auto c = candidates_.begin(); c != candidates_.end(); ++c) {
      if (c->second.last_used < coldest->second.last_used) coldest = c;
    }
    candidates_.erase(coldest);
  }
}

void RollupLattice::RecordHit(const std::string& node_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node_key);
  if (it == nodes_.end()) return;
  ++it->second.hits;
  it->second.last_used = ++tick_;
  ++stats_.hits;
}

size_t RollupLattice::TotalBytesLocked() const {
  size_t total = 0;
  for (const auto& [key, node] : nodes_) {
    if (node.snap != nullptr) total += node.snap->table->ActualSizeBytes();
  }
  return total;
}

std::set<std::string> RollupLattice::Maintain(
    const WarehouseSnapshot& prev, WarehouseSnapshot* next,
    const std::set<std::string>& touched,
    const std::map<std::string, std::string>* diff_keys) {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> invalidate = std::move(pending_invalidations_);
  pending_invalidations_.clear();

  // 1. Refresh every node against the freshly rendered views: fold the
  // batch's summary delta upward when the version chain is intact,
  // rebuild otherwise; drop nodes whose parent left the warehouse. The
  // sorted diff of old vs. new augmented rows is computed at most once
  // per view and shared by every node folding over it.
  std::map<std::string, SummaryDiff> diffs;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    Node& node = it->second;
    const ServedView* parent = next->Find(node.view);
    const bool stale =
        node.snap == nullptr ||
        (parent != nullptr && node.snap->version != parent->version);
    if (parent == nullptr) {
      invalidate.insert(it->first);
      ++stats_.demotions;
      it = nodes_.erase(it);
      continue;
    }
    if (touched.count(node.view) == 0 && !stale) {
      ++it;  // COW: the published node snapshot is reused as-is.
      continue;
    }
    const ServedView* prev_parent = prev.Find(node.view);
    Result<LatticeNodeSnapshot> refreshed = InternalError("unset");
    if (node.snap != nullptr && prev_parent != nullptr &&
        node.snap->version == prev_parent->version &&
        prev_parent->augmented != nullptr && parent->augmented != nullptr &&
        prev_parent->augmented->schema().size() ==
            parent->augmented->schema().size()) {
      // The diff map key is the view's equivalence class (its own name
      // unless the caller vouched for cross-view sharing) plus both
      // endpoint versions: identical classes at identical versions
      // hold byte-identical augmented pairs, so one diff serves all.
      std::string diff_class = node.view;
      if (diff_keys != nullptr) {
        auto dk = diff_keys->find(node.view);
        if (dk != diff_keys->end()) diff_class = dk->second;
      }
      const std::string diff_key =
          StrCat(diff_class, "@", prev_parent->version, ">",
                 parent->version);
      auto diff = diffs.find(diff_key);
      if (diff == diffs.end()) {
        diff = diffs
                   .emplace(diff_key,
                            DiffAugmented(*prev_parent->augmented,
                                          *parent->augmented))
                   .first;
        ++stats_.diffs_computed;
      } else {
        ++stats_.diffs_shared;
      }
      refreshed = FoldLatticeNode(*node.snap, *parent, diff->second);
      if (refreshed.ok()) ++stats_.folds;
    }
    if (!refreshed.ok()) {
      refreshed = BuildLatticeNode(*parent, node.view, node.group_outputs);
      if (refreshed.ok()) ++stats_.rebuilds;
    }
    if (!refreshed.ok()) {
      // The grouping no longer resolves (the view was re-registered
      // with a different shape): the node cannot be maintained.
      invalidate.insert(it->first);
      ++stats_.demotions;
      it = nodes_.erase(it);
      continue;
    }
    refreshed->version = parent->version;
    node.snap =
        std::make_shared<const LatticeNodeSnapshot>(std::move(*refreshed));
    invalidate.insert(it->first);
    ++it;
  }

  // 2. Promote hot candidates, hottest first. Each new node starts at
  // the current tick so budget pressure evicts older cold nodes, not
  // the promotion that caused it.
  std::vector<std::map<std::string, Candidate>::iterator> hot;
  for (auto it = candidates_.begin(); it != candidates_.end(); ++it) {
    if (it->second.hits >= options_.promote_hits) hot.push_back(it);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a->second.hits != b->second.hits
               ? a->second.hits > b->second.hits
               : a->first < b->first;
  });
  for (auto& it : hot) {
    const Candidate& candidate = it->second;
    const ServedView* parent = next->Find(candidate.view);
    if (parent == nullptr) {
      candidates_.erase(it);
      continue;
    }
    Result<LatticeNodeSnapshot> built =
        BuildLatticeNode(*parent, candidate.view, candidate.group_outputs);
    if (!built.ok()) {
      candidates_.erase(it);  // Never promotable; stop re-trying.
      continue;
    }
    built->version = parent->version;
    Node node;
    node.view = candidate.view;
    node.group_outputs = candidate.group_outputs;
    node.hits = 0;
    node.last_used = ++tick_;
    node.snap =
        std::make_shared<const LatticeNodeSnapshot>(std::move(*built));
    nodes_.emplace(it->first, std::move(node));
    ++stats_.promotions;
    candidates_.erase(it);
  }

  // 3. Enforce the budget: demote the least-recently-used node until
  // the directory fits.
  while (!nodes_.empty() && TotalBytesLocked() > options_.budget_bytes) {
    auto coldest = nodes_.begin();
    for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
      if (it->second.last_used < coldest->second.last_used) coldest = it;
    }
    invalidate.insert(coldest->first);
    ++stats_.demotions;
    nodes_.erase(coldest);
  }

  for (const auto& [key, node] : nodes_) {
    if (node.snap != nullptr) next->lattice.emplace(key, node.snap);
  }
  stats_.nodes = nodes_.size();
  stats_.bytes = TotalBytesLocked();
  return invalidate;
}

Status RollupLattice::ForcePromote(
    const WarehouseSnapshot& current, const std::string& view,
    const std::vector<std::string>& group_outputs) {
  const ServedView* parent = current.Find(view);
  if (parent == nullptr) {
    return NotFoundError(StrCat("view '", view, "' is not registered"));
  }
  MD_ASSIGN_OR_RETURN(LatticeNodeSnapshot built,
                      BuildLatticeNode(*parent, view, group_outputs));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = built.key;
  if (nodes_.count(key) > 0) {
    return AlreadyExistsError(
        StrCat("lattice node '", key, "' is already promoted"));
  }
  Node node;
  node.view = view;
  // Store the names in the node's canonical ordering, not the caller's.
  for (size_t i : built.grouping) {
    node.group_outputs.push_back(parent->def->outputs()[i].output_name);
  }
  node.last_used = ++tick_;
  node.snap = std::make_shared<const LatticeNodeSnapshot>(std::move(built));
  nodes_.emplace(key, std::move(node));
  candidates_.erase(key);
  ++stats_.promotions;
  return Status::Ok();
}

Status RollupLattice::Demote(const std::string& node_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node_key);
  if (it == nodes_.end()) {
    return NotFoundError(
        StrCat("lattice node '", node_key, "' is not promoted"));
  }
  nodes_.erase(it);
  pending_invalidations_.insert(node_key);
  ++stats_.demotions;
  return Status::Ok();
}

std::vector<LatticeNodeInfo> RollupLattice::Nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LatticeNodeInfo> out;
  for (const auto& [key, node] : nodes_) {
    LatticeNodeInfo info;
    info.key = key;
    info.view = node.view;
    info.group_outputs = node.group_outputs;
    info.hits = node.hits;
    info.last_used = node.last_used;
    if (node.snap != nullptr) {
      info.version = node.snap->version;
      info.rows = node.snap->table->NumRows();
      info.bytes = node.snap->table->ActualSizeBytes();
      info.materialized = true;
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<LatticeCandidateInfo> RollupLattice::Candidates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LatticeCandidateInfo> out;
  for (const auto& [key, candidate] : candidates_) {
    out.push_back(LatticeCandidateInfo{key, candidate.view,
                                       candidate.group_outputs,
                                       candidate.hits});
  }
  return out;
}

LatticeStats RollupLattice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatticeStats stats = stats_;
  stats.nodes = nodes_.size();
  stats.bytes = TotalBytesLocked();
  return stats;
}

std::string RollupLattice::SerializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  logfmt::PutU32(&out, kLatticeStateVersion);
  logfmt::PutU64(&out, tick_);
  auto put_grouping = [&](const std::string& view,
                          const std::vector<std::string>& names,
                          uint64_t hits, uint64_t last_used) {
    logfmt::PutString(&out, view);
    logfmt::PutU32(&out, static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) logfmt::PutString(&out, name);
    logfmt::PutU64(&out, hits);
    logfmt::PutU64(&out, last_used);
  };
  logfmt::PutU32(&out, static_cast<uint32_t>(nodes_.size()));
  for (const auto& [key, node] : nodes_) {
    put_grouping(node.view, node.group_outputs, node.hits, node.last_used);
  }
  logfmt::PutU32(&out, static_cast<uint32_t>(candidates_.size()));
  for (const auto& [key, candidate] : candidates_) {
    put_grouping(candidate.view, candidate.group_outputs, candidate.hits,
                 candidate.last_used);
  }
  return out;
}

Status RollupLattice::RestoreState(const std::string& payload) {
  logfmt::PayloadReader reader(payload.data(), payload.size());
  uint32_t version = 0;
  if (!reader.ReadU32(&version) || version != kLatticeStateVersion) {
    return InternalError("checkpoint lattice state has unknown version");
  }
  const auto truncated = [] {
    return InternalError("checkpoint lattice state is truncated");
  };
  uint64_t tick = 0;
  if (!reader.ReadU64(&tick)) return truncated();
  auto read_grouping = [&](std::string* view,
                           std::vector<std::string>* names, uint64_t* hits,
                           uint64_t* last_used) {
    if (!reader.ReadString(view)) return false;
    uint32_t n = 0;
    if (!reader.ReadU32(&n)) return false;
    names->clear();
    for (uint32_t i = 0; i < n; ++i) {
      std::string name;
      if (!reader.ReadString(&name)) return false;
      names->push_back(std::move(name));
    }
    return reader.ReadU64(hits) && reader.ReadU64(last_used);
  };

  std::map<std::string, Node> nodes;
  std::map<std::string, Candidate> candidates;
  uint32_t num_nodes = 0;
  if (!reader.ReadU32(&num_nodes)) return truncated();
  for (uint32_t i = 0; i < num_nodes; ++i) {
    Node node;
    if (!read_grouping(&node.view, &node.group_outputs, &node.hits,
                       &node.last_used)) {
      return truncated();
    }
    // snap stays null: the recovery publish rebuilds the table from the
    // recovered augmented summary.
    nodes.emplace(LatticeNodeKey(node.view, node.group_outputs),
                  std::move(node));
  }
  uint32_t num_candidates = 0;
  if (!reader.ReadU32(&num_candidates)) return truncated();
  for (uint32_t i = 0; i < num_candidates; ++i) {
    Candidate candidate;
    if (!read_grouping(&candidate.view, &candidate.group_outputs,
                       &candidate.hits, &candidate.last_used)) {
      return truncated();
    }
    candidates.emplace(
        LatticeNodeKey(candidate.view, candidate.group_outputs),
        std::move(candidate));
  }
  if (!reader.AtEnd()) {
    return InternalError("checkpoint lattice state has trailing bytes");
  }

  std::lock_guard<std::mutex> lock(mu_);
  tick_ = tick;
  nodes_ = std::move(nodes);
  candidates_ = std::move(candidates);
  return Status::Ok();
}

}  // namespace mindetail
