#include "serve/planner.h"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/bytes.h"
#include "common/strings.h"
#include "core/reconstruct.h"
#include "gpsj/aggregate.h"

namespace mindetail {

namespace {

// An extra query selection V does not already apply, with its table.
struct ExtraCondition {
  std::string table;
  Condition condition;
};

bool SameCondition(const Condition& a, const Condition& b) {
  return a.attr == b.attr && a.op == b.op &&
         a.constant.Compare(b.constant) == 0;
}

// Both strategies require the query to range over exactly the view's
// join expression: same table set, same join edges.
Status CheckSameShape(const GpsjViewDef& query, const GpsjViewDef& view) {
  const std::set<std::string> qt(query.tables().begin(),
                                 query.tables().end());
  const std::set<std::string> vt(view.tables().begin(),
                                 view.tables().end());
  if (qt != vt) {
    return FailedPreconditionError(
        "query and view reference different table sets");
  }
  auto contains = [](const std::vector<JoinEdge>& edges,
                     const JoinEdge& e) {
    for (const JoinEdge& other : edges) {
      if (other == e) return true;
    }
    return false;
  };
  for (const JoinEdge& e : query.joins()) {
    if (!contains(view.joins(), e)) {
      return FailedPreconditionError(
          StrCat("view lacks the query join ", e.ToString()));
    }
  }
  for (const JoinEdge& e : view.joins()) {
    if (!contains(query.joins(), e)) {
      return FailedPreconditionError(
          StrCat("query lacks the view join ", e.ToString()));
    }
  }
  return Status::Ok();
}

// V's local selections must be a subset of Q's — V's contents would
// otherwise be too narrow. Returns Q's *extra* selections, which the
// chosen strategy must still apply.
Result<std::vector<ExtraCondition>> ExtraConditions(
    const GpsjViewDef& query, const GpsjViewDef& view) {
  std::vector<ExtraCondition> extras;
  for (const std::string& table : query.tables()) {
    const std::vector<Condition>& qc =
        query.LocalConditions(table).conditions();
    const std::vector<Condition>& vc =
        view.LocalConditions(table).conditions();
    std::vector<bool> used(qc.size(), false);
    for (const Condition& c : vc) {
      bool matched = false;
      for (size_t j = 0; j < qc.size(); ++j) {
        if (!used[j] && SameCondition(qc[j], c)) {
          used[j] = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return FailedPreconditionError(
            StrCat("view filters ", table, " by ", c.ToString(),
                   ", which the query does not"));
      }
    }
    for (size_t j = 0; j < qc.size(); ++j) {
      if (!used[j]) extras.push_back(ExtraCondition{table, qc[j]});
    }
  }
  return extras;
}

// --- Summary roll-up planning ---------------------------------------------

Result<SummaryRollupPlan> TrySummaryPlan(
    const ServedView& served, const GpsjViewDef& query,
    const std::vector<ExtraCondition>& extras) {
  const GpsjViewDef& view = *served.def;
  if (served.augmented == nullptr) {
    return InternalError("view has no augmented summary");
  }
  const Schema& aug = served.augmented->schema();

  // The view's group-by outputs, by attribute. Output position ==
  // column index: the augmented schema starts with the render schema,
  // which lists outputs in output order.
  std::map<AttributeRef, size_t> retained;
  for (size_t i = 0; i < view.outputs().size(); ++i) {
    const OutputItem& item = view.outputs()[i];
    if (item.kind == OutputItem::Kind::kGroupBy) {
      retained[item.attr] = i;
    }
  }

  SummaryRollupPlan plan;
  std::optional<size_t> shadow = aug.IndexOf(kShadowColumn);
  if (!shadow.has_value()) {
    return InternalError("augmented summary lacks __shadow");
  }
  plan.shadow_column = *shadow;

  // Extra query selections must land on retained group-by outputs —
  // the summary's rows are otherwise too coarse to filter.
  for (const ExtraCondition& extra : extras) {
    const AttributeRef ref{extra.table, extra.condition.attr};
    auto it = retained.find(ref);
    if (it == retained.end()) {
      return FailedPreconditionError(
          StrCat("selection on ", ref.ToString(),
                 ", which is not a group-by output of the view"));
    }
    plan.filters.push_back(SummaryFilter{it->second, extra.condition.op,
                                         extra.condition.constant});
  }

  // Q's group-bys must be a subset of V's (roll-up only coarsens).
  std::set<AttributeRef> query_groups;
  for (const OutputItem& item : query.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      if (retained.find(item.attr) == retained.end()) {
        return FailedPreconditionError(
            StrCat("groups by ", item.attr.ToString(),
                   ", which the view does not retain"));
      }
      query_groups.insert(item.attr);
    }
  }
  std::set<AttributeRef> view_groups;
  for (const auto& [ref, idx] : retained) view_groups.insert(ref);
  const bool same_grouping = query_groups == view_groups;

  // A view aggregate output matching `pred`, or -1.
  auto find_view_agg = [&](auto pred) -> int {
    for (size_t i = 0; i < view.outputs().size(); ++i) {
      const OutputItem& item = view.outputs()[i];
      if (item.kind == OutputItem::Kind::kAggregate && pred(item.agg)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  for (const OutputItem& item : query.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      const size_t src = retained.at(item.attr);
      plan.group_columns.push_back(src);
      plan.outputs.push_back(SummaryOutput{SummaryOutput::Kind::kGroup,
                                           src, AggFn::kCountStar,
                                           aug.attribute(src).type});
      continue;
    }
    const AggregateSpec& spec = item.agg;
    if (same_grouping) {
      // One summary row per query group: any aggregate V materializes
      // — DISTINCT included — carries over verbatim.
      const int pos = find_view_agg([&](const AggregateSpec& v) {
        return v.fn == spec.fn && v.distinct == spec.distinct &&
               (spec.fn == AggFn::kCountStar || v.input == spec.input);
      });
      if (pos >= 0) {
        plan.outputs.push_back(
            SummaryOutput{SummaryOutput::Kind::kCopy,
                          static_cast<size_t>(pos), spec.fn,
                          aug.attribute(pos).type});
        continue;
      }
    }
    if (spec.distinct) {
      // DISTINCT is not distributive: value sets cannot be merged
      // across view groups (paper Sec. 3.1).
      return FailedPreconditionError(
          StrCat(spec.ToString(),
                 " is not distributive over the view's groups"));
    }
    switch (spec.fn) {
      case AggFn::kCountStar:
      case AggFn::kCount:
        // Base tables are NULL-free, so COUNT(a) == COUNT(*) == Σ of
        // the shadow counts.
        plan.outputs.push_back(SummaryOutput{SummaryOutput::Kind::kCount,
                                             0, spec.fn,
                                             ValueType::kInt64});
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        const int pos = find_view_agg([&](const AggregateSpec& v) {
          return (v.fn == AggFn::kSum || v.fn == AggFn::kAvg) &&
                 !v.distinct && v.input == spec.input;
        });
        if (pos < 0) {
          return FailedPreconditionError(
              StrCat("the summary carries no running sum over ",
                     spec.input.ToString()));
        }
        std::optional<size_t> src = aug.IndexOf(
            ShadowSumColumn(view.outputs()[pos].output_name));
        if (!src.has_value()) {
          return InternalError(
              StrCat("augmented summary lacks the running sum backing ",
                     view.outputs()[pos].output_name));
        }
        plan.outputs.push_back(SummaryOutput{
            spec.fn == AggFn::kSum ? SummaryOutput::Kind::kSum
                                   : SummaryOutput::Kind::kAvg,
            *src, spec.fn,
            spec.fn == AggFn::kSum ? aug.attribute(*src).type
                                   : ValueType::kDouble});
        break;
      }
      case AggFn::kMin:
      case AggFn::kMax: {
        // MIN/MAX are idempotent, so V's output folds distributively
        // (and a DISTINCT flag on V's output is semantically inert).
        const int pos = find_view_agg([&](const AggregateSpec& v) {
          return v.fn == spec.fn && v.input == spec.input;
        });
        if (pos < 0) {
          return FailedPreconditionError(
              StrCat("the view has no ", AggFnName(spec.fn),
                     " output over ", spec.input.ToString()));
        }
        plan.outputs.push_back(SummaryOutput{
            spec.fn == AggFn::kMin ? SummaryOutput::Kind::kMin
                                   : SummaryOutput::Kind::kMax,
            static_cast<size_t>(pos), spec.fn,
            aug.attribute(pos).type});
        break;
      }
    }
  }
  return plan;
}

// --- Lattice-node planning ------------------------------------------------

// A lattice node is a coarser augmented summary of its parent view, so
// the plan is a SummaryRollupPlan bound to the node's own columns: the
// grouping columns come first, then __shadow, then the running sums.
// Nodes carry no MIN/MAX or DISTINCT state — those queries fall
// through to the parent's full summary.
Result<SummaryRollupPlan> TryLatticeNodePlan(
    const LatticeNodeSnapshot& node, const GpsjViewDef& view,
    const GpsjViewDef& query, const std::vector<ExtraCondition>& extras) {
  if (node.table == nullptr) {
    return InternalError("lattice node has no materialized table");
  }
  const Schema& schema = node.table->schema();

  // Node column per retained parent group-by attribute.
  std::map<AttributeRef, size_t> retained;
  for (size_t j = 0; j < node.grouping.size(); ++j) {
    retained[view.outputs()[node.grouping[j]].attr] = j;
  }

  SummaryRollupPlan plan;
  plan.shadow_column = node.ShadowColumn();
  for (const ExtraCondition& extra : extras) {
    const AttributeRef ref{extra.table, extra.condition.attr};
    auto it = retained.find(ref);
    if (it == retained.end()) {
      return FailedPreconditionError(
          StrCat("selection on ", ref.ToString(),
                 ", which the node does not retain"));
    }
    plan.filters.push_back(SummaryFilter{it->second, extra.condition.op,
                                         extra.condition.constant});
  }

  for (const OutputItem& item : query.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      auto it = retained.find(item.attr);
      if (it == retained.end()) {
        return FailedPreconditionError(
            StrCat("groups by ", item.attr.ToString(),
                   ", which the node does not retain"));
      }
      plan.group_columns.push_back(it->second);
      plan.outputs.push_back(SummaryOutput{SummaryOutput::Kind::kGroup,
                                           it->second, AggFn::kCountStar,
                                           schema.attribute(it->second).type});
      continue;
    }
    const AggregateSpec& spec = item.agg;
    if (spec.distinct) {
      return FailedPreconditionError(
          StrCat(spec.ToString(), " is not derivable from a lattice node"));
    }
    switch (spec.fn) {
      case AggFn::kCountStar:
      case AggFn::kCount:
        plan.outputs.push_back(SummaryOutput{SummaryOutput::Kind::kCount,
                                             0, spec.fn,
                                             ValueType::kInt64});
        break;
      case AggFn::kSum:
      case AggFn::kAvg: {
        int pos = -1;
        for (size_t j = 0; j < node.sum_inputs.size(); ++j) {
          if (node.sum_inputs[j] == spec.input) {
            pos = static_cast<int>(j);
            break;
          }
        }
        if (pos < 0) {
          return FailedPreconditionError(
              StrCat("the node carries no running sum over ",
                     spec.input.ToString()));
        }
        const size_t src = node.ShadowColumn() + 1 + pos;
        plan.outputs.push_back(SummaryOutput{
            spec.fn == AggFn::kSum ? SummaryOutput::Kind::kSum
                                   : SummaryOutput::Kind::kAvg,
            src, spec.fn,
            spec.fn == AggFn::kSum ? schema.attribute(src).type
                                   : ValueType::kDouble});
        break;
      }
      case AggFn::kMin:
      case AggFn::kMax:
        return FailedPreconditionError(
            StrCat("lattice nodes fold away ", AggFnName(spec.fn),
                   " state"));
    }
  }
  return plan;
}

// --- Auxiliary-view join planning -----------------------------------------

Result<AuxJoinPlan> TryAuxPlan(const ServedView& served,
                               const GpsjViewDef& query,
                               const std::vector<ExtraCondition>& extras,
                               const Catalog& catalog) {
  if (served.derivation == nullptr) {
    return InternalError("view has no derivation");
  }
  const Derivation& d = *served.derivation;
  if (d.IsEliminated(d.root())) {
    return FailedPreconditionError(
        "the root auxiliary view was eliminated; the materialized view "
        "is the only copy of its data");
  }

  AuxJoinPlan plan;
  std::set<std::string> required = {d.root()};

  // `ref` must survive as a plain column of its auxiliary view.
  auto need_plain = [&](const AttributeRef& ref) -> Status {
    if (d.IsEliminated(ref.table)) {
      return FailedPreconditionError(
          StrCat("the auxiliary view of '", ref.table,
                 "' was eliminated"));
    }
    if (!d.aux_for(ref.table).schema.Contains(ref.attr)) {
      return FailedPreconditionError(
          StrCat(ref.ToString(), " is not retained in ",
                 d.aux_for(ref.table).name));
    }
    required.insert(ref.table);
    return Status::Ok();
  };

  // Extra query selections run over the joined auxiliaries. A filter
  // on a root plain attribute is sound under compression: duplicates
  // are only merged when *all* retained attributes agree.
  for (const ExtraCondition& extra : extras) {
    const AttributeRef ref{extra.table, extra.condition.attr};
    MD_RETURN_IF_ERROR(need_plain(ref));
    plan.filters.push_back(AuxFilter{ref.ToString(), extra.condition.op,
                                     extra.condition.constant});
  }

  for (const OutputItem& item : query.outputs()) {
    if (item.kind == OutputItem::Kind::kGroupBy) {
      MD_RETURN_IF_ERROR(need_plain(item.attr));
      MD_ASSIGN_OR_RETURN(ValueType type,
                          query.AttrType(catalog, item.attr));
      plan.group_columns.push_back(item.attr.ToString());
      plan.outputs.push_back(AuxOutput{AuxOutput::Kind::kGroup,
                                       item.attr.ToString(), false,
                                       AggFn::kCountStar, type});
      continue;
    }
    const AggregateSpec& spec = item.agg;
    if (spec.fn == AggFn::kCountStar ||
        (spec.fn == AggFn::kCount && !spec.distinct)) {
      plan.outputs.push_back(AuxOutput{AuxOutput::Kind::kCount, "",
                                       false, spec.fn,
                                       ValueType::kInt64});
      continue;
    }
    MD_ASSIGN_OR_RETURN(ValueType input_type,
                        query.AttrType(catalog, spec.input));
    if (spec.fn == AggFn::kMin || spec.fn == AggFn::kMax) {
      // Duplicate-insensitive: a compressed per-group MIN/MAX column
      // (insert-only relaxation) serves directly, a plain column as-is.
      const std::string src = ResolveMinMaxSource(d, spec.input, spec.fn);
      if (src == spec.input.ToString()) {
        MD_RETURN_IF_ERROR(need_plain(spec.input));
      }
      plan.outputs.push_back(AuxOutput{AuxOutput::Kind::kMinMax, src,
                                       false, spec.fn, input_type});
      continue;
    }
    if (spec.distinct) {
      // The distinct value set needs the plain column; compression
      // preserves it (duplicates agree on every retained attribute).
      MD_RETURN_IF_ERROR(need_plain(spec.input));
      const ValueType type = spec.fn == AggFn::kCount ? ValueType::kInt64
                             : spec.fn == AggFn::kAvg ? ValueType::kDouble
                                                      : input_type;
      plan.outputs.push_back(AuxOutput{AuxOutput::Kind::kDistinct,
                                       spec.input.ToString(), false,
                                       spec.fn, type});
      continue;
    }
    // Non-distinct SUM / AVG: per-group sum column when the root
    // compressed the attribute, otherwise the plain column scaled by
    // cnt0 — f(a · cnt0), paper Sec. 3.2.
    const bool compressed_sum =
        spec.input.table == d.root() &&
        d.aux_for(d.root()).plan.SumColumnIndex(spec.input.attr) >= 0;
    if (!compressed_sum) {
      MD_RETURN_IF_ERROR(need_plain(spec.input));
    }
    const SumSource source = ResolveSumSource(d, spec.input);
    plan.outputs.push_back(AuxOutput{
        spec.fn == AggFn::kSum ? AuxOutput::Kind::kSum
                               : AuxOutput::Kind::kAvg,
        source.column, source.needs_scaling, spec.fn,
        spec.fn == AggFn::kSum ? input_type : ValueType::kDouble});
  }

  // The join must stay connected up to the root, and every table on
  // the path must still be materialized.
  required = CloseUpward(d.graph(), std::move(required));
  for (const std::string& table : required) {
    if (d.IsEliminated(table)) {
      return FailedPreconditionError(
          StrCat("join-path table '", table,
                 "' has an eliminated auxiliary view"));
    }
  }
  plan.required = std::move(required);
  plan.weight_column = RootCountColumn(d);
  return plan;
}

}  // namespace

Result<QueryPlan> QueryPlanner::Plan(const GpsjViewDef& query) const {
  std::vector<RejectedCandidate> rejected;
  std::vector<RejectedCandidate> lattice_rejected;
  for (const std::string& name : snapshot_->order) {
    const ServedView* served = snapshot_->Find(name);
    if (served == nullptr || served->def == nullptr) continue;

    Status shape = CheckSameShape(query, *served->def);
    if (!shape.ok()) {
      rejected.push_back(RejectedCandidate{name, shape.message()});
      continue;
    }
    Result<std::vector<ExtraCondition>> extras =
        ExtraConditions(query, *served->def);
    if (!extras.ok()) {
      rejected.push_back(
          RejectedCandidate{name, extras.status().message()});
      continue;
    }

    // Prefer the finest covering lattice node: the same answer as the
    // view's summary roll-up, derived from strictly fewer rows.
    const LatticeNodeSnapshot* best_node = nullptr;
    SummaryRollupPlan best_node_plan;
    for (const auto& [key, node] : snapshot_->lattice) {
      if (node->view != name) continue;
      Result<SummaryRollupPlan> node_plan =
          TryLatticeNodePlan(*node, *served->def, query, *extras);
      if (!node_plan.ok()) {
        lattice_rejected.push_back(
            RejectedCandidate{key, node_plan.status().message()});
        continue;
      }
      if (best_node == nullptr ||
          node->table->NumRows() < best_node->table->NumRows()) {
        best_node = node.get();
        best_node_plan = std::move(*node_plan);
      }
    }
    if (best_node != nullptr) {
      QueryPlan plan;
      plan.view = name;
      plan.strategy = QueryPlan::Strategy::kLatticeRollup;
      plan.summary = std::move(best_node_plan);
      plan.lattice_node = best_node->key;
      plan.rejected = std::move(rejected);
      plan.lattice_rejected = std::move(lattice_rejected);
      return plan;
    }

    Result<SummaryRollupPlan> summary =
        TrySummaryPlan(*served, query, *extras);
    if (summary.ok()) {
      QueryPlan plan;
      plan.view = name;
      plan.strategy = QueryPlan::Strategy::kSummaryRollup;
      plan.summary = std::move(*summary);
      plan.rejected = std::move(rejected);
      plan.lattice_rejected = std::move(lattice_rejected);
      return plan;
    }
    Result<AuxJoinPlan> aux =
        TryAuxPlan(*served, query, *extras, *snapshot_->schema_catalog);
    if (aux.ok()) {
      QueryPlan plan;
      plan.view = name;
      plan.strategy = QueryPlan::Strategy::kAuxJoin;
      plan.aux = std::move(*aux);
      plan.rejected = std::move(rejected);
      plan.lattice_rejected = std::move(lattice_rejected);
      return plan;
    }
    rejected.push_back(RejectedCandidate{
        name, StrCat("summary roll-up: ", summary.status().message(),
                     "; auxiliary join: ", aux.status().message())});
  }

  std::string message = "no materialized view can answer the query";
  for (const RejectedCandidate& r : rejected) {
    message = StrCat(message, "\n  ", r.view, ": ", r.reason);
  }
  if (rejected.empty()) {
    message = StrCat(message, " (no views are registered)");
  }
  return NotFoundError(std::move(message));
}

Result<Table> QueryPlanner::Execute(const QueryPlan& plan,
                                    const GpsjViewDef& query,
                                    const ExecContext& ctx) const {
  if (plan.strategy == QueryPlan::Strategy::kLatticeRollup) {
    const LatticeNodeSnapshot* node =
        snapshot_->FindLatticeNode(plan.lattice_node);
    if (node == nullptr) {
      return NotFoundError(StrCat("lattice node '", plan.lattice_node,
                                  "' is not in the snapshot"));
    }
    // The node table is itself an augmented summary (coarse groups,
    // __shadow, running sums), so the summary executor runs unchanged
    // over a synthetic served view wrapping it.
    ServedView synthetic;
    synthetic.augmented = node->table;
    return ExecuteSummaryRollup(synthetic, query, plan.summary, ctx);
  }
  const ServedView* served = snapshot_->Find(plan.view);
  if (served == nullptr) {
    return NotFoundError(
        StrCat("view '", plan.view, "' is not in the snapshot"));
  }
  if (plan.strategy == QueryPlan::Strategy::kSummaryRollup) {
    return ExecuteSummaryRollup(*served, query, plan.summary, ctx);
  }
  return ExecuteAuxJoin(*served, query, plan.aux, ctx);
}

const char* QueryExplanation::StrategyName() const {
  QueryPlan plan;
  plan.strategy = strategy;
  return plan.StrategyName();
}

std::string QueryExplanation::ToString() const {
  std::string out = StrCat("query: ", query_sql, "\n");
  if (answerable) {
    out = StrCat(out, "answer: view '", view, "' via ", StrategyName());
    if (strategy == QueryPlan::Strategy::kLatticeRollup) {
      out = StrCat(out, " (node '", lattice_node, "', ", lattice_node_rows,
                   " rows)");
    }
    out += "\n";
    for (const RejectedCandidate& r : rejected) {
      out = StrCat(out, "rejected: ", r.view, " — ", r.reason, "\n");
    }
    for (const RejectedCandidate& r : lattice_rejected) {
      out = StrCat(out, "lattice miss: ", r.view, " — ", r.reason, "\n");
    }
  } else {
    out = StrCat(out, "unanswerable: ", unanswerable_reason, "\n");
  }
  if (has_cache) {
    out = StrCat(out, "result cache: ", cache_hit ? "hit" : "miss", " (",
                 cache_entries, "/", cache_capacity, " entries)\n");
  }
  if (has_lattice) {
    out = StrCat(out, "lattice: ", lattice.nodes, " node(s), ",
                 FormatBytes(lattice.bytes), " of ",
                 lattice_budget_bytes == SIZE_MAX
                     ? std::string("unbounded")
                     : FormatBytes(lattice_budget_bytes),
                 " budget, ", lattice.hits, " hit(s)\n");
  }
  if (has_governor) {
    out = StrCat(out, "governor: deadline ",
                 deadline_ms > 0 ? StrCat(deadline_ms, " ms")
                                 : std::string("none"),
                 ", memory budget ",
                 memory_budget_bytes > 0 ? FormatBytes(memory_budget_bytes)
                                         : std::string("none"),
                 "\n");
    if (!governor_rejection.empty()) {
      out = StrCat(out, "governor rejection: ", governor_rejection, "\n");
    }
  }
  return out;
}

QueryExplanation QueryPlanner::Explain(const GpsjViewDef& query) const {
  QueryExplanation explanation;
  explanation.query_sql = query.ToSqlString();
  Result<QueryPlan> plan = Plan(query);
  if (plan.ok()) {
    explanation.answerable = true;
    explanation.view = plan->view;
    explanation.strategy = plan->strategy;
    if (plan->strategy == QueryPlan::Strategy::kLatticeRollup) {
      explanation.lattice_node = plan->lattice_node;
      const LatticeNodeSnapshot* node =
          snapshot_->FindLatticeNode(plan->lattice_node);
      explanation.lattice_node_rows =
          node != nullptr ? node->table->NumRows() : 0;
    }
    explanation.rejected = std::move(plan->rejected);
    explanation.lattice_rejected = std::move(plan->lattice_rejected);
  } else {
    explanation.unanswerable_reason = plan.status().message();
  }
  return explanation;
}

Result<GpsjViewDef> ParseServeQuery(const Catalog& catalog,
                                    std::string_view sql) {
  const size_t begin = sql.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) {
    return InvalidArgumentError("empty query");
  }
  const size_t end = sql.find_last_not_of(" \t\r\n;");
  std::string text(sql.substr(begin, end - begin + 1));

  // A bare SELECT is wrapped as an anonymous view definition; the
  // canonical rendering of the parsed definition doubles as the result
  // cache key, so spelling variants of one query share an entry.
  std::string lowered = text.substr(0, 6);
  for (char& c : lowered) c = static_cast<char>(std::tolower(c));
  if (lowered == "select") {
    text = StrCat("CREATE VIEW __query AS ", text);
  }
  return ParseGpsjView(text, catalog);
}

}  // namespace mindetail
