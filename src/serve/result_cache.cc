#include "serve/result_cache.h"

#include <utility>

namespace mindetail {

bool ResultCache::Valid(const Entry& entry,
                        const WarehouseSnapshot& snapshot) {
  // The source may be a view or a lattice node; either way the entry
  // is only served while the snapshot still carries it at the version
  // the answer was computed from.
  const std::optional<uint64_t> version = snapshot.SourceVersion(entry.view);
  return version.has_value() && *version == entry.view_version;
}

std::shared_ptr<const Table> ResultCache::Lookup(
    const std::string& key, const WarehouseSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (!Valid(*it->second, snapshot)) {
    // Belt and braces: the commit path invalidates eagerly, but an
    // entry inserted by a reader racing a commit may postdate the
    // invalidation sweep. The version guard catches it here.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->result;
}

bool ResultCache::Contains(const std::string& key,
                           const WarehouseSnapshot& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() && Valid(*it->second, snapshot);
}

void ResultCache::Insert(const std::string& key,
                         const std::string& source_view,
                         uint64_t view_version,
                         std::shared_ptr<const Table> result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a re-computation after invalidation).
    it->second->view = source_view;
    it->second->view_version = view_version;
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, source_view, view_version, std::move(result)});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::InvalidateViews(const std::set<std::string>& views) {
  if (views.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (views.count(it->view) > 0) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mindetail
