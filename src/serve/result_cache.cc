#include "serve/result_cache.h"

#include <utility>

namespace mindetail {

bool ResultCache::Valid(const Entry& entry,
                        const WarehouseSnapshot& snapshot) {
  // The source may be a view or a lattice node; either way the entry
  // is only served while the snapshot still carries it at the version
  // the answer was computed from.
  const std::optional<uint64_t> version = snapshot.SourceVersion(entry.view);
  return version.has_value() && *version == entry.view_version;
}

std::shared_ptr<const Table> ResultCache::Lookup(
    const std::string& key, const WarehouseSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (!Valid(*it->second, snapshot)) {
    // Belt and braces: the commit path invalidates eagerly, but an
    // entry inserted by a reader racing a commit may postdate the
    // invalidation sweep. The version guard catches it here.
    EraseLocked(it->second);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->result;
}

bool ResultCache::Contains(const std::string& key,
                           const WarehouseSnapshot& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() && Valid(*it->second, snapshot);
}

void ResultCache::Insert(const std::string& key,
                         const std::string& source_view,
                         uint64_t view_version,
                         std::shared_ptr<const Table> result) {
  if (capacity_ == 0) return;
  const uint64_t bytes = result != nullptr ? result->ActualSizeBytes() : 0;
  // A result that alone exceeds the byte cap would immediately evict
  // everything (itself included) — don't cache it at all.
  if (capacity_bytes_ > 0 && bytes > capacity_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a re-computation after invalidation).
    it->second->view = source_view;
    it->second->view_version = view_version;
    it->second->result = std::move(result);
    stats_.bytes_used += bytes - it->second->bytes;
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(
        Entry{key, source_view, view_version, std::move(result), bytes});
    index_.emplace(key, lru_.begin());
    stats_.bytes_used += bytes;
    ++stats_.insertions;
    while (lru_.size() > capacity_) {
      EraseLocked(std::prev(lru_.end()));
      ++stats_.evictions;
    }
  }
  // Byte-cap eviction runs on both paths — a refresh can grow an
  // entry past the cap just as well as a new insertion can.
  while (capacity_bytes_ > 0 && stats_.bytes_used > capacity_bytes_ &&
         lru_.size() > 1) {
    stats_.bytes_evicted += lru_.back().bytes;
    EraseLocked(std::prev(lru_.end()));
    ++stats_.byte_evictions;
  }
}

void ResultCache::InvalidateViews(const std::set<std::string>& views) {
  if (views.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (views.count(it->view) > 0) {
      auto doomed = it++;
      EraseLocked(doomed);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void ResultCache::EraseLocked(std::list<Entry>::iterator it) {
  stats_.bytes_used -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes_used = 0;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mindetail
