// Adaptive roll-up lattice: hot coarser groupings promoted to
// self-maintained mini-views.
//
// The paper's augmented summary answers any coarser GPSJ grouping by
// re-aggregating shadow counts and running sums at plan time (the
// summary roll-up in rollup.h). That very property also makes coarser
// roll-ups *self-maintainable by the same delta math*: a committed
// batch's effect on a coarse grouping is exactly the parent summary's
// per-group (Δshadow, Δsum…) folded upward — no base-table access.
//
// The lattice watches the read path for coarser groupings the planner
// keeps re-deriving (RecordUse), promotes the hot ones into
// materialized mini summaries (one table per node: the coarse group
// columns, __shadow, and the parent's running sums), maintains every
// node incrementally at each commit (Maintain, called from the
// warehouse's snapshot publish), and demotes cold nodes whenever the
// configured memory budget (WarehouseOptions::lattice_budget_bytes)
// overflows. Queries then plan against the finest covering node —
// strictly fewer rows than the parent summary, same answers.
//
// Fold-up delta math (per committed batch, per promoted node):
//   diff the parent's old and new augmented summaries on the parent's
//   full group key; for every changed parent group compute
//     Δshadow = shadow' − shadow,   Δsum_i = sum_i' + (−sum_i)
//   and add the deltas to the node row owning that group's coarse key.
//   A coarse group whose shadow reaches 0 is dropped. Integer state is
//   exact; doubles accumulate like every other incremental path here.
//   A node whose recorded parent version does not match the previous
//   snapshot (first publish after promotion, recovery) is rebuilt from
//   the new augmented summary in one pass instead.
//
// Thread safety: RecordUse/RecordHit may be called from any number of
// reader threads; Maintain and the manual promote/demote entry points
// run on the single writer. Everything is guarded by one mutex — the
// read-path critical sections only bump counters.

#ifndef MINDETAIL_SERVE_LATTICE_H_
#define MINDETAIL_SERVE_LATTICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/rollup.h"
#include "serve/snapshot.h"

namespace mindetail {

struct LatticeOptions {
  // Total bytes of promoted node tables (Table::ActualSizeBytes). 0
  // disables the lattice entirely; SIZE_MAX is an unbounded budget.
  size_t budget_bytes = 0;
  // Recorded uses of one coarser grouping before it is promoted.
  uint64_t promote_hits = 3;
};

// One promoted node, for the CLI and tests.
struct LatticeNodeInfo {
  std::string key;
  std::string view;
  std::vector<std::string> group_outputs;
  uint64_t version = 0;
  uint64_t hits = 0;       // Queries the node answered.
  uint64_t last_used = 0;  // Logical tick of the last use.
  size_t rows = 0;
  size_t bytes = 0;
  bool materialized = false;  // False only between restore and rebuild.
};

// One observed-but-unpromoted coarser grouping.
struct LatticeCandidateInfo {
  std::string key;
  std::string view;
  std::vector<std::string> group_outputs;
  uint64_t hits = 0;
};

struct LatticeStats {
  uint64_t promotions = 0;
  uint64_t demotions = 0;  // Budget evictions + manual demotes + drops.
  uint64_t folds = 0;      // Incremental delta fold-ups.
  uint64_t rebuilds = 0;   // Full rebuilds from the parent summary.
  uint64_t hits = 0;       // Queries answered from a node.
  uint64_t diffs_computed = 0;  // Sorted summary diffs computed in folds.
  uint64_t diffs_shared = 0;    // Fold-ups served by an existing diff.
  size_t nodes = 0;        // Currently promoted.
  size_t bytes = 0;        // Their total footprint.
};

// Canonical node key: "<view>@<g1,g2,…>". `group_outputs` must already
// be in canonical order (ascending parent output position).
std::string LatticeNodeKey(const std::string& view,
                           const std::vector<std::string>& group_outputs);

// The coarser grouping a successful summary roll-up exposes: the
// parent group-by output names the query consumed (its group-bys plus
// extra filters), in canonical order — or nullopt when the plan needs
// state a node does not carry (kCopy/kMin/kMax outputs) or is not
// strictly coarser than the parent's own grouping.
std::optional<std::vector<std::string>> LatticeCandidateGrouping(
    const ServedView& served, const SummaryRollupPlan& plan);

// Materializes one node from the parent's augmented summary: resolve
// `group_outputs` against the parent's group-by outputs (rejecting
// groupings that are not strictly coarser), then aggregate __shadow and
// every non-DISTINCT SUM/AVG running sum under the coarse key.
Result<LatticeNodeSnapshot> BuildLatticeNode(
    const ServedView& parent, const std::string& view,
    const std::vector<std::string>& group_outputs);

class RollupLattice {
 public:
  explicit RollupLattice(LatticeOptions options);

  // Read path: a summary roll-up re-derived `group_outputs` from
  // `view`'s full summary — promotion heat for that grouping.
  void RecordUse(const std::string& view,
                 const std::vector<std::string>& group_outputs);
  // Read path: a query was answered from the node.
  void RecordHit(const std::string& node_key);

  // Commit path, called while the warehouse publishes `next` (views
  // already rendered; `prev` is the snapshot being replaced): folds the
  // batch's summary deltas into every node whose parent is in
  // `touched` (rebuilding when the version chain is broken), applies
  // pending promotions and budget demotions, and attaches the resulting
  // node snapshots to next->lattice. Returns every node key whose
  // cached query results must be invalidated (refreshed, demoted, or
  // dropped nodes, plus any invalidations queued by Demote).
  //
  // `diff_keys` (optional, view name → equivalence-class key) widens
  // diff sharing across *sibling* views: nodes over views with the
  // same class key fold from one sorted summary diff instead of each
  // view diffing its own (byte-identical) augmented pair. The caller
  // owns the equivalence proof — the warehouse composes structural
  // signature + lineage (see maintenance/shared_plan.h); versions are
  // mixed in here, so a view whose render fell behind its siblings can
  // never pick up their diff. Views absent from the map fall back to
  // their name (no cross-view sharing).
  std::set<std::string> Maintain(
      const WarehouseSnapshot& prev, WarehouseSnapshot* next,
      const std::set<std::string>& touched,
      const std::map<std::string, std::string>* diff_keys = nullptr);

  // Manual promotion/demotion (CLI). Both only mutate lattice state;
  // the caller must publish a snapshot afterwards so readers see it.
  Status ForcePromote(const WarehouseSnapshot& current,
                      const std::string& view,
                      const std::vector<std::string>& group_outputs);
  Status Demote(const std::string& node_key);

  std::vector<LatticeNodeInfo> Nodes() const;
  std::vector<LatticeCandidateInfo> Candidates() const;
  LatticeStats stats() const;
  const LatticeOptions& options() const { return options_; }

  // Checkpoint sidecar payload: the promoted-node directory and
  // candidate heat (groupings, hit counts, the tick clock) — node
  // *tables* are never persisted; RestoreState marks every node for
  // rebuild and the recovery publish re-materializes them from the
  // recovered augmented summaries.
  std::string SerializeState() const;
  Status RestoreState(const std::string& payload);

 private:
  struct Node {
    std::string view;
    std::vector<std::string> group_outputs;
    // Null between RestoreState and the next Maintain.
    std::shared_ptr<const LatticeNodeSnapshot> snap;
    uint64_t hits = 0;
    uint64_t last_used = 0;
  };
  struct Candidate {
    std::string view;
    std::vector<std::string> group_outputs;
    uint64_t hits = 0;
    uint64_t last_used = 0;
  };

  size_t TotalBytesLocked() const;

  const LatticeOptions options_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  std::map<std::string, Node> nodes_;            // By node key.
  std::map<std::string, Candidate> candidates_;  // By node key.
  LatticeStats stats_;
  // Keys demoted/dropped since the last Maintain, awaiting cache
  // invalidation at the next publish.
  std::set<std::string> pending_invalidations_;
};

}  // namespace mindetail

#endif  // MINDETAIL_SERVE_LATTICE_H_
