// mindetail_cli — an interactive (and scriptable: pipe commands on
// stdin) shell over the library: load or generate a source catalog,
// register summary views in SQL, stream changes, and inspect the
// maintained views and their minimal detail data.
//
//   $ mindetail_cli
//   mindetail> demo
//   mindetail> sql CREATE VIEW monthly AS
//         ...>   SELECT time.month, SUM(sale.price) AS Revenue,
//         ...>          COUNT(*) AS Txns
//         ...>   FROM sale, time
//         ...>   WHERE time.year = 1997 AND sale.timeid = time.id
//         ...>   GROUP BY time.month;
//   mindetail> view monthly
//   mindetail> insert sale 999999,10,5,1,12.5
//   mindetail> view monthly

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "core/estimate.h"
#include "io/catalog_io.h"
#include "io/warehouse_io.h"
#include "maintenance/wal.h"
#include "maintenance/warehouse.h"
#include "net/http_client.h"
#include "net/server.h"
#include "replication/epoch.h"
#include "replication/follower.h"
#include "replication/health.h"
#include "workload/retail.h"

namespace mindetail {
namespace {

class Cli {
 public:
  int Run() {
    std::cout << "mindetail shell — 'help' lists commands\n";
    std::string line;
    while (Prompt("mindetail> "), std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  void Prompt(const char* text) {
    std::cout << text;
    std::cout.flush();
  }

  static std::vector<std::string> Tokens(const std::string& line) {
    std::istringstream in(line);
    std::vector<std::string> out;
    std::string token;
    while (in >> token) out.push_back(token);
    return out;
  }

  void Report(const Status& status) {
    if (!status.ok()) std::cout << "error: " << status << "\n";
  }

  // Returns false to quit.
  bool Dispatch(const std::string& line) {
    const std::vector<std::string> args = Tokens(line);
    if (args.empty()) return true;
    const std::string& cmd = args[0];
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "demo") {
      Demo();
    } else if (cmd == "load" && args.size() == 2) {
      Load(args[1]);
    } else if (cmd == "save" && args.size() == 2) {
      Report(SaveCatalog(source_, args[1]));
    } else if (cmd == "open" && args.size() == 2) {
      OpenDurable(args[1]);
    } else if (cmd == "checkpoint") {
      Checkpoint();
    } else if (cmd == "wal") {
      std::cout << warehouse_.DurabilityReport();
    } else if (cmd == "tables") {
      Tables();
    } else if (cmd == "show" && args.size() >= 2) {
      Show(args[1], args.size() > 2 ? std::stoul(args[2]) : 10);
    } else if (cmd == "sql") {
      Sql(line.substr(line.find("sql") + 3));
    } else if (cmd == "query") {
      Query(line.substr(line.find("query") + 5));
    } else if (cmd == "explain") {
      Explain(line.substr(line.find("explain") + 7));
    } else if (cmd == "views") {
      for (const std::string& name : warehouse_.ViewNames()) {
        std::cout << "  " << name << "\n";
      }
    } else if (cmd == "view" && args.size() == 2) {
      PrintView(args[1]);
    } else if (cmd == "derivation" && args.size() == 2) {
      Derivation(args[1]);
    } else if (cmd == "report") {
      std::cout << warehouse_.Report().ToString();
    } else if (cmd == "stats") {
      Stats();
    } else if (cmd == "estimate" && args.size() == 2) {
      Estimate(args[1]);
    } else if (cmd == "threads") {
      Threads(args);
    } else if (cmd == "deadline") {
      Deadline(args);
    } else if (cmd == "memory") {
      Memory(args);
    } else if (cmd == "failpoints") {
      ListFailpoints();
    } else if (cmd == "insert" && args.size() >= 3) {
      Insert(args[1], line);
    } else if (cmd == "erase" && args.size() == 3) {
      Erase(args[1], args[2]);
    } else if (cmd == "verify") {
      Verify();
    } else if (cmd == "quarantine") {
      Quarantine(args);
    } else if (cmd == "lattice") {
      Lattice(args);
    } else if (cmd == "replica") {
      Replica(args);
    } else if (cmd == "serve") {
      Serve(args);
    } else if (cmd == "servestop") {
      ServeStop();
    } else {
      std::cout << "unrecognized command; try 'help'\n";
    }
    return true;
  }

  void Help() {
    std::cout <<
        "  demo                 load a generated retail star schema\n"
        "  load <dir>           load a catalog saved with 'save'\n"
        "  save <dir>           persist the source catalog\n"
        "  open <dir>           open a durable warehouse there: recover\n"
        "                       views from checkpoint + WAL, then log\n"
        "                       every batch before applying it (the\n"
        "                       source catalog is separate — 'load' or\n"
        "                       'demo' it as usual)\n"
        "  checkpoint           persist warehouse state, truncate WAL\n"
        "  wal                  durability report (sequences, WAL size)\n"
        "  tables               list base tables\n"
        "  show <table> [n]     print the first n rows of a table\n"
        "  sql <CREATE VIEW …;> register a summary view (may span\n"
        "                       lines; end with ';')\n"
        "  query <SELECT …;>    answer an ad-hoc GPSJ query from the\n"
        "                       registered views — summary roll-up or\n"
        "                       auxiliary-view join, never the base\n"
        "                       tables (may span lines; end with ';')\n"
        "  explain <SELECT …;>  show which view would answer a query,\n"
        "                       why other views were rejected, and\n"
        "                       whether the result cache holds it\n"
        "  views                list registered views\n"
        "  view <name>          print a view's current contents\n"
        "  derivation <name>    print the Algorithm 3.2 report\n"
        "  report               warehouse detail inventory\n"
        "  stats                every subsystem's counters: maintenance\n"
        "                       (incl. shared delta-join reuse), ingest,\n"
        "                       result cache, lattice, recovery\n"
        "  estimate <name>      predicted vs actual auxiliary sizes\n"
        "  threads [n] [--views m]\n"
        "                       n: per-view maintenance threads for views\n"
        "                       registered afterwards; --views m: views\n"
        "                       maintained concurrently per batch (both\n"
        "                       default 1; results are identical at any\n"
        "                       thread count)\n"
        "  deadline [ms]        show or set the default query deadline\n"
        "                       (0 disables; an expired deadline returns\n"
        "                       DeadlineExceeded, nothing is cached)\n"
        "  memory [q=<bytes>] [cache=<bytes>] [inflight=<n>]\n"
        "                       show or set the overload knobs: per-query\n"
        "                       memory budget, result-cache byte cap,\n"
        "                       max in-flight ingest batches (0 = off)\n"
        "  failpoints           list registered failpoint sites and\n"
        "                       whether each is armed\n"
        "  insert <table> v,..  insert one row (routed to all views)\n"
        "  erase <table> <key>  delete one row by key\n"
        "  verify               integrity scrub: cross-check every view\n"
        "                       against its auxiliary views, flag\n"
        "                       degraded ones\n"
        "  quarantine [list]    list quarantined batches\n"
        "  quarantine retry <n> re-ingest quarantined batch n\n"
        "  quarantine drop <n>  discard quarantined batch n\n"
        "  lattice [list]       adaptive roll-up inventory: promoted\n"
        "                       nodes, candidates, budget use\n"
        "  lattice budget <n>   set the lattice byte budget (0 off,\n"
        "                       'unbounded' for no cap); resets heat\n"
        "  lattice promote <view> <g1,g2,..>\n"
        "                       materialize a coarser grouping now\n"
        "  lattice demote <node-key>\n"
        "                       drop a promoted node\n"
        "  replica open <leader-dir> <dir>\n"
        "                       attach a hot-standby follower at <dir>\n"
        "                       replaying the leader's shipped WAL\n"
        "                       ('view' then serves the replica's views)\n"
        "  replica catchup      ship + replay new leader frames\n"
        "  replica status       health report: state, applied sequence,\n"
        "                       snapshot lag vs the leader's durable state\n"
        "  replica promote      fail over: the follower becomes this\n"
        "                       shell's active writable warehouse (its\n"
        "                       bumped epoch fences the old leader)\n"
        "  serve [port]         start the HTTP front end on 127.0.0.1\n"
        "                       (port 0/omitted = ephemeral) — /ingest,\n"
        "                       /query, /explain, /report, /metrics,\n"
        "                       /changes (SSE); the shell stays live.\n"
        "                       'servestop' before open/demo/promote\n"
        "  serve selftest       start on an ephemeral port, self-issue\n"
        "                       requests over loopback, stop — a\n"
        "                       scriptable end-to-end smoke check\n"
        "  servestop            stop the HTTP front end\n"
        "  quit\n";
  }

  void Demo() {
    RetailParams params;
    params.days = 30;
    params.stores = 4;
    params.products = 100;
    params.products_sold_per_store_day = 12;
    params.transactions_per_product = 3;
    Result<RetailWarehouse> retail = GenerateRetail(params);
    if (!retail.ok()) {
      Report(retail.status());
      return;
    }
    source_ = std::move(retail->catalog);
    warehouse_ = Warehouse();
    std::cout << "demo retail schema loaded ("
              << (*source_.GetTable("sale"))->NumRows() << " sales)\n";
  }

  void Load(const std::string& dir) {
    Result<Catalog> loaded = LoadCatalog(dir);
    if (!loaded.ok()) {
      Report(loaded.status());
      return;
    }
    source_ = std::move(loaded).value();
    warehouse_ = Warehouse();
    std::cout << "catalog loaded from " << dir << "\n";
  }

  void OpenDurable(const std::string& dir) {
    Result<Warehouse> opened = Warehouse::Open(dir, warehouse_.options());
    if (!opened.ok()) {
      Report(opened.status());
      return;
    }
    warehouse_ = std::move(opened).value();
    const RecoveryStats& recovery = warehouse_.recovery_stats();
    std::cout << "durable warehouse at " << dir << ": checkpoint seq "
              << recovery.checkpoint_sequence << ", replayed "
              << recovery.replayed_batches << " WAL batch(es), last seq "
              << warehouse_.last_sequence() << "\n";
    for (const std::string& name : warehouse_.ViewNames()) {
      std::cout << "  recovered view " << name << "\n";
    }
  }

  void Checkpoint() {
    const Status status = warehouse_.Checkpoint();
    Report(status);
    if (status.ok()) {
      std::cout << "checkpoint written at seq "
                << warehouse_.last_sequence() << "\n";
    }
  }

  void Tables() {
    for (const std::string& name : source_.TableNames()) {
      const Table* table = *source_.GetTable(name);
      std::cout << "  " << name << " " << table->schema().ToString()
                << " — " << table->NumRows() << " rows\n";
    }
  }

  void Show(const std::string& table, size_t n) {
    Result<const Table*> t = source_.GetTable(table);
    if (!t.ok()) {
      Report(t.status());
      return;
    }
    std::cout << (*t)->ToString(n);
  }

  // Keeps reading lines until a ';' arrives (SQL may span lines).
  std::string ReadStatement(std::string statement) {
    while (statement.find(';') == std::string::npos) {
      Prompt("      ...> ");
      std::string more;
      if (!std::getline(std::cin, more)) break;
      statement += "\n" + more;
    }
    return statement;
  }

  void Sql(std::string statement) {
    Report(warehouse_.AddViewSql(source_, ReadStatement(std::move(statement))));
  }

  void Query(std::string statement) {
    Result<Table> result =
        warehouse_.Query(ReadStatement(std::move(statement)));
    if (!result.ok()) {
      Report(result.status());
      return;
    }
    std::cout << result->ToString(30);
  }

  void Explain(std::string statement) {
    Result<QueryExplanation> plan =
        warehouse_.ExplainQuery(ReadStatement(std::move(statement)));
    if (!plan.ok()) {
      Report(plan.status());
      return;
    }
    std::cout << plan->ToString();
  }

  void Stats() {
    const WarehouseReport report = warehouse_.Report();
    const MaintenanceStats& m = report.maintenance;
    std::cout << "maintenance: " << m.batches_applied << " batch(es), "
              << m.rows_processed << " row(s) processed\n"
              << "  delta joins: " << m.delta_joins_planned << " planned, "
              << m.delta_joins_executed << " executed, "
              << m.delta_joins_reused << " reused\n"
              << "  shared plans: " << m.shared.joins_computed
              << " join(s) computed, " << m.shared.joins_reused
              << " reused; " << m.shared.fragments_computed
              << " fragment(s) computed, " << m.shared.fragments_reused
              << " reused\n"
              << "  group recomputes " << m.group_recomputes
              << ", shielded skips " << m.shielded_skips << "\n";
    std::cout << "ingest: " << report.ingest.accepted << " accepted, "
              << report.ingest.duplicates << " duplicates, "
              << report.ingest.rejected << " rejected, "
              << report.ingest.failed << " failed, "
              << report.ingest.retries << " retries, "
              << report.ingest.quarantined << " quarantined\n";
    std::cout << "result cache: " << report.cache.hits << " hit(s), "
              << report.cache.misses << " miss(es), "
              << report.cache.evictions << " eviction(s), "
              << report.cache.byte_evictions << " byte eviction(s); "
              << FormatBytes(report.cache.bytes_used) << " resident, "
              << FormatBytes(report.cache.bytes_evicted) << " evicted\n";
    std::cout << "overload: " << report.overload.admitted << " admitted, "
              << report.overload.shed << " shed ("
              << report.overload.shed_heavy << " heavy); cancelled "
              << report.overload.cancelled_batches << " batch(es), "
              << report.overload.cancelled_queries
              << " query(ies); deadline expiries "
              << report.overload.deadline_queries << ", budget refusals "
              << report.overload.budget_refusals << "\n";
    std::cout << "lattice: " << report.lattice.nodes << " node(s), "
              << report.lattice.folds << " fold(s), "
              << report.lattice.diffs_computed << " diff(s) computed, "
              << report.lattice.diffs_shared << " shared\n";
    if (report.durable) {
      std::cout << "durability: " << report.directory << ", "
                << (report.read_only ? "follower" : "leader") << " epoch "
                << report.leader_epoch << ", last sequence "
                << report.last_sequence << "\n";
    }
  }

  void PrintView(const std::string& name) {
    // A hot standby exists to serve reads: when a follower is attached
    // and the shell's own warehouse doesn't carry the view, answer
    // from the replica's snapshot.
    Warehouse& target = (follower_ != nullptr && !warehouse_.HasView(name) &&
                         follower_->warehouse().HasView(name))
                            ? follower_->warehouse()
                            : warehouse_;
    Result<Table> view = target.View(name);
    if (!view.ok()) {
      Report(view.status());
      return;
    }
    std::cout << view->ToString(30);
  }

  void Derivation(const std::string& name) {
    if (!warehouse_.HasView(name)) {
      std::cout << "no such view\n";
      return;
    }
    std::cout << warehouse_.engine(name).derivation().ToString();
  }

  void Estimate(const std::string& name) {
    if (!warehouse_.HasView(name)) {
      std::cout << "no such view\n";
      return;
    }
    const SelfMaintenanceEngine& engine = warehouse_.engine(name);
    Result<std::map<std::string, TableStats>> stats =
        ComputeAllStats(source_, engine.derivation());
    if (!stats.ok()) {
      Report(stats.status());
      return;
    }
    for (const AuxViewDef& aux : engine.derivation().aux_views()) {
      if (aux.eliminated) {
        std::cout << "  " << aux.name << ": eliminated (0 bytes)\n";
        continue;
      }
      Result<AuxSizeEstimate> estimate =
          EstimateAuxSize(engine.derivation(), aux.base_table, *stats);
      if (!estimate.ok()) {
        Report(estimate.status());
        return;
      }
      std::cout << "  " << aux.name << ": predicted "
                << static_cast<uint64_t>(estimate->rows) << " rows ("
                << FormatBytes(estimate->paper_bytes) << "), actual "
                << engine.AuxContents(aux.base_table).NumRows()
                << " rows\n";
    }
  }

  static int ParseCount(const std::string& text) {
    try {
      return std::stoi(text);
    } catch (...) {
      return 0;
    }
  }

  // threads [n] [--views m] — n sets per-view engine threads for views
  // registered afterwards; --views m re-sizes the warehouse's shared
  // cross-view pool (takes effect on the next batch).
  void Threads(const std::vector<std::string>& args) {
    WarehouseOptions options = warehouse_.options();
    if (args.size() == 1) {
      std::cout << "maintenance threads: " << options.engine.num_threads
                << " per view, " << options.parallelism
                << " view(s) in parallel\n";
      return;
    }
    bool changed_engine = false;
    bool changed_views = false;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--views") {
        const int count = i + 1 < args.size() ? ParseCount(args[++i]) : 0;
        if (count < 1) {
          std::cout << "error: --views needs a positive integer\n";
          return;
        }
        options.WithParallelism(count);
        changed_views = true;
      } else {
        const int count = ParseCount(args[i]);
        if (count < 1) {
          std::cout << "error: thread count must be a positive integer\n";
          return;
        }
        options.WithEngineThreads(count);
        changed_engine = true;
      }
    }
    warehouse_.set_options(options);
    if (changed_engine) {
      std::cout << "maintenance threads set to "
                << options.engine.num_threads
                << " per view (applies to views registered from now on)\n";
    }
    if (changed_views) {
      std::cout << "cross-view parallelism set to " << options.parallelism
                << " (applies from the next batch)\n";
    }
  }

  // deadline [ms] — show or set the default query deadline.
  void Deadline(const std::vector<std::string>& args) {
    WarehouseOptions options = warehouse_.options();
    if (args.size() == 1) {
      if (options.default_query_deadline_ms > 0) {
        std::cout << "default query deadline: "
                  << options.default_query_deadline_ms << " ms\n";
      } else {
        std::cout << "default query deadline: none\n";
      }
      return;
    }
    const int ms = ParseCount(args[1]);
    if (ms < 0 || (ms == 0 && args[1] != "0")) {
      std::cout << "usage: deadline [ms] (0 disables)\n";
      return;
    }
    options.WithQueryDeadline(ms);
    warehouse_.set_options(options);
    std::cout << (ms > 0 ? StrCat("default query deadline set to ", ms,
                                  " ms\n")
                         : std::string("default query deadline disabled\n"));
  }

  // memory [q=<bytes>] [cache=<bytes>] [inflight=<n>] — the overload
  // knobs in one place.
  void Memory(const std::vector<std::string>& args) {
    WarehouseOptions options = warehouse_.options();
    if (args.size() == 1) {
      std::cout << "query memory budget: "
                << (options.query_memory_budget_bytes > 0
                        ? FormatBytes(options.query_memory_budget_bytes)
                        : std::string("unlimited"))
                << "\nresult cache byte cap: "
                << (options.result_cache_bytes > 0
                        ? FormatBytes(options.result_cache_bytes)
                        : std::string("none"))
                << "\nmax in-flight batches: "
                << (options.max_inflight_batches > 0
                        ? std::to_string(options.max_inflight_batches)
                        : std::string("unbounded"))
                << "\n";
      return;
    }
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::cout << "usage: memory [q=<bytes>] [cache=<bytes>] "
                     "[inflight=<n>]\n";
        return;
      }
      const std::string knob = arg.substr(0, eq);
      const uint64_t value = ParseId(arg.substr(eq + 1));
      if (knob == "q") {
        options.WithQueryMemoryBudget(value);
      } else if (knob == "cache") {
        options.WithResultCacheBytes(value);
      } else if (knob == "inflight") {
        options.WithMaxInflightBatches(static_cast<int>(value));
      } else {
        std::cout << "unknown knob '" << knob << "'; q, cache, inflight\n";
        return;
      }
    }
    warehouse_.set_options(options);
    std::cout << "overload knobs updated (cache and counters reset)\n";
  }

  void ListFailpoints() {
    for (const Failpoints::SiteInfo& site : Failpoints::ListSites()) {
      std::cout << "  " << site.site << ": "
                << (site.armed ? "ARMED" : "idle") << ", " << site.hits
                << " hit(s)\n";
    }
  }

  void Insert(const std::string& table, const std::string& line) {
    Result<const Table*> t = source_.GetTable(table);
    if (!t.ok()) {
      Report(t.status());
      return;
    }
    // Values follow the table name: everything after it, comma-split.
    const size_t pos = line.find(table);
    std::string values_text = line.substr(pos + table.size());
    std::vector<std::string> pieces = Split(values_text, ',');
    const Schema& schema = (*t)->schema();
    if (pieces.size() != schema.size()) {
      std::cout << "error: " << pieces.size() << " values for "
                << schema.ToString() << "\n";
      return;
    }
    Tuple row;
    for (size_t i = 0; i < pieces.size(); ++i) {
      std::string piece = pieces[i];
      // Trim.
      while (!piece.empty() && std::isspace(
                                   static_cast<unsigned char>(piece.front()))) {
        piece.erase(piece.begin());
      }
      while (!piece.empty() &&
             std::isspace(static_cast<unsigned char>(piece.back()))) {
        piece.pop_back();
      }
      switch (schema.attribute(i).type) {
        case ValueType::kInt64:
          row.push_back(Value(static_cast<int64_t>(std::stoll(piece))));
          break;
        case ValueType::kDouble:
          row.push_back(Value(std::stod(piece)));
          break;
        default:
          row.push_back(Value(piece));
      }
    }
    Delta delta;
    delta.inserts.push_back(row);
    Status status = warehouse_.Apply(table, delta);
    if (status.ok()) {
      status = ApplyDelta(*source_.MutableTable(table), delta);
    }
    Report(status);
    if (status.ok()) std::cout << "inserted " << TupleToString(row) << "\n";
  }

  void Erase(const std::string& table, const std::string& key_text) {
    Result<const Table*> t = source_.GetTable(table);
    if (!t.ok()) {
      Report(t.status());
      return;
    }
    std::optional<size_t> key_idx = (*t)->key_index();
    if (!key_idx.has_value()) {
      std::cout << "error: table has no key\n";
      return;
    }
    const ValueType key_type = (*t)->schema().attribute(*key_idx).type;
    Value key = key_type == ValueType::kInt64
                    ? Value(static_cast<int64_t>(std::stoll(key_text)))
                    : Value(key_text);
    const Tuple* row = (*t)->FindByKey(key);
    if (row == nullptr) {
      std::cout << "error: no row with key " << key.ToString() << "\n";
      return;
    }
    Delta delta;
    delta.deletes.push_back(*row);
    Status status = warehouse_.Apply(table, delta);
    if (status.ok()) {
      status = ApplyDelta(*source_.MutableTable(table), delta);
    }
    Report(status);
    if (status.ok()) std::cout << "deleted key " << key.ToString() << "\n";
  }

  void Verify() {
    Result<IntegrityReport> report = warehouse_.VerifyIntegrity();
    if (!report.ok()) {
      Report(report.status());
      return;
    }
    std::cout << "checked " << report->views_checked << " view(s)\n";
    if (report->clean()) {
      std::cout << "all views verify clean\n";
      return;
    }
    for (const IntegrityIssue& issue : report->issues) {
      std::cout << "  " << issue.view << ": " << issue.problem << "\n";
    }
    std::cout << report->issues.size()
              << " issue(s); affected views marked degraded\n";
  }

  static uint64_t ParseId(const std::string& text) {
    try {
      return std::stoull(text);
    } catch (...) {
      return 0;
    }
  }

  void Quarantine(const std::vector<std::string>& args) {
    const std::string sub = args.size() > 1 ? args[1] : "list";
    if (sub == "list") {
      Result<std::vector<QuarantineLog::Entry>> entries =
          warehouse_.QuarantineEntries();
      if (!entries.ok()) {
        Report(entries.status());
        return;
      }
      if (entries->empty()) {
        std::cout << "quarantine is empty\n";
        return;
      }
      for (const QuarantineLog::Entry& entry : *entries) {
        size_t rows = 0;
        for (const auto& [table, delta] : entry.changes) {
          rows += delta.inserts.size() + delta.deletes.size() +
                  delta.updates.size();
        }
        std::cout << "  #" << entry.id << " [" << StatusCodeName(entry.code)
                  << "] " << entry.changes.size() << " table(s), " << rows
                  << " change(s)";
        if (!entry.key.empty()) std::cout << " key=" << entry.key;
        std::cout << "\n      " << entry.message << "\n";
      }
    } else if (sub == "retry" && args.size() == 3) {
      const Status status = warehouse_.QuarantineRetry(ParseId(args[2]));
      Report(status);
      if (status.ok()) std::cout << "batch re-ingested\n";
    } else if (sub == "drop" && args.size() == 3) {
      const Status status = warehouse_.QuarantineDrop(ParseId(args[2]));
      Report(status);
      if (status.ok()) std::cout << "batch dropped\n";
    } else {
      std::cout << "usage: quarantine [list|retry <n>|drop <n>]\n";
    }
  }

  void Lattice(const std::vector<std::string>& args) {
    const std::string sub = args.size() > 1 ? args[1] : "list";
    if (sub == "list") {
      std::cout << warehouse_.LatticeReport();
    } else if (sub == "budget" && args.size() == 3) {
      WarehouseOptions options = warehouse_.options();
      options.lattice_budget_bytes =
          args[2] == "unbounded" ? SIZE_MAX : std::stoul(args[2]);
      warehouse_.set_options(options);
      std::cout << "lattice budget set to "
                << (options.lattice_budget_bytes == SIZE_MAX
                        ? std::string("unbounded")
                        : FormatBytes(options.lattice_budget_bytes))
                << " (heat reset)\n";
    } else if (sub == "promote" && args.size() == 4) {
      std::vector<std::string> group_outputs;
      std::istringstream in(args[3]);
      std::string name;
      while (std::getline(in, name, ',')) {
        if (!name.empty()) group_outputs.push_back(name);
      }
      const Status status = warehouse_.LatticePromote(args[2], group_outputs);
      Report(status);
      if (status.ok()) std::cout << "grouping promoted\n";
    } else if (sub == "demote" && args.size() == 3) {
      const Status status = warehouse_.LatticeDemote(args[2]);
      Report(status);
      if (status.ok()) std::cout << "node demoted\n";
    } else {
      std::cout << "usage: lattice [list|budget <bytes|unbounded>|"
                   "promote <view> <g1,g2,..>|demote <node-key>]\n";
    }
  }

  // The leader's committed high-water mark, read from its durable
  // state (checkpoint manifest + WAL tail) — the follower and the
  // leader are different processes, so this is the honest lag anchor.
  uint64_t LeaderSequence() {
    uint64_t sequence = follower_->applied_sequence();
    Result<replication::CheckpointInfo> peek =
        replication::PeekCurrentCheckpoint(leader_dir_);
    if (peek.ok()) sequence = std::max(sequence, peek->sequence);
    Result<std::vector<WriteAheadLog::Record>> records =
        WriteAheadLog::ReadAll(StrCat(leader_dir_, "/", kWalFile));
    if (records.ok() && !records->empty()) {
      sequence = std::max(sequence, records->back().sequence);
    }
    return sequence;
  }

  void Replica(const std::vector<std::string>& args) {
    const std::string sub = args.size() > 1 ? args[1] : "status";
    if (sub == "open" && args.size() == 4) {
      Result<replication::Follower> opened =
          replication::Follower::Open(args[2], args[3]);
      if (!opened.ok()) {
        Report(opened.status());
        return;
      }
      follower_ = std::make_unique<replication::Follower>(
          std::move(opened).value());
      leader_dir_ = args[2];
      monitor_ = std::make_unique<replication::HealthMonitor>();
      monitor_->Register("follower", follower_.get());
      std::cout << "following " << args[2] << " from " << args[3]
                << " (applied seq " << follower_->applied_sequence()
                << "); 'replica catchup' to replay\n";
    } else if (follower_ == nullptr) {
      std::cout << "no follower attached; 'replica open <leader-dir> "
                   "<dir>' first\n";
    } else if (sub == "catchup") {
      Result<replication::Follower::Progress> progress =
          follower_->CatchUp();
      if (!progress.ok()) {
        Report(progress.status());
        return;
      }
      std::cout << "applied " << progress->applied << " frame(s), "
                << progress->duplicates << " duplicate(s)"
                << (progress->bootstrapped
                        ? ", bootstrapped from leader checkpoint"
                        : "")
                << "; at seq " << follower_->applied_sequence() << "\n";
    } else if (sub == "status") {
      monitor_->Tick(LeaderSequence());
      std::cout << monitor_->ReportText();
    } else if (sub == "promote") {
      const Status status = follower_->warehouse().PromoteToLeader();
      Report(status);
      if (!status.ok()) return;
      warehouse_ = std::move(follower_->warehouse());
      follower_.reset();
      monitor_.reset();
      std::cout << "promoted to leader at epoch "
                << warehouse_.leader_epoch() << ", seq "
                << warehouse_.last_sequence()
                << "; the deposed leader's frames are now fenced\n";
    } else {
      std::cout << "usage: replica [open <leader-dir> <dir>|catchup|"
                   "status|promote]\n";
    }
  }

  void Serve(const std::vector<std::string>& args) {
    if (args.size() == 2 && args[1] == "selftest") {
      ServeSelftest();
      return;
    }
    if (server_ != nullptr) {
      std::cout << "already serving on port " << server_->port()
                << "; 'servestop' first\n";
      return;
    }
    HttpServerOptions options;
    if (args.size() > 1) options.port = std::atoi(args[1].c_str());
    server_ = std::make_unique<HttpServer>(&warehouse_, options);
    const Status started = server_->Start();
    if (!started.ok()) {
      Report(started);
      server_.reset();
      return;
    }
    std::cout << "serving on 127.0.0.1:" << server_->port()
              << " — /ingest /query /explain /report /metrics /changes\n";
  }

  void ServeStop() {
    if (server_ == nullptr) {
      std::cout << "not serving\n";
      return;
    }
    const int port = server_->port();
    server_.reset();
    std::cout << "stopped the front end on port " << port << "\n";
  }

  // Starts an ephemeral server, exercises it over loopback with the
  // built-in HTTP client, and stops it — an end-to-end smoke check a
  // script can grep.
  void ServeSelftest() {
    if (server_ != nullptr) {
      std::cout << "already serving; 'servestop' first\n";
      return;
    }
    HttpServer server(&warehouse_, HttpServerOptions{});
    const Status started = server.Start();
    if (!started.ok()) {
      Report(started);
      return;
    }
    const int port = server.port();
    std::cout << "selftest: serving on 127.0.0.1:" << port << "\n";
    auto metrics = HttpFetch("127.0.0.1", port, "GET", "/metrics");
    if (metrics.ok() && metrics->code == 200 &&
        metrics->body.find("# TYPE mindetail_http_requests_total") !=
            std::string::npos) {
      std::cout << "selftest: metrics ok (" << metrics->body.size()
                << " bytes)\n";
    } else {
      std::cout << "selftest: metrics FAILED\n";
    }
    auto report = HttpFetch("127.0.0.1", port, "GET", "/report");
    std::cout << (report.ok() && report->code == 200
                      ? "selftest: report ok\n"
                      : "selftest: report FAILED\n");
    auto changes = HttpFetch("127.0.0.1", port, "GET", "/changes?poll=1");
    if (changes.ok() && changes->code == 200 &&
        changes->body.rfind("current ", 0) == 0) {
      std::cout << "selftest: changes ok ("
                << changes->body.substr(0, changes->body.find('\n'))
                << ")\n";
    } else {
      std::cout << "selftest: changes FAILED\n";
    }
    // Routing check: the mapped 4xx (400 parse error / 404 no view)
    // proves the query path end to end without assuming a schema.
    auto query = HttpFetch("127.0.0.1", port, "POST", "/query", {},
                           "SELECT missing.attr FROM missing");
    std::cout << "selftest: query HTTP "
              << (query.ok() ? query->code : 0) << "\n";
    server.Stop();
    std::cout << "selftest: server stopped\n";
  }

  Catalog source_;
  Warehouse warehouse_;
  std::string leader_dir_;
  std::unique_ptr<replication::Follower> follower_;
  std::unique_ptr<replication::HealthMonitor> monitor_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace
}  // namespace mindetail

int main() { return mindetail::Cli().Run(); }
